"""Design-choice ablations.

The paper fixes several design choices without quantifying them (Section 6
acknowledges this).  These ablations measure what each choice contributes,
using the same simulator ground truth as the main evaluation:

* **Interference term** — predict co-runs with the scalability term only
  (``D ≡ 0``) and compare the accuracy against the full model.
* **Basis functions** — train with the hand-designed Table 4 basis vs. raw
  counters.
* **Search strategy** — exhaustive search vs. hill climbing on the paper's
  24-point candidate space: do they pick the same configuration and how much
  objective is lost if not?
* **Measurement noise** — how the model error grows with the measurement
  noise level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.analysis.context import EvaluationContext
from repro.config import EvaluationConfig
from repro.core.features import DEFAULT_BASIS, RAW_COUNTER_BASIS, BasisFunctions
from repro.core.model import HardwareStateKey
from repro.core.optimizer import ResourcePowerAllocator
from repro.core.policies import Problem2Policy
from repro.core.search import ExhaustiveSearch, HillClimbingSearch
from repro.core.workflow import PaperWorkflow
from repro.errors import InfeasibleProblemError
from repro.sim.engine import PerformanceSimulator
from repro.sim.noise import NoiseModel
from repro.workloads.suite import DEFAULT_SUITE


# ----------------------------------------------------------------------
# Interference-term ablation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class InterferenceAblationResult:
    """Model accuracy with and without the interference term."""

    full_throughput_mape_pct: float
    full_fairness_mape_pct: float
    no_interference_throughput_mape_pct: float
    no_interference_fairness_mape_pct: float

    @property
    def throughput_degradation_pct(self) -> float:
        """How much the throughput error grows when the D term is dropped."""
        return self.no_interference_throughput_mape_pct - self.full_throughput_mape_pct

    @property
    def fairness_degradation_pct(self) -> float:
        """How much the fairness error grows when the D term is dropped."""
        return self.no_interference_fairness_mape_pct - self.full_fairness_mape_pct


def interference_term_ablation(
    context: EvaluationContext,
    power_caps: Sequence[float] | None = None,
) -> InterferenceAblationResult:
    """Compare the full model against one that ignores the interference term."""
    caps = tuple(power_caps) if power_caps is not None else context.config.power_caps
    full_t, full_f, bare_t, bare_f = [], [], [], []
    model = context.model
    for pair in context.pairs:
        counters = context.pair_profiles(pair)
        for state in context.config.candidate_states:
            for cap in caps:
                measured = context.measured(pair, state, cap)
                full = model.predict_corun(list(counters), state, cap)
                bare = tuple(
                    model.predict_rperf(
                        counters[i],
                        HardwareStateKey.from_state(
                            state, i, cap, context.simulator.spec
                        ),
                        co_counters=(),
                    )
                    for i in range(state.n_apps)
                )
                full_t.append(abs(sum(full) - measured.weighted_speedup) / measured.weighted_speedup)
                bare_t.append(abs(sum(bare) - measured.weighted_speedup) / measured.weighted_speedup)
                full_f.append(abs(min(full) - measured.fairness) / measured.fairness)
                bare_f.append(abs(min(bare) - measured.fairness) / measured.fairness)
    scale = 100.0 / len(full_t)
    return InterferenceAblationResult(
        full_throughput_mape_pct=sum(full_t) * scale,
        full_fairness_mape_pct=sum(full_f) * scale,
        no_interference_throughput_mape_pct=sum(bare_t) * scale,
        no_interference_fairness_mape_pct=sum(bare_f) * scale,
    )


# ----------------------------------------------------------------------
# Basis-function ablation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BasisAblationResult:
    """Model accuracy per basis-function choice."""

    throughput_mape_pct: Mapping[str, float]
    fairness_mape_pct: Mapping[str, float]


def basis_function_ablation(
    context: EvaluationContext,
    bases: Sequence[BasisFunctions] = (DEFAULT_BASIS, RAW_COUNTER_BASIS),
    power_caps: Sequence[float] | None = None,
) -> BasisAblationResult:
    """Train one model per basis and compare their accuracy."""
    caps = tuple(power_caps) if power_caps is not None else context.config.power_caps
    throughput: dict[str, float] = {}
    fairness: dict[str, float] = {}
    for basis in bases:
        workflow = PaperWorkflow(
            simulator=context.simulator,
            suite=context.suite,
            basis=basis,
            candidate_states=context.config.candidate_states,
            power_caps=context.config.power_caps,
        )
        model = workflow.train()
        t_errors, f_errors = [], []
        for pair in context.pairs:
            counters = context.pair_profiles(pair)
            for state in context.config.candidate_states:
                for cap in caps:
                    measured = context.measured(pair, state, cap)
                    predicted = model.predict_corun(list(counters), state, cap)
                    t_errors.append(
                        abs(sum(predicted) - measured.weighted_speedup)
                        / measured.weighted_speedup
                    )
                    f_errors.append(
                        abs(min(predicted) - measured.fairness) / measured.fairness
                    )
        throughput[basis.name] = 100.0 * sum(t_errors) / len(t_errors)
        fairness[basis.name] = 100.0 * sum(f_errors) / len(f_errors)
    return BasisAblationResult(throughput_mape_pct=throughput, fairness_mape_pct=fairness)


# ----------------------------------------------------------------------
# Search-strategy ablation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SearchAblationResult:
    """Agreement between exhaustive search and hill climbing."""

    n_workloads: int
    n_same_decision: int
    mean_objective_ratio: float
    exhaustive_candidates_evaluated: int
    hill_climbing_candidates_evaluated: int

    @property
    def agreement(self) -> float:
        """Fraction of workloads where both strategies pick the same (S, P)."""
        return self.n_same_decision / self.n_workloads if self.n_workloads else 1.0


def search_strategy_ablation(
    context: EvaluationContext,
    alpha: float = 0.2,
) -> SearchAblationResult:
    """Compare exhaustive search with hill climbing on Problem 2."""
    exhaustive = ResourcePowerAllocator(
        context.model,
        candidate_states=context.config.candidate_states,
        power_caps=context.config.power_caps,
        search=ExhaustiveSearch(),
    )
    climber = ResourcePowerAllocator(
        context.model,
        candidate_states=context.config.candidate_states,
        power_caps=context.config.power_caps,
        search=HillClimbingSearch(restarts=3),
    )
    same = 0
    total = 0
    ratios = []
    exhaustive_evals = 0
    climber_evals = 0
    for pair in context.pairs:
        counters = list(context.pair_profiles(pair))
        policy = Problem2Policy(alpha=alpha, power_caps=context.config.power_caps)
        try:
            reference = exhaustive.solve(counters, policy)
            candidate = climber.solve(counters, policy)
        except InfeasibleProblemError:
            continue
        total += 1
        exhaustive_evals += reference.candidates_evaluated
        climber_evals += candidate.candidates_evaluated
        if (
            candidate.state.key() == reference.state.key()
            and candidate.power_cap_w == reference.power_cap_w
        ):
            same += 1
        if reference.predicted_objective > 0:
            ratios.append(candidate.predicted_objective / reference.predicted_objective)
    return SearchAblationResult(
        n_workloads=total,
        n_same_decision=same,
        mean_objective_ratio=sum(ratios) / len(ratios) if ratios else 1.0,
        exhaustive_candidates_evaluated=exhaustive_evals,
        hill_climbing_candidates_evaluated=climber_evals,
    )


# ----------------------------------------------------------------------
# Noise-sensitivity ablation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NoiseAblationResult:
    """Model accuracy as a function of the measurement-noise level."""

    throughput_mape_pct_by_sigma: Mapping[float, float]
    fairness_mape_pct_by_sigma: Mapping[float, float]


def noise_sensitivity_ablation(
    sigmas: Sequence[float] = (0.0, 0.03, 0.08),
    power_caps: Sequence[float] = (250.0,),
) -> NoiseAblationResult:
    """Re-run training + accuracy evaluation at several noise levels."""
    throughput: dict[float, float] = {}
    fairness: dict[float, float] = {}
    for sigma in sigmas:
        simulator = PerformanceSimulator(noise=NoiseModel(sigma=sigma))
        config = EvaluationConfig(noise_sigma=sigma)
        context = EvaluationContext.create(
            config=config, suite=DEFAULT_SUITE, simulator=simulator
        )
        t_errors, f_errors = [], []
        for pair in context.pairs:
            counters = context.pair_profiles(pair)
            for state in context.config.candidate_states:
                for cap in power_caps:
                    measured = context.measured(pair, state, cap)
                    predicted = context.model.predict_corun(list(counters), state, cap)
                    t_errors.append(
                        abs(sum(predicted) - measured.weighted_speedup)
                        / measured.weighted_speedup
                    )
                    f_errors.append(
                        abs(min(predicted) - measured.fairness) / measured.fairness
                    )
        throughput[float(sigma)] = 100.0 * sum(t_errors) / len(t_errors)
        fairness[float(sigma)] = 100.0 * sum(f_errors) / len(f_errors)
    return NoiseAblationResult(
        throughput_mape_pct_by_sigma=throughput,
        fairness_mape_pct_by_sigma=fairness,
    )
