"""Plain-text rendering of tables and figure data.

The benchmark harnesses print the regenerated tables/series so that a reader
can compare them side by side with the paper.  Everything here is purely
cosmetic; no analysis happens in this module.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.analysis.figures import (
    ComparisonSummary,
    Figure4Data,
    Figure5Data,
    Figure6Data,
    Figure8Data,
    Figure10Data,
    Figure13Data,
)
from repro.analysis.tables import Table6Row, Table7Data, Table8Data


def ascii_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a simple fixed-width text table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = [format_row(list(headers)), format_row(["-" * w for w in widths])]
    lines.extend(format_row(row) for row in str_rows)
    return "\n".join(lines)


def render_table6(rows: Sequence[Table6Row]) -> str:
    """Render Table 6 (GEMM variants)."""
    return ascii_table(
        ["name", "pipe", "iterations", "compute[s]", "memory[s]", "specification"],
        [
            (
                r.name,
                r.pipe,
                r.iterations,
                f"{r.compute_time_full_s:.3f}",
                f"{r.memory_time_full_s:.3f}",
                r.specification,
            )
            for r in rows
        ],
    )


def render_table7(data: Table7Data) -> str:
    """Render Table 7 (benchmark classification) with the paper comparison."""
    rows = []
    for name in sorted(data.reports):
        report = data.reports[name]
        rows.append(
            (
                name,
                report.workload_class.value,
                f"{report.relative_perf_us_test:.3f}",
                f"{report.compute_memory_ratio:.2f}",
                f"{report.tensor_utilization_pct:.1f}",
                "ok" if report.matches_paper else "MISMATCH",
            )
        )
    return ascii_table(
        ["benchmark", "class", "RPerf@1GPC/150W", "F1/F2", "tensor[%]", "vs paper"],
        rows,
    )


def render_table8(data: Table8Data) -> str:
    """Render Table 8 (co-run pairs)."""
    return ascii_table(
        ["workload", "App1", "App2", "classes"],
        [
            (p.name, p.app1, p.app2, f"{p.class1.value}-{p.class2.value}")
            for p in data.pairs
        ],
    )


def render_scalability(data: Figure4Data | Figure5Data, title: str) -> str:
    """Render Figure 4/5-style scalability curves."""
    gpc_counts = sorted({g for curve in data.curves for g, _ in curve.points})
    rows = []
    for curve in data.curves:
        values = {g: v for g, v in curve.points}
        rows.append(
            (curve.kernel, curve.label)
            + tuple(f"{values[g]:.3f}" if g in values else "-" for g in gpc_counts)
        )
    headers = ["kernel", "series"] + [f"{g}GPC" for g in gpc_counts]
    return f"{title}\n" + ascii_table(headers, rows)


def render_figure6(data: Figure6Data) -> str:
    """Render Figure 6 (co-run throughput per state)."""
    state_labels = sorted({label for row in data.throughput.values() for label in row})
    rows = []
    for pair, row in data.throughput.items():
        rows.append(
            (pair,)
            + tuple(f"{row[label]:.3f}" for label in state_labels)
            + (data.best_state(pair), f"{data.spread(pair):.2f}x")
        )
    headers = ["workload"] + state_labels + ["best", "spread"]
    return ascii_table(headers, rows)


def render_figure8(data: Figure8Data) -> str:
    """Render Figure 8 (estimated vs measured throughput/fairness)."""
    rows = [
        (
            r.pair,
            r.state_label,
            f"{r.measured_throughput:.3f}",
            f"{r.estimated_throughput:.3f}",
            f"{r.measured_fairness:.3f}",
            f"{r.estimated_fairness:.3f}",
        )
        for r in data.rows
    ]
    table = ascii_table(
        ["workload", "state", "WS meas", "WS est", "fair meas", "fair est"], rows
    )
    summary = (
        f"\naverage error: throughput {data.throughput_mape_pct:.1f}% "
        f"fairness {data.fairness_mape_pct:.1f}% (P={data.power_cap_w:.0f}W)"
    )
    return table + summary


def render_comparison(summary: ComparisonSummary, metric_name: str) -> str:
    """Render a Figure 9/11-style worst/proposal/best comparison."""
    rows = [
        (
            r.pair,
            f"{r.worst:.4f}",
            f"{r.proposal:.4f}",
            f"{r.best:.4f}",
            r.proposal_state,
            f"{r.proposal_power_cap_w:.0f}",
            "yes" if r.fairness_violated else "no",
        )
        for r in summary.rows
    ]
    table = ascii_table(
        ["workload", "worst", "proposal", "best", "S*", "P*[W]", "violated"], rows
    )
    footer = (
        f"\ngeomean {metric_name}: worst={summary.geomean_worst:.4f} "
        f"proposal={summary.geomean_proposal:.4f} best={summary.geomean_best:.4f} "
        f"(fairness violations: {summary.fairness_violations})"
    )
    return table + footer


def render_power_sweep(data: Figure10Data) -> str:
    """Render Figure 10 (geomean throughput vs power cap)."""
    rows = [
        (f"{cap:.0f}", f"{worst:.3f}", f"{proposal:.3f}", f"{best:.3f}")
        for cap, worst, proposal, best in data.geomeans()
    ]
    return ascii_table(["P[W]", "worst", "proposal", "best"], rows)


def render_alpha_sweep(data: Figure13Data) -> str:
    """Render Figure 13 (geomean energy efficiency vs alpha)."""
    rows = [
        (f"{alpha:.2f}", f"{worst:.5f}", f"{proposal:.5f}", f"{best:.5f}")
        for alpha, worst, proposal, best in data.geomeans()
    ]
    return ascii_table(["alpha", "worst", "proposal", "best"], rows)
