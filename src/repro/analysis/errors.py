"""Model-error statistics (Section 5.2.1).

The paper reports the average relative error of the model across *all*
workloads and hardware setups: about 9.7 % for the throughput metric and
14.5 % for the fairness metric.  :func:`model_error_summary` computes the
same statistic over the simulator's ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.analysis.context import EvaluationContext
from repro.analysis.figures import Figure8Data, figure8_model_accuracy


@dataclass(frozen=True)
class ModelErrorSummary:
    """Average model errors across workloads, states, and power caps."""

    throughput_mape_pct: float
    fairness_mape_pct: float
    per_power_cap: Mapping[float, Figure8Data]
    n_samples: int

    def worst_power_cap(self) -> float:
        """The power cap with the largest throughput error."""
        return max(
            self.per_power_cap,
            key=lambda cap: self.per_power_cap[cap].throughput_mape_pct,
        )


def model_error_summary(
    context: EvaluationContext,
    power_caps: Sequence[float] | None = None,
) -> ModelErrorSummary:
    """Average relative model error across the full evaluation grid."""
    caps = tuple(power_caps) if power_caps is not None else context.config.power_caps
    per_cap: dict[float, Figure8Data] = {}
    throughput_errors: list[float] = []
    fairness_errors: list[float] = []
    n_samples = 0
    for cap in caps:
        data = figure8_model_accuracy(context, power_cap_w=float(cap))
        per_cap[float(cap)] = data
        throughput_errors.extend(row.throughput_error for row in data.rows)
        fairness_errors.extend(row.fairness_error for row in data.rows)
        n_samples += len(data.rows)
    return ModelErrorSummary(
        throughput_mape_pct=100.0 * sum(throughput_errors) / len(throughput_errors),
        fairness_mape_pct=100.0 * sum(fairness_errors) / len(fairness_errors),
        per_power_cap=per_cap,
        n_samples=n_samples,
    )
