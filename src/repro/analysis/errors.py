"""Model-error statistics (Section 5.2.1).

The paper reports the average relative error of the model across *all*
workloads and hardware setups: about 9.7 % for the throughput metric and
14.5 % for the fairness metric.  :func:`model_error_summary` computes the
same statistic over the simulator's ground truth.

:func:`model_error_by_gi_size` adds the per-GPU-Instance-size breakdown
that motivated the capacity-aware interference basis (key schema v3): mean
and maximum relative RPerf error of shared Compute Instances, bucketed by
the memory slices of their hosting GPU Instance.  The 2-slice bucket is
where the pair-era linear-in-``J`` fit underfit (~30 % mean error); the
breakdown both proves the fix and guards the 4-slice keys against
regressions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.analysis.context import EvaluationContext
from repro.analysis.figures import Figure8Data, figure8_model_accuracy
from repro.core.model import HardwareStateKey, LinearPerfModel
from repro.errors import AnalysisError
from repro.gpu.mig import MemoryOption, PartitionState, enumerate_partition_states
from repro.sim.engine import PerformanceSimulator
from repro.workloads.kernel import KernelCharacteristics


@dataclass(frozen=True)
class ModelErrorSummary:
    """Average model errors across workloads, states, and power caps."""

    throughput_mape_pct: float
    fairness_mape_pct: float
    per_power_cap: Mapping[float, Figure8Data]
    n_samples: int

    def worst_power_cap(self) -> float:
        """The power cap with the largest throughput error."""
        return max(
            self.per_power_cap,
            key=lambda cap: self.per_power_cap[cap].throughput_mape_pct,
        )


def model_error_summary(
    context: EvaluationContext,
    power_caps: Sequence[float] | None = None,
) -> ModelErrorSummary:
    """Average relative model error across the full evaluation grid.

    Raises
    ------
    repro.errors.AnalysisError
        If the power-cap list or the resulting evaluation grid is empty
        (there would be nothing to average over).
    """
    caps = tuple(power_caps) if power_caps is not None else context.config.power_caps
    if not caps:
        raise AnalysisError(
            "model_error_summary got an empty power-cap list; pass at least "
            "one cap via power_caps or context.config.power_caps"
        )
    per_cap: dict[float, Figure8Data] = {}
    throughput_errors: list[float] = []
    fairness_errors: list[float] = []
    n_samples = 0
    for cap in caps:
        data = figure8_model_accuracy(context, power_cap_w=float(cap))
        per_cap[float(cap)] = data
        throughput_errors.extend(row.throughput_error for row in data.rows)
        fairness_errors.extend(row.fairness_error for row in data.rows)
        n_samples += len(data.rows)
    if not throughput_errors:
        raise AnalysisError(
            "model_error_summary produced no accuracy rows: the evaluation "
            "grid is empty (context.config.candidate_states or the co-run "
            "workload list is empty)"
        )
    return ModelErrorSummary(
        throughput_mape_pct=100.0 * sum(throughput_errors) / len(throughput_errors),
        fairness_mape_pct=100.0 * sum(fairness_errors) / len(fairness_errors),
        per_power_cap=per_cap,
        n_samples=n_samples,
    )


# ----------------------------------------------------------------------
# Per-GI-size breakdown (the key schema v3 accuracy guard)
# ----------------------------------------------------------------------
#: Acceptance bounds on the per-GI-size *mean* RPerf error, shared by the
#: tier-1 bound test (tests/test_capacity_basis.py) and the CI gate
#: (scripts/gi_size_error_summary.py) so the two cannot drift apart.
#: 2-slice is the capacity-aware-basis acceptance bound; 4-slice pins the
#: seed's pre-v3 level ("no worse than seed"); the full-chip bound was
#: tightened from the pair-era additive composition's 36 % when the N≥3
#: composition correction (the capacity-aware basis at ``q = 1``,
#: ``ModelTrainer.fit_composition``) closed the ROADMAP open item —
#: measured ~21.8 % mean on the three-way evaluation grid.
TWO_SLICE_MEAN_ERROR_BOUND_PCT = 15.0
FOUR_SLICE_MEAN_ERROR_BOUND_PCT = 16.1
FULL_CHIP_MEAN_ERROR_BOUND_PCT = 24.0


@dataclass(frozen=True)
class GISizeErrorSummary:
    """Relative RPerf error of shared CIs in GPU Instances of one size."""

    mem_slices: int
    n_samples: int
    mean_error_pct: float
    max_error_pct: float


def model_error_by_gi_size(
    model: LinearPerfModel,
    simulator: PerformanceSimulator,
    power_caps: Sequence[float],
    groups: Sequence[Sequence[KernelCharacteristics]] | None = None,
    states: Sequence[PartitionState] | None = None,
) -> tuple[GISizeErrorSummary, ...]:
    """Mean/max relative RPerf error bucketed by the hosting GI's slices.

    Every application of every ``(group, state, cap)`` combination whose
    per-application key has the *shared* memory option contributes one
    sample to the bucket of its GPU Instance's memory-slice count;
    applications behind private keys are skipped (they are not what the
    capacity-aware basis predicts).  ``groups`` defaults to the named
    training-suite triples (:data:`repro.workloads.groups.CORUN_TRIPLES`)
    and ``states`` to every mixed *and* full-chip shared
    three-application layout on the model's spec: the mixed layouts form
    the grid whose 2-slice bucket sat at ~30 % mean error before the
    capacity-aware basis, and the shared layouts contribute the
    full-chip (8-slice on the A100) bucket that guards the pair-era
    coefficients against regressions.  States a group's size does not
    match or the model cannot evaluate at every cap are skipped.

    Raises
    ------
    repro.errors.AnalysisError
        If ``power_caps``, ``groups``, or ``states`` is empty, or if no
        (group, state, cap) combination yields a shared-key sample.
    """
    caps = tuple(float(cap) for cap in power_caps)
    if not caps:
        raise AnalysisError(
            "model_error_by_gi_size got an empty power-cap list; pass at "
            "least one power cap"
        )
    if groups is None:
        from repro.workloads.groups import CORUN_TRIPLES

        groups = [group.kernels() for group in CORUN_TRIPLES]
    groups = [tuple(group) for group in groups]
    if not groups:
        raise AnalysisError(
            "model_error_by_gi_size got an empty workload-group list; pass "
            "at least one kernel group"
        )
    if states is None:
        states = tuple(
            enumerate_partition_states(
                3, model.spec, (MemoryOption.MIXED, MemoryOption.SHARED)
            )
        )
    states = tuple(states)
    if not states:
        raise AnalysisError(
            "model_error_by_gi_size got an empty partition-state list; pass "
            "at least one state"
        )
    errors: dict[int, list[float]] = {}
    for kernels in groups:
        counters = [simulator.profile(kernel) for kernel in kernels]
        for state in states:
            if state.n_apps != len(kernels):
                continue
            if not model.supports_candidate(state, caps):
                continue
            for cap in caps:
                predicted = model.predict_corun(counters, state, cap)
                measured = simulator.co_run(list(kernels), state, cap)
                for index in range(state.n_apps):
                    key = HardwareStateKey.from_state(state, index, cap, model.spec)
                    if key.option is not MemoryOption.SHARED:
                        continue
                    simulated = measured.relative_performances[index]
                    error = abs(predicted[index] - simulated) / simulated
                    errors.setdefault(key.mem_slices, []).append(error)
    if not errors:
        raise AnalysisError(
            "model_error_by_gi_size found no shared-key samples: no state "
            "matched a group's size (or none is fitted at the requested "
            "caps)"
        )
    return tuple(
        GISizeErrorSummary(
            mem_slices=mem_slices,
            n_samples=len(samples),
            mean_error_pct=100.0 * sum(samples) / len(samples),
            max_error_pct=100.0 * max(samples),
        )
        for mem_slices, samples in sorted(errors.items())
    )
