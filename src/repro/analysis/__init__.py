"""Evaluation and analysis: regenerating the paper's tables and figures.

Every table and figure of the paper's evaluation section has a corresponding
generator here, returning plain dataclasses that the benchmark harnesses
print and assert on:

* Tables 6–8 — :mod:`repro.analysis.tables`
* Figures 4–6 (observations) and 8–13 (evaluation) —
  :mod:`repro.analysis.figures`
* Model-accuracy statistics (Section 5.2.1) — :mod:`repro.analysis.errors`
* Design-choice ablations (ours, motivated by Section 6) —
  :mod:`repro.analysis.ablation`
* Plain-text rendering — :mod:`repro.analysis.report`

All generators accept an :class:`~repro.analysis.context.EvaluationContext`
so that the (comparatively expensive) offline training is shared.
"""

from repro.analysis.context import EvaluationContext
from repro.analysis.errors import (
    GISizeErrorSummary,
    ModelErrorSummary,
    model_error_by_gi_size,
    model_error_summary,
)
from repro.analysis.figures import (
    figure4_scalability_partitioning,
    figure5_scalability_power,
    figure6_corun_throughput,
    figure8_model_accuracy,
    figure9_problem1,
    figure10_problem1_power_sweep,
    figure11_problem2_efficiency,
    figure12_problem2_power_selection,
    figure13_efficiency_vs_alpha,
)
from repro.analysis.tables import (
    table6_gemm_variants,
    table7_classification,
    table8_corun_pairs,
)

__all__ = [
    "EvaluationContext",
    "GISizeErrorSummary",
    "ModelErrorSummary",
    "model_error_by_gi_size",
    "model_error_summary",
    "figure4_scalability_partitioning",
    "figure5_scalability_power",
    "figure6_corun_throughput",
    "figure8_model_accuracy",
    "figure9_problem1",
    "figure10_problem1_power_sweep",
    "figure11_problem2_efficiency",
    "figure12_problem2_power_selection",
    "figure13_efficiency_vs_alpha",
    "table6_gemm_variants",
    "table7_classification",
    "table8_corun_pairs",
]
