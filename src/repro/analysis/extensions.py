"""Extensions beyond the paper's evaluation.

Two studies the paper explicitly defers to future hardware / future work:

* **Flexible partitioning** (Section 6): today's MIG only realizes the 4+3
  split for two applications, but the methodology "is extensible" to finer
  splits.  :func:`flexible_partitioning_study` enumerates *every* realizable
  two-application partition state (2+2, 1+4, 3+3, ... as allowed by the GPC
  and memory-slice budgets), re-trains the model over that larger space, and
  quantifies how much throughput the extra freedom buys — and whether the
  allocator still finds it.
* **Leave-one-out generalization**: the paper trains and evaluates on the
  same benchmark set; :func:`leave_one_out_validation` withholds one
  benchmark at a time from the scalability calibration and measures the
  prediction error on the held-out application, which is the error a *new*
  application would see after only its profile run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.analysis.context import EvaluationContext
from repro.config import DEFAULT_POWER_CAPS
from repro.core.optimizer import ResourcePowerAllocator
from repro.core.policies import Problem1Policy
from repro.core.training import ModelTrainer, collect_corun_measurements, collect_solo_measurements
from repro.core.workflow import PaperWorkflow, TrainingPlan
from repro.errors import InfeasibleProblemError
from repro.gpu.mig import CORUN_STATES, MemoryOption, enumerate_corun_states
from repro.sim.engine import PerformanceSimulator
from repro.workloads.pairs import CORUN_PAIRS
from repro.workloads.suite import BenchmarkSuite, DEFAULT_SUITE


# ----------------------------------------------------------------------
# Flexible partitioning (future-hardware study)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FlexiblePartitioningRow:
    """Per-workload outcome of the flexible-partitioning study."""

    pair: str
    best_paper_states: float
    best_flexible_states: float
    proposal_flexible: float
    proposal_state: str

    @property
    def flexibility_gain(self) -> float:
        """Measured best with the full state space over the 4+3-only best."""
        return self.best_flexible_states / self.best_paper_states

    @property
    def proposal_vs_best(self) -> float:
        """How much of the flexible-space optimum the allocator captures."""
        return self.proposal_flexible / self.best_flexible_states


@dataclass(frozen=True)
class FlexiblePartitioningStudy:
    """Outcome of the flexible-partitioning extension study."""

    rows: tuple[FlexiblePartitioningRow, ...]
    n_states: int
    power_cap_w: float
    alpha: float

    @property
    def mean_flexibility_gain(self) -> float:
        """Average measured gain of the enlarged state space."""
        return float(np.mean([row.flexibility_gain for row in self.rows]))

    @property
    def mean_proposal_vs_best(self) -> float:
        """Average fraction of the flexible-space optimum the model captures."""
        return float(np.mean([row.proposal_vs_best for row in self.rows]))


def flexible_partitioning_study(
    simulator: PerformanceSimulator | None = None,
    suite: BenchmarkSuite = DEFAULT_SUITE,
    pairs: Sequence = CORUN_PAIRS,
    power_cap_w: float = 230.0,
    alpha: float = 0.2,
) -> FlexiblePartitioningStudy:
    """Evaluate the allocator over every realizable two-application state."""
    simulator = simulator if simulator is not None else PerformanceSimulator()
    states = enumerate_corun_states(simulator.spec)
    gpc_sizes = tuple(sorted({g for state in states for g in state.gpc_allocations}))
    workflow = PaperWorkflow(
        simulator=simulator,
        suite=suite,
        plan=TrainingPlan(
            gpc_counts=gpc_sizes,
            options=(MemoryOption.SHARED, MemoryOption.PRIVATE),
            power_caps=(power_cap_w,),
            states=states,
        ),
        candidate_states=states,
        power_caps=(power_cap_w,),
    )
    workflow.train()
    allocator = workflow.online

    rows: list[FlexiblePartitioningRow] = []
    for pair in pairs:
        kernels = list(pair.kernels(suite))
        measured = {}
        for state in states:
            result = simulator.co_run(kernels, state, power_cap_w)
            if result.fairness > alpha:
                measured[state.key()] = result.weighted_speedup
        if not measured:
            continue
        paper_keys = [state.key() for state in CORUN_STATES]
        paper_feasible = [measured[key] for key in paper_keys if key in measured]
        if not paper_feasible:
            continue
        try:
            decision = allocator.decide(
                [pair.app1, pair.app2], Problem1Policy(power_cap_w=power_cap_w, alpha=alpha)
            )
            proposal = simulator.co_run(kernels, decision.state, power_cap_w).weighted_speedup
            proposal_state = decision.state.describe()
        except InfeasibleProblemError:
            proposal = min(measured.values())
            proposal_state = "infeasible"
        rows.append(
            FlexiblePartitioningRow(
                pair=pair.name,
                best_paper_states=max(paper_feasible),
                best_flexible_states=max(measured.values()),
                proposal_flexible=proposal,
                proposal_state=proposal_state,
            )
        )
    return FlexiblePartitioningStudy(
        rows=tuple(rows),
        n_states=len(states),
        power_cap_w=power_cap_w,
        alpha=alpha,
    )


# ----------------------------------------------------------------------
# Leave-one-out generalization of the scalability model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LeaveOneOutResult:
    """Held-out prediction errors of the scalability term."""

    per_benchmark_error_pct: Mapping[str, float]
    mean_error_pct: float
    worst_benchmark: str

    def error_of(self, name: str) -> float:
        """Held-out error of one benchmark (percent)."""
        return self.per_benchmark_error_pct[name]


def leave_one_out_validation(
    simulator: PerformanceSimulator | None = None,
    suite: BenchmarkSuite = DEFAULT_SUITE,
    gpc_counts: Sequence[int] = (3, 4),
    options: Sequence[MemoryOption] = (MemoryOption.SHARED, MemoryOption.PRIVATE),
    power_caps: Sequence[float] = (150.0, 250.0),
) -> LeaveOneOutResult:
    """Withhold each benchmark from calibration and predict its solo behaviour."""
    simulator = simulator if simulator is not None else PerformanceSimulator()
    names = suite.names()
    measurements = collect_solo_measurements(
        simulator, suite.all(), gpc_counts=gpc_counts, options=options, power_caps=power_caps
    )
    errors: dict[str, float] = {}
    for held_out in names:
        training = [m for m in measurements if m.kernel_name != held_out]
        testing = [m for m in measurements if m.kernel_name == held_out]
        model = ModelTrainer().fit_scalability(training)
        per_point = [
            abs(model.predict_solo(m.counters, m.key) - m.relative_performance)
            / max(m.relative_performance, 1e-9)
            for m in testing
        ]
        errors[held_out] = 100.0 * float(np.mean(per_point))
    worst = max(errors, key=errors.get)
    return LeaveOneOutResult(
        per_benchmark_error_pct=errors,
        mean_error_pct=float(np.mean(list(errors.values()))),
        worst_benchmark=worst,
    )


# ----------------------------------------------------------------------
# Interference-term cross-validation on co-run pairs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HeldOutPairResult:
    """Prediction error for co-run pairs excluded from calibration."""

    per_pair_error_pct: Mapping[str, float]
    mean_error_pct: float


def held_out_pair_validation(
    context: EvaluationContext,
    held_out_pairs: Sequence[str] = ("TI-MI2", "CI-US1", "MI-MI2"),
    power_caps: Sequence[float] = DEFAULT_POWER_CAPS,
) -> HeldOutPairResult:
    """Train the interference term without some pairs, test on exactly those."""
    simulator = context.simulator
    suite = context.suite
    held_out = set(held_out_pairs)
    training_pairs = [p for p in CORUN_PAIRS if p.name not in held_out]
    testing_pairs = [p for p in CORUN_PAIRS if p.name in held_out]

    solo = collect_solo_measurements(
        simulator,
        suite.all(),
        gpc_counts=(3, 4),
        options=(MemoryOption.SHARED, MemoryOption.PRIVATE),
        power_caps=power_caps,
    )
    corun = collect_corun_measurements(
        simulator,
        [p.kernels(suite) for p in training_pairs],
        states=CORUN_STATES,
        power_caps=power_caps,
    )
    model = ModelTrainer().train(solo, corun)

    errors: dict[str, float] = {}
    for pair in testing_pairs:
        counters = list(context.pair_profiles(pair))
        per_point = []
        for state in CORUN_STATES:
            for cap in power_caps:
                measured = context.measured(pair, state, cap)
                predicted = model.predict_corun(counters, state, cap)
                per_point.append(
                    abs(sum(predicted) - measured.weighted_speedup)
                    / measured.weighted_speedup
                )
        errors[pair.name] = 100.0 * float(np.mean(per_point))
    return HeldOutPairResult(
        per_pair_error_pct=errors,
        mean_error_pct=float(np.mean(list(errors.values()))),
    )
