"""Data generators for the paper's figures.

Each ``figureN_*`` function reproduces the data series behind one figure of
the paper.  The returned dataclasses carry plain numbers so that the
benchmark harnesses can print them as tables and assert the qualitative
shape (who wins, by roughly what factor, where the crossovers fall).

"Measured" always means the simulator's ground truth (with measurement
noise); "estimated"/"proposal" always means the trained linear model and the
allocator driven by it — the same separation the paper maintains between the
A100 measurements and its model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.analysis.context import EvaluationContext
from repro.core.decision import AllocationDecision
from repro.core.metrics import geometric_mean
from repro.core.optimizer import ResourcePowerAllocator
from repro.core.policies import Policy, Problem1Policy, Problem2Policy
from repro.errors import InfeasibleProblemError
from repro.gpu.mig import MemoryOption, PartitionState
from repro.sim.sweep import scalability_power_sweep, scalability_sweep
from repro.workloads.pairs import CoRunPair

#: Benchmarks shown in the observation figures (one per class, as in §3).
OBSERVATION_KERNELS: tuple[str, ...] = ("kmeans", "stream", "dgemm", "hgemm")

#: Co-run workloads shown in Figure 6.  The paper's prose describes the
#: second one as (dgemm, dwt2d), i.e. CI-US2; CI-US1 is also included for
#: completeness.
FIGURE6_PAIRS: tuple[str, ...] = ("TI-MI2", "CI-US1", "CI-US2")


# ----------------------------------------------------------------------
# Observation figures (Section 3)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScalabilityCurve:
    """One scalability curve: relative performance per GPC count."""

    kernel: str
    label: str
    points: tuple[tuple[int, float], ...]

    def value_at(self, gpcs: int) -> float:
        """Relative performance at a specific GPC count."""
        for g, value in self.points:
            if g == gpcs:
                return value
        raise KeyError(f"no point for {gpcs} GPCs in curve {self.kernel}/{self.label}")


@dataclass(frozen=True)
class Figure4Data:
    """Figure 4: solo scalability, private vs shared, at 250 W."""

    power_cap_w: float
    curves: tuple[ScalabilityCurve, ...]

    def curve(self, kernel: str, option: MemoryOption) -> ScalabilityCurve:
        """The curve of one kernel and memory option."""
        label = option.value
        for curve in self.curves:
            if curve.kernel == kernel and curve.label == label:
                return curve
        raise KeyError(f"no curve for {kernel}/{label}")


def figure4_scalability_partitioning(
    context: EvaluationContext,
    kernels: Sequence[str] = OBSERVATION_KERNELS,
    power_cap_w: float = 250.0,
) -> Figure4Data:
    """Figure 4: scalability for both partitioning options at 250 W."""
    curves: list[ScalabilityCurve] = []
    for name in kernels:
        kernel = context.suite.get(name)
        points = scalability_sweep(
            context.simulator,
            kernel,
            gpc_counts=context.config.scalability_gpc_counts,
            power_cap_w=power_cap_w,
        )
        for option in (MemoryOption.PRIVATE, MemoryOption.SHARED):
            series = tuple(
                (p.gpcs, p.relative_performance)
                for p in points
                if p.option is option
            )
            curves.append(ScalabilityCurve(kernel=name, label=option.value, points=series))
    return Figure4Data(power_cap_w=power_cap_w, curves=tuple(curves))


@dataclass(frozen=True)
class Figure5Data:
    """Figure 5: solo scalability for several power caps (shared option)."""

    option: MemoryOption
    curves: tuple[ScalabilityCurve, ...]

    def curve(self, kernel: str, power_cap_w: float) -> ScalabilityCurve:
        """The curve of one kernel at one power cap."""
        label = f"{power_cap_w:.0f}W"
        for curve in self.curves:
            if curve.kernel == kernel and curve.label == label:
                return curve
        raise KeyError(f"no curve for {kernel}/{label}")


def figure5_scalability_power(
    context: EvaluationContext,
    kernels: Sequence[str] = OBSERVATION_KERNELS,
    option: MemoryOption = MemoryOption.SHARED,
) -> Figure5Data:
    """Figure 5: scalability while scaling the power cap from 150 W to 250 W."""
    curves: list[ScalabilityCurve] = []
    for name in kernels:
        kernel = context.suite.get(name)
        points = scalability_power_sweep(
            context.simulator,
            kernel,
            gpc_counts=context.config.scalability_gpc_counts,
            power_caps=context.config.power_caps,
            option=option,
        )
        for power_cap in context.config.power_caps:
            series = tuple(
                (p.gpcs, p.relative_performance)
                for p in points
                if p.power_cap_w == power_cap
            )
            curves.append(
                ScalabilityCurve(kernel=name, label=f"{power_cap:.0f}W", points=series)
            )
    return Figure5Data(option=option, curves=tuple(curves))


@dataclass(frozen=True)
class Figure6Data:
    """Figure 6: co-run throughput per partition state (S1–S4)."""

    power_cap_w: float
    throughput: Mapping[str, Mapping[str, float]]  # pair name -> state label -> WS

    def best_state(self, pair_name: str) -> str:
        """The state label with the highest measured throughput for a pair."""
        row = self.throughput[pair_name]
        return max(row, key=lambda label: row[label])

    def spread(self, pair_name: str) -> float:
        """Best-over-worst throughput ratio for a pair."""
        row = self.throughput[pair_name]
        return max(row.values()) / min(row.values())


def figure6_corun_throughput(
    context: EvaluationContext,
    pair_names: Sequence[str] = FIGURE6_PAIRS,
    power_cap_w: float = 250.0,
) -> Figure6Data:
    """Figure 6: impact of the partition/allocation state on throughput."""
    table: dict[str, dict[str, float]] = {}
    for pair_name in pair_names:
        row: dict[str, float] = {}
        for state in context.config.candidate_states:
            result = context.measured(pair_name, state, power_cap_w)
            row[state.label or state.describe()] = result.weighted_speedup
        table[pair_name] = row
    return Figure6Data(power_cap_w=power_cap_w, throughput=table)


# ----------------------------------------------------------------------
# Model accuracy (Figure 8 / Section 5.2.1)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AccuracyRow:
    """Estimated vs measured metrics for one (pair, state, power cap)."""

    pair: str
    state_label: str
    power_cap_w: float
    measured_throughput: float
    estimated_throughput: float
    measured_fairness: float
    estimated_fairness: float

    @property
    def throughput_error(self) -> float:
        """Relative throughput error."""
        return abs(self.estimated_throughput - self.measured_throughput) / self.measured_throughput

    @property
    def fairness_error(self) -> float:
        """Relative fairness error."""
        return abs(self.estimated_fairness - self.measured_fairness) / self.measured_fairness


@dataclass(frozen=True)
class Figure8Data:
    """Figure 8: estimated vs measured throughput/fairness at one power cap."""

    power_cap_w: float
    rows: tuple[AccuracyRow, ...]

    @property
    def throughput_mape_pct(self) -> float:
        """Average relative throughput error in percent."""
        return 100.0 * sum(r.throughput_error for r in self.rows) / len(self.rows)

    @property
    def fairness_mape_pct(self) -> float:
        """Average relative fairness error in percent."""
        return 100.0 * sum(r.fairness_error for r in self.rows) / len(self.rows)


def figure8_model_accuracy(
    context: EvaluationContext,
    power_cap_w: float = 250.0,
    pairs: Sequence[CoRunPair] | None = None,
) -> Figure8Data:
    """Figure 8: model accuracy across workloads and states at one cap."""
    rows: list[AccuracyRow] = []
    for pair in pairs if pairs is not None else context.pairs:
        counters = context.pair_profiles(pair)
        for state in context.config.candidate_states:
            estimated = context.model.predict_corun(list(counters), state, power_cap_w)
            measured = context.measured(pair, state, power_cap_w)
            rows.append(
                AccuracyRow(
                    pair=pair.name,
                    state_label=state.label or state.describe(),
                    power_cap_w=power_cap_w,
                    measured_throughput=measured.weighted_speedup,
                    estimated_throughput=float(sum(estimated)),
                    measured_fairness=measured.fairness,
                    estimated_fairness=float(min(estimated)),
                )
            )
    return Figure8Data(power_cap_w=power_cap_w, rows=tuple(rows))


# ----------------------------------------------------------------------
# Problem 1 (Figures 9 and 10)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadComparison:
    """Measured worst / proposal / best metric for one workload."""

    pair: str
    worst: float
    proposal: float
    best: float
    proposal_state: str
    proposal_power_cap_w: float
    fairness_violated: bool

    @property
    def proposal_vs_best(self) -> float:
        """How close the proposal is to the best (1.0 = optimal)."""
        return self.proposal / self.best if self.best > 0 else 0.0


@dataclass(frozen=True)
class ComparisonSummary:
    """A per-workload comparison plus its geometric means."""

    rows: tuple[WorkloadComparison, ...]

    @property
    def geomean_worst(self) -> float:
        """Geometric mean of the worst configuration's metric."""
        return geometric_mean([r.worst for r in self.rows])

    @property
    def geomean_proposal(self) -> float:
        """Geometric mean of the proposal's metric."""
        return geometric_mean([r.proposal for r in self.rows])

    @property
    def geomean_best(self) -> float:
        """Geometric mean of the best configuration's metric."""
        return geometric_mean([r.best for r in self.rows])

    @property
    def fairness_violations(self) -> int:
        """Number of workloads whose proposal violated the fairness constraint."""
        return sum(1 for r in self.rows if r.fairness_violated)

    def row(self, pair_name: str) -> WorkloadComparison:
        """The comparison row of one workload."""
        for row in self.rows:
            if row.pair == pair_name:
                return row
        raise KeyError(f"no comparison row for workload {pair_name!r}")


def _allocator(context: EvaluationContext) -> ResourcePowerAllocator:
    return ResourcePowerAllocator(
        context.model,
        candidate_states=context.config.candidate_states,
        power_caps=context.config.power_caps,
    )


def _decide(
    allocator: ResourcePowerAllocator,
    counters: Sequence,
    policy: Policy,
) -> AllocationDecision | None:
    """Run the allocator; return ``None`` when no candidate is predicted feasible."""
    try:
        return allocator.solve(list(counters), policy)
    except InfeasibleProblemError:
        return None


def _problem_comparison(
    context: EvaluationContext,
    policy_for_pair,
    metric,
    candidate_caps,
) -> ComparisonSummary:
    """Shared worst/proposal/best machinery for Problems 1 and 2.

    ``policy_for_pair`` builds the policy; ``metric`` maps a measured
    :class:`~repro.sim.results.CoRunResult` to the objective value;
    ``candidate_caps`` is the list of caps the measured best/worst may pick
    from (a single cap for Problem 1, the full grid for Problem 2).
    """
    allocator = _allocator(context)
    rows: list[WorkloadComparison] = []
    for pair in context.pairs:
        policy = policy_for_pair(pair)
        counters = context.pair_profiles(pair)
        # Measured candidates that satisfy the fairness constraint.
        feasible: list[tuple[PartitionState, float, float]] = []
        for state in context.config.candidate_states:
            for cap in candidate_caps:
                measured = context.measured(pair, state, cap)
                if measured.fairness > policy.alpha:
                    feasible.append((state, cap, metric(measured)))
        if not feasible:
            # No measured configuration satisfies the constraint; skip the
            # workload (cannot happen for the paper's alpha range).
            continue
        best = max(value for _, _, value in feasible)
        worst = min(value for _, _, value in feasible)
        decision = _decide(allocator, counters, policy)
        if decision is None:
            # The model predicts no feasible candidate; fall back to the
            # candidate with the best predicted fairness, as a real allocator
            # would, and record the (potential) violation below.
            evaluations = [
                allocator.evaluate_candidate(list(counters), state, cap, policy)
                for state in context.config.candidate_states
                for cap in policy.candidate_power_caps()
            ]
            chosen = max(evaluations, key=lambda e: e.predicted_fairness)
            chosen_state, chosen_cap = chosen.state, chosen.power_cap_w
        else:
            chosen_state, chosen_cap = decision.state, decision.power_cap_w
        proposal_measured = context.measured(pair, chosen_state, chosen_cap)
        rows.append(
            WorkloadComparison(
                pair=pair.name,
                worst=worst,
                proposal=metric(proposal_measured),
                best=best,
                proposal_state=chosen_state.label or chosen_state.describe(),
                proposal_power_cap_w=chosen_cap,
                fairness_violated=proposal_measured.fairness <= policy.alpha,
            )
        )
    return ComparisonSummary(rows=tuple(rows))


@dataclass(frozen=True)
class Figure9Data:
    """Figure 9: Problem 1 throughput comparison at one cap and alpha."""

    power_cap_w: float
    alpha: float
    comparison: ComparisonSummary


def figure9_problem1(
    context: EvaluationContext,
    power_cap_w: float | None = None,
    alpha: float | None = None,
) -> Figure9Data:
    """Figure 9: worst / proposal / best throughput per workload (Problem 1)."""
    cap = power_cap_w if power_cap_w is not None else context.config.problem1_power_cap_w
    fairness_alpha = alpha if alpha is not None else context.config.alpha
    comparison = _problem_comparison(
        context,
        policy_for_pair=lambda pair: Problem1Policy(power_cap_w=cap, alpha=fairness_alpha),
        metric=lambda result: result.weighted_speedup,
        candidate_caps=(cap,),
    )
    return Figure9Data(power_cap_w=cap, alpha=fairness_alpha, comparison=comparison)


@dataclass(frozen=True)
class Figure10Data:
    """Figure 10: Problem 1 geomean throughput as a function of the power cap."""

    alpha: float
    per_power_cap: Mapping[float, ComparisonSummary]

    def geomeans(self) -> tuple[tuple[float, float, float, float], ...]:
        """Rows of (power cap, geomean worst, geomean proposal, geomean best)."""
        return tuple(
            (
                cap,
                summary.geomean_worst,
                summary.geomean_proposal,
                summary.geomean_best,
            )
            for cap, summary in sorted(self.per_power_cap.items())
        )


def figure10_problem1_power_sweep(
    context: EvaluationContext,
    alpha: float | None = None,
) -> Figure10Data:
    """Figure 10: Problem 1 solved at every power cap of the grid."""
    fairness_alpha = alpha if alpha is not None else context.config.alpha
    per_cap: dict[float, ComparisonSummary] = {}
    for cap in context.config.power_caps:
        per_cap[float(cap)] = _problem_comparison(
            context,
            policy_for_pair=lambda pair, cap=cap: Problem1Policy(
                power_cap_w=cap, alpha=fairness_alpha
            ),
            metric=lambda result: result.weighted_speedup,
            candidate_caps=(cap,),
        )
    return Figure10Data(alpha=fairness_alpha, per_power_cap=per_cap)


# ----------------------------------------------------------------------
# Problem 2 (Figures 11, 12 and 13)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Figure11Data:
    """Figure 11: Problem 2 energy-efficiency comparison per alpha."""

    per_alpha: Mapping[float, ComparisonSummary]


def figure11_problem2_efficiency(
    context: EvaluationContext,
    alphas: Sequence[float] | None = None,
) -> Figure11Data:
    """Figure 11: worst / proposal / best energy efficiency per workload."""
    alpha_values = tuple(alphas) if alphas is not None else context.config.problem2_alphas
    per_alpha: dict[float, ComparisonSummary] = {}
    for alpha in alpha_values:
        per_alpha[float(alpha)] = _problem_comparison(
            context,
            policy_for_pair=lambda pair, alpha=alpha: Problem2Policy(
                alpha=alpha, power_caps=context.config.power_caps
            ),
            metric=lambda result: result.energy_efficiency,
            candidate_caps=context.config.power_caps,
        )
    return Figure11Data(per_alpha=per_alpha)


@dataclass(frozen=True)
class PowerSelectionRow:
    """Power caps selected by the worst / proposal / best configuration."""

    pair: str
    worst_power_w: float
    proposal_power_w: float
    best_power_w: float


@dataclass(frozen=True)
class Figure12Data:
    """Figure 12: power-cap selections of Problem 2, per alpha."""

    per_alpha: Mapping[float, tuple[PowerSelectionRow, ...]]


def figure12_problem2_power_selection(
    context: EvaluationContext,
    alphas: Sequence[float] | None = None,
) -> Figure12Data:
    """Figure 12: which power cap each strategy selects, per workload."""
    alpha_values = tuple(alphas) if alphas is not None else context.config.problem2_alphas
    allocator = _allocator(context)
    per_alpha: dict[float, tuple[PowerSelectionRow, ...]] = {}
    for alpha in alpha_values:
        rows: list[PowerSelectionRow] = []
        policy = Problem2Policy(alpha=alpha, power_caps=context.config.power_caps)
        for pair in context.pairs:
            counters = context.pair_profiles(pair)
            feasible: list[tuple[float, float]] = []  # (efficiency, cap)
            for state in context.config.candidate_states:
                for cap in context.config.power_caps:
                    measured = context.measured(pair, state, cap)
                    if measured.fairness > alpha:
                        feasible.append((measured.energy_efficiency, float(cap)))
            if not feasible:
                continue
            best_power = max(feasible)[1]
            worst_power = min(feasible)[1]
            decision = _decide(allocator, counters, policy)
            if decision is None:
                proposal_power = max(context.config.power_caps)
            else:
                proposal_power = decision.power_cap_w
            rows.append(
                PowerSelectionRow(
                    pair=pair.name,
                    worst_power_w=worst_power,
                    proposal_power_w=proposal_power,
                    best_power_w=best_power,
                )
            )
        per_alpha[float(alpha)] = tuple(rows)
    return Figure12Data(per_alpha=per_alpha)


@dataclass(frozen=True)
class Figure13Data:
    """Figure 13: geomean energy efficiency as a function of alpha."""

    per_alpha: Mapping[float, ComparisonSummary]

    def geomeans(self) -> tuple[tuple[float, float, float, float], ...]:
        """Rows of (alpha, geomean worst, geomean proposal, geomean best)."""
        return tuple(
            (
                alpha,
                summary.geomean_worst,
                summary.geomean_proposal,
                summary.geomean_best,
            )
            for alpha, summary in sorted(self.per_alpha.items())
        )


def figure13_efficiency_vs_alpha(
    context: EvaluationContext,
    alphas: Sequence[float] | None = None,
) -> Figure13Data:
    """Figure 13: Problem 2 geomean energy efficiency over the alpha sweep."""
    alpha_values = tuple(alphas) if alphas is not None else context.config.alpha_sweep
    per_alpha: dict[float, ComparisonSummary] = {}
    for alpha in alpha_values:
        per_alpha[float(alpha)] = _problem_comparison(
            context,
            policy_for_pair=lambda pair, alpha=alpha: Problem2Policy(
                alpha=alpha, power_caps=context.config.power_caps
            ),
            metric=lambda result: result.energy_efficiency,
            candidate_caps=context.config.power_caps,
        )
    return Figure13Data(per_alpha=per_alpha)
