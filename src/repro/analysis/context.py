"""Shared evaluation context.

Regenerating the paper's figures needs three expensive-ish ingredients: a
simulator, a trained model, and the measured co-run grid (every Table 8 pair
on every state and power cap).  :class:`EvaluationContext` builds them once
and caches the measured grid so that the individual figure generators stay
cheap and consistent with each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import DEFAULT_CONFIG, EvaluationConfig
from repro.core.model import LinearPerfModel
from repro.core.workflow import PaperWorkflow
from repro.sim.counters import CounterVector
from repro.sim.engine import PerformanceSimulator
from repro.sim.results import CoRunResult
from repro.workloads.pairs import CORUN_PAIRS, CoRunPair, corun_pair
from repro.workloads.suite import BenchmarkSuite, DEFAULT_SUITE


@dataclass
class EvaluationContext:
    """Trained workflow + cached measurements for the evaluation harness."""

    workflow: PaperWorkflow
    config: EvaluationConfig = field(default_factory=lambda: DEFAULT_CONFIG)
    _measured: dict[tuple[str, tuple, float], CoRunResult] = field(default_factory=dict)
    _profiles: dict[str, CounterVector] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        config: EvaluationConfig = DEFAULT_CONFIG,
        suite: BenchmarkSuite = DEFAULT_SUITE,
        simulator: PerformanceSimulator | None = None,
    ) -> "EvaluationContext":
        """Build a context: construct the workflow and run offline training."""
        workflow = PaperWorkflow(
            simulator=simulator,
            suite=suite,
            candidate_states=config.candidate_states,
            power_caps=config.power_caps,
        )
        workflow.train()
        return cls(workflow=workflow, config=config)

    # ------------------------------------------------------------------
    @property
    def simulator(self) -> PerformanceSimulator:
        """The simulator used for both training and "measured" runs."""
        return self.workflow.simulator

    @property
    def model(self) -> LinearPerfModel:
        """The trained performance model."""
        return self.workflow.model

    @property
    def suite(self) -> BenchmarkSuite:
        """The benchmark suite in use."""
        return self.workflow.suite

    @property
    def pairs(self) -> tuple[CoRunPair, ...]:
        """The Table 8 co-run workloads."""
        return CORUN_PAIRS

    # ------------------------------------------------------------------
    def profile(self, name: str) -> CounterVector:
        """Profiled counters of one benchmark (cached)."""
        if name not in self._profiles:
            self._profiles[name] = self.simulator.profile(self.suite.get(name))
        return self._profiles[name]

    def pair_profiles(self, pair: CoRunPair | str) -> tuple[CounterVector, CounterVector]:
        """Profiled counters of both applications of a pair."""
        if isinstance(pair, str):
            pair = corun_pair(pair)
        return (self.profile(pair.app1), self.profile(pair.app2))

    def measured(self, pair: CoRunPair | str, state, power_cap_w: float) -> CoRunResult:
        """Measured ("simulated ground truth") co-run result, cached."""
        if isinstance(pair, str):
            pair = corun_pair(pair)
        key = (pair.name, state.key(), float(power_cap_w))
        if key not in self._measured:
            kernels = list(pair.kernels(self.suite))
            self._measured[key] = self.simulator.co_run(kernels, state, power_cap_w)
        return self._measured[key]

    def measured_grid(self, pair: CoRunPair | str) -> dict[tuple[tuple, float], CoRunResult]:
        """Measured results for one pair over the whole (state × cap) grid."""
        if isinstance(pair, str):
            pair = corun_pair(pair)
        grid: dict[tuple[tuple, float], CoRunResult] = {}
        for state in self.config.candidate_states:
            for power_cap in self.config.power_caps:
                grid[(state.key(), float(power_cap))] = self.measured(pair, state, power_cap)
        return grid
