"""Regeneration of the paper's workload tables (Tables 6, 7 and 8)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.analysis.context import EvaluationContext
from repro.workloads.classification import (
    EXPECTED_CLASSIFICATION,
    ClassificationReport,
    classify_kernel,
)
from repro.workloads.gemm import GEMM_VARIANTS, gemm_iterations, gemm_kernel
from repro.workloads.kernel import WorkloadClass
from repro.workloads.pairs import CORUN_PAIRS, CoRunPair


@dataclass(frozen=True)
class Table6Row:
    """One GEMM variant of Table 6, with the derived kernel-model numbers."""

    name: str
    specification: str
    pipe: str
    iterations: int
    compute_time_full_s: float
    memory_time_full_s: float


def table6_gemm_variants() -> tuple[Table6Row, ...]:
    """Table 6: the nine GEMM variants and their derived kernel models."""
    rows: list[Table6Row] = []
    for name, variant in GEMM_VARIANTS.items():
        kernel = gemm_kernel(name)
        rows.append(
            Table6Row(
                name=name,
                specification=variant.description,
                pipe=variant.pipe.value,
                iterations=gemm_iterations(variant),
                compute_time_full_s=kernel.compute_time_full_s,
                memory_time_full_s=kernel.memory_time_full_s,
            )
        )
    return tuple(rows)


@dataclass(frozen=True)
class Table7Data:
    """Table 7: measured benchmark classification vs the paper's."""

    reports: Mapping[str, ClassificationReport]

    @property
    def by_class(self) -> Mapping[WorkloadClass, tuple[str, ...]]:
        """Benchmarks grouped by the measured class."""
        grouped: dict[WorkloadClass, list[str]] = {cls: [] for cls in WorkloadClass}
        for name in sorted(self.reports):
            grouped[self.reports[name].workload_class].append(name)
        return {cls: tuple(names) for cls, names in grouped.items()}

    @property
    def mismatches(self) -> tuple[str, ...]:
        """Benchmarks whose measured class differs from the paper's Table 7."""
        return tuple(
            name
            for name in sorted(self.reports)
            if name in EXPECTED_CLASSIFICATION
            and self.reports[name].workload_class is not EXPECTED_CLASSIFICATION[name]
        )

    @property
    def accuracy(self) -> float:
        """Fraction of benchmarks classified identically to the paper."""
        relevant = [name for name in self.reports if name in EXPECTED_CLASSIFICATION]
        if not relevant:
            return 1.0
        matches = sum(
            1
            for name in relevant
            if self.reports[name].workload_class is EXPECTED_CLASSIFICATION[name]
        )
        return matches / len(relevant)


def table7_classification(context: EvaluationContext) -> Table7Data:
    """Table 7: run the paper's classification rule over the whole suite."""
    reports = {
        name: classify_kernel(context.suite.get(name), context.simulator)
        for name in context.suite.names()
    }
    return Table7Data(reports=reports)


@dataclass(frozen=True)
class Table8Data:
    """Table 8: the co-run workload definitions."""

    pairs: tuple[CoRunPair, ...]

    @property
    def names(self) -> tuple[str, ...]:
        """All workload names in order."""
        return tuple(pair.name for pair in self.pairs)

    def class_combinations(self) -> tuple[tuple[WorkloadClass, WorkloadClass], ...]:
        """The class combination of each pair, in order."""
        return tuple((pair.class1, pair.class2) for pair in self.pairs)


def table8_corun_pairs() -> Table8Data:
    """Table 8: the eighteen co-run workloads used by the evaluation."""
    return Table8Data(pairs=CORUN_PAIRS)
