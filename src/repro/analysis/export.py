"""Export of evaluation data to CSV / JSON.

The benchmark harness prints tables; anyone who wants to *plot* the
reproduction against the paper needs the raw series in machine-readable
form.  This module flattens the figure dataclasses into rows and writes
them as CSV or JSON, and can dump a whole evaluation bundle in one call.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Sequence

from repro.analysis.context import EvaluationContext
from repro.analysis.errors import model_error_summary
from repro.analysis.figures import (
    ComparisonSummary,
    Figure4Data,
    Figure5Data,
    Figure6Data,
    Figure8Data,
    figure4_scalability_partitioning,
    figure5_scalability_power,
    figure6_corun_throughput,
    figure8_model_accuracy,
    figure9_problem1,
    figure11_problem2_efficiency,
)
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ExportedTable:
    """A flattened table: column names plus value rows."""

    name: str
    columns: tuple[str, ...]
    rows: tuple[tuple, ...]

    def __post_init__(self) -> None:
        for row in self.rows:
            if len(row) != len(self.columns):
                raise ConfigurationError(
                    f"table {self.name!r}: row width {len(row)} does not match "
                    f"{len(self.columns)} columns"
                )

    # ------------------------------------------------------------------
    def to_csv(self, path: str | Path) -> Path:
        """Write the table as a CSV file and return its path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self.columns)
            writer.writerows(self.rows)
        return path

    def to_records(self) -> list[dict]:
        """The table as a list of dictionaries (JSON friendly)."""
        return [dict(zip(self.columns, row)) for row in self.rows]


# ----------------------------------------------------------------------
# Flattening of figure data
# ----------------------------------------------------------------------
def scalability_table(data: Figure4Data | Figure5Data, name: str) -> ExportedTable:
    """Flatten Figure 4/5-style scalability curves."""
    rows = [
        (curve.kernel, curve.label, gpcs, value)
        for curve in data.curves
        for gpcs, value in curve.points
    ]
    return ExportedTable(
        name=name,
        columns=("kernel", "series", "gpcs", "relative_performance"),
        rows=tuple(rows),
    )


def corun_throughput_table(data: Figure6Data, name: str = "figure6") -> ExportedTable:
    """Flatten Figure 6 (throughput per state)."""
    rows = [
        (pair, state_label, value)
        for pair, per_state in data.throughput.items()
        for state_label, value in per_state.items()
    ]
    return ExportedTable(name=name, columns=("workload", "state", "weighted_speedup"), rows=tuple(rows))


def accuracy_table(data: Figure8Data, name: str = "figure8") -> ExportedTable:
    """Flatten Figure 8 (estimated vs measured)."""
    rows = [
        (
            row.pair,
            row.state_label,
            row.power_cap_w,
            row.measured_throughput,
            row.estimated_throughput,
            row.measured_fairness,
            row.estimated_fairness,
        )
        for row in data.rows
    ]
    return ExportedTable(
        name=name,
        columns=(
            "workload",
            "state",
            "power_cap_w",
            "measured_throughput",
            "estimated_throughput",
            "measured_fairness",
            "estimated_fairness",
        ),
        rows=tuple(rows),
    )


def comparison_table(summary: ComparisonSummary, name: str) -> ExportedTable:
    """Flatten a Figure 9/11-style worst/proposal/best comparison."""
    rows = [
        (
            row.pair,
            row.worst,
            row.proposal,
            row.best,
            row.proposal_state,
            row.proposal_power_cap_w,
            row.fairness_violated,
        )
        for row in summary.rows
    ]
    return ExportedTable(
        name=name,
        columns=("workload", "worst", "proposal", "best", "proposal_state", "proposal_power_w", "violated"),
        rows=tuple(rows),
    )


# ----------------------------------------------------------------------
# Bundle export
# ----------------------------------------------------------------------
def export_evaluation_bundle(
    context: EvaluationContext,
    directory: str | Path,
    figures: Sequence[int] = (4, 5, 6, 8, 9, 11),
) -> Mapping[str, Path]:
    """Export the selected figures' data as CSV files plus a JSON manifest.

    Returns a mapping from artifact name to the written path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: dict[str, Path] = {}

    tables: list[ExportedTable] = []
    if 4 in figures:
        tables.append(scalability_table(figure4_scalability_partitioning(context), "figure4"))
    if 5 in figures:
        tables.append(scalability_table(figure5_scalability_power(context), "figure5"))
    if 6 in figures:
        tables.append(corun_throughput_table(figure6_corun_throughput(context)))
    if 8 in figures:
        tables.append(accuracy_table(figure8_model_accuracy(context)))
    if 9 in figures:
        tables.append(comparison_table(figure9_problem1(context).comparison, "figure9"))
    if 11 in figures:
        data = figure11_problem2_efficiency(context)
        for alpha, summary in sorted(data.per_alpha.items()):
            tables.append(comparison_table(summary, f"figure11_alpha{alpha:.2f}"))

    for table in tables:
        written[table.name] = table.to_csv(directory / f"{table.name}.csv")

    errors = model_error_summary(context)
    manifest = {
        "device": context.simulator.spec.name,
        "power_caps_w": list(context.config.power_caps),
        "candidate_states": [state.describe() for state in context.config.candidate_states],
        "model_error": {
            "throughput_mape_pct": errors.throughput_mape_pct,
            "fairness_mape_pct": errors.fairness_mape_pct,
            "n_samples": errors.n_samples,
        },
        "artifacts": {name: str(path.name) for name, path in written.items()},
    }
    manifest_path = directory / "manifest.json"
    manifest_path.write_text(json.dumps(manifest, indent=2, sort_keys=True))
    written["manifest"] = manifest_path
    return written
