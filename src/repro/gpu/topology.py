"""Chip topology: GPCs, SMs, and LLC/HBM slices.

MIG partitions the GPU along two axes: GPCs (compute) and LLC/HBM slices
(memory).  This module provides a small, explicit representation of that
layout so that the MIG manager can do ownership accounting (which GPC /
slice belongs to which GPU Instance) and so the NVML facade can answer
device-query style questions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PartitioningError, SpecificationError
from repro.gpu.spec import A100_SPEC, GPUSpec


@dataclass
class GPCUnit:
    """One Graphics Processing Cluster on the die.

    Attributes
    ----------
    index:
        Physical index of the GPC (0-based).
    n_sms:
        Number of SMs inside the GPC.
    enabled:
        Whether the GPC is usable.  When MIG is enabled on an A100 one GPC
        is disabled by the hardware; the topology reflects that.
    owner:
        Identifier of the GPU Instance currently owning this GPC, or
        ``None`` if unallocated.
    """

    index: int
    n_sms: int
    enabled: bool = True
    owner: int | None = None

    @property
    def free(self) -> bool:
        """Whether the GPC is enabled and not owned by any GPU Instance."""
        return self.enabled and self.owner is None


@dataclass
class MemorySlice:
    """One LLC + HBM slice (an eighth of the memory system on an A100)."""

    index: int
    llc_mb: float
    hbm_gb: float
    bandwidth_gbs: float
    owner: int | None = None

    @property
    def free(self) -> bool:
        """Whether the slice is not owned by any GPU Instance."""
        return self.owner is None


@dataclass
class ChipTopology:
    """Mutable ownership map of the chip's GPCs and memory slices.

    The topology is the single source of truth for "who owns what" while
    MIG instances are being created and destroyed.  The MIG manager performs
    all allocation through :meth:`claim_gpcs` / :meth:`claim_slices` and
    releases resources through :meth:`release_owner`.
    """

    spec: GPUSpec = field(default_factory=lambda: A100_SPEC)
    gpcs: list[GPCUnit] = field(init=False)
    slices: list[MemorySlice] = field(init=False)
    mig_enabled: bool = field(init=False, default=False)

    def __post_init__(self) -> None:
        self.gpcs = [
            GPCUnit(index=i, n_sms=self.spec.sms_per_gpc)
            for i in range(self.spec.n_gpcs)
        ]
        per_slice_llc = self.spec.l2_cache_mb / self.spec.n_mem_slices
        per_slice_hbm = self.spec.hbm_capacity_gb / self.spec.n_mem_slices
        per_slice_bw = self.spec.dram_bandwidth_gbs / self.spec.n_mem_slices
        self.slices = [
            MemorySlice(
                index=i,
                llc_mb=per_slice_llc,
                hbm_gb=per_slice_hbm,
                bandwidth_gbs=per_slice_bw,
            )
            for i in range(self.spec.n_mem_slices)
        ]

    # ------------------------------------------------------------------
    # MIG mode handling
    # ------------------------------------------------------------------
    def set_mig_mode(self, enabled: bool) -> None:
        """Enable or disable MIG mode.

        Enabling MIG disables ``n_gpcs - mig_gpcs`` GPCs (one on the A100);
        disabling MIG requires all instances to have been destroyed first.
        """
        if enabled == self.mig_enabled:
            return
        if any(g.owner is not None for g in self.gpcs) or any(
            s.owner is not None for s in self.slices
        ):
            raise PartitioningError(
                "cannot toggle MIG mode while GPU/Compute Instances exist"
            )
        self.mig_enabled = enabled
        n_disabled = self.spec.n_gpcs - self.spec.mig_gpcs
        for i, gpc in enumerate(self.gpcs):
            gpc.enabled = not (enabled and i >= self.spec.n_gpcs - n_disabled)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def usable_gpcs(self) -> int:
        """Number of GPCs that are enabled in the current mode."""
        return sum(1 for g in self.gpcs if g.enabled)

    @property
    def free_gpcs(self) -> int:
        """Number of enabled GPCs not owned by any GPU Instance."""
        return sum(1 for g in self.gpcs if g.free)

    @property
    def free_slices(self) -> int:
        """Number of memory slices not owned by any GPU Instance."""
        return sum(1 for s in self.slices if s.free)

    def owned_gpcs(self, owner: int) -> list[GPCUnit]:
        """GPCs owned by GPU Instance ``owner``."""
        return [g for g in self.gpcs if g.owner == owner]

    def owned_slices(self, owner: int) -> list[MemorySlice]:
        """Memory slices owned by GPU Instance ``owner``."""
        return [s for s in self.slices if s.owner == owner]

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def claim_gpcs(self, owner: int, count: int) -> list[GPCUnit]:
        """Assign ``count`` free GPCs to GPU Instance ``owner``."""
        if count <= 0:
            raise SpecificationError(f"GPC count must be positive, got {count}")
        free = [g for g in self.gpcs if g.free]
        if len(free) < count:
            raise PartitioningError(
                f"requested {count} GPCs but only {len(free)} are free"
            )
        claimed = free[:count]
        for gpc in claimed:
            gpc.owner = owner
        return claimed

    def claim_slices(self, owner: int, count: int) -> list[MemorySlice]:
        """Assign ``count`` free memory slices to GPU Instance ``owner``."""
        if count <= 0:
            raise SpecificationError(f"slice count must be positive, got {count}")
        free = [s for s in self.slices if s.free]
        if len(free) < count:
            raise PartitioningError(
                f"requested {count} memory slices but only {len(free)} are free"
            )
        claimed = free[:count]
        for mem_slice in claimed:
            mem_slice.owner = owner
        return claimed

    def release_owner(self, owner: int) -> None:
        """Release every GPC and memory slice owned by ``owner``."""
        for gpc in self.gpcs:
            if gpc.owner == owner:
                gpc.owner = None
        for mem_slice in self.slices:
            if mem_slice.owner == owner:
                mem_slice.owner = None

    def reset(self) -> None:
        """Release all resources (instances must be torn down by the caller)."""
        for gpc in self.gpcs:
            gpc.owner = None
        for mem_slice in self.slices:
            mem_slice.owner = None
