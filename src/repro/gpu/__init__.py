"""Simulated GPU hardware substrate.

This subpackage models the pieces of an NVIDIA A100-class GPU that the
paper's methodology depends on:

* :mod:`repro.gpu.spec` — the static hardware specification (GPCs, memory
  slices, pipe throughputs, power-model parameters).
* :mod:`repro.gpu.topology` — the GPC/SM/LLC-slice layout of the chip.
* :mod:`repro.gpu.clocks` — the DVFS (clock/voltage scaling) model.
* :mod:`repro.gpu.power` — the chip power model and the power-cap governor
  that throttles the clock to honour a chip-level power limit.
* :mod:`repro.gpu.mig` — the MIG (Multi-Instance GPU) partitioning model:
  GPU Instances, Compute Instances, memory-slice accounting, and the
  partition states (S1–S4) explored by the paper.
* :mod:`repro.gpu.nvml` — a small NVML / ``nvidia-smi``-like facade so that
  higher layers interact with the simulated device the same way the paper's
  tooling interacts with a real A100.
"""

from repro.gpu.spec import (
    A100_SPEC,
    A30_SPEC,
    GPU_SPECS,
    GPUSpec,
    H100_SPEC,
    Pipe,
    PipeThroughput,
    spec_by_name,
)
from repro.gpu.clocks import DVFSModel
from repro.gpu.power import GPCLoad, InstanceLoad, PowerBreakdown, PowerModel
from repro.gpu.mig import (
    CORUN_STATES,
    GPC_TO_MEM_SLICES,
    VALID_INSTANCE_SIZES,
    ComputeInstance,
    GPUInstance,
    InstanceAllocation,
    MemoryOption,
    MIGManager,
    PartitionState,
    S1,
    S2,
    S3,
    S4,
    enumerate_corun_states,
    enumerate_partition_states,
    solo_state,
    solo_states,
)
from repro.gpu.nvml import SimulatedNVML, SimulatedSMI
from repro.gpu.topology import ChipTopology, GPCUnit, MemorySlice

__all__ = [
    "A100_SPEC",
    "A30_SPEC",
    "H100_SPEC",
    "GPU_SPECS",
    "spec_by_name",
    "GPUSpec",
    "Pipe",
    "PipeThroughput",
    "DVFSModel",
    "PowerModel",
    "PowerBreakdown",
    "GPCLoad",
    "InstanceLoad",
    "MemoryOption",
    "PartitionState",
    "InstanceAllocation",
    "MIGManager",
    "GPUInstance",
    "ComputeInstance",
    "GPC_TO_MEM_SLICES",
    "VALID_INSTANCE_SIZES",
    "CORUN_STATES",
    "S1",
    "S2",
    "S3",
    "S4",
    "enumerate_corun_states",
    "enumerate_partition_states",
    "solo_state",
    "solo_states",
    "SimulatedNVML",
    "SimulatedSMI",
    "ChipTopology",
    "GPCUnit",
    "MemorySlice",
]
