"""MIG (Multi-Instance GPU) partitioning model.

MIG partitions an A100 hierarchically:

* **GPU Instances (GIs)** own GPCs *and* LLC/HBM memory slices.  Memory is
  completely isolated between different GIs.
* **Compute Instances (CIs)** live inside a GI and own a subset of its GPCs.
  All CIs of one GI *share* the GI's LLC/HBM resources.

The paper exploits exactly this hierarchy to expose two memory options for a
pair of co-located applications (Figures 2 and 3):

* **private** — one GI per application: no interference, but each
  application only sees its own memory slices (less bandwidth).
* **shared** — one large GI containing both applications as CIs: both can
  use the full chip bandwidth, at the cost of LLC/HBM interference.

This module provides two layers:

* :class:`PartitionState` — an immutable *description* of a partitioning
  decision (how many GPCs per application + the memory option).  This is the
  ``S`` variable of the paper's optimization problems; the four states
  explored in the evaluation are exported as :data:`S1` … :data:`S4`.
* :class:`MIGManager` — a stateful manager that actually creates/destroys
  GIs and CIs against a :class:`~repro.gpu.topology.ChipTopology`, mimicking
  the ``nvidia-smi mig`` workflow (including UUIDs that a job scheduler
  would pass via ``CUDA_VISIBLE_DEVICES``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from repro.errors import PartitioningError, SpecificationError
from repro.gpu.scheme import MemoryOption
from repro.gpu.spec import A100_SPEC, GPU_SPECS, GPUSpec
from repro.gpu.topology import ChipTopology

#: Memory slices granted to a GPU Instance of a given GPC size on the A100
#: (the paper, Section 3: "when we utilize 1, 2, 3, 4, or 7 GPCs with the
#: private option, 1, 2, 4, 4, or 8 LLC/HBM modules are assigned").
#: Aliases the A100 spec's profile table so there is one source of truth.
GPC_TO_MEM_SLICES: Mapping[int, int] = A100_SPEC.mig_mem_slices

#: Partition sizes any built-in :class:`~repro.gpu.spec.GPUSpec` offers —
#: the union over the spec registry (no 5- or 6-GPC instances exist on any
#: built-in part; the 8 comes from the MI300X's full-chip SPX mode).
#: Per-spec validity is checked by :meth:`PartitionState.validate_against`.
VALID_INSTANCE_SIZES: tuple[int, ...] = tuple(
    sorted({size for spec in GPU_SPECS.values() for size in spec.mig_instance_sizes})
)


def _normalize_groups(groups: Sequence[int]) -> tuple[int, ...]:
    """Relabel group ids to be 0-based in order of first appearance."""
    mapping: dict[int, int] = {}
    for group in groups:
        if group not in mapping:
            mapping[group] = len(mapping)
    return tuple(mapping[group] for group in groups)


@dataclass(frozen=True)
class InstanceAllocation:
    """Resources visible to one application under a partition state.

    Attributes
    ----------
    gpcs:
        Number of GPCs allocated to the application.
    mem_slices:
        Number of LLC/HBM slices whose bandwidth the application can use.
        Under the shared option this is the full chip's slice count.
    shared_memory:
        ``True`` when the LLC/HBM resources are shared with co-located
        applications (shared option), ``False`` when they are private.
    """

    gpcs: int
    mem_slices: int
    shared_memory: bool

    def __post_init__(self) -> None:
        if self.gpcs not in VALID_INSTANCE_SIZES:
            raise SpecificationError(
                f"{self.gpcs} GPCs is not a valid instance size; "
                f"valid sizes are {VALID_INSTANCE_SIZES}"
            )
        if self.mem_slices <= 0:
            raise SpecificationError("mem_slices must be positive")


@dataclass(frozen=True)
class PartitionState:
    """A resource-partitioning and job-allocation decision (the ``S`` knob).

    Attributes
    ----------
    gpc_allocations:
        GPCs allocated to each co-located application, in application order
        (``gpc_allocations[i]`` belongs to ``App(i+1)``).  A single-element
        tuple describes a solo run on a partition.
    option:
        The LLC/HBM sharing option.
    label:
        Optional short name (``"S1"`` … ``"S4"`` for the paper's states).
    gi_groups:
        Only for the *mixed* option: ``gi_groups[i]`` is the GPU-Instance
        group application ``i`` belongs to.  Group ids must be 0-based and
        numbered in order of first appearance; at least two groups must
        exist and at least one group must hold two or more applications
        (otherwise the state is simply private or shared).
    """

    gpc_allocations: tuple[int, ...]
    option: MemoryOption
    label: str | None = None
    gi_groups: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if not self.gpc_allocations:
            raise SpecificationError("at least one application allocation is required")
        for gpcs in self.gpc_allocations:
            if gpcs not in VALID_INSTANCE_SIZES:
                raise SpecificationError(
                    f"{gpcs} GPCs is not a valid instance size; "
                    f"valid sizes are {VALID_INSTANCE_SIZES}"
                )
        option = MemoryOption(self.option)
        object.__setattr__(self, "option", option)
        if option is MemoryOption.MIXED:
            self._validate_gi_groups()
        elif self.gi_groups is not None:
            raise SpecificationError(
                f"gi_groups is only meaningful for the mixed option, not {option.value}"
            )

    def _validate_gi_groups(self) -> None:
        groups = self.gi_groups
        if groups is None:
            raise SpecificationError("the mixed option requires gi_groups")
        if len(groups) != len(self.gpc_allocations):
            raise SpecificationError(
                f"gi_groups has {len(groups)} entries for "
                f"{len(self.gpc_allocations)} applications"
            )
        if tuple(groups) != _normalize_groups(groups):
            raise SpecificationError(
                f"gi_groups must use 0-based ids in order of first appearance, got {groups}"
            )
        n_groups = max(groups) + 1
        largest = max(groups.count(group) for group in range(n_groups))
        if n_groups < 2 or largest < 2:
            raise SpecificationError(
                f"a mixed state needs >= 2 GPU Instances with >= 1 multi-application "
                f"instance (got groups {groups}); use private or shared instead"
            )

    # ------------------------------------------------------------------
    @property
    def n_apps(self) -> int:
        """Number of co-located applications described by this state."""
        return len(self.gpc_allocations)

    @property
    def total_gpcs(self) -> int:
        """Total number of GPCs consumed by the state."""
        return sum(self.gpc_allocations)

    @property
    def is_solo(self) -> bool:
        """Whether this state describes a single application."""
        return self.n_apps == 1

    def groups(self) -> tuple[tuple[int, ...], ...]:
        """Application indices per GPU Instance, in GI order.

        Under the private option every application lives in its own GI;
        under the shared option one GI hosts everyone; under the mixed
        option the grouping follows ``gi_groups``.
        """
        if self.option is MemoryOption.PRIVATE:
            return tuple((i,) for i in range(self.n_apps))
        if self.option is MemoryOption.SHARED:
            return (tuple(range(self.n_apps)),)
        assert self.gi_groups is not None
        n_groups = max(self.gi_groups) + 1
        return tuple(
            tuple(i for i, g in enumerate(self.gi_groups) if g == group)
            for group in range(n_groups)
        )

    def group_of(self, index: int) -> tuple[int, ...]:
        """The application indices sharing a GPU Instance with ``index``."""
        for members in self.groups():
            if index in members:
                return members
        raise IndexError(f"application index {index} out of range")

    def interference_partners(self, index: int) -> tuple[int, ...]:
        """Application indices whose interference term couples to ``index``.

        For the private and shared options this is every co-runner — the
        paper's pairwise model, where the private coefficients capture the
        residual power coupling between isolated instances.  For the mixed
        option an application sharing a GPU Instance interferes (cache,
        bandwidth) only with its GI-mates; an application alone in its GI
        behaves exactly like a private placement and couples to everyone
        through its private-option coefficients.
        """
        if not (0 <= index < self.n_apps):
            raise IndexError(f"application index {index} out of range")
        if self.option is MemoryOption.MIXED:
            members = self.group_of(index)
            if len(members) > 1:
                return tuple(j for j in members if j != index)
        return tuple(j for j in range(self.n_apps) if j != index)

    def effective_option(self, index: int) -> MemoryOption:
        """The memory option application ``index`` actually experiences.

        In a mixed state an application alone in its GI behaves like the
        private option, one sharing a GI like the shared option — this is
        what the per-application model keys are derived from.
        """
        if self.option is not MemoryOption.MIXED:
            return self.option
        members = self.group_of(index)
        return MemoryOption.SHARED if len(members) > 1 else MemoryOption.PRIVATE

    def gi_size_for_group(self, members: Sequence[int], spec: GPUSpec) -> int:
        """Compute units of the partition hosting ``members`` on ``spec``.

        Delegates to the spec's partition scheme: under the coupled MIG
        scheme a single-application private GI matches the application's
        size, the shared option uses the full MIG partition, and a mixed
        multi-application GI uses the smallest instance profile that fits
        the group; an independent-axes scheme sizes groups by its NPS
        domains instead.
        """
        return spec.scheme.group_compute_units(spec, self, members)

    def mem_slices_for(self, index: int, spec: GPUSpec) -> int:
        """Memory domains of the partition hosting application ``index``.

        This is the slice count behind the per-application model key: on
        a coupled-slice (MIG) spec a private GI contributes its own
        profile-table slices, the full-chip shared GI the whole chip's,
        and a sub-chip shared GI (mixed layouts) the slices of that
        smaller instance; an independent-axes spec contributes the HBM
        stacks of the hosting NPS domain.
        """
        members = self.group_of(index)
        return spec.scheme.group_mem_domains(spec, self, members)

    def gi_sizes(self, spec: GPUSpec) -> tuple[int, ...]:
        """GPCs of every GPU Instance the state creates, in GI order.

        The multiset of GI sizes is what a MIG reconfiguration actually
        tears down and rebuilds; two states with the same multiset (e.g.
        S1 and S2) can be re-bound without touching any GPU Instance.
        """
        return tuple(
            self.gi_size_for_group(members, spec) for members in self.groups()
        )

    def allocation_for(self, index: int, spec: GPUSpec) -> InstanceAllocation:
        """Resources visible to application ``index`` (0-based) on ``spec``."""
        if not (0 <= index < self.n_apps):
            raise IndexError(f"application index {index} out of range")
        gpcs = self.gpc_allocations[index]
        members = self.group_of(index)
        return InstanceAllocation(
            gpcs=gpcs,
            mem_slices=spec.scheme.group_mem_domains(spec, self, members),
            shared_memory=len(members) > 1 or self.option is MemoryOption.SHARED,
        )

    def allocations(self, spec: GPUSpec) -> tuple[InstanceAllocation, ...]:
        """Resources visible to every application, in application order."""
        return tuple(self.allocation_for(i, spec) for i in range(self.n_apps))

    def swapped(self) -> "PartitionState":
        """The same state with the application order reversed.

        Swapping S1 gives S2, swapping S3 gives S4 — useful when enumerating
        job-allocation alternatives.
        """
        gi_groups = None
        if self.gi_groups is not None:
            reversed_groups = tuple(reversed(self.gi_groups))
            gi_groups = _normalize_groups(reversed_groups)
        return PartitionState(
            gpc_allocations=tuple(reversed(self.gpc_allocations)),
            option=self.option,
            label=None,
            gi_groups=gi_groups,
        )

    def validate_against(self, spec: GPUSpec) -> None:
        """Check that the state is realizable on hardware described by ``spec``.

        Delegates to the spec's partition scheme, which knows whether the
        compute split and memory mode the state implies exist on the part.

        Raises
        ------
        repro.errors.PartitioningError
            If the state needs partition profiles, compute units, or
            memory domains the scheme does not expose on ``spec``.
        """
        spec.scheme.validate_state(spec, self)

    def describe(self) -> str:
        """Human-readable description, e.g. ``"4GPCs-3GPCs/Shared"``.

        Mixed states annotate each application with its GPU-Instance group,
        e.g. ``"1GPCs@g0-1GPCs@g0-2GPCs@g1/Mixed"``, so two states that
        differ only in job allocation stay distinguishable.
        """
        cached = self.__dict__.get("_describe_cache")
        if cached is not None:
            return cached
        if self.option is MemoryOption.MIXED:
            assert self.gi_groups is not None
            gpcs = "-".join(
                f"{g}GPCs@g{group}"
                for g, group in zip(self.gpc_allocations, self.gi_groups)
            )
        else:
            gpcs = "-".join(f"{g}GPCs" for g in self.gpc_allocations)
        name = f"{gpcs}/{self.option.value.capitalize()}"
        described = f"{self.label}({name})" if self.label else name
        # Frozen dataclasses still allow memo attributes via object.__setattr__;
        # every field is immutable, so the rendering can never go stale.
        object.__setattr__(self, "_describe_cache", described)
        return described

    def key(self) -> tuple:
        """Hashable identity ignoring the label (used as model dictionary key)."""
        cached = self.__dict__.get("_key_cache")
        if cached is not None:
            return cached
        if self.gi_groups is not None:
            cached = (self.gpc_allocations, self.option.value, self.gi_groups)
        else:
            cached = (self.gpc_allocations, self.option.value)
        object.__setattr__(self, "_key_cache", cached)
        return cached

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


# ----------------------------------------------------------------------
# The four co-run states evaluated by the paper (Table 5) and the solo
# states used for the scalability observations (Section 3.1).
# ----------------------------------------------------------------------
S1 = PartitionState((4, 3), MemoryOption.SHARED, "S1")
S2 = PartitionState((3, 4), MemoryOption.SHARED, "S2")
S3 = PartitionState((4, 3), MemoryOption.PRIVATE, "S3")
S4 = PartitionState((3, 4), MemoryOption.PRIVATE, "S4")

#: The candidate partitioning/allocation states of Table 5, in order.
CORUN_STATES: tuple[PartitionState, ...] = (S1, S2, S3, S4)


def solo_state(gpcs: int, option: MemoryOption | str = MemoryOption.PRIVATE) -> PartitionState:
    """A partition state describing a solo run on ``gpcs`` GPCs.

    With the *private* option the instance owns the memory slices listed in
    :data:`GPC_TO_MEM_SLICES`; with the *shared* option the instance is a CI
    inside a full-GPU GI and therefore sees the whole memory system —
    exactly the two scalability configurations of Figure 4.
    """
    return PartitionState((gpcs,), MemoryOption(option))


def solo_states(
    sizes: Sequence[int] = VALID_INSTANCE_SIZES,
    options: Sequence[MemoryOption] = (MemoryOption.PRIVATE, MemoryOption.SHARED),
) -> tuple[PartitionState, ...]:
    """All solo partition states for the given sizes and memory options."""
    return tuple(solo_state(g, o) for o in options for g in sizes)


def _set_partitions(n: int) -> Iterator[tuple[int, ...]]:
    """All partitions of ``range(n)`` as canonical group-id tuples.

    Group ids are 0-based in order of first appearance, so every set
    partition is produced exactly once (restricted growth strings).
    """

    def extend(prefix: list[int]) -> Iterator[tuple[int, ...]]:
        if len(prefix) == n:
            yield tuple(prefix)
            return
        n_groups = max(prefix) + 1 if prefix else 0
        for group in range(n_groups + 1):
            prefix.append(group)
            yield from extend(prefix)
            prefix.pop()

    yield from extend([])


def _mixed_groupings(n_apps: int) -> tuple[tuple[int, ...], ...]:
    """Canonical ``gi_groups`` tuples that qualify as *mixed* layouts."""
    groupings = []
    for groups in _set_partitions(n_apps):
        n_groups = max(groups) + 1
        largest = max(groups.count(g) for g in range(n_groups))
        if n_groups >= 2 and largest >= 2:
            groupings.append(groups)
    return tuple(groupings)


def enumerate_partition_states(
    n_apps: int,
    spec: GPUSpec,
    options: Sequence[MemoryOption] = (
        MemoryOption.SHARED,
        MemoryOption.PRIVATE,
        MemoryOption.MIXED,
    ),
) -> Iterator[PartitionState]:
    """Every realizable ``n_apps``-application partition state on ``spec``.

    This generator is the N-way replacement of the S1–S4 table: states are
    derived from the partition sizes the spec's scheme exposes instead of
    being hard-coded, job allocation is part of the state (every ordering
    of the size split is a distinct state), and the *mixed* option
    enumerates every way of grouping three or more applications into
    memory domains.  Mixed layouts require at least three applications, so
    requesting the option for pairs simply yields nothing.  Combinations
    the scheme rejects (e.g. asymmetric splits on an independent-axes
    part) are filtered by validation, not enumerated specially.
    """
    if n_apps < 1:
        raise SpecificationError(f"n_apps must be >= 1, got {n_apps}")
    if n_apps > spec.scheme.max_co_located(spec):
        # Every application needs at least one compute unit / partition,
        # so no state can exist.
        return
    # PartitionState only accepts sizes from the built-in superset
    # (VALID_INSTANCE_SIZES); a custom spec advertising e.g. a 5-GPC
    # profile can drive MIGManager directly but cannot appear in
    # partition states, so it is excluded here rather than crashing.
    sizes = tuple(
        s
        for s in spec.scheme.instance_sizes(spec)
        if s in VALID_INSTANCE_SIZES and s <= spec.mig_gpcs
    )

    def allocation_tuples(
        prefix: list[int], remaining: int
    ) -> Iterator[tuple[int, ...]]:
        # Depth-first in size order: yields the same sequence as filtering
        # itertools.product, but prunes branches whose GPC total already
        # exceeds the chip (no option could ever realize them).
        if remaining == 0:
            yield tuple(prefix)
            return
        budget = spec.mig_gpcs - sum(prefix) - (remaining - 1)
        for size in sizes:
            if size > budget:
                continue
            prefix.append(size)
            yield from allocation_tuples(prefix, remaining - 1)
            prefix.pop()

    for option in options:
        option = MemoryOption(option)
        groupings: Sequence[tuple[int, ...] | None]
        if option is MemoryOption.MIXED:
            groupings = _mixed_groupings(n_apps)
        else:
            groupings = (None,)
        for allocations in allocation_tuples([], n_apps):
            for gi_groups in groupings:
                candidate = PartitionState(allocations, option, gi_groups=gi_groups)
                try:
                    candidate.validate_against(spec)
                except PartitioningError:
                    continue
                yield candidate


def enumerate_corun_states(
    spec: GPUSpec,
    options: Sequence[MemoryOption] = (MemoryOption.SHARED, MemoryOption.PRIVATE),
) -> tuple[PartitionState, ...]:
    """Every realizable two-application partition state on ``spec``.

    The paper evaluates the 4+3 split only (Table 5), but the optimizer is
    written against this generic enumeration so that finer-grained future
    hardware (the paper's Section 6 discussion) is covered by construction.
    Kept as the two-application special case of
    :func:`enumerate_partition_states`.
    """
    return tuple(enumerate_partition_states(2, spec, options))


def mixed_training_states(
    spec: GPUSpec, n_apps: int = 3
) -> tuple[PartitionState, ...]:
    """A covering subset of mixed states for the calibration sweep.

    Keeps one representative per distinct multiset of per-application
    ``(gpcs, GI memory slices, effective option)`` triples.  Together the
    representatives reach every sub-chip shared hardware-state key any
    mixed layout on ``spec`` can produce — larger groups only recombine
    the same GI profiles, so the three-application sweep covers the keys
    of four-way (and wider) mixed layouts too — while dropping the
    allocation permutations that would merely repeat the same keys.
    """
    representatives: dict[tuple, PartitionState] = {}
    for state in enumerate_partition_states(n_apps, spec, (MemoryOption.MIXED,)):
        signature = tuple(
            sorted(
                (
                    state.gpc_allocations[i],
                    state.mem_slices_for(i, spec),
                    state.effective_option(i).value,
                )
                for i in range(state.n_apps)
            )
        )
        representatives.setdefault(signature, state)
    return tuple(representatives.values())


def shared_training_states(
    spec: GPUSpec, n_apps: int = 3
) -> tuple[PartitionState, ...]:
    """A covering subset of ``n_apps``-way full-chip shared states.

    Keeps one representative per distinct multiset of per-application GPC
    sizes.  These are the calibration sweep behind the N≥3 composition
    stage (:meth:`repro.core.training.ModelTrainer.fit_composition`): on
    the full-chip pool, pair-fitted interference coefficients compose
    additively over co-runners and overestimate the combined pressure, so
    the composition correction is fitted from states that actually host
    three or more applications.  Allocation permutations of the same size
    multiset would reach the same hardware-state keys and are dropped.
    """
    representatives: dict[tuple, PartitionState] = {}
    for state in enumerate_partition_states(n_apps, spec, (MemoryOption.SHARED,)):
        signature = tuple(sorted(state.gpc_allocations))
        representatives.setdefault(signature, state)
    return tuple(representatives.values())


# ----------------------------------------------------------------------
# Stateful MIG manager (nvidia-smi mig -cgi / -cci work-alike)
# ----------------------------------------------------------------------
@dataclass
class ComputeInstance:
    """A Compute Instance (CI): the schedulable entity a CUDA job runs on."""

    ci_id: int
    gi_id: int
    gpcs: int
    uuid: str


@dataclass
class GPUInstance:
    """A GPU Instance (GI): owns GPCs and memory slices."""

    gi_id: int
    gpcs: int
    mem_slices: int
    compute_instances: list[ComputeInstance] = field(default_factory=list)

    @property
    def free_gpcs(self) -> int:
        """GPCs of this GI not yet assigned to a Compute Instance."""
        return self.gpcs - sum(ci.gpcs for ci in self.compute_instances)


class MIGManager:
    """Create and destroy MIG instances on a simulated chip.

    The manager mirrors the real administration workflow:

    1. :meth:`enable_mig` (disables one GPC on the A100);
    2. :meth:`create_gpu_instance` carves GPCs + memory slices out of the
       chip;
    3. :meth:`create_compute_instance` carves GPCs out of a GI and returns a
       CI with a UUID that can be handed to ``CUDA_VISIBLE_DEVICES``;
    4. :meth:`apply_partition_state` is the convenience entry point used by
       the rest of the library: it tears down the current layout and builds
       the GIs/CIs needed by a :class:`PartitionState`.
    """

    def __init__(self, spec: GPUSpec = A100_SPEC) -> None:
        self._spec = spec
        self._topology = ChipTopology(spec)
        self._instances: dict[int, GPUInstance] = {}
        self._next_gi_id = 0
        self._next_ci_id = 0
        self._uuid_counter = 0

    # ------------------------------------------------------------------
    @property
    def spec(self) -> GPUSpec:
        """The hardware specification of the managed chip."""
        return self._spec

    @property
    def topology(self) -> ChipTopology:
        """The underlying ownership map (read-mostly for callers)."""
        return self._topology

    @property
    def mig_enabled(self) -> bool:
        """Whether MIG mode is currently enabled."""
        return self._topology.mig_enabled

    @property
    def free_gpcs(self) -> int:
        """GPCs not owned by any GPU Instance."""
        return self._topology.free_gpcs

    @property
    def free_mem_slices(self) -> int:
        """Memory slices not owned by any GPU Instance."""
        return self._topology.free_slices

    # ------------------------------------------------------------------
    # MIG mode
    # ------------------------------------------------------------------
    def enable_mig(self) -> None:
        """Enable MIG mode (idempotent)."""
        self._topology.set_mig_mode(True)

    def disable_mig(self) -> None:
        """Disable MIG mode; requires all instances to be destroyed first."""
        if self._instances:
            raise PartitioningError("destroy all GPU Instances before disabling MIG")
        self._topology.set_mig_mode(False)

    # ------------------------------------------------------------------
    # Instance management
    # ------------------------------------------------------------------
    def create_gpu_instance(self, gpcs: int, mem_slices: int | None = None) -> GPUInstance:
        """Create a GPU Instance owning ``gpcs`` GPCs.

        ``mem_slices`` defaults to the spec's profile mapping
        (:data:`GPC_TO_MEM_SLICES` for the A100).
        """
        if not self.mig_enabled:
            raise PartitioningError("MIG mode must be enabled before creating instances")
        if gpcs not in self._spec.mig_instance_sizes:
            raise PartitioningError(
                f"{gpcs} GPCs is not a valid GPU Instance size on {self._spec.name}; "
                f"valid: {self._spec.mig_instance_sizes}"
            )
        if mem_slices is None:
            mem_slices = self._spec.instance_mem_slices(gpcs)
        gi_id = self._next_gi_id
        try:
            self._topology.claim_gpcs(gi_id, gpcs)
        except PartitioningError:
            raise PartitioningError(
                f"not enough free GPCs for a {gpcs}-GPC GPU Instance "
                f"(free: {self.free_gpcs})"
            ) from None
        try:
            self._topology.claim_slices(gi_id, mem_slices)
        except PartitioningError:
            self._topology.release_owner(gi_id)
            raise PartitioningError(
                f"not enough free memory slices for a {gpcs}-GPC GPU Instance "
                f"(needed {mem_slices}, free: {self.free_mem_slices})"
            ) from None
        instance = GPUInstance(gi_id=gi_id, gpcs=gpcs, mem_slices=mem_slices)
        self._instances[gi_id] = instance
        self._next_gi_id += 1
        return instance

    def create_compute_instance(self, gi_id: int, gpcs: int) -> ComputeInstance:
        """Create a Compute Instance with ``gpcs`` GPCs inside GI ``gi_id``."""
        instance = self._instances.get(gi_id)
        if instance is None:
            raise PartitioningError(f"no GPU Instance with id {gi_id}")
        if gpcs not in self._spec.mig_instance_sizes:
            raise PartitioningError(
                f"{gpcs} GPCs is not a valid Compute Instance size on {self._spec.name}; "
                f"valid: {self._spec.mig_instance_sizes}"
            )
        if gpcs > instance.free_gpcs:
            raise PartitioningError(
                f"GPU Instance {gi_id} has only {instance.free_gpcs} free GPCs, "
                f"requested {gpcs}"
            )
        ci = ComputeInstance(
            ci_id=self._next_ci_id,
            gi_id=gi_id,
            gpcs=gpcs,
            uuid=self._make_uuid(),
        )
        instance.compute_instances.append(ci)
        self._next_ci_id += 1
        return ci

    def destroy_compute_instance(self, uuid: str) -> None:
        """Destroy the Compute Instance identified by ``uuid``."""
        for instance in self._instances.values():
            for ci in instance.compute_instances:
                if ci.uuid == uuid:
                    instance.compute_instances.remove(ci)
                    return
        raise PartitioningError(f"no Compute Instance with UUID {uuid!r}")

    def destroy_gpu_instance(self, gi_id: int) -> None:
        """Destroy GPU Instance ``gi_id`` (must hold no Compute Instances)."""
        instance = self._instances.get(gi_id)
        if instance is None:
            raise PartitioningError(f"no GPU Instance with id {gi_id}")
        if instance.compute_instances:
            raise PartitioningError(
                f"GPU Instance {gi_id} still holds Compute Instances; destroy them first"
            )
        self._topology.release_owner(gi_id)
        del self._instances[gi_id]

    def reset(self) -> None:
        """Destroy every instance (Compute Instances first, then GIs)."""
        for instance in list(self._instances.values()):
            instance.compute_instances.clear()
            self.destroy_gpu_instance(instance.gi_id)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def list_gpu_instances(self) -> tuple[GPUInstance, ...]:
        """All existing GPU Instances, ordered by creation."""
        return tuple(self._instances[g] for g in sorted(self._instances))

    def list_compute_instances(self) -> tuple[ComputeInstance, ...]:
        """All existing Compute Instances, ordered by creation."""
        cis = [ci for gi in self.list_gpu_instances() for ci in gi.compute_instances]
        return tuple(sorted(cis, key=lambda ci: ci.ci_id))

    def find_compute_instance(self, uuid: str) -> ComputeInstance:
        """Look up a Compute Instance by UUID."""
        for ci in self.list_compute_instances():
            if ci.uuid == uuid:
                return ci
        raise PartitioningError(f"no Compute Instance with UUID {uuid!r}")

    # ------------------------------------------------------------------
    # High-level entry point
    # ------------------------------------------------------------------
    def apply_partition_state(self, state: PartitionState) -> tuple[ComputeInstance, ...]:
        """Realize a :class:`PartitionState`, returning one CI per application.

        The previous layout is torn down first.  For the *private* option one
        GI is created per application; for the *shared* option a single
        full-size GI hosts one CI per application; for the *mixed* option one
        GI is created per ``gi_groups`` group (sized to the smallest profile
        that fits the group) hosting one CI per member.
        """
        state.validate_against(self._spec)
        self.reset()
        self.enable_mig()
        cis: dict[int, ComputeInstance] = {}
        if state.option is MemoryOption.SHARED:
            gi = self.create_gpu_instance(self._spec.mig_gpcs, self._spec.n_mem_slices)
            for index, gpcs in enumerate(state.gpc_allocations):
                cis[index] = self.create_compute_instance(gi.gi_id, gpcs)
        else:
            for members in state.groups():
                gi_size = state.gi_size_for_group(members, self._spec)
                # The scheme decides the memory domains of the partition —
                # for the coupled MIG scheme this equals the profile-table
                # default, for an independent-axes scheme it is the hosting
                # NPS domain's stack count.
                gi = self.create_gpu_instance(
                    gi_size, state.mem_slices_for(members[0], self._spec)
                )
                for index in members:
                    cis[index] = self.create_compute_instance(
                        gi.gi_id, state.gpc_allocations[index]
                    )
        return tuple(cis[index] for index in range(state.n_apps))

    def iter_visible_devices(self) -> Iterator[str]:
        """UUIDs of all Compute Instances, as a scheduler would enumerate them."""
        for ci in self.list_compute_instances():
            yield ci.uuid

    # ------------------------------------------------------------------
    def _make_uuid(self) -> str:
        self._uuid_counter += 1
        return f"MIG-GPU-{self._spec.name}-{self._uuid_counter:04d}"
