"""Power/clock telemetry for simulated runs (an ``nvidia-smi dmon`` stand-in).

The paper's methodology only needs end-to-end elapsed times, but a real
deployment watches the GPU while jobs run: power draw, clock, utilization,
and energy.  This module synthesizes that telemetry from a finished
simulation result so that operators-facing tooling (examples, the cluster
manager, dashboards) can be exercised end to end:

* :class:`TelemetrySample` — one sampling instant (power, clock, busy GPCs).
* :class:`TelemetryTrace` — a whole run's time series plus summary
  statistics (average/peak power, energy, throttling residency).
* :class:`TelemetryRecorder` — builds traces from
  :class:`~repro.sim.results.RunResult` / :class:`~repro.sim.results.CoRunResult`.

The synthesized trace has three phases — ramp-up, steady state, and
ramp-down — which is how a long-running, steady-state GPU kernel actually
looks in ``nvidia-smi dmon`` output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError
from repro.gpu.spec import A100_SPEC, GPUSpec
from repro.sim.results import CoRunResult, RunResult


@dataclass(frozen=True)
class TelemetrySample:
    """One telemetry sample (what one ``dmon`` line would report)."""

    timestamp_s: float
    power_w: float
    clock_ghz: float
    busy_gpcs: int
    dram_bandwidth_gbs: float

    def __post_init__(self) -> None:
        if self.timestamp_s < 0 or self.power_w < 0:
            raise ConfigurationError("telemetry samples must be non-negative")


@dataclass(frozen=True)
class TelemetryTrace:
    """A complete telemetry time series for one run."""

    samples: tuple[TelemetrySample, ...]
    power_cap_w: float
    label: str

    def __post_init__(self) -> None:
        if not self.samples:
            raise ConfigurationError("a telemetry trace needs at least one sample")

    # ------------------------------------------------------------------
    @property
    def duration_s(self) -> float:
        """Time span covered by the trace."""
        return self.samples[-1].timestamp_s - self.samples[0].timestamp_s

    @property
    def average_power_w(self) -> float:
        """Mean power across all samples."""
        return sum(s.power_w for s in self.samples) / len(self.samples)

    @property
    def peak_power_w(self) -> float:
        """Maximum sampled power."""
        return max(s.power_w for s in self.samples)

    @property
    def energy_joules(self) -> float:
        """Trapezoidal energy estimate over the trace."""
        energy = 0.0
        for previous, current in zip(self.samples, self.samples[1:]):
            dt = current.timestamp_s - previous.timestamp_s
            energy += 0.5 * (previous.power_w + current.power_w) * dt
        return energy

    @property
    def cap_violations(self) -> int:
        """Number of samples above the configured power cap (should be 0)."""
        return sum(1 for s in self.samples if s.power_w > self.power_cap_w + 1e-6)

    def throttled_fraction(self, boost_clock_ghz: float) -> float:
        """Fraction of samples running below the boost clock."""
        return sum(1 for s in self.samples if s.clock_ghz < boost_clock_ghz - 1e-9) / len(
            self.samples
        )

    def as_rows(self) -> tuple[tuple[float, float, float, int, float], ...]:
        """The trace as plain tuples (for CSV export / table rendering)."""
        return tuple(
            (s.timestamp_s, s.power_w, s.clock_ghz, s.busy_gpcs, s.dram_bandwidth_gbs)
            for s in self.samples
        )


class TelemetryRecorder:
    """Synthesize telemetry traces from simulation results."""

    def __init__(
        self,
        spec: GPUSpec = A100_SPEC,
        sample_interval_s: float = 0.05,
        ramp_fraction: float = 0.05,
    ) -> None:
        if sample_interval_s <= 0:
            raise ConfigurationError("sample_interval_s must be positive")
        if not (0.0 <= ramp_fraction < 0.5):
            raise ConfigurationError("ramp_fraction must be in [0, 0.5)")
        self._spec = spec
        self._interval = sample_interval_s
        self._ramp_fraction = ramp_fraction

    # ------------------------------------------------------------------
    def _trace(
        self,
        elapsed_s: float,
        steady_power_w: float,
        relative_frequency: float,
        busy_gpcs: int,
        bandwidth_gbs: float,
        power_cap_w: float,
        label: str,
    ) -> TelemetryTrace:
        idle_power = self._spec.static_power_w + self._spec.hbm_idle_power_w
        n_samples = max(3, int(elapsed_s / self._interval) + 1)
        ramp_samples = max(1, int(n_samples * self._ramp_fraction))
        samples: list[TelemetrySample] = []
        for index in range(n_samples):
            timestamp = min(index * self._interval, elapsed_s)
            if index < ramp_samples:
                progress = (index + 1) / (ramp_samples + 1)
            elif index >= n_samples - ramp_samples:
                progress = (n_samples - index) / (ramp_samples + 1)
            else:
                progress = 1.0
            power = idle_power + (steady_power_w - idle_power) * progress
            clock = self._spec.max_clock_ghz * (
                1.0 - (1.0 - relative_frequency) * progress
            )
            samples.append(
                TelemetrySample(
                    timestamp_s=timestamp,
                    power_w=min(power, power_cap_w),
                    clock_ghz=clock,
                    busy_gpcs=busy_gpcs if progress > 0.5 else 0,
                    dram_bandwidth_gbs=bandwidth_gbs * progress,
                )
            )
        return TelemetryTrace(samples=tuple(samples), power_cap_w=power_cap_w, label=label)

    # ------------------------------------------------------------------
    def record_solo(self, result: RunResult) -> TelemetryTrace:
        """Telemetry trace of one solo run."""
        return self._trace(
            elapsed_s=result.elapsed_s,
            steady_power_w=result.chip_power_w,
            relative_frequency=result.relative_frequency,
            busy_gpcs=result.state.gpc_allocations[result.app_index],
            bandwidth_gbs=result.achieved_bandwidth_gbs,
            power_cap_w=result.power_cap_w,
            label=f"{result.kernel_name}@{result.state.describe()}",
        )

    def record_corun(self, result: CoRunResult) -> TelemetryTrace:
        """Telemetry trace of one co-run (chip-level view)."""
        longest = max(run.elapsed_s for run in result.per_app)
        total_bw = sum(run.achieved_bandwidth_gbs for run in result.per_app)
        return self._trace(
            elapsed_s=longest,
            steady_power_w=result.chip_power_w,
            relative_frequency=result.relative_frequency,
            busy_gpcs=result.state.total_gpcs,
            bandwidth_gbs=min(total_bw, self._spec.dram_bandwidth_gbs),
            power_cap_w=result.power_cap_w,
            label=f"corun@{result.state.describe()}",
        )

    def record_sequence(self, results: Sequence[RunResult]) -> TelemetryTrace:
        """Concatenated trace for back-to-back solo runs (e.g. a job stream)."""
        if not results:
            raise ConfigurationError("at least one run is required")
        samples: list[TelemetrySample] = []
        offset = 0.0
        cap = max(result.power_cap_w for result in results)
        for result in results:
            trace = self.record_solo(result)
            for sample in trace.samples:
                samples.append(
                    TelemetrySample(
                        timestamp_s=offset + sample.timestamp_s,
                        power_w=sample.power_w,
                        clock_ghz=sample.clock_ghz,
                        busy_gpcs=sample.busy_gpcs,
                        dram_bandwidth_gbs=sample.dram_bandwidth_gbs,
                    )
                )
            offset += result.elapsed_s
        return TelemetryTrace(samples=tuple(samples), power_cap_w=cap, label="sequence")
