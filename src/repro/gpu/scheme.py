"""Vendor-neutral partition schemes: compute vs. memory partitioning.

NVIDIA MIG couples the two axes: a GPU Instance's compute size *implies*
its LLC/HBM slice count (the A100's profile table maps 1/2/3/4/7 GPCs to
1/2/4/4/8 slices).  AMD's MI300-class parts decouple them: compute
partitioning (MCP modes SPX/DPX/QPX/CPX splitting 8 XCDs) and memory
partitioning (NPS modes splitting 8 HBM stacks) are configured
*independently*.

A :class:`PartitionScheme` is the strategy object a
:class:`~repro.gpu.spec.GPUSpec` carries to answer every question the
rest of the library used to answer with NVIDIA slice arithmetic:

* which compute-partition sizes exist (:meth:`~PartitionScheme.instance_sizes`),
* whether a :class:`~repro.gpu.mig.PartitionState` is realizable
  (:meth:`~PartitionScheme.validate_state`),
* how many compute units and memory domains the group hosting an
  application owns (:meth:`~PartitionScheme.group_compute_units`,
  :meth:`~PartitionScheme.group_mem_domains`) — the numbers behind
  ``HardwareStateKey`` derivation and the simulator's bandwidth pools
  (:meth:`~PartitionScheme.memory_pools`),
* how many applications can co-locate at all
  (:meth:`~PartitionScheme.max_co_located`).

:class:`CoupledSliceScheme` reimplements the MIG behaviour bit-identical
to the pre-scheme code; :class:`IndependentAxesScheme` implements the
MI300X-style MCP×NPS cross product.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Sequence

from repro.errors import PartitioningError, SpecificationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gpu.mig import PartitionState
    from repro.gpu.spec import GPUSpec


class MemoryOption(str, Enum):
    """LLC/HBM sharing option between co-located applications."""

    #: Each application gets its own GPU Instance (isolated memory slices).
    PRIVATE = "private"
    #: One GPU Instance hosts all applications as Compute Instances
    #: (memory resources shared; full-chip bandwidth visible to everyone).
    SHARED = "shared"
    #: Applications are split into several GPU Instances, at least one of
    #: which hosts two or more applications as Compute Instances.  Memory is
    #: isolated *between* the GIs and shared *inside* each GI — the finer
    #: granularity the paper's Section 6 points to for larger groups.
    MIXED = "mixed"


@dataclass(frozen=True)
class MemoryPool(object):
    """One memory domain of a realized partition state.

    Attributes
    ----------
    members:
        Application indices drawing bandwidth from this domain, in
        application order.
    mem_domains:
        Memory domains (LLC/HBM slices on NVIDIA, HBM-stack groups under
        an NPS mode on AMD-style parts) backing the pool, out of the
        spec's ``n_mem_slices``.
    contended:
        Whether the members contend for the pool (more than one member,
        or a shared full-chip pool).  Uncontended pools need no
        interference modelling.
    """

    members: tuple[int, ...]
    mem_domains: int
    contended: bool


@dataclass(frozen=True)
class PartitionScheme(object):
    """Strategy mapping partition states to compute units / memory domains.

    Subclasses are frozen, field-light dataclasses so that two
    :class:`~repro.gpu.spec.GPUSpec` instances configured identically
    stay equal (``spec == A100_SPEC`` is used for grid dispatch).
    """

    def instance_sizes(self, spec: "GPUSpec") -> tuple[int, ...]:
        """Compute-partition sizes (in GPCs/XCDs) realizable on ``spec``."""
        raise NotImplementedError

    def validate_state(self, spec: "GPUSpec", state: "PartitionState") -> None:
        """Raise :class:`~repro.errors.PartitioningError` if unrealizable."""
        raise NotImplementedError

    def group_compute_units(
        self, spec: "GPUSpec", state: "PartitionState", members: Sequence[int]
    ) -> int:
        """Compute units of the partition hosting ``members`` on ``spec``."""
        raise NotImplementedError

    def group_mem_domains(
        self, spec: "GPUSpec", state: "PartitionState", members: Sequence[int]
    ) -> int:
        """Memory domains of the partition hosting ``members`` on ``spec``."""
        raise NotImplementedError

    def max_co_located(self, spec: "GPUSpec") -> int:
        """Most applications one chip can host under this scheme."""
        raise NotImplementedError

    def memory_pools(
        self, spec: "GPUSpec", state: "PartitionState"
    ) -> tuple[MemoryPool, ...]:
        """The memory domains of ``state``, one pool per application group.

        A pool is *contended* when several applications draw from it or
        when the (full-chip) shared option puts everyone in one domain —
        exactly the cases the interference model prices.
        """
        return tuple(
            MemoryPool(
                members=tuple(members),
                mem_domains=self.group_mem_domains(spec, state, members),
                contended=state.option is MemoryOption.SHARED or len(members) > 1,
            )
            for members in state.groups()
        )


@dataclass(frozen=True)
class CoupledSliceScheme(PartitionScheme):
    """NVIDIA-MIG-style partitioning: compute size implies slice count.

    A GPU Instance of ``g`` GPCs owns the memory slices of the spec's
    profile table (``mig_mem_slices[g]``); the shared option hosts every
    application inside one full-MIG-partition GI.  This reproduces the
    pre-scheme behaviour bit-identically.
    """

    def instance_sizes(self, spec: "GPUSpec") -> tuple[int, ...]:
        """The spec's MIG instance profile sizes."""
        return tuple(spec.mig_instance_sizes)

    def group_compute_units(
        self, spec: "GPUSpec", state: "PartitionState", members: Sequence[int]
    ) -> int:
        """GPCs of the GPU Instance hosting ``members``.

        A single-application private GI matches the application's size;
        the shared option uses the full MIG partition; a mixed
        multi-application GI uses the smallest profile that fits.
        """
        if state.option is MemoryOption.SHARED:
            return spec.mig_gpcs
        total = sum(state.gpc_allocations[i] for i in members)
        if len(members) == 1:
            return total
        return spec.smallest_instance_holding(total)

    def group_mem_domains(
        self, spec: "GPUSpec", state: "PartitionState", members: Sequence[int]
    ) -> int:
        """Profile-table slices of the GI hosting ``members``."""
        return spec.instance_mem_slices(
            self.group_compute_units(spec, state, members)
        )

    def max_co_located(self, spec: "GPUSpec") -> int:
        """One 1-GPC instance per application at most."""
        return spec.mig_gpcs

    def validate_state(self, spec: "GPUSpec", state: "PartitionState") -> None:
        """Check instance profiles, GPC budget, and slice budget."""
        for gpcs in state.gpc_allocations:
            if gpcs not in spec.mig_instance_sizes:
                raise PartitioningError(
                    f"state {state.describe()} uses a {gpcs}-GPC instance but "
                    f"{spec.name} only offers sizes {spec.mig_instance_sizes}"
                )
        if state.option is MemoryOption.SHARED:
            needed_gpcs = state.total_gpcs
            needed_slices = 0
        else:
            try:
                gi_sizes = [
                    self.group_compute_units(spec, state, members)
                    for members in state.groups()
                ]
            except SpecificationError as exc:
                raise PartitioningError(f"state {state.describe()}: {exc}") from None
            needed_gpcs = sum(gi_sizes)
            needed_slices = sum(spec.instance_mem_slices(size) for size in gi_sizes)
        if needed_gpcs > spec.mig_gpcs:
            raise PartitioningError(
                f"state {state.describe()} needs {needed_gpcs} GPCs but MIG "
                f"exposes only {spec.mig_gpcs}"
            )
        if needed_slices > spec.n_mem_slices:
            raise PartitioningError(
                f"state {state.describe()} needs {needed_slices} memory slices "
                f"but the chip has only {spec.n_mem_slices}"
            )


@dataclass(frozen=True)
class IndependentAxesScheme(PartitionScheme):
    """MI300X-style partitioning: compute and memory modes are independent.

    Compute partitioning is *symmetric*: the chip splits into ``p`` equal
    partitions of ``g`` compute units each (SPX/DPX/QPX/CPX over 8 XCDs
    corresponds to ``g`` ∈ {8, 4, 2, 1}), so every application of a state
    must request the same size ``g`` and ``g`` must divide the chip.
    Memory partitioning is an NPS mode splitting the ``n_mem_slices``
    HBM stacks into ``N`` equal domains, with ``N`` drawn from
    ``nps_modes``:

    * **shared** — NPS1: one domain, every application sees the whole
      memory system.
    * **private** — NPS\\ ``p``: one domain per compute partition, each
      application owns ``n_mem_slices / p`` stacks.
    * **mixed** — NPS\\ ``N`` with ``N`` equal to the number of
      application groups: each group shares one domain of
      ``n_mem_slices / N`` stacks.  Every group must hold at least two
      applications (a singleton group would reach a private-style key no
      solo sweep calibrates) and fit inside the ``p / N`` compute
      partitions of its domain.
    """

    nps_modes: tuple[int, ...] = (1, 2, 4, 8)

    def instance_sizes(self, spec: "GPUSpec") -> tuple[int, ...]:
        """Profile sizes that evenly split the chip's compute partition."""
        return tuple(
            s for s in spec.mig_instance_sizes if spec.mig_gpcs % s == 0
        )

    def _symmetric_size(self, spec: "GPUSpec", state: "PartitionState") -> int:
        """The common per-application size ``g``, or raise."""
        sizes = set(state.gpc_allocations)
        if len(sizes) != 1:
            raise PartitioningError(
                f"state {state.describe()}: {spec.name} partitions compute "
                f"symmetrically; all applications must request the same size, "
                f"got {state.gpc_allocations}"
            )
        g = next(iter(sizes))
        if g not in self.instance_sizes(spec):
            raise PartitioningError(
                f"state {state.describe()} uses a {g}-unit partition but "
                f"{spec.name} only offers sizes {self.instance_sizes(spec)}"
            )
        return g

    def _nps_for(self, spec: "GPUSpec", state: "PartitionState") -> int:
        """The NPS memory mode ``state`` requires on ``spec``."""
        g = self._symmetric_size(spec, state)
        p = spec.mig_gpcs // g
        if state.option is MemoryOption.SHARED:
            return 1
        if state.option is MemoryOption.PRIVATE:
            return p
        return len(state.groups())

    def validate_state(self, spec: "GPUSpec", state: "PartitionState") -> None:
        """Check symmetric compute split and a realizable NPS mode."""
        g = self._symmetric_size(spec, state)
        p = spec.mig_gpcs // g
        if state.n_apps > p:
            raise PartitioningError(
                f"state {state.describe()} places {state.n_apps} applications "
                f"but {g}-unit partitions split {spec.name} into only {p}"
            )
        nps = self._nps_for(spec, state)
        if nps not in self.nps_modes or spec.n_mem_slices % nps != 0:
            raise PartitioningError(
                f"state {state.describe()} needs memory mode NPS{nps} but "
                f"{spec.name} offers NPS modes {self.nps_modes}"
            )
        if state.option is MemoryOption.MIXED:
            partitions_per_domain = p // nps if p % nps == 0 else 0
            for members in state.groups():
                if len(members) < 2:
                    raise PartitioningError(
                        f"state {state.describe()}: under NPS{nps} a "
                        f"single-application group would own a private-style "
                        f"domain; use the private option instead"
                    )
                if len(members) > partitions_per_domain:
                    raise PartitioningError(
                        f"state {state.describe()} packs {len(members)} "
                        f"applications into one NPS{nps} domain, which holds "
                        f"only {partitions_per_domain} {g}-unit partitions"
                    )

    def group_compute_units(
        self, spec: "GPUSpec", state: "PartitionState", members: Sequence[int]
    ) -> int:
        """Compute units visible to the partition(s) hosting ``members``.

        Shared states span the whole chip; a private application owns its
        own ``g``-unit partition; a mixed group owns the compute
        partitions of its NPS domain (``mig_gpcs / N``).
        """
        if state.option is MemoryOption.SHARED:
            return spec.mig_gpcs
        if state.option is MemoryOption.PRIVATE or len(members) == 1:
            return sum(state.gpc_allocations[i] for i in members)
        return spec.mig_gpcs // len(state.groups())

    def group_mem_domains(
        self, spec: "GPUSpec", state: "PartitionState", members: Sequence[int]
    ) -> int:
        """HBM stacks of the NPS domain hosting ``members``."""
        nps = self._nps_for(spec, state)
        return spec.n_mem_slices // nps

    def max_co_located(self, spec: "GPUSpec") -> int:
        """One smallest-size partition per application at most."""
        return spec.mig_gpcs // min(self.instance_sizes(spec))
