"""Static hardware specification of the simulated GPU.

The :class:`GPUSpec` dataclass gathers every hardware parameter the rest of
the library needs: the partitionable compute resources (GPCs and the SMs
inside them), the memory system (LLC/HBM "slices" that MIG assigns to GPU
Instances), the per-pipe peak throughputs (CUDA FP32/FP64 cores and the
three Tensor-Core modes the paper's counters distinguish), and the
parameters of the analytic power model.

The default :data:`A100_SPEC` is modelled after the NVIDIA A100 40 GB PCIe
card used in the paper (Table 2).  The absolute numbers follow the public
data sheet where available; power-model constants are calibrated so that the
qualitative behaviour reported by the paper holds (compute- and Tensor-
intensive kernels are throttled by chip power caps, memory-bound and
unscalable kernels are not — Figures 4 and 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Mapping

from repro.errors import SpecificationError
from repro.gpu.scheme import (
    CoupledSliceScheme,
    IndependentAxesScheme,
    PartitionScheme,
)


class Pipe(str, Enum):
    """Computational pipes distinguished by the simulator and the profiler.

    The paper's feature vector (Table 3) separates generic compute
    throughput from three Tensor-Core utilization counters (MIXED, DOUBLE,
    INTEGER); the pipes below mirror that split.
    """

    #: FP32 CUDA cores (also used for generic integer/ALU work).
    FP32 = "fp32"
    #: FP64 CUDA cores.
    FP64 = "fp64"
    #: Tensor Cores operating on FP16/BF16/TF32 inputs ("Tensor MIXED").
    TENSOR_MIXED = "tensor_mixed"
    #: Tensor Cores operating on FP64 inputs ("Tensor DOUBLE").
    TENSOR_DOUBLE = "tensor_double"
    #: Tensor Cores operating on INT8/INT4 inputs ("Tensor INTEGER").
    TENSOR_INT = "tensor_int"

    @property
    def is_tensor(self) -> bool:
        """Whether this pipe is one of the Tensor-Core pipes."""
        return self in (Pipe.TENSOR_MIXED, Pipe.TENSOR_DOUBLE, Pipe.TENSOR_INT)


#: Pipes that map onto Tensor Cores.
TENSOR_PIPES: tuple[Pipe, ...] = (
    Pipe.TENSOR_MIXED,
    Pipe.TENSOR_DOUBLE,
    Pipe.TENSOR_INT,
)

#: Pipes that map onto the regular CUDA cores.
CUDA_PIPES: tuple[Pipe, ...] = (Pipe.FP32, Pipe.FP64)


@dataclass(frozen=True)
class PipeThroughput:
    """Peak throughput of one computational pipe on the *full* chip.

    Attributes
    ----------
    pipe:
        Which pipe this entry describes.
    tflops:
        Peak throughput in TFLOP/s (or TOP/s for the integer Tensor pipe) of
        the whole chip (all GPCs) at the maximum boost clock.
    """

    pipe: Pipe
    tflops: float

    def __post_init__(self) -> None:
        if self.tflops <= 0.0:
            raise SpecificationError(
                f"pipe {self.pipe.value} must have positive throughput, got {self.tflops}"
            )


@dataclass(frozen=True)
class GPUSpec:
    """Complete hardware description of a simulated, MIG-capable GPU.

    Compute/partitioning parameters
    -------------------------------
    n_gpcs:
        Number of GPCs physically present on the die (8 for A100).
    mig_gpcs:
        Number of GPCs usable when MIG is enabled (7 for A100 — one GPC is
        disabled by the hardware when MIG mode is switched on).
    sms_per_gpc:
        Streaming Multiprocessors per GPC.
    pipe_tflops:
        Peak full-chip throughput per :class:`Pipe` in TFLOP/s at the
        maximum clock.

    Memory-system parameters
    ------------------------
    dram_bandwidth_gbs:
        Peak HBM bandwidth of the full chip in GB/s.
    n_mem_slices:
        Number of LLC/HBM slices that MIG distributes across GPU Instances
        (8 for A100).
    l2_cache_mb:
        Total last-level-cache capacity in MiB.
    hbm_capacity_gb:
        Total HBM capacity in GB.

    Clock / power parameters
    ------------------------
    max_clock_ghz, base_clock_ghz, min_clock_ghz:
        Boost, base, and minimum sustainable clocks.  The simulator expresses
        the operating point as a *relative frequency* ``f`` in
        ``[min_clock_ghz / max_clock_ghz, 1.0]`` where ``1.0`` is the boost
        clock.
    clock_step_ghz:
        Clock quantization step used by the DVFS governor.
    default_power_limit_w:
        Factory power limit — the "no power capping" operating point the
        paper normalizes against (250 W for the A100 PCIe).
    min_power_cap_w, max_power_cap_w:
        Range accepted by the power-capping interface.
    static_power_w:
        Frequency-independent chip power (leakage, NVLink/PCIe PHYs, ...).
    gpc_idle_power_w:
        Power of one powered-on but idle GPC.
    gpc_cuda_power_w:
        Additional dynamic power of one GPC at full CUDA-core utilization
        and maximum clock.
    gpc_tensor_power_w:
        Additional dynamic power of one GPC at full Tensor-Core utilization
        and maximum clock (Tensor work is the most power-hungry activity on
        the chip, which is why the paper finds Tensor-intensive kernels the
        most sensitive to power caps).
    hbm_idle_power_w:
        Static power of the HBM stacks and memory controllers.
    hbm_dynamic_power_w:
        Additional HBM power at 100 % of peak bandwidth.
    dvfs_exponent:
        Exponent of the dynamic-power-vs-frequency curve (``P_dyn ∝ f**e``,
        with ``e ≈ 2.4`` approximating the combined V/f scaling).

    MIG profile parameters
    ----------------------
    mig_instance_sizes:
        GPC counts for which a GPU/Compute Instance profile exists.  On the
        A100 these are 1, 2, 3, 4 and 7 (no 5- or 6-GPC instances).
    mig_mem_slices:
        Memory slices granted to a GPU Instance of each size under the
        private option (the paper, Section 3).  Keys must cover exactly
        ``mig_instance_sizes``.
    scheme:
        The :class:`~repro.gpu.scheme.PartitionScheme` mapping partition
        states to compute units and memory domains on this part.  NVIDIA
        specs use the coupled MIG profile table
        (:class:`~repro.gpu.scheme.CoupledSliceScheme`); AMD-style specs
        cross independent compute and NPS memory modes
        (:class:`~repro.gpu.scheme.IndependentAxesScheme`).
    """

    name: str = "Simulated-A100-40GB"
    n_gpcs: int = 8
    mig_gpcs: int = 7
    sms_per_gpc: int = 14
    pipe_tflops: Mapping[Pipe, float] = field(
        default_factory=lambda: {
            Pipe.FP32: 19.5,
            Pipe.FP64: 9.7,
            Pipe.TENSOR_MIXED: 312.0,
            Pipe.TENSOR_DOUBLE: 19.5,
            Pipe.TENSOR_INT: 624.0,
        }
    )
    dram_bandwidth_gbs: float = 1555.0
    n_mem_slices: int = 8
    l2_cache_mb: float = 40.0
    hbm_capacity_gb: float = 40.0
    max_clock_ghz: float = 1.410
    base_clock_ghz: float = 1.095
    min_clock_ghz: float = 0.420
    clock_step_ghz: float = 0.015
    default_power_limit_w: float = 250.0
    min_power_cap_w: float = 100.0
    max_power_cap_w: float = 300.0
    static_power_w: float = 25.0
    gpc_idle_power_w: float = 2.5
    gpc_cuda_power_w: float = 16.0
    gpc_tensor_power_w: float = 24.0
    hbm_idle_power_w: float = 20.0
    hbm_dynamic_power_w: float = 55.0
    dvfs_exponent: float = 2.4
    mig_instance_sizes: tuple[int, ...] = (1, 2, 3, 4, 7)
    mig_mem_slices: Mapping[int, int] = field(
        default_factory=lambda: {1: 1, 2: 2, 3: 4, 4: 4, 7: 8}
    )
    scheme: PartitionScheme = field(default_factory=CoupledSliceScheme)

    def __post_init__(self) -> None:
        if self.n_gpcs <= 0:
            raise SpecificationError("n_gpcs must be positive")
        if not (0 < self.mig_gpcs <= self.n_gpcs):
            raise SpecificationError(
                f"mig_gpcs must be in (0, n_gpcs={self.n_gpcs}], got {self.mig_gpcs}"
            )
        if self.sms_per_gpc <= 0:
            raise SpecificationError("sms_per_gpc must be positive")
        if self.n_mem_slices <= 0:
            raise SpecificationError("n_mem_slices must be positive")
        if self.dram_bandwidth_gbs <= 0:
            raise SpecificationError("dram_bandwidth_gbs must be positive")
        if not (0 < self.min_clock_ghz <= self.base_clock_ghz <= self.max_clock_ghz):
            raise SpecificationError(
                "clocks must satisfy 0 < min <= base <= max, got "
                f"{self.min_clock_ghz}/{self.base_clock_ghz}/{self.max_clock_ghz}"
            )
        if self.clock_step_ghz <= 0:
            raise SpecificationError("clock_step_ghz must be positive")
        if not (
            0
            < self.min_power_cap_w
            <= self.default_power_limit_w
            <= self.max_power_cap_w
        ):
            raise SpecificationError(
                "power caps must satisfy 0 < min <= default <= max, got "
                f"{self.min_power_cap_w}/{self.default_power_limit_w}/{self.max_power_cap_w}"
            )
        for value, label in (
            (self.static_power_w, "static_power_w"),
            (self.gpc_idle_power_w, "gpc_idle_power_w"),
            (self.gpc_cuda_power_w, "gpc_cuda_power_w"),
            (self.gpc_tensor_power_w, "gpc_tensor_power_w"),
            (self.hbm_idle_power_w, "hbm_idle_power_w"),
            (self.hbm_dynamic_power_w, "hbm_dynamic_power_w"),
        ):
            if value < 0:
                raise SpecificationError(f"{label} must be non-negative, got {value}")
        if self.dvfs_exponent < 1.0:
            raise SpecificationError("dvfs_exponent must be >= 1")
        missing = [p for p in Pipe if p not in self.pipe_tflops]
        if missing:
            raise SpecificationError(
                f"pipe_tflops is missing entries for: {[p.value for p in missing]}"
            )
        for pipe, value in self.pipe_tflops.items():
            if value <= 0:
                raise SpecificationError(
                    f"pipe_tflops[{pipe.value}] must be positive, got {value}"
                )
        if not self.mig_instance_sizes:
            raise SpecificationError("mig_instance_sizes must not be empty")
        if tuple(sorted(set(self.mig_instance_sizes))) != tuple(self.mig_instance_sizes):
            raise SpecificationError(
                f"mig_instance_sizes must be strictly increasing, got {self.mig_instance_sizes}"
            )
        for size in self.mig_instance_sizes:
            if size <= 0:
                raise SpecificationError(f"instance size {size} must be positive")
        missing_sizes = [s for s in self.mig_instance_sizes if s not in self.mig_mem_slices]
        if missing_sizes:
            raise SpecificationError(
                f"mig_mem_slices is missing entries for instance sizes: {missing_sizes}"
            )
        for size, slices in self.mig_mem_slices.items():
            if not (0 < slices <= self.n_mem_slices):
                raise SpecificationError(
                    f"mig_mem_slices[{size}] must be in (0, {self.n_mem_slices}], got {slices}"
                )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def total_sms(self) -> int:
        """Total SM count of the full (non-MIG) chip."""
        return self.n_gpcs * self.sms_per_gpc

    @property
    def min_relative_frequency(self) -> float:
        """Lowest relative frequency the DVFS governor may select."""
        return self.min_clock_ghz / self.max_clock_ghz

    @property
    def base_relative_frequency(self) -> float:
        """Base clock expressed as a fraction of the boost clock."""
        return self.base_clock_ghz / self.max_clock_ghz

    def pipe_throughput(self, pipe: Pipe, n_gpcs: int | None = None) -> float:
        """Peak throughput of ``pipe`` in TFLOP/s for ``n_gpcs`` GPCs.

        Compute throughput scales linearly with the number of GPCs; when
        ``n_gpcs`` is ``None`` the full chip is assumed.
        """
        if n_gpcs is None:
            n_gpcs = self.n_gpcs
        if not (0 < n_gpcs <= self.n_gpcs):
            raise SpecificationError(
                f"n_gpcs must be in (0, {self.n_gpcs}], got {n_gpcs}"
            )
        return self.pipe_tflops[pipe] * n_gpcs / self.n_gpcs

    def slice_bandwidth_gbs(self, n_slices: int) -> float:
        """Peak DRAM bandwidth available through ``n_slices`` LLC/HBM slices."""
        if not (0 < n_slices <= self.n_mem_slices):
            raise SpecificationError(
                f"n_slices must be in (0, {self.n_mem_slices}], got {n_slices}"
            )
        return self.dram_bandwidth_gbs * n_slices / self.n_mem_slices

    def validate_power_cap(self, power_cap_w: float) -> float:
        """Validate a power-cap request and return it unchanged.

        Raises
        ------
        repro.errors.PowerCapError
            If the requested cap lies outside the supported range.
        """
        from repro.errors import PowerCapError

        if not (self.min_power_cap_w <= power_cap_w <= self.max_power_cap_w):
            raise PowerCapError(
                f"power cap {power_cap_w} W outside supported range "
                f"[{self.min_power_cap_w}, {self.max_power_cap_w}] W"
            )
        return float(power_cap_w)

    def instance_mem_slices(self, gpcs: int) -> int:
        """Memory slices a private GPU Instance of ``gpcs`` GPCs receives."""
        try:
            return self.mig_mem_slices[gpcs]
        except KeyError:
            raise SpecificationError(
                f"{gpcs} GPCs is not a valid instance size on {self.name}; "
                f"valid sizes are {self.mig_instance_sizes}"
            ) from None

    def smallest_instance_holding(self, gpcs: int) -> int:
        """The smallest MIG instance size that can host ``gpcs`` GPCs."""
        for size in self.mig_instance_sizes:
            if size >= gpcs:
                return size
        raise SpecificationError(
            f"no instance profile on {self.name} can hold {gpcs} GPCs "
            f"(largest is {self.mig_instance_sizes[-1]})"
        )

    def with_overrides(self, **kwargs: object) -> "GPUSpec":
        """Return a copy of this spec with selected fields replaced."""
        return replace(self, **kwargs)  # type: ignore[arg-type]


#: Default specification modelled after the paper's NVIDIA A100 40 GB PCIe.
A100_SPEC = GPUSpec()

#: An H100-SXM-style part: same 7-GPC MIG layout as the A100 but with much
#: higher pipe throughputs, HBM3 bandwidth, and a far larger power envelope.
H100_SPEC = GPUSpec(
    name="Simulated-H100-80GB",
    n_gpcs=8,
    mig_gpcs=7,
    sms_per_gpc=16,
    pipe_tflops={
        Pipe.FP32: 67.0,
        Pipe.FP64: 34.0,
        Pipe.TENSOR_MIXED: 989.0,
        Pipe.TENSOR_DOUBLE: 67.0,
        Pipe.TENSOR_INT: 1979.0,
    },
    dram_bandwidth_gbs=3350.0,
    n_mem_slices=8,
    l2_cache_mb=50.0,
    hbm_capacity_gb=80.0,
    max_clock_ghz=1.980,
    base_clock_ghz=1.590,
    min_clock_ghz=0.450,
    clock_step_ghz=0.015,
    default_power_limit_w=700.0,
    min_power_cap_w=200.0,
    max_power_cap_w=700.0,
    static_power_w=60.0,
    gpc_idle_power_w=5.0,
    gpc_cuda_power_w=42.0,
    gpc_tensor_power_w=62.0,
    hbm_idle_power_w=45.0,
    hbm_dynamic_power_w=130.0,
)

#: An A30-style part: 4 GPCs, 4 memory slices, and a coarser MIG profile
#: table (no 3-GPC instance exists on the A30).
A30_SPEC = GPUSpec(
    name="Simulated-A30-24GB",
    n_gpcs=4,
    mig_gpcs=4,
    sms_per_gpc=14,
    pipe_tflops={
        Pipe.FP32: 10.3,
        Pipe.FP64: 5.2,
        Pipe.TENSOR_MIXED: 165.0,
        Pipe.TENSOR_DOUBLE: 10.3,
        Pipe.TENSOR_INT: 330.0,
    },
    dram_bandwidth_gbs=933.0,
    n_mem_slices=4,
    l2_cache_mb=24.0,
    hbm_capacity_gb=24.0,
    max_clock_ghz=1.440,
    base_clock_ghz=0.930,
    min_clock_ghz=0.420,
    clock_step_ghz=0.015,
    default_power_limit_w=165.0,
    min_power_cap_w=100.0,
    max_power_cap_w=165.0,
    static_power_w=18.0,
    gpc_idle_power_w=2.5,
    gpc_cuda_power_w=14.0,
    gpc_tensor_power_w=20.0,
    hbm_idle_power_w=12.0,
    hbm_dynamic_power_w=30.0,
    mig_instance_sizes=(1, 2, 4),
    mig_mem_slices={1: 1, 2: 2, 4: 4},
)

#: An MI300X-style part: 8 XCDs ("GPCs" in this library's vocabulary) and
#: 8 HBM stacks partitioned *independently* — compute modes SPX/DPX/QPX/CPX
#: (1×8, 2×4, 4×2, 8×1 XCDs) crossed with NPS1/2/4/8 memory modes — so the
#: spec carries the :class:`~repro.gpu.scheme.IndependentAxesScheme` instead
#: of the MIG profile table.  ``mig_mem_slices`` keeps the per-size stack
#: counts a lone NPS-per-partition placement sees (size g → g stacks) for
#: profile-table fallbacks; the scheme, not the table, is authoritative.
MI300X_SPEC = GPUSpec(
    name="Simulated-MI300X-192GB",
    n_gpcs=8,
    mig_gpcs=8,
    sms_per_gpc=38,
    pipe_tflops={
        Pipe.FP32: 163.4,
        Pipe.FP64: 81.7,
        Pipe.TENSOR_MIXED: 1307.4,
        Pipe.TENSOR_DOUBLE: 163.4,
        Pipe.TENSOR_INT: 2614.9,
    },
    dram_bandwidth_gbs=5300.0,
    n_mem_slices=8,
    l2_cache_mb=256.0,
    hbm_capacity_gb=192.0,
    max_clock_ghz=2.100,
    base_clock_ghz=1.500,
    min_clock_ghz=0.500,
    clock_step_ghz=0.015,
    default_power_limit_w=750.0,
    min_power_cap_w=300.0,
    max_power_cap_w=750.0,
    static_power_w=60.0,
    gpc_idle_power_w=5.0,
    gpc_cuda_power_w=48.0,
    gpc_tensor_power_w=70.0,
    hbm_idle_power_w=50.0,
    hbm_dynamic_power_w=140.0,
    dvfs_exponent=2.4,
    mig_instance_sizes=(1, 2, 4, 8),
    mig_mem_slices={1: 1, 2: 2, 4: 4, 8: 8},
    scheme=IndependentAxesScheme(),
)

#: Registry of the built-in hardware specifications, by short name.
GPU_SPECS: Mapping[str, GPUSpec] = {
    "a100": A100_SPEC,
    "h100": H100_SPEC,
    "a30": A30_SPEC,
    "mi300x": MI300X_SPEC,
}


def builtin_spec_named(full_name: str) -> GPUSpec | None:
    """The built-in :class:`GPUSpec` whose ``name`` field is ``full_name``.

    Returns ``None`` when no built-in spec matches (e.g. a custom spec);
    used by model deserialization to resolve the spec a document recorded.
    """
    for spec in GPU_SPECS.values():
        if spec.name == full_name:
            return spec
    return None


def spec_by_name(name: str) -> GPUSpec:
    """Look up a built-in :class:`GPUSpec` by short name (case-insensitive).

    Raises
    ------
    repro.errors.SpecificationError
        If no specification with that name exists, listing the valid names.
    """
    key = name.strip().lower()
    try:
        return GPU_SPECS[key]
    except KeyError:
        raise SpecificationError(
            f"unknown GPU spec {name!r}; valid names are {sorted(GPU_SPECS)}"
        ) from None
