"""Chip power model and power-cap governor.

The paper controls the GPU with chip-level power caps set through
``nvidia-smi`` (150 W … 250 W).  On real hardware the driver enforces the
cap by throttling the clock; this module reproduces that behaviour
analytically:

* :class:`PowerModel` computes the chip power for a given operating point
  (relative clock frequency) and a set of *instance loads* — per-MIG-instance
  utilization of the CUDA cores, Tensor Cores, and DRAM bandwidth.
* :meth:`PowerModel.max_frequency_under_cap` plays the role of the driver's
  governor: it finds the highest (quantized) clock at which the modelled
  power stays under the cap.

The power decomposition is deliberately simple but captures the effects that
drive the paper's observations:

* Tensor-Core activity is the most power-hungry per GPC, so Tensor-intensive
  kernels (``hgemm`` & friends) are throttled hardest under low caps
  (Figure 5).
* Memory-bound kernels (``stream``) and unscalable kernels (``kmeans``)
  leave the compute pipes mostly idle, so the cap barely affects them.
* Power grows with the number of *active* GPCs, so small partitions are
  naturally less affected by the cap than the full chip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import ConfigurationError
from repro.gpu.clocks import DVFSModel
from repro.gpu.spec import A100_SPEC, GPUSpec
from repro.units import clamp


@dataclass(frozen=True)
class InstanceLoad:
    """Steady-state activity of one MIG instance (or of the whole chip).

    Attributes
    ----------
    n_gpcs:
        Number of GPCs executing this load.
    cuda_utilization:
        Average utilization of the CUDA (FP32/FP64) pipes, in ``[0, 1]``.
    tensor_utilization:
        Average utilization of the Tensor-Core pipes, in ``[0, 1]``.
    dram_bw_fraction:
        Achieved DRAM bandwidth as a fraction of the *full chip* peak
        bandwidth, in ``[0, 1]``.
    """

    n_gpcs: int
    cuda_utilization: float
    tensor_utilization: float
    dram_bw_fraction: float

    def __post_init__(self) -> None:
        if self.n_gpcs <= 0:
            raise ConfigurationError(f"n_gpcs must be positive, got {self.n_gpcs}")
        for name, value in (
            ("cuda_utilization", self.cuda_utilization),
            ("tensor_utilization", self.tensor_utilization),
            ("dram_bw_fraction", self.dram_bw_fraction),
        ):
            if not (-1e-9 <= value <= 1.0 + 1e-9):
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")


#: Backwards-compatible alias — a GPC-granularity load is just an
#: :class:`InstanceLoad` with ``n_gpcs`` GPCs.
GPCLoad = InstanceLoad


@dataclass(frozen=True)
class PowerBreakdown:
    """Decomposition of the modelled chip power at one operating point."""

    static_w: float
    gpc_idle_w: float
    gpc_dynamic_w: float
    hbm_idle_w: float
    hbm_dynamic_w: float
    relative_frequency: float

    @property
    def total_w(self) -> float:
        """Total chip power in watts."""
        return (
            self.static_w
            + self.gpc_idle_w
            + self.gpc_dynamic_w
            + self.hbm_idle_w
            + self.hbm_dynamic_w
        )


class PowerModel:
    """Analytic chip power model with a power-cap governor.

    Parameters
    ----------
    spec:
        Hardware specification supplying the power-model constants.
    dvfs:
        DVFS model used for power scaling and clock quantization; a default
        one is built from ``spec`` when omitted.
    """

    def __init__(self, spec: GPUSpec = A100_SPEC, dvfs: DVFSModel | None = None) -> None:
        self._spec = spec
        self._dvfs = dvfs if dvfs is not None else DVFSModel(spec)

    @property
    def spec(self) -> GPUSpec:
        """The hardware specification the model was built from."""
        return self._spec

    @property
    def dvfs(self) -> DVFSModel:
        """The DVFS model used by the governor."""
        return self._dvfs

    # ------------------------------------------------------------------
    # Forward power model
    # ------------------------------------------------------------------
    def breakdown(
        self,
        loads: Sequence[InstanceLoad],
        relative_frequency: float,
        powered_gpcs: int | None = None,
    ) -> PowerBreakdown:
        """Compute the power breakdown at a given operating point.

        Parameters
        ----------
        loads:
            Per-instance activity descriptors.  The sum of their ``n_gpcs``
            must not exceed ``powered_gpcs``.
        relative_frequency:
            Chip clock as a fraction of the boost clock.
        powered_gpcs:
            Number of GPCs that are powered on (idle GPCs still draw their
            idle power).  Defaults to the full chip; MIG mode powers only
            ``spec.mig_gpcs``.
        """
        if powered_gpcs is None:
            powered_gpcs = self._spec.n_gpcs
        if not (0 < powered_gpcs <= self._spec.n_gpcs):
            raise ConfigurationError(
                f"powered_gpcs must be in (0, {self._spec.n_gpcs}], got {powered_gpcs}"
            )
        busy_gpcs = sum(load.n_gpcs for load in loads)
        if busy_gpcs > powered_gpcs:
            raise ConfigurationError(
                f"loads occupy {busy_gpcs} GPCs but only {powered_gpcs} are powered"
            )
        scale = self._dvfs.dynamic_power_scale(relative_frequency)
        gpc_dynamic = 0.0
        total_bw_fraction = 0.0
        for load in loads:
            per_gpc = (
                self._spec.gpc_cuda_power_w * load.cuda_utilization
                + self._spec.gpc_tensor_power_w * load.tensor_utilization
            )
            gpc_dynamic += load.n_gpcs * per_gpc * scale
            total_bw_fraction += load.dram_bw_fraction
        total_bw_fraction = clamp(total_bw_fraction, 0.0, 1.0)
        return PowerBreakdown(
            static_w=self._spec.static_power_w,
            gpc_idle_w=powered_gpcs * self._spec.gpc_idle_power_w,
            gpc_dynamic_w=gpc_dynamic,
            hbm_idle_w=self._spec.hbm_idle_power_w,
            hbm_dynamic_w=self._spec.hbm_dynamic_power_w * total_bw_fraction,
            relative_frequency=relative_frequency,
        )

    def total_power(
        self,
        loads: Sequence[InstanceLoad],
        relative_frequency: float,
        powered_gpcs: int | None = None,
    ) -> float:
        """Total chip power in watts at the given operating point."""
        return self.breakdown(loads, relative_frequency, powered_gpcs).total_w

    def idle_power(self, powered_gpcs: int | None = None) -> float:
        """Chip power with every pipe idle (no kernels running)."""
        return self.breakdown([], self._spec.min_relative_frequency, powered_gpcs).total_w

    # ------------------------------------------------------------------
    # Power-cap governor
    # ------------------------------------------------------------------
    def max_frequency_under_cap(
        self,
        loads_at: Callable[[float], Sequence[InstanceLoad]],
        power_cap_w: float,
        powered_gpcs: int | None = None,
        tolerance: float = 1e-4,
    ) -> float:
        """Highest quantized relative frequency whose power fits under the cap.

        Parameters
        ----------
        loads_at:
            Callable mapping a relative frequency to the instance loads at
            that frequency.  The execution engine supplies this because the
            pipe utilizations themselves depend on the operating point (a
            throttled compute-bound kernel stays fully busy; a throttled
            memory-bound kernel becomes *less* compute-utilized).
        power_cap_w:
            The chip-level power cap in watts.
        powered_gpcs:
            Number of powered GPCs (see :meth:`breakdown`).
        tolerance:
            Bisection convergence tolerance on the relative frequency.

        Returns
        -------
        float
            The selected relative frequency.  If even the lowest clock
            exceeds the cap the lowest clock is returned (a real GPU cannot
            stop the clock entirely either).
        """
        self._spec.validate_power_cap(power_cap_w)
        lo = self._spec.min_relative_frequency
        hi = 1.0

        def power(f: float) -> float:
            return self.total_power(loads_at(f), f, powered_gpcs)

        if power(hi) <= power_cap_w:
            return 1.0
        if power(lo) > power_cap_w:
            return self._dvfs.quantize(lo)
        # The power model is monotonically increasing in f for fixed work,
        # so a plain bisection finds the crossing point.
        while hi - lo > tolerance:
            mid = 0.5 * (lo + hi)
            if power(mid) <= power_cap_w:
                lo = mid
            else:
                hi = mid
        selected = self._dvfs.quantize(lo)
        # Quantization floors the frequency, so the cap still holds; guard
        # against pathological cases where flooring is not possible.
        if power(selected) > power_cap_w + 1e-6 and selected > self._spec.min_relative_frequency:
            selected = self._dvfs.quantize(max(self._spec.min_relative_frequency, lo - self._spec.clock_step_ghz / self._spec.max_clock_ghz))
        return selected
