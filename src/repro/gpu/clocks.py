"""DVFS (dynamic voltage and frequency scaling) model.

The power-cap governor (:mod:`repro.gpu.power`) lowers the chip clock until
the modelled power fits under the cap — exactly what the real driver does
when ``nvidia-smi -pl`` is used.  This module isolates the clock-related
pieces of that behaviour:

* the mapping from a *relative frequency* ``f`` (1.0 = boost clock) to the
  dynamic-power scale factor ``f ** dvfs_exponent``;
* quantization of the continuous frequency returned by the governor's
  bisection to the discrete clock steps a real GPU supports;
* conversion helpers between absolute GHz and relative frequency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.gpu.spec import A100_SPEC, GPUSpec
from repro.units import clamp


@dataclass(frozen=True)
class ClockState:
    """A concrete operating point of the chip clock domain.

    Attributes
    ----------
    relative:
        Frequency as a fraction of the boost clock (``0 < relative <= 1``).
    ghz:
        Absolute frequency in GHz.
    throttled:
        Whether the governor had to reduce the clock below the boost clock
        to satisfy the active power cap.
    """

    relative: float
    ghz: float
    throttled: bool


class DVFSModel:
    """Clock/voltage scaling behaviour of the simulated GPU.

    Parameters
    ----------
    spec:
        Hardware specification providing clock bounds, the quantization step
        and the dynamic-power exponent.
    """

    def __init__(self, spec: GPUSpec = A100_SPEC) -> None:
        self._spec = spec

    @property
    def spec(self) -> GPUSpec:
        """The hardware specification this model was built from."""
        return self._spec

    @property
    def min_relative(self) -> float:
        """Lowest selectable relative frequency."""
        return self._spec.min_relative_frequency

    @property
    def max_relative(self) -> float:
        """Highest selectable relative frequency (always 1.0)."""
        return 1.0

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_ghz(self, relative: float) -> float:
        """Convert a relative frequency to absolute GHz."""
        self._check_relative(relative)
        return relative * self._spec.max_clock_ghz

    def to_relative(self, ghz: float) -> float:
        """Convert an absolute frequency in GHz to a relative frequency."""
        if ghz <= 0:
            raise ConfigurationError(f"frequency must be positive, got {ghz} GHz")
        return clamp(ghz / self._spec.max_clock_ghz, self.min_relative, 1.0)

    # ------------------------------------------------------------------
    # Power scaling
    # ------------------------------------------------------------------
    def dynamic_power_scale(self, relative: float) -> float:
        """Dynamic-power multiplier at relative frequency ``relative``.

        Dynamic power scales as ``f ** e`` with ``e = spec.dvfs_exponent``;
        at the boost clock the multiplier is exactly 1.
        """
        self._check_relative(relative)
        return float(relative**self._spec.dvfs_exponent)

    def performance_scale(self, relative: float) -> float:
        """Compute-performance multiplier at relative frequency ``relative``.

        Compute-bound work scales linearly with the clock; memory bandwidth
        is modelled as clock-independent (HBM sits in its own clock domain).
        """
        self._check_relative(relative)
        return float(relative)

    # ------------------------------------------------------------------
    # Quantization
    # ------------------------------------------------------------------
    def quantize(self, relative: float) -> float:
        """Snap a relative frequency down to the nearest supported step.

        Real GPUs expose a discrete ladder of clock offsets; the governor's
        continuous bisection result is therefore floored to the step grid
        (flooring, not rounding, so the power cap is never exceeded).
        """
        self._check_relative(relative)
        ghz = relative * self._spec.max_clock_ghz
        step = self._spec.clock_step_ghz
        quantized_ghz = max(self._spec.min_clock_ghz, step * int(ghz / step + 1e-9))
        quantized_ghz = min(quantized_ghz, self._spec.max_clock_ghz)
        return quantized_ghz / self._spec.max_clock_ghz

    def clock_state(self, relative: float) -> ClockState:
        """Build a :class:`ClockState` for a (possibly throttled) frequency."""
        quantized = self.quantize(relative)
        return ClockState(
            relative=quantized,
            ghz=self.to_ghz(quantized),
            throttled=quantized < 1.0 - 1e-9,
        )

    def available_steps(self) -> tuple[float, ...]:
        """All selectable relative frequencies, from lowest to highest."""
        steps = []
        ghz = self._spec.min_clock_ghz
        while ghz < self._spec.max_clock_ghz - 1e-12:
            steps.append(ghz / self._spec.max_clock_ghz)
            ghz += self._spec.clock_step_ghz
        steps.append(1.0)
        return tuple(steps)

    # ------------------------------------------------------------------
    def _check_relative(self, relative: float) -> None:
        if not (0.0 < relative <= 1.0 + 1e-12):
            raise ConfigurationError(
                f"relative frequency must be in (0, 1], got {relative}"
            )
