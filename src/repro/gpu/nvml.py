"""NVML / ``nvidia-smi``-style facade over the simulated GPU.

The paper's tooling drives the real A100 through two interfaces:

* ``nvidia-smi -pl <watts>`` to set the chip power cap, and
* ``nvidia-smi mig -cgi/-cci`` (or the NVML MIG APIs) to create GPU and
  Compute Instances.

Higher layers of this library never need to touch those interfaces — the
simulator takes :class:`~repro.gpu.mig.PartitionState` / power-cap values
directly — but the facade exists so that (a) example scripts can show the
same administration workflow a real deployment would use, and (b) tests can
exercise the error behaviour of the administration path (invalid caps,
double-enable, missing instances, ...).

Two API styles are provided:

* :class:`SimulatedNVML` — a pynvml-like functional API
  (``nvmlDeviceSetPowerManagementLimit`` and friends, with watt↔milliwatt
  conversions as in the real library).
* :class:`SimulatedSMI` — a small convenience wrapper that mimics the
  ``nvidia-smi`` commands used in the paper and keeps a command log.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PartitioningError, PowerCapError
from repro.gpu.mig import MIGManager, PartitionState
from repro.gpu.spec import A100_SPEC, GPUSpec


@dataclass
class DeviceHandle:
    """Opaque handle to a simulated device (index 0 is the only GPU)."""

    index: int
    spec: GPUSpec


@dataclass
class DeviceState:
    """Mutable administrative state of the simulated device."""

    power_limit_w: float
    mig_mode_pending: bool = False
    persistence_mode: bool = False


class SimulatedNVML:
    """pynvml-work-alike bound to a single simulated GPU.

    Only the calls the paper's workflow needs are implemented; unknown
    queries raise :class:`AttributeError` naturally.
    """

    def __init__(self, spec: GPUSpec = A100_SPEC) -> None:
        self._spec = spec
        self._initialized = False
        self._mig = MIGManager(spec)
        self._state = DeviceState(power_limit_w=spec.default_power_limit_w)

    # ------------------------------------------------------------------
    # Library lifecycle
    # ------------------------------------------------------------------
    def nvmlInit(self) -> None:
        """Initialize the library (idempotent)."""
        self._initialized = True

    def nvmlShutdown(self) -> None:
        """Shut the library down (idempotent)."""
        self._initialized = False

    def _require_init(self) -> None:
        if not self._initialized:
            raise RuntimeError("NVML has not been initialized (call nvmlInit first)")

    # ------------------------------------------------------------------
    # Device enumeration
    # ------------------------------------------------------------------
    def nvmlDeviceGetCount(self) -> int:
        """Number of simulated devices (always 1)."""
        self._require_init()
        return 1

    def nvmlDeviceGetHandleByIndex(self, index: int) -> DeviceHandle:
        """Handle for device ``index``."""
        self._require_init()
        if index != 0:
            raise PartitioningError(f"no device with index {index}")
        return DeviceHandle(index=0, spec=self._spec)

    def nvmlDeviceGetName(self, handle: DeviceHandle) -> str:
        """Marketing name of the device."""
        self._require_init()
        return handle.spec.name

    # ------------------------------------------------------------------
    # Power management (NVML uses milliwatts)
    # ------------------------------------------------------------------
    def nvmlDeviceGetPowerManagementLimit(self, handle: DeviceHandle) -> int:
        """Current power limit in milliwatts."""
        self._require_init()
        return int(round(self._state.power_limit_w * 1000))

    def nvmlDeviceGetPowerManagementDefaultLimit(self, handle: DeviceHandle) -> int:
        """Factory default power limit in milliwatts."""
        self._require_init()
        return int(round(self._spec.default_power_limit_w * 1000))

    def nvmlDeviceGetPowerManagementLimitConstraints(
        self, handle: DeviceHandle
    ) -> tuple[int, int]:
        """(min, max) supported power limits in milliwatts."""
        self._require_init()
        return (
            int(round(self._spec.min_power_cap_w * 1000)),
            int(round(self._spec.max_power_cap_w * 1000)),
        )

    def nvmlDeviceSetPowerManagementLimit(
        self, handle: DeviceHandle, limit_mw: int
    ) -> None:
        """Set the chip power limit (milliwatts, like the real API)."""
        self._require_init()
        watts = limit_mw / 1000.0
        if not (self._spec.min_power_cap_w <= watts <= self._spec.max_power_cap_w):
            raise PowerCapError(
                f"power limit {watts} W outside supported range "
                f"[{self._spec.min_power_cap_w}, {self._spec.max_power_cap_w}] W"
            )
        self._state.power_limit_w = watts

    # ------------------------------------------------------------------
    # MIG management
    # ------------------------------------------------------------------
    def nvmlDeviceSetMigMode(self, handle: DeviceHandle, enable: bool) -> None:
        """Enable or disable MIG mode on the device."""
        self._require_init()
        if enable:
            self._mig.enable_mig()
        else:
            self._mig.disable_mig()

    def nvmlDeviceGetMigMode(self, handle: DeviceHandle) -> bool:
        """Whether MIG mode is currently enabled."""
        self._require_init()
        return self._mig.mig_enabled

    # ------------------------------------------------------------------
    # Convenience accessors used by the rest of the library / examples
    # ------------------------------------------------------------------
    @property
    def mig_manager(self) -> MIGManager:
        """The underlying MIG manager (for instance creation)."""
        return self._mig

    @property
    def power_limit_w(self) -> float:
        """Current power limit in watts."""
        return self._state.power_limit_w


class SimulatedSMI:
    """``nvidia-smi``-style convenience wrapper with a command log.

    The command log records the equivalent shell commands an operator (or a
    SLURM prolog script) would have issued, which makes example output easy
    to relate back to the paper's methodology.
    """

    def __init__(self, spec: GPUSpec = A100_SPEC) -> None:
        self._nvml = SimulatedNVML(spec)
        self._nvml.nvmlInit()
        self._handle = self._nvml.nvmlDeviceGetHandleByIndex(0)
        self._spec = spec
        self.command_log: list[str] = []

    @property
    def nvml(self) -> SimulatedNVML:
        """The underlying NVML facade."""
        return self._nvml

    @property
    def spec(self) -> GPUSpec:
        """The device specification."""
        return self._spec

    @property
    def power_limit_w(self) -> float:
        """Current chip power limit in watts."""
        return self._nvml.power_limit_w

    # ------------------------------------------------------------------
    def set_power_limit(self, watts: float) -> None:
        """``nvidia-smi -pl <watts>``."""
        self._nvml.nvmlDeviceSetPowerManagementLimit(self._handle, int(round(watts * 1000)))
        self.command_log.append(f"nvidia-smi -pl {watts:g}")

    def enable_mig(self) -> None:
        """``nvidia-smi -mig 1``."""
        self._nvml.nvmlDeviceSetMigMode(self._handle, True)
        self.command_log.append("nvidia-smi -mig 1")

    def disable_mig(self) -> None:
        """``nvidia-smi -mig 0``."""
        self._nvml.nvmlDeviceSetMigMode(self._handle, False)
        self.command_log.append("nvidia-smi -mig 0")

    def apply_partition_state(self, state: PartitionState) -> tuple[str, ...]:
        """Create the GIs/CIs of ``state`` and return the CI UUIDs.

        The returned UUIDs are what a job manager would export through
        ``CUDA_VISIBLE_DEVICES`` for each co-located job.
        """
        cis = self._nvml.mig_manager.apply_partition_state(state)
        self.command_log.append(f"nvidia-smi mig # apply {state.describe()}")
        return tuple(ci.uuid for ci in cis)

    def visible_devices(self) -> tuple[str, ...]:
        """UUIDs of all Compute Instances currently configured."""
        return tuple(self._nvml.mig_manager.iter_visible_devices())

    def reset_partitions(self) -> None:
        """Destroy all MIG instances (``nvidia-smi mig -dci/-dgi``)."""
        self._nvml.mig_manager.reset()
        self.command_log.append("nvidia-smi mig -dci && nvidia-smi mig -dgi")
