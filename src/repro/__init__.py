"""repro — reproduction of *"Optimizing Hardware Resource Partitioning and
Job Allocations on Modern GPUs under Power Caps"* (Arima et al., ICPP
Workshops 2022) on a simulated A100-class substrate.

The library is organised in layers (see ``DESIGN.md`` for the full map):

* :mod:`repro.gpu` — simulated A100-class GPU: MIG partitioning, chip power
  model, power-cap governor, NVML-style administration facade.
* :mod:`repro.workloads` — analytic models of the paper's benchmarks
  (CUTLASS GEMM variants, Rodinia kernels, stream/randomaccess) and the
  Table 7 classification / Table 8 co-run pairs.
* :mod:`repro.sim` — the execution simulator (roofline composition, LLC/HBM
  interference, DVFS under power caps, measurement noise, profiling).
* :mod:`repro.profiling` — profile collection and the profile database.
* :mod:`repro.core` — the paper's contribution: Table 4 basis functions,
  the linear-regression performance model, least-squares calibration,
  throughput/fairness/energy-efficiency metrics, the two optimization
  problems, and the Resource & Power Allocator.
* :mod:`repro.cluster` — a compact job manager / co-scheduler around the
  allocator (the paper's Figure 1 context).
* :mod:`repro.analysis` — regeneration of every table and figure of the
  paper's evaluation, plus ablations.
* :mod:`repro.api` — the typed service layer: frozen request/response
  dataclasses and the session-caching :class:`PlannerService` facade (the
  surface the CLI and embedding callers use).

Quickstart
----------
>>> from repro import PlannerService, DecisionRequest
>>> service = PlannerService()                          # trains once per spec
>>> result = service.decide(
...     DecisionRequest(apps=("igemm4", "stream"), power_cap_w=230)
... )
>>> result.state, result.power_cap_w
"""

from repro._version import VERSION, __version__
from repro.api import (
    DecisionRequest,
    DecisionResult,
    PlannerService,
    PlannerSession,
    SimulationRequest,
    SimulationResult,
    StatesRequest,
    StatesResult,
)
from repro.config import DEFAULT_CONFIG, DEFAULT_POWER_CAPS, EvaluationConfig
from repro.core import (
    AllocationDecision,
    LinearPerfModel,
    ModelTrainer,
    OfflineTrainer,
    OnlineAllocator,
    PaperWorkflow,
    Problem1Policy,
    Problem2Policy,
    ResourcePowerAllocator,
)
from repro.gpu import (
    A100_SPEC,
    A30_SPEC,
    CORUN_STATES,
    GPU_SPECS,
    GPUSpec,
    H100_SPEC,
    MemoryOption,
    MIGManager,
    PartitionState,
    S1,
    S2,
    S3,
    S4,
    SimulatedSMI,
    enumerate_partition_states,
    solo_state,
    spec_by_name,
)
from repro.cluster import (
    ClusterSimulator,
    JobManager,
    SimulationConfig,
    SimulationReport,
)
from repro.profiling import ProfileCollector, ProfileDatabase, ProfileRecord
from repro.sim import CoRunResult, NoiseModel, PerformanceSimulator, RunResult
from repro.traces import Trace, bursty_trace, load_trace, poisson_trace, save_trace
from repro.workloads import (
    CORUN_GROUPS,
    CORUN_PAIRS,
    DEFAULT_SUITE,
    BenchmarkSuite,
    CoRunGroup,
    KernelCharacteristics,
    WorkloadClass,
    get_kernel,
)

__all__ = [
    "__version__",
    "VERSION",
    # Service-layer API
    "PlannerService",
    "PlannerSession",
    "DecisionRequest",
    "DecisionResult",
    "SimulationRequest",
    "SimulationResult",
    "StatesRequest",
    "StatesResult",
    "EvaluationConfig",
    "DEFAULT_CONFIG",
    "DEFAULT_POWER_CAPS",
    # GPU substrate
    "GPUSpec",
    "A100_SPEC",
    "H100_SPEC",
    "A30_SPEC",
    "GPU_SPECS",
    "spec_by_name",
    "MemoryOption",
    "PartitionState",
    "MIGManager",
    "SimulatedSMI",
    "CORUN_STATES",
    "S1",
    "S2",
    "S3",
    "S4",
    "enumerate_partition_states",
    "solo_state",
    # Workloads
    "KernelCharacteristics",
    "WorkloadClass",
    "BenchmarkSuite",
    "DEFAULT_SUITE",
    "CORUN_PAIRS",
    "CORUN_GROUPS",
    "CoRunGroup",
    "get_kernel",
    # Simulator
    "PerformanceSimulator",
    "RunResult",
    "CoRunResult",
    "NoiseModel",
    # Profiling
    "ProfileRecord",
    "ProfileCollector",
    "ProfileDatabase",
    # Core methodology
    "LinearPerfModel",
    "ModelTrainer",
    "ResourcePowerAllocator",
    "AllocationDecision",
    "Problem1Policy",
    "Problem2Policy",
    "OfflineTrainer",
    "OnlineAllocator",
    "PaperWorkflow",
    # Cluster + traces
    "JobManager",
    "ClusterSimulator",
    "SimulationConfig",
    "SimulationReport",
    "Trace",
    "poisson_trace",
    "bursty_trace",
    "load_trace",
    "save_trace",
]
