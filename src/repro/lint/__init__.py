"""``repro.lint`` — the AST-based invariant analyzer.

Every accuracy and throughput claim this reproduction makes rests on
bit-exact parity pins: fit row order, summation order, cache invalidation,
seeded randomness.  Those invariants used to live only in reviewers'
heads; this package mechanizes them as a static-analysis pass that CI runs
in ``--strict`` mode (``repro lint --strict src tests``).

* :mod:`repro.lint.rules` — the rule registry (RL001–RL006), each rule
  one AST check over one module;
* :mod:`repro.lint.analyzer` — discovery, dispatch, and ``# repro:
  allow[RLxxx]`` suppression handling;
* :mod:`repro.lint.findings` — the :class:`Finding` value object;
* :mod:`repro.lint.report` — human-readable rendering.

Run it programmatically::

    from repro.lint import analyze_paths

    report = analyze_paths(["src"])
    assert report.clean(strict=True), report.findings

or through the service layer / CLI (``repro lint``), which wraps the
report in the typed :class:`~repro.api.results.LintResult`.
"""

from repro.lint.analyzer import (
    EXCLUDED_DIR_NAMES,
    LintReport,
    analyze_paths,
    analyze_source,
    discover_files,
    select_rules,
    suppressed_lines,
)
from repro.lint.findings import Finding, Severity
from repro.lint.report import render_report, render_rules
from repro.lint.rules import RULES, ModuleContext, Rule

__all__ = [
    "EXCLUDED_DIR_NAMES",
    "Finding",
    "LintReport",
    "ModuleContext",
    "RULES",
    "Rule",
    "Severity",
    "analyze_paths",
    "analyze_source",
    "discover_files",
    "render_report",
    "render_rules",
    "select_rules",
    "suppressed_lines",
]
