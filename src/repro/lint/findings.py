"""The value objects of the invariant analyzer: findings and severities.

A :class:`Finding` is one rule violation at one source location — plain,
frozen, orderable data, so reports sort deterministically (path, line,
column, rule) and serialize to JSON unchanged.  The analyzer produces them;
the reporters (:mod:`repro.lint.report`) and the service-layer
:class:`~repro.api.results.LintResult` only consume them.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from enum import Enum
from typing import Any, Mapping


class Severity(str, Enum):
    """How a finding gates the exit status.

    ``ERROR`` findings fail every run; ``WARNING`` findings fail only under
    ``--strict`` (the mode CI runs).
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: str
    message: str

    def format(self) -> str:
        """The canonical one-line rendering (``path:line:col: RLxxx ...``)."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity}] {self.message}"
        )

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (JSON-safe)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Finding":
        """Rebuild a finding from :meth:`to_dict` output."""
        return cls(**dict(data))
