"""The rule registry: every invariant the analyzer mechanizes.

Each rule encodes one repository invariant that parity (bit-exact
reproduction of the paper's numbers) or cache coherence rests on.  A rule
is a small AST check over one module; it yields ``(line, col, message)``
triples and the analyzer turns them into
:class:`~repro.lint.findings.Finding` records, applies ``# repro:
allow[RLxxx]`` suppressions, and sorts the result.

The rules:

========  =============================================================
RL001     memo mapping keyed on ``id(obj)`` without a weakref identity
          guard (the PR-7 dispatch-memo flake class)
RL002     iteration over an unordered ``set``/``frozenset`` where the
          resulting order feeds fits, enumeration, or serialization
RL003     a class with a ``version`` membership counter whose method
          mutates memo-feeding container state without bumping it
RL004     numpy reductions (``np.sum``/``arr.sum()``/``sum(arr)``) in
          parity-pinned power-budget modules instead of the pinned
          ``float(sum(arr.tolist()))`` sequential idiom
RL005     non-frozen dataclasses on the ``repro.api`` surface, and
          mutable default arguments anywhere
RL006     global-state randomness (``random.*`` / ``np.random.*``)
          outside seeded ``Random``/``Generator`` instances
========  =============================================================
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.lint.findings import Severity

#: ``(line, col, message)`` — the raw shape a rule check yields.
RawFinding = tuple[int, int, str]


# ----------------------------------------------------------------------
# Module context: one parsed file plus its import environment.
# ----------------------------------------------------------------------
@dataclass
class ModuleContext:
    """One module under analysis: path, AST, and resolved import aliases."""

    path: str
    tree: ast.Module
    source: str
    #: local name -> dotted module path (``import numpy as np``).
    module_aliases: dict[str, str] = field(default_factory=dict)
    #: local name -> (module, original name) (``from weakref import ref``).
    imported_names: dict[str, tuple[str, str]] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: str, source: str) -> "ModuleContext":
        """Parse ``source`` and resolve its top-level import aliases."""
        tree = ast.parse(source, filename=path)
        ctx = cls(path=path, tree=tree, source=source)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        ctx.module_aliases[alias.asname] = alias.name
                    else:
                        # ``import numpy.random`` binds the top-level name.
                        top = alias.name.split(".")[0]
                        ctx.module_aliases[top] = top
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    ctx.imported_names[alias.asname or alias.name] = (
                        node.module,
                        alias.name,
                    )
        return ctx

    def names_of_module(self, dotted: str) -> set[str]:
        """The local names bound to module ``dotted`` (via plain imports)."""
        return {
            local for local, module in self.module_aliases.items() if module == dotted
        }

    def names_from_module(self, dotted: str) -> dict[str, str]:
        """Local name -> original name for ``from dotted import ...`` bindings."""
        return {
            local: original
            for local, (module, original) in self.imported_names.items()
            if module == dotted
        }


# ----------------------------------------------------------------------
# Scope walking: the module and each function body are separate scopes.
# ----------------------------------------------------------------------
def _own_nodes(root: ast.AST) -> list[ast.AST]:
    """Every AST node belonging to ``root``'s scope.

    Traversal stops at nested function boundaries (each function is its own
    scope); class bodies and lambdas belong to the enclosing scope.
    """
    out: list[ast.AST] = []
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        out.append(node)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return out


def _scopes(tree: ast.Module) -> Iterator[tuple[ast.AST, list[ast.AST]]]:
    """Yield ``(scope_root, nodes)`` for the module and every function."""
    yield tree, _own_nodes(tree)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, _own_nodes(node)


# ----------------------------------------------------------------------
# Rule base + registry
# ----------------------------------------------------------------------
class Rule:
    """One invariant check.  Subclasses set the metadata and ``check``."""

    rule_id: str
    title: str
    severity: Severity
    rationale: str
    #: Substring patterns the module path must match for the rule to run;
    #: ``None`` runs everywhere.  Matching is against the POSIX path.
    path_patterns: tuple[str, ...] | None = None

    def applies_to(self, path: str) -> bool:
        """Whether this rule runs on the module at ``path``."""
        if self.path_patterns is None:
            return True
        return any(pattern in path for pattern in self.path_patterns)

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        """Yield ``(line, col, message)`` for each violation."""
        raise NotImplementedError

    @property
    def doc(self) -> str:
        """One-line registry documentation (``--list-rules`` output)."""
        return f"{self.rule_id} [{self.severity.value}] {self.title}"


#: The registry, in rule-id order.
RULES: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding one rule instance to :data:`RULES`."""
    rule = cls()
    if rule.rule_id in RULES:
        raise ValueError(f"duplicate rule id {rule.rule_id}")
    RULES[rule.rule_id] = rule
    return cls


# ----------------------------------------------------------------------
# RL001 — id()-keyed memos need a weakref identity guard
# ----------------------------------------------------------------------
def _is_id_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "id"
        and len(node.args) == 1
    )


@register
class IdKeyedMemoRule(Rule):
    """``X[id(obj)]`` / ``X.get(id(obj))`` without a weakref in scope.

    The PR-7 flake: a memo keyed on ``id(queue)`` kept answering for a
    *dead* queue whose address the allocator had recycled for a fresh one.
    An id-keyed entry must hold ``weakref.ref(obj)`` and prove
    ``ref() is obj`` on lookup (a dead referent can never alias a live
    object), as :mod:`repro.cluster.scheduler` does.
    """

    rule_id = "RL001"
    title = "memo keyed on id(obj) without a weakref identity guard"
    severity = Severity.ERROR
    rationale = (
        "a dead object's address can be recycled by a fresh object, so an "
        "id-keyed memo without a live-reference proof serves stale entries "
        "(the PR-7 dispatch-memo flake)"
    )

    _keyed_methods = frozenset({"get", "pop", "setdefault"})

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        weakref_modules = ctx.names_of_module("weakref")
        weakref_froms = set(ctx.names_from_module("weakref"))
        for _, nodes in _scopes(ctx.tree):
            sites = [node for node in nodes if self._is_id_keyed(node)]
            if not sites:
                continue
            if self._uses_weakref(nodes, weakref_modules, weakref_froms):
                continue
            for site in sites:
                yield (
                    site.lineno,
                    site.col_offset,
                    "mapping keyed on id(...) without a weakref identity "
                    "guard; hold weakref.ref(obj) in the entry and verify "
                    "`ref() is obj` on lookup so a recycled address can "
                    "never alias a live object",
                )

    def _is_id_keyed(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Subscript) and _is_id_call(node.slice):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in self._keyed_methods
            and bool(node.args)
            and _is_id_call(node.args[0])
        )

    @staticmethod
    def _uses_weakref(
        nodes: list[ast.AST], modules: set[str], froms: set[str]
    ) -> bool:
        for node in nodes:
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id in modules
            ):
                return True
            if isinstance(node, ast.Name) and node.id in froms:
                return True
        return False


# ----------------------------------------------------------------------
# RL002 — no order-sensitive iteration over unordered sets
# ----------------------------------------------------------------------
def _is_setish(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"set", "frozenset"}
    )


@register
class UnorderedSetIterationRule(Rule):
    """Iterating a set where the order escapes into results.

    Set iteration order depends on insertion history and hash seeds; any
    fit row order, enumeration order, or serialized sequence built from it
    breaks the repo's bit-exact parity pins.  Wrap the set in ``sorted()``.
    A set built *from* a set (``{f(x) for x in s}``) stays order-free and
    is accepted.
    """

    rule_id = "RL002"
    title = "unordered set iteration feeding order-sensitive results"
    severity = Severity.ERROR
    rationale = (
        "set order varies with insertion history, so fit rows, enumerated "
        "states, and serialized sequences built from it are not bit-exact"
    )

    _message = (
        "iteration over an unordered set makes the downstream order "
        "nondeterministic; wrap it in sorted(...) to keep the result "
        "bit-exact"
    )

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For) and _is_setish(node.iter):
                yield node.iter.lineno, node.iter.col_offset, self._message
            elif isinstance(node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)):
                for generator in node.generators:
                    if _is_setish(generator.iter):
                        yield (
                            generator.iter.lineno,
                            generator.iter.col_offset,
                            self._message,
                        )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in {"list", "tuple"}
                and len(node.args) == 1
                and _is_setish(node.args[0])
            ):
                yield node.lineno, node.col_offset, self._message


# ----------------------------------------------------------------------
# RL003 — version counters must see every membership mutation
# ----------------------------------------------------------------------
@register
class VersionCounterCoherenceRule(Rule):
    """A version-counter class mutating state without bumping the counter.

    The ``JobQueue`` pattern: consumers memoize work keyed on a ``version``
    membership counter and rely on every content mutation bumping it.  A
    mutating method that skips the bump silently serves stale memo entries
    downstream.
    """

    rule_id = "RL003"
    title = "memo-feeding mutation without a version-counter bump"
    severity = Severity.ERROR
    rationale = (
        "version-keyed caches (the dispatch-plan memo) invalidate on "
        "counter changes only; a skipped bump serves stale plans"
    )

    _counter_names = frozenset({"version", "_version"})
    _mutators = frozenset(
        {
            "append",
            "extend",
            "insert",
            "remove",
            "pop",
            "popitem",
            "popleft",
            "appendleft",
            "clear",
            "update",
            "add",
            "discard",
            "setdefault",
        }
    )

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and self._has_version_counter(node):
                yield from self._check_class(node)

    def _has_version_counter(self, cls: ast.ClassDef) -> bool:
        for node in ast.walk(cls):
            if (
                isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign))
                and self._version_target(node)
            ):
                return True
        return False

    def _version_target(self, node: ast.AST) -> bool:
        targets: list[ast.AST]
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        else:
            return False
        return any(
            isinstance(target, ast.Attribute)
            and target.attr in self._counter_names
            and isinstance(target.value, ast.Name)
            for target in targets
        )

    def _check_class(self, cls: ast.ClassDef) -> Iterator[RawFinding]:
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__" or not method.args.args:
                continue
            self_name = method.args.args[0].arg
            nodes = _own_nodes(method)
            mutated = self._mutated_attrs(nodes, self_name)
            mutated -= self._counter_names
            if not mutated:
                continue
            if any(self._version_target(node) for node in nodes):
                continue
            yield (
                method.lineno,
                method.col_offset,
                f"method {method.name!r} mutates memo-feeding state "
                f"({', '.join(sorted(mutated))}) without bumping the "
                f"version membership counter; version-keyed caches will "
                f"serve stale entries",
            )

    def _mutated_attrs(self, nodes: list[ast.AST], self_name: str) -> set[str]:
        aliases: dict[str, str] = {}
        for node in nodes:
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Attribute)
                and isinstance(node.value.value, ast.Name)
                and node.value.value.id == self_name
            ):
                aliases[node.targets[0].id] = node.value.attr

        def state_attr(value: ast.AST) -> str | None:
            if (
                isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and value.value.id == self_name
            ):
                return value.attr
            if isinstance(value, ast.Name) and value.id in aliases:
                return aliases[value.id]
            return None

        mutated: set[str] = set()
        for node in nodes:
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._mutators
            ):
                attr = state_attr(node.func.value)
                if attr is not None:
                    mutated.add(attr)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        attr = state_attr(target.value)
                        if attr is not None:
                            mutated.add(attr)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        attr = state_attr(target.value)
                        if attr is not None:
                            mutated.add(attr)
        return mutated


# ----------------------------------------------------------------------
# RL004 — parity-pinned float reductions in power-budget paths
# ----------------------------------------------------------------------
@register
class FloatReductionDisciplineRule(Rule):
    """numpy reductions where the power-budget parity pin requires
    sequential summation.

    ``np.sum`` uses pairwise reduction whose grouping — and therefore the
    exact float result — depends on array shape and backend; the
    power-budget invariants are pinned to the sequential
    ``float(sum(arr.tolist()))`` idiom, which adds plain Python floats
    left to right.
    """

    rule_id = "RL004"
    title = "numpy reduction in a parity-pinned power-budget path"
    severity = Severity.ERROR
    rationale = (
        "np.sum's pairwise grouping changes the float result with array "
        "shape; the power-budget parity pins require the sequential "
        "float(sum(arr.tolist())) idiom"
    )
    path_patterns = ("powerbudget", "/events/", "gpu/power")

    _message = (
        "parity-pinned power-budget reduction: use the sequential "
        "float(sum(arr.tolist())) idiom instead of a numpy reduction "
        "(pairwise summation is shape-dependent)"
    )

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "sum":
                # np.sum(...) and ndarray.sum() both reduce pairwise.
                yield node.lineno, node.col_offset, self._message
            elif (
                isinstance(func, ast.Name)
                and func.id == "sum"
                and len(node.args) == 1
                and isinstance(node.args[0], (ast.Name, ast.Attribute))
            ):
                # sum(arr) over a bare name may reduce numpy scalars; the
                # pinned idiom materializes Python floats via .tolist().
                yield node.lineno, node.col_offset, self._message


# ----------------------------------------------------------------------
# RL005 — API-boundary hygiene
# ----------------------------------------------------------------------
@register
class ApiBoundaryHygieneRule(Rule):
    """Non-frozen dataclasses on the API surface; mutable default args.

    ``repro.api`` request/response types are the public contract: they
    must stay frozen value objects so callers can hash, memoize, and share
    them.  Mutable default arguments are latent cross-call state anywhere.
    """

    rule_id = "RL005"
    title = "API dataclass not frozen / mutable default argument"
    severity = Severity.WARNING
    rationale = (
        "the api/ surface is a contract of hashable value objects; "
        "mutable defaults are shared state across calls"
    )

    _mutable_factories = frozenset({"list", "dict", "set", "bytearray"})

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        in_api = "api" in ctx.path.split("/")
        for node in ast.walk(ctx.tree):
            if in_api and isinstance(node, ast.ClassDef):
                decorator = self._dataclass_decorator(node)
                if decorator is not None and not self._is_frozen(decorator):
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"dataclass {node.name!r} on the repro.api surface "
                        f"is not frozen; API types are hashable value "
                        f"objects (add frozen=True or justify the mutability)",
                    )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                defaults = list(node.args.defaults) + [
                    default
                    for default in node.args.kw_defaults
                    if default is not None
                ]
                for default in defaults:
                    if self._is_mutable(default):
                        yield (
                            default.lineno,
                            default.col_offset,
                            "mutable default argument is shared across "
                            "calls; default to None and build inside the "
                            "function",
                        )

    @staticmethod
    def _dataclass_decorator(node: ast.ClassDef) -> ast.AST | None:
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            name = (
                target.id
                if isinstance(target, ast.Name)
                else target.attr
                if isinstance(target, ast.Attribute)
                else None
            )
            if name == "dataclass":
                return decorator
        return None

    @staticmethod
    def _is_frozen(decorator: ast.AST) -> bool:
        if not isinstance(decorator, ast.Call):
            return False
        return any(
            keyword.arg == "frozen"
            and isinstance(keyword.value, ast.Constant)
            and keyword.value.value is True
            for keyword in decorator.keywords
        )

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in self._mutable_factories
            and not node.args
            and not node.keywords
        )


# ----------------------------------------------------------------------
# RL006 — no global-state randomness
# ----------------------------------------------------------------------
@register
class UnseededRandomnessRule(Rule):
    """``random.*`` / ``np.random.*`` global-RNG calls.

    Global RNG state is shared by everything in the process: one extra
    draw anywhere reorders every later sample, so traces and noise stop
    replaying bit-exact.  Use a locally seeded ``random.Random(seed)`` or
    ``np.random.default_rng(seed)``.
    """

    rule_id = "RL006"
    title = "global-state randomness outside a seeded generator"
    severity = Severity.ERROR
    rationale = (
        "global RNG draws reorder every later sample in the process, so "
        "seeded traces and noise stop replaying bit-exact"
    )

    _random_ok = frozenset({"Random", "SystemRandom"})
    _np_ok = frozenset(
        {
            "default_rng",
            "Generator",
            "SeedSequence",
            "BitGenerator",
            "PCG64",
            "Philox",
            "MT19937",
            "SFC64",
        }
    )
    _message = (
        "global-RNG call mutates process-wide seed state; draw from a "
        "seeded random.Random(seed) / np.random.default_rng(seed) instead"
    )

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        random_modules = ctx.names_of_module("random")
        numpy_random_modules = ctx.names_of_module("numpy.random")
        numpy_modules = ctx.names_of_module("numpy")
        random_froms = ctx.names_from_module("random")
        numpy_random_froms = ctx.names_from_module("numpy.random")
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
                base = func.value.id
                if base in random_modules and func.attr not in self._random_ok:
                    yield func.lineno, func.col_offset, self._message
                elif (
                    base in numpy_random_modules and func.attr not in self._np_ok
                ):
                    yield func.lineno, func.col_offset, self._message
            elif (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Attribute)
                and func.value.attr == "random"
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id in numpy_modules
                and func.attr not in self._np_ok
            ):
                yield func.lineno, func.col_offset, self._message
            elif isinstance(func, ast.Name):
                original = random_froms.get(func.id)
                if original is not None and original not in self._random_ok:
                    yield func.lineno, func.col_offset, self._message
                    continue
                original = numpy_random_froms.get(func.id)
                if original is not None and original not in self._np_ok:
                    yield func.lineno, func.col_offset, self._message
