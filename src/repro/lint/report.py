"""Text rendering of analyzer output (the CLI's non-JSON mode).

JSON rendering lives on the service-layer response type
(:class:`~repro.api.results.LintResult`) like every other command; this
module only formats for humans.
"""

from __future__ import annotations

from repro.lint.analyzer import LintReport
from repro.lint.rules import RULES


def render_report(report: LintReport, strict: bool = False) -> str:
    """One line per finding plus a verdict summary line."""
    lines = [finding.format() for finding in report.findings]
    verdict = "clean" if report.clean(strict) else "FAILED"
    mode = " (strict)" if strict else ""
    lines.append(
        f"{verdict}{mode}: {len(report.findings)} finding(s) "
        f"({report.n_errors} error(s), {report.n_warnings} warning(s)), "
        f"{report.suppressed} suppressed, {report.files_scanned} file(s) scanned"
    )
    return "\n".join(lines)


def render_rules() -> str:
    """The registry documentation (``repro lint --list-rules``)."""
    lines = []
    for rule_id in sorted(RULES):
        rule = RULES[rule_id]
        lines.append(rule.doc)
        lines.append(f"       {rule.rationale}")
    return "\n".join(lines)
