"""The analyzer: file discovery, rule dispatch, and pragma suppression.

The entry point is :func:`analyze_paths`, which walks the given files and
directories, parses each Python module once, runs every registered (or
selected) rule whose path filter matches, drops findings suppressed by a
``# repro: allow[RLxxx]`` pragma, and returns a :class:`LintReport` whose
findings are sorted deterministically.

Suppression pragmas sit on the flagged line (or, for long lines, on a
comment-only line directly above it) and may carry a justification::

    self._stats = stats  # repro: allow[RL005] counters mutate in place

Directory walks skip test fixture corpora (``lint_fixtures``) and tool
caches, but a file named explicitly is always analyzed — that is how the
fixture tests exercise intentionally violating snippets.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import LintError
from repro.lint.findings import Finding, Severity
from repro.lint.rules import RULES, ModuleContext, Rule

#: Directory names never entered during discovery walks.  ``lint_fixtures``
#: holds intentionally violating test snippets; the rest are tool caches.
EXCLUDED_DIR_NAMES = frozenset(
    {
        "lint_fixtures",
        "__pycache__",
        ".git",
        ".venv",
        "venv",
        "build",
        "dist",
        ".mypy_cache",
        ".pytest_cache",
    }
)

#: ``# repro: allow[RLxxx]`` or ``# repro: allow[RLxxx,RLyyy] reason...``.
_ALLOW_PRAGMA = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9,\s]+)\]")


@dataclass(frozen=True)
class LintReport:
    """The outcome of one analyzer run."""

    findings: tuple[Finding, ...]
    files_scanned: int
    suppressed: int

    @property
    def n_errors(self) -> int:
        """Number of error-severity findings."""
        return sum(1 for f in self.findings if f.severity == Severity.ERROR.value)

    @property
    def n_warnings(self) -> int:
        """Number of warning-severity findings."""
        return sum(1 for f in self.findings if f.severity == Severity.WARNING.value)

    def clean(self, strict: bool = False) -> bool:
        """Whether the run passes: no errors, and under strict no findings."""
        if strict:
            return not self.findings
        return self.n_errors == 0


def select_rules(select: Sequence[str] | None = None) -> tuple[Rule, ...]:
    """The rules to run: the full registry, or the ``select`` subset."""
    if select is None:
        return tuple(RULES[rule_id] for rule_id in sorted(RULES))
    unknown = sorted(set(select) - set(RULES))
    if unknown:
        raise LintError(
            f"unknown rule id(s) {unknown}; registered rules: {sorted(RULES)}"
        )
    return tuple(RULES[rule_id] for rule_id in sorted(set(select)))


def discover_files(paths: Iterable[str | Path]) -> tuple[Path, ...]:
    """The Python files under ``paths``, sorted and de-duplicated.

    A path naming a file is always included (even a fixture); a directory
    is walked recursively, skipping :data:`EXCLUDED_DIR_NAMES`.  A missing
    path raises :class:`~repro.errors.LintError` — silently linting
    nothing would report a clean run for a typo.
    """
    out: dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            out[path] = None
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                relative = candidate.relative_to(path)
                if any(part in EXCLUDED_DIR_NAMES for part in relative.parts[:-1]):
                    continue
                out[candidate] = None
        else:
            raise LintError(f"lint path does not exist: {path}")
    return tuple(sorted(out))


def suppressed_lines(source: str) -> dict[int, set[str]]:
    """Line number -> rule ids suppressed there (1-based).

    A pragma on a comment-only line covers the next *code* line instead
    (skipping further comment lines), so a flagged statement can carry a
    multi-line justification above it.
    """
    allowed: dict[int, set[str]] = {}
    lines = source.splitlines()
    for number, line in enumerate(lines, start=1):
        match = _ALLOW_PRAGMA.search(line)
        if match is None:
            continue
        rule_ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
        target = number
        if line.lstrip().startswith("#"):
            target += 1
            while target <= len(lines) and lines[target - 1].lstrip().startswith("#"):
                target += 1
        allowed.setdefault(target, set()).update(rule_ids)
    return allowed


def analyze_source(
    source: str, path: str, rules: Sequence[Rule] | None = None
) -> tuple[tuple[Finding, ...], int]:
    """Analyze one module's source; returns (findings, suppressed count).

    ``path`` is used for rule path filters and finding locations; it does
    not need to exist on disk (fixture tests lint inline snippets).
    """
    posix = Path(path).as_posix()
    try:
        ctx = ModuleContext.parse(posix, source)
    except SyntaxError as exc:
        raise LintError(f"cannot parse {posix}: {exc}") from exc
    allowed = suppressed_lines(source)
    findings: list[Finding] = []
    suppressed = 0
    for rule in rules if rules is not None else select_rules():
        if not rule.applies_to(posix):
            continue
        for line, col, message in rule.check(ctx):
            if rule.rule_id in allowed.get(line, ()):
                suppressed += 1
                continue
            findings.append(
                Finding(
                    path=posix,
                    line=line,
                    col=col,
                    rule_id=rule.rule_id,
                    severity=rule.severity.value,
                    message=message,
                )
            )
    return tuple(sorted(findings)), suppressed


def analyze_paths(
    paths: Iterable[str | Path], select: Sequence[str] | None = None
) -> LintReport:
    """Run the analyzer over files and directories; the one entry point."""
    rules = select_rules(select)
    files = discover_files(paths)
    findings: list[Finding] = []
    suppressed = 0
    for file in files:
        try:
            source = file.read_text(encoding="utf-8")
        except OSError as exc:
            raise LintError(f"cannot read {file}: {exc}") from exc
        file_findings, file_suppressed = analyze_source(
            source, str(file), rules=rules
        )
        findings.extend(file_findings)
        suppressed += file_suppressed
    return LintReport(
        findings=tuple(sorted(findings)),
        files_scanned=len(files),
        suppressed=suppressed,
    )
