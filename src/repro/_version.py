"""Version information for the :mod:`repro` package."""

__version__ = "0.1.0"

#: Version tuple ``(major, minor, patch)`` parsed from :data:`__version__`.
VERSION = tuple(int(part) for part in __version__.split("."))
