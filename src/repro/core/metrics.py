"""Co-scheduling metrics used by the optimization problems.

* **Throughput** is the *weighted speedup*: the sum of the co-located
  applications' relative performances.  A value above 1 means the co-run
  beats time-sharing the chip.
* **Fairness** is the minimum relative performance, so a constraint
  ``fairness > alpha`` guarantees that no application is starved by
  co-scheduling or power capping.
* **Energy efficiency** (Problem 2's objective) is throughput divided by the
  chip power cap.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError


def weighted_speedup(relative_performances: Sequence[float]) -> float:
    """Throughput metric: the sum of per-application relative performances."""
    values = list(relative_performances)
    if not values:
        raise ConfigurationError("weighted speedup needs at least one application")
    return float(sum(values))


def fairness(relative_performances: Sequence[float]) -> float:
    """Fairness metric: the minimum per-application relative performance."""
    values = list(relative_performances)
    if not values:
        raise ConfigurationError("fairness needs at least one application")
    return float(min(values))


def weighted_speedup_batch(relative_performances: np.ndarray) -> np.ndarray:
    """Vectorized throughput over a ``(n_candidates, n_apps)`` grid."""
    matrix = np.asarray(relative_performances, dtype=float)
    if matrix.ndim != 2 or matrix.shape[1] == 0:
        raise ConfigurationError(
            f"expected a (n_candidates, n_apps) matrix, got shape {matrix.shape}"
        )
    return matrix.sum(axis=1)


def fairness_batch(relative_performances: np.ndarray) -> np.ndarray:
    """Vectorized fairness over a ``(n_candidates, n_apps)`` grid."""
    matrix = np.asarray(relative_performances, dtype=float)
    if matrix.ndim != 2 or matrix.shape[1] == 0:
        raise ConfigurationError(
            f"expected a (n_candidates, n_apps) matrix, got shape {matrix.shape}"
        )
    return matrix.min(axis=1)


def energy_efficiency(
    relative_performances: Sequence[float], power_cap_w: float
) -> float:
    """Problem 2 objective: weighted speedup per watt of chip power cap."""
    if power_cap_w <= 0:
        raise ConfigurationError(f"power cap must be positive, got {power_cap_w}")
    return weighted_speedup(relative_performances) / power_cap_w


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, as used by the paper's cross-workload summaries."""
    values = list(values)
    if not values:
        raise ConfigurationError("geometric mean needs at least one value")
    if any(v <= 0 for v in values):
        raise ConfigurationError("geometric mean requires strictly positive values")
    return float(math.exp(sum(math.log(v) for v in values) / len(values)))


def is_fair(relative_performances: Sequence[float], alpha: float) -> bool:
    """Whether the fairness constraint ``min_i RPerf_i > alpha`` holds."""
    return fairness(relative_performances) > alpha


def relative_error(estimated: float, measured: float) -> float:
    """Absolute relative error ``|estimated - measured| / |measured|``."""
    if measured == 0:
        raise ConfigurationError("relative error undefined for a zero measurement")
    return abs(estimated - measured) / abs(measured)


def mean_absolute_percentage_error(
    estimated: Sequence[float], measured: Sequence[float]
) -> float:
    """Average relative error in percent (the paper's accuracy statistic)."""
    estimated = list(estimated)
    measured = list(measured)
    if len(estimated) != len(measured):
        raise ConfigurationError(
            f"length mismatch: {len(estimated)} estimates vs {len(measured)} measurements"
        )
    if not measured:
        raise ConfigurationError("error statistics need at least one pair")
    return 100.0 * sum(
        relative_error(e, m) for e, m in zip(estimated, measured)
    ) / len(measured)
