"""Basis functions over the profiled counters (Table 4 of the paper).

The linear model does not regress directly on the raw counters ``F1..F8``;
it first converts them with two hand-designed basis functions:

* ``H(F)`` feeds the *scalability* term and captures how the application
  itself reacts to fewer GPCs / lower clocks:

  ====  =====================================  ==========================
  H1    ``F1/100 − H2``                         non-Tensor compute intensity
  H2    ``(F6 + F7 + F8)/100``                  Tensor compute intensity
  H3    ``F2/F1``                               memory/compute ratio
  H4    ``F4/100``                              L2 / DRAM locality
  H5    ``F5/100``                              resource utilization
  H6    ``1``                                   constant
  ====  =====================================  ==========================

* ``J(F)`` feeds the *interference* term and captures how much pressure a
  co-located application exerts:

  ====  ==============  =======================
  J1    ``F3/100``      DRAM intensity
  J2    ``F4/100``      access-pattern related
  J3    ``1``           constant
  ====  ==============  =======================

* Under *sub-chip shared* hardware-state keys (a Compute Instance inside a
  shared GPU Instance smaller than the chip — mixed layouts only) the
  interference basis is augmented with capacity-aware *pool terms*
  (key schema v3).  ``q`` is the pool fraction, i.e. the hosting GI's
  memory slices over the chip's, and ``Ĵ1`` the clamped DRAM demand
  :func:`dram_demand` (``d = Ĵ1(F_i) + Σ_j Ĵ1(F_j)`` the combined demand):

  ======  ========================================  =========================
  σ·H     ``min(1, q/d) · H(F_i)``                  the victim's scalability
                                                    basis scaled by the pool's
                                                    *servable fraction* of the
                                                    combined DRAM demand
  P1      ``min(1, Σ_j Ĵ1(F_j) / q)``               saturating co-runner DRAM
                                                    demand relative to the pool
  P2      ``max(0, d − q)``                         piecewise excess demand
                                                    once the pool's
                                                    proportional bandwidth is
                                                    oversubscribed
  ======  ========================================  =========================

  A linear-in-``J`` interference term cannot bend where a quarter-capacity
  pool clips (the 1-GPC/2-slice GI saturates long before the co-runner's
  raw DRAM counter does); the saturating servable fraction ``σ``
  (:func:`servable_fraction`), the saturating ``P1``, and the hinge ``P2``
  give the fitted coefficients exactly that bend.  Private keys never see
  these terms, and full-chip shared keys only see them through the
  separately-fitted N≥3 *composition* correction evaluated at ``q = 1``
  (the full chip is the largest pool) — pair predictions stay
  bit-identical to the pair-era model either way.

The paper notes that the manual choice of counters and basis functions is a
limitation; :data:`RAW_COUNTER_BASIS` exists so that the ablation benchmark
can quantify what the hand-designed basis buys over regressing on raw
counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.sim.counters import CounterVector

#: Labels of the H components, for reports.
H_LABELS: tuple[str, ...] = (
    "H1 non-tensor compute intensity",
    "H2 tensor compute intensity",
    "H3 memory/compute ratio",
    "H4 locality (L2 hit rate)",
    "H5 resource utilization",
    "H6 constant",
)

#: Labels of the J components, for reports.
J_LABELS: tuple[str, ...] = (
    "J1 DRAM intensity",
    "J2 access pattern (L2 hit rate)",
    "J3 constant",
)

#: Labels of the capacity-aware pool terms appended to the interference
#: basis under sub-chip shared keys (key schema v3), for reports.
POOL_TERM_LABELS: tuple[str, ...] = (
    "P1 saturating co-runner DRAM demand",
    "P2 excess combined DRAM demand",
)

#: Number of pool terms appended to ``J`` under sub-chip shared keys.
POOL_TERM_DIM: int = len(POOL_TERM_LABELS)


def dram_demand(counters: CounterVector) -> float:
    """The clamped DRAM demand of one application: ``F3/100`` in ``[0, 1]``.

    This is the ``J1`` feature read straight from the counters (so a custom
    basis cannot invert the physics) and clamped, because a counter reading
    above 100 % — out-of-spec, but possible from a raw telemetry feed —
    must not silently amplify the interference term.
    """
    return min(1.0, max(0.0, counters.dram_throughput / 100.0))


def servable_fraction(
    victim_demand: float,
    co_runner_demand: float,
    pool_fraction: float,
) -> float:
    """``σ = min(1, q / d)``: what share of the combined DRAM demand fits.

    ``d`` is the victim's plus the co-runners' clamped DRAM demand and
    ``q`` the pool fraction.  Below saturation the pool serves everything
    (``σ = 1``, and the basis degenerates to a plain second copy of ``H``
    that the fit can fold into ``C``); past it the victim's achievable
    bandwidth — and with it the memory-bound part of its performance —
    scales down like ``q/d`` under the proportional HBM arbitration the
    shared pool applies.  Scaling the victim's own ``H(F)`` block by this
    fraction is what lets a per-key linear fit reproduce the reciprocal
    roll-off of a clipped pool.
    """
    if not (0.0 < pool_fraction <= 1.0):
        raise ValueError(f"pool_fraction must be in (0, 1], got {pool_fraction}")
    return min(1.0, pool_fraction / max(victim_demand + co_runner_demand, 1e-6))


def pool_saturation_terms(
    victim_demand: float,
    co_runner_demand: float,
    pool_fraction: float,
) -> np.ndarray:
    """The capacity-aware pool terms ``P(F)`` (length :data:`POOL_TERM_DIM`).

    Parameters
    ----------
    victim_demand:
        Clamped DRAM demand of the application being predicted
        (:func:`dram_demand` of its own counters).
    co_runner_demand:
        Summed clamped DRAM demand of the co-runners sharing its GPU
        Instance.
    pool_fraction:
        The hosting GI's memory slices as a fraction of the chip's
        (``mem_slices / n_mem_slices``), i.e. the pool's proportional
        share of LLC capacity and DRAM bandwidth.

    ``P1`` saturates at 1 once the co-runners alone can fill the pool;
    ``P2`` is a hinge that activates only when the *combined* demand
    exceeds the pool's proportional bandwidth — the regime where the
    2-slice pool clips and a linear-in-``J`` fit underfits.
    """
    if not (0.0 < pool_fraction <= 1.0):
        raise ValueError(
            f"pool_fraction must be in (0, 1], got {pool_fraction}"
        )
    saturating = min(1.0, co_runner_demand / pool_fraction)
    excess = max(0.0, victim_demand + co_runner_demand - pool_fraction)
    return np.array([saturating, excess], dtype=float)


def basis_h(counters: CounterVector) -> np.ndarray:
    """The scalability basis ``H(F)`` of Table 4 (length 6)."""
    tensor_intensity = (
        counters.tensor_mixed + counters.tensor_double + counters.tensor_int
    ) / 100.0
    compute = counters.compute_throughput
    memory = counters.memory_throughput
    # Guard the ratio against a (theoretical) zero compute throughput; the
    # paper's kernels always have F1 > 0.
    memory_compute_ratio = memory / compute if compute > 1e-9 else 0.0
    return np.array(
        [
            counters.compute_throughput / 100.0 - tensor_intensity,
            tensor_intensity,
            memory_compute_ratio,
            counters.l2_hit_rate / 100.0,
            counters.occupancy / 100.0,
            1.0,
        ],
        dtype=float,
    )


def basis_j(counters: CounterVector) -> np.ndarray:
    """The interference basis ``J(F)`` of Table 4 (length 3)."""
    return np.array(
        [
            counters.dram_throughput / 100.0,
            counters.l2_hit_rate / 100.0,
            1.0,
        ],
        dtype=float,
    )


def raw_counter_basis(counters: CounterVector) -> np.ndarray:
    """All eight raw counters (scaled to 0..1) plus a constant (length 9)."""
    return np.concatenate([counters.as_array() / 100.0, [1.0]])


@dataclass(frozen=True)
class BasisFunctions:
    """A named pair of basis functions for the two model terms.

    Attributes
    ----------
    name:
        Identifier used in reports and ablations.
    h:
        Basis applied to the application's own counters (scalability term).
    j:
        Basis applied to each co-runner's counters (interference term).
    h_dim, j_dim:
        Output dimensions of ``h`` and ``j``.
    """

    name: str
    h: Callable[[CounterVector], np.ndarray]
    j: Callable[[CounterVector], np.ndarray]
    h_dim: int
    j_dim: int

    def h_matrix(self, counters_list: list[CounterVector]) -> np.ndarray:
        """Stack ``h`` over a list of counter vectors into a design matrix."""
        if not counters_list:
            return np.zeros((0, self.h_dim), dtype=float)
        return np.vstack([self.h(c) for c in counters_list])

    def j_matrix(self, counters_list: list[CounterVector]) -> np.ndarray:
        """Stack ``j`` over a list of counter vectors into a design matrix."""
        if not counters_list:
            return np.zeros((0, self.j_dim), dtype=float)
        return np.vstack([self.j(c) for c in counters_list])


#: The paper's Table 4 basis.
DEFAULT_BASIS = BasisFunctions(name="table4", h=basis_h, j=basis_j, h_dim=6, j_dim=3)

#: Raw-counter basis used by the basis-function ablation.
RAW_COUNTER_BASIS = BasisFunctions(
    name="raw-counters",
    h=raw_counter_basis,
    j=raw_counter_basis,
    h_dim=9,
    j_dim=9,
)
