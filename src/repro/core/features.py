"""Basis functions over the profiled counters (Table 4 of the paper).

The linear model does not regress directly on the raw counters ``F1..F8``;
it first converts them with two hand-designed basis functions:

* ``H(F)`` feeds the *scalability* term and captures how the application
  itself reacts to fewer GPCs / lower clocks:

  ====  =====================================  ==========================
  H1    ``F1/100 − H2``                         non-Tensor compute intensity
  H2    ``(F6 + F7 + F8)/100``                  Tensor compute intensity
  H3    ``F2/F1``                               memory/compute ratio
  H4    ``F4/100``                              L2 / DRAM locality
  H5    ``F5/100``                              resource utilization
  H6    ``1``                                   constant
  ====  =====================================  ==========================

* ``J(F)`` feeds the *interference* term and captures how much pressure a
  co-located application exerts:

  ====  ==============  =======================
  J1    ``F3/100``      DRAM intensity
  J2    ``F4/100``      access-pattern related
  J3    ``1``           constant
  ====  ==============  =======================

The paper notes that the manual choice of counters and basis functions is a
limitation; :data:`RAW_COUNTER_BASIS` exists so that the ablation benchmark
can quantify what the hand-designed basis buys over regressing on raw
counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.sim.counters import CounterVector

#: Labels of the H components, for reports.
H_LABELS: tuple[str, ...] = (
    "H1 non-tensor compute intensity",
    "H2 tensor compute intensity",
    "H3 memory/compute ratio",
    "H4 locality (L2 hit rate)",
    "H5 resource utilization",
    "H6 constant",
)

#: Labels of the J components, for reports.
J_LABELS: tuple[str, ...] = (
    "J1 DRAM intensity",
    "J2 access pattern (L2 hit rate)",
    "J3 constant",
)


def basis_h(counters: CounterVector) -> np.ndarray:
    """The scalability basis ``H(F)`` of Table 4 (length 6)."""
    tensor_intensity = (
        counters.tensor_mixed + counters.tensor_double + counters.tensor_int
    ) / 100.0
    compute = counters.compute_throughput
    memory = counters.memory_throughput
    # Guard the ratio against a (theoretical) zero compute throughput; the
    # paper's kernels always have F1 > 0.
    memory_compute_ratio = memory / compute if compute > 1e-9 else 0.0
    return np.array(
        [
            counters.compute_throughput / 100.0 - tensor_intensity,
            tensor_intensity,
            memory_compute_ratio,
            counters.l2_hit_rate / 100.0,
            counters.occupancy / 100.0,
            1.0,
        ],
        dtype=float,
    )


def basis_j(counters: CounterVector) -> np.ndarray:
    """The interference basis ``J(F)`` of Table 4 (length 3)."""
    return np.array(
        [
            counters.dram_throughput / 100.0,
            counters.l2_hit_rate / 100.0,
            1.0,
        ],
        dtype=float,
    )


def raw_counter_basis(counters: CounterVector) -> np.ndarray:
    """All eight raw counters (scaled to 0..1) plus a constant (length 9)."""
    return np.concatenate([counters.as_array() / 100.0, [1.0]])


@dataclass(frozen=True)
class BasisFunctions:
    """A named pair of basis functions for the two model terms.

    Attributes
    ----------
    name:
        Identifier used in reports and ablations.
    h:
        Basis applied to the application's own counters (scalability term).
    j:
        Basis applied to each co-runner's counters (interference term).
    h_dim, j_dim:
        Output dimensions of ``h`` and ``j``.
    """

    name: str
    h: Callable[[CounterVector], np.ndarray]
    j: Callable[[CounterVector], np.ndarray]
    h_dim: int
    j_dim: int

    def h_matrix(self, counters_list: list[CounterVector]) -> np.ndarray:
        """Stack ``h`` over a list of counter vectors into a design matrix."""
        if not counters_list:
            return np.zeros((0, self.h_dim), dtype=float)
        return np.vstack([self.h(c) for c in counters_list])

    def j_matrix(self, counters_list: list[CounterVector]) -> np.ndarray:
        """Stack ``j`` over a list of counter vectors into a design matrix."""
        if not counters_list:
            return np.zeros((0, self.j_dim), dtype=float)
        return np.vstack([self.j(c) for c in counters_list])


#: The paper's Table 4 basis.
DEFAULT_BASIS = BasisFunctions(name="table4", h=basis_h, j=basis_j, h_dim=6, j_dim=3)

#: Raw-counter basis used by the basis-function ablation.
RAW_COUNTER_BASIS = BasisFunctions(
    name="raw-counters",
    h=raw_counter_basis,
    j=raw_counter_basis,
    h_dim=9,
    j_dim=9,
)
