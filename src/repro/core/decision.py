"""Decision records returned by the Resource & Power Allocator."""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.mig import PartitionState


@dataclass(frozen=True)
class CandidateEvaluation:
    """Model-predicted metrics of one candidate ``(S, P)`` combination."""

    state: PartitionState
    power_cap_w: float
    predicted_rperfs: tuple[float, ...]
    predicted_throughput: float
    predicted_fairness: float
    objective: float
    feasible: bool

    def describe(self) -> str:
        """One-line human-readable summary."""
        status = "feasible" if self.feasible else "infeasible"
        return (
            f"{self.state.describe()} @ {self.power_cap_w:.0f}W: "
            f"objective={self.objective:.4f} throughput={self.predicted_throughput:.3f} "
            f"fairness={self.predicted_fairness:.3f} [{status}]"
        )


@dataclass(frozen=True)
class AllocationDecision:
    """The allocator's answer for one co-location group and one policy.

    Attributes
    ----------
    state:
        The selected partition/allocation state ``S``.
    power_cap_w:
        The selected (Problem 2) or given (Problem 1) chip power cap ``P``.
    predicted_rperfs:
        Model-predicted relative performance of each application.
    predicted_throughput, predicted_fairness, predicted_objective:
        Model-predicted metrics of the selected combination.
    policy_name:
        Which optimization problem produced the decision.
    candidates_evaluated:
        How many ``(S, P)`` combinations the search examined.
    evaluations:
        The full list of candidate evaluations (useful for reports and for
        comparing against the measured best/worst).
    """

    state: PartitionState
    power_cap_w: float
    predicted_rperfs: tuple[float, ...]
    predicted_throughput: float
    predicted_fairness: float
    predicted_objective: float
    policy_name: str
    candidates_evaluated: int
    evaluations: tuple[CandidateEvaluation, ...] = ()

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"[{self.policy_name}] choose {self.state.describe()} @ "
            f"{self.power_cap_w:.0f}W (objective={self.predicted_objective:.4f}, "
            f"throughput={self.predicted_throughput:.3f}, "
            f"fairness={self.predicted_fairness:.3f})"
        )
