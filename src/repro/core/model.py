"""The linear-regression relative-performance model (Section 4.3).

For application ``i`` co-located with applications ``j ≠ i`` under hardware
state ``(S, P)`` the paper models the relative performance as::

    RPerf_i(S, P) = C(S, P) · H(F_i)  +  Σ_{j≠i} D(S, P) · J(F_j)

where ``F_i`` is the profiled counter vector of application ``i`` and the
coefficient vectors ``C`` and ``D`` are fitted *per hardware state* with
least squares.  A hardware state, from the point of view of one application,
is the tuple (number of GPCs it received, memory slices of its GPU
Instance, memory option, chip power cap) — that is exactly what
:class:`HardwareStateKey` encodes.  The memory-slice dimension is what
distinguishes a Compute Instance inside a *sub-chip* shared GPU Instance
(a mixed layout) from one inside the full-chip shared GI: both are
"shared", but the former only reaches its GI's slice bandwidth.

The scalability term alone is used for solo predictions (the paper ignores
the interference term when only one application runs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import ModelError, NotFittedError
from repro.core.features import (
    DEFAULT_BASIS,
    POOL_TERM_DIM,
    BasisFunctions,
    dram_demand,
    pool_saturation_terms,
    servable_fraction,
)
from repro.gpu.mig import MemoryOption, PartitionState
from repro.gpu.spec import A100_SPEC, GPUSpec, builtin_spec_named
from repro.sim.counters import CounterVector

#: Version of the hardware-state key schema.  Version 1 keyed coefficients
#: on (gpcs, option, cap); version 2 added the GPU Instance's memory-slice
#: count so sub-chip shared GIs stop borrowing full-chip coefficients;
#: version 3 appended the capacity-aware pool terms (saturating co-runner
#: demand, excess combined demand) to the interference basis of sub-chip
#: shared keys, so the fitted coefficients can bend where a tiny pool clips.
KEY_SCHEMA_VERSION = 3


@dataclass(frozen=True)
class HardwareStateKey:
    """One application's view of the hardware state ``(S, P)``.

    Attributes
    ----------
    gpcs:
        GPCs allocated to the application.
    mem_slices:
        LLC/HBM memory slices owned by the GPU Instance hosting the
        application.  For a private GI this is the profile table's value
        for the GI's size; for the full-chip shared GI it is the chip's
        slice count; for a sub-chip shared GI (mixed layouts) it is the
        slice count of that smaller instance.
    option:
        Effective LLC/HBM sharing option the application experiences.
    power_cap_w:
        Chip power cap in watts.
    """

    gpcs: int
    mem_slices: int
    option: MemoryOption
    power_cap_w: float

    def __post_init__(self) -> None:
        if int(self.mem_slices) <= 0:
            raise ModelError(
                f"mem_slices must be a positive slice count, got {self.mem_slices!r}"
            )
        object.__setattr__(self, "mem_slices", int(self.mem_slices))
        object.__setattr__(self, "option", MemoryOption(self.option))
        object.__setattr__(self, "power_cap_w", float(self.power_cap_w))

    @classmethod
    def from_state(
        cls,
        state: PartitionState,
        app_index: int,
        power_cap_w: float,
        spec: GPUSpec,
    ) -> "HardwareStateKey":
        """The key seen by application ``app_index`` under ``state`` at ``power_cap_w``.

        For mixed states the per-application option is the *effective* one
        (private when the application owns its GPU Instance, shared when it
        shares one).  The memory-slice count comes from the GPU Instance the
        application actually lives in on ``spec`` — this is what separates a
        sub-chip shared GI from the full-chip pool, so mixed layouts no
        longer reuse (and overestimate) full-chip shared bandwidth
        coefficients.
        """
        return cls(
            gpcs=state.gpc_allocations[app_index],
            mem_slices=state.mem_slices_for(app_index, spec),
            option=state.effective_option(app_index),
            power_cap_w=float(power_cap_w),
        )

    def sort_key(self) -> tuple:
        """Deterministic ordering used for fitted-state listings."""
        return (self.option.value, self.gpcs, self.mem_slices, self.power_cap_w)

    def describe(self) -> str:
        """Human-readable description."""
        return (
            f"{self.gpcs}GPCs/{self.mem_slices}sl/"
            f"{self.option.value}/{self.power_cap_w:.0f}W"
        )


class LinearPerfModel:
    """Per-hardware-state linear regression over profiled features.

    The model stores one scalability coefficient vector ``C`` and one
    interference coefficient vector ``D`` per :class:`HardwareStateKey`.
    Training happens in :mod:`repro.core.training`; this class only holds
    coefficients and evaluates predictions.
    """

    #: Candidate-grid coefficient gathers memoized per model (see
    #: :meth:`predict_candidates`); bounded so stale grids are dropped.
    _GATHER_CACHE_SIZE = 8

    def __init__(
        self, basis: BasisFunctions = DEFAULT_BASIS, spec: GPUSpec = A100_SPEC
    ) -> None:
        self._basis = basis
        self._spec = spec
        self._scalability: dict[HardwareStateKey, np.ndarray] = {}
        self._interference: dict[HardwareStateKey, np.ndarray] = {}
        self._composition: dict[HardwareStateKey, np.ndarray] = {}
        self._coefficients_version = 0
        self._gather_cache: dict[
            tuple,
            tuple[
                np.ndarray,
                np.ndarray | None,
                np.ndarray | None,
                np.ndarray | None,
                np.ndarray | None,
                np.ndarray | None,
                np.ndarray | None,
            ],
        ] = {}
        self._gather_builds = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def basis(self) -> BasisFunctions:
        """The basis functions the coefficients were fitted against."""
        return self._basis

    @property
    def spec(self) -> GPUSpec:
        """The hardware spec the per-application keys are derived against."""
        return self._spec

    @property
    def coefficients_version(self) -> int:
        """Counter bumped whenever a coefficient vector is (re)installed.

        Caches keyed on model predictions (the gather memo here, the
        allocator's decision cache, the online layer's state cache) include
        this so refitting invalidates them.
        """
        return self._coefficients_version

    @property
    def gather_cache_builds(self) -> int:
        """How many candidate-grid coefficient gathers were actually built.

        A scheduling loop that re-solves the same grids should see this
        stay constant after warm-up; it only grows on memo misses.
        """
        return self._gather_builds

    def fitted_scalability_states(self) -> tuple[HardwareStateKey, ...]:
        """Hardware states with a fitted scalability term."""
        return tuple(sorted(self._scalability, key=HardwareStateKey.sort_key))

    def fitted_interference_states(self) -> tuple[HardwareStateKey, ...]:
        """Hardware states with a fitted interference term."""
        return tuple(sorted(self._interference, key=HardwareStateKey.sort_key))

    def fitted_composition_states(self) -> tuple[HardwareStateKey, ...]:
        """Full-chip shared states with a fitted composition correction."""
        return tuple(sorted(self._composition, key=HardwareStateKey.sort_key))

    def has_scalability(self, key: HardwareStateKey) -> bool:
        """Whether a scalability coefficient vector exists for ``key``."""
        return key in self._scalability

    def has_interference(self, key: HardwareStateKey) -> bool:
        """Whether an interference coefficient vector exists for ``key``."""
        return key in self._interference

    def has_composition(self, key: HardwareStateKey) -> bool:
        """Whether a composition coefficient vector exists for ``key``."""
        return key in self._composition

    def scalability_coefficients(self, key: HardwareStateKey) -> np.ndarray:
        """The fitted ``C`` vector for ``key`` (copy)."""
        self._require_scalability(key)
        return self._scalability[key].copy()

    def interference_coefficients(self, key: HardwareStateKey) -> np.ndarray:
        """The fitted ``D`` vector for ``key`` (copy)."""
        if key not in self._interference:
            raise NotFittedError(
                f"no interference coefficients fitted for state {key.describe()}"
            )
        return self._interference[key].copy()

    def composition_coefficients(self, key: HardwareStateKey) -> np.ndarray:
        """The fitted composition ``E`` vector for ``key`` (copy)."""
        if key not in self._composition:
            raise NotFittedError(
                f"no composition coefficients fitted for state {key.describe()}"
            )
        return self._composition[key].copy()

    # ------------------------------------------------------------------
    # Coefficient installation (used by the trainer and by persistence)
    # ------------------------------------------------------------------
    def set_scalability_coefficients(
        self, key: HardwareStateKey, coefficients: np.ndarray
    ) -> None:
        """Install the ``C`` vector for one hardware state."""
        coefficients = np.asarray(coefficients, dtype=float)
        if coefficients.shape != (self._basis.h_dim,):
            raise ModelError(
                f"scalability coefficients for {key.describe()} must have shape "
                f"({self._basis.h_dim},), got {coefficients.shape}"
            )
        self._scalability[key] = coefficients.copy()
        self._coefficients_version += 1

    def set_interference_coefficients(
        self, key: HardwareStateKey, coefficients: np.ndarray
    ) -> None:
        """Install the ``D`` vector for one hardware state.

        Sub-chip shared keys carry :data:`~repro.core.features.POOL_TERM_DIM`
        extra coefficients for the capacity-aware pool terms (key schema
        v3); every other key keeps the plain ``J`` dimensionality.
        """
        coefficients = np.asarray(coefficients, dtype=float)
        expected = self.interference_dim(key)
        if coefficients.shape != (expected,):
            raise ModelError(
                f"interference coefficients for {key.describe()} must have shape "
                f"({expected},), got {coefficients.shape}"
            )
        self._interference[key] = coefficients.copy()
        self._coefficients_version += 1

    def set_composition_coefficients(
        self, key: HardwareStateKey, coefficients: np.ndarray
    ) -> None:
        """Install the composition ``E`` vector for one full-chip shared state.

        The composition correction applies the capacity-aware saturating
        basis of key schema v3 at the *full-chip* pool (``q = 1``): when
        three or more applications share the chip's LLC/HBM, the plain
        additive per-co-runner ``J`` terms (pair-fitted) systematically
        overshoot because the pool clips.  The ``E`` vector holds the
        servable-fraction-scaled ``H`` block followed by the two pool
        terms — the same layout the sub-chip keys append to ``D`` — fitted
        on N≥3 shared measurements only, so pair predictions never move.
        """
        if key.option is not MemoryOption.SHARED or self.is_sub_chip_shared(key):
            raise ModelError(
                f"composition coefficients only apply to full-chip shared "
                f"states, not {key.describe()}"
            )
        coefficients = np.asarray(coefficients, dtype=float)
        expected = self._basis.h_dim + POOL_TERM_DIM
        if coefficients.shape != (expected,):
            raise ModelError(
                f"composition coefficients for {key.describe()} must have shape "
                f"({expected},), got {coefficients.shape}"
            )
        self._composition[key] = coefficients.copy()
        self._coefficients_version += 1

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict_solo(self, counters: CounterVector, key: HardwareStateKey) -> float:
        """Predicted relative performance of a solo run under ``key``."""
        self._require_scalability(key)
        value = float(self._scalability[key] @ self._basis.h(counters))
        return max(0.0, value)

    def is_sub_chip_shared(self, key: HardwareStateKey) -> bool:
        """Whether ``key`` describes a CI inside a *sub-chip* shared GI.

        These keys only arise from mixed layouts; the full-chip shared
        option always grants the whole chip's memory slices.
        """
        return (
            key.option is MemoryOption.SHARED
            and key.mem_slices < self._spec.n_mem_slices
        )

    def interference_dim(self, key: HardwareStateKey) -> int:
        """Length of the ``D`` vector for ``key``.

        Sub-chip shared keys (mixed layouts) append the capacity-aware
        terms to the ``J`` basis — the servable-fraction-scaled copy of
        the victim's ``H`` block and the two pool terms, in that order —
        while full-chip shared and private keys keep the paper's plain
        ``J`` dimensionality.
        """
        if self.is_sub_chip_shared(key):
            return self._basis.j_dim + self._basis.h_dim + POOL_TERM_DIM
        return self._basis.j_dim

    def pool_fraction(self, key: HardwareStateKey) -> float:
        """The hosting GI's memory slices as a fraction of the chip's."""
        return key.mem_slices / self._spec.n_mem_slices

    def interference_scale(
        self, key: HardwareStateKey, counters: CounterVector
    ) -> float:
        """Victim-side modulation of the interference term under ``key``.

        In the full-chip shared pool the paper's plain additive term is
        kept (``1.0`` — bit-identical to the pair-era model).  A sub-chip
        shared GI saturates: how much a co-runner's pressure costs the
        victim is roughly proportional to the victim's *own* DRAM appetite
        (a compute-bound CI barely notices a streaming GI-mate, a
        bandwidth-bound one loses its share of an already-halved pool), so
        the term is scaled by the victim's DRAM-intensity counter (the F3
        fraction — the ``J1`` feature of the Table 4 basis, but read from
        the counters directly so a custom basis cannot silently invert the
        physics), clamped into ``[0, 1]`` so an out-of-spec counter reading
        above 100 % cannot silently amplify the interference term.  The
        trainer applies the same scale when fitting, keeping fit and
        prediction consistent.
        """
        if not self.is_sub_chip_shared(key):
            return 1.0
        return dram_demand(counters)

    def predict_rperf(
        self,
        counters: CounterVector,
        key: HardwareStateKey,
        co_counters: Sequence[CounterVector] = (),
    ) -> float:
        """Predicted relative performance of one co-located application.

        ``co_counters`` are the profiled counter vectors of the other
        applications sharing the GPU; when it is empty the interference term
        is skipped (solo prediction).

        Under a sub-chip shared key the additive per-co-runner ``J`` terms
        are followed by the capacity-aware basis terms (key schema v3):
        the victim's ``H`` block scaled by the pool's servable fraction of
        the combined DRAM demand, then the saturating/excess pool terms,
        each evaluated once for the whole co-runner group.  Full-chip
        shared and private keys evaluate exactly the pair-era expression.
        """
        self._require_scalability(key)
        value = float(self._scalability[key] @ self._basis.h(counters))
        if co_counters:
            if key not in self._interference:
                raise NotFittedError(
                    f"no interference coefficients fitted for state {key.describe()}"
                )
            d = self._interference[key]
            j_dim = self._basis.j_dim
            scale = self.interference_scale(key, counters)
            for other in co_counters:
                value += scale * float(d[:j_dim] @ self._basis.j(other))
            if self.is_sub_chip_shared(key):
                h_dim = self._basis.h_dim
                co_runner_demand = 0.0
                for other in co_counters:
                    co_runner_demand += dram_demand(other)
                victim_demand = dram_demand(counters)
                pool_fraction = self.pool_fraction(key)
                servable = servable_fraction(
                    victim_demand, co_runner_demand, pool_fraction
                )
                value += servable * float(
                    d[j_dim : j_dim + h_dim] @ self._basis.h(counters)
                )
                terms = pool_saturation_terms(
                    victim_demand, co_runner_demand, pool_fraction
                )
                value += float(d[j_dim + h_dim :] @ terms)
            if len(co_counters) >= 2 and key in self._composition:
                # Full-chip composition correction (mutually exclusive
                # with the sub-chip branch above): the pair-additive terms
                # overshoot once the whole-chip pool clips, so apply the
                # capacity-aware basis at q = 1 with the N≥3-fitted E.
                e = self._composition[key]
                h_dim = self._basis.h_dim
                co_runner_demand = 0.0
                for other in co_counters:
                    co_runner_demand += dram_demand(other)
                victim_demand = dram_demand(counters)
                pool_fraction = self.pool_fraction(key)
                servable = servable_fraction(
                    victim_demand, co_runner_demand, pool_fraction
                )
                value += servable * float(e[:h_dim] @ self._basis.h(counters))
                terms = pool_saturation_terms(
                    victim_demand, co_runner_demand, pool_fraction
                )
                value += float(e[h_dim:] @ terms)
        return max(0.0, value)

    def predict_corun(
        self,
        counters_list: Sequence[CounterVector],
        state: PartitionState,
        power_cap_w: float,
    ) -> tuple[float, ...]:
        """Predicted relative performance of every application under ``state``."""
        if state.n_apps != len(counters_list):
            raise ModelError(
                f"state {state.describe()} has {state.n_apps} applications but "
                f"{len(counters_list)} profiles were supplied"
            )
        predictions = []
        for index, counters in enumerate(counters_list):
            key = HardwareStateKey.from_state(state, index, power_cap_w, self._spec)
            partners = [
                counters_list[j] for j in state.interference_partners(index)
            ]
            predictions.append(self.predict_rperf(counters, key, partners))
        return tuple(predictions)

    def predict_candidates(
        self,
        counters_list: Sequence[CounterVector],
        candidates: Sequence[tuple[PartitionState, float]],
    ) -> np.ndarray:
        """Batched predictions over a grid of ``(state, power_cap)`` candidates.

        Returns an array of shape ``(len(candidates), n_apps)`` whose rows
        match :meth:`predict_corun` for the corresponding candidate.  The
        basis features of each application are computed once and the
        per-candidate work reduces to coefficient gathers plus vectorized
        matrix-vector products — this is the allocator's hot path when the
        candidate space grows beyond the paper's 24-point grid.
        """
        n_apps = len(counters_list)
        if n_apps == 0:
            raise ModelError("predict_candidates needs at least one application")
        n_candidates = len(candidates)
        j_dim = self._basis.j_dim
        h_vecs = [self._basis.h(c) for c in counters_list]
        j_vecs = [self._basis.j(c) for c in counters_list]
        demands = [dram_demand(c) for c in counters_list]
        (
            scalability,
            interference,
            partner_mask,
            sub_chip,
            pool_fractions,
            comp_mask,
            composition,
        ) = self._gather_coefficients(candidates, n_apps)
        predictions = np.empty((n_candidates, n_apps), dtype=float)
        for i in range(n_apps):
            # Accumulate in the same order as the scalar path (own term,
            # each interference partner in index order, then the pool
            # terms) so both paths agree; the mask zeroes non-partners
            # (other GIs of a mixed state) per candidate.
            acc = scalability[:, i, :] @ h_vecs[i]
            if interference is not None:
                # Per-candidate victim scale: 1.0 under full-chip keys
                # (exact, preserving pair-era bit-parity), the victim's
                # clamped DRAM demand under sub-chip shared keys —
                # mirroring :meth:`interference_scale` on the scalar path.
                assert sub_chip is not None and partner_mask is not None
                assert pool_fractions is not None
                scale = 1.0 + sub_chip[:, i] * (demands[i] - 1.0)
                co_runner_demand = np.zeros(n_candidates, dtype=float)
                for k in range(n_apps):
                    if k == i:
                        continue
                    acc = acc + partner_mask[:, i, k] * (
                        scale * (interference[:, i, :j_dim] @ j_vecs[k])
                    )
                    co_runner_demand = (
                        co_runner_demand + partner_mask[:, i, k] * demands[k]
                    )
                # Capacity-aware basis terms: skipped outright when no
                # candidate gives this application a sub-chip key (their
                # contribution is exactly 0.0, so the pair-era full-chip
                # hot path stays bit-identical and untaxed); elsewhere the
                # sub-chip mask zeroes the full-chip rows and the gathered
                # pool fraction is 1.0 there so the divisions stay
                # well-defined.  Mirrors the scalar path: servable-scaled
                # H block, then the pool terms.
                if sub_chip[:, i].any():
                    h_dim = self._basis.h_dim
                    combined = demands[i] + co_runner_demand
                    servable = np.minimum(
                        1.0, pool_fractions[:, i] / np.maximum(combined, 1e-6)
                    )
                    scaled_h = servable * (
                        interference[:, i, j_dim : j_dim + h_dim] @ h_vecs[i]
                    )
                    saturating = np.minimum(
                        1.0, co_runner_demand / pool_fractions[:, i]
                    )
                    excess = np.maximum(0.0, combined - pool_fractions[:, i])
                    pool_value = (
                        interference[:, i, j_dim + h_dim] * saturating
                        + interference[:, i, j_dim + h_dim + 1] * excess
                    )
                    acc = acc + sub_chip[:, i] * (scaled_h + pool_value)
                # Full-chip composition correction, mirroring the scalar
                # path op for op (the full-chip pool fraction is exactly
                # 1.0, so the divisions reduce away); the mask zeroes
                # candidates whose key has no fitted E or where this
                # application sees fewer than two co-runners, leaving
                # those rows bit-identical to the pair-era expression.
                if comp_mask is not None and comp_mask[:, i].any():
                    assert composition is not None
                    h_dim = self._basis.h_dim
                    combined = demands[i] + co_runner_demand
                    servable = np.minimum(
                        1.0, 1.0 / np.maximum(combined, 1e-6)
                    )
                    scaled_h = servable * (
                        composition[:, i, :h_dim] @ h_vecs[i]
                    )
                    saturating = np.minimum(1.0, co_runner_demand)
                    excess = np.maximum(0.0, combined - 1.0)
                    pool_value = (
                        composition[:, i, h_dim] * saturating
                        + composition[:, i, h_dim + 1] * excess
                    )
                    acc = acc + comp_mask[:, i] * (scaled_h + pool_value)
            predictions[:, i] = np.maximum(0.0, acc)
        return predictions

    def _gather_coefficients(
        self,
        candidates: Sequence[tuple[PartitionState, float]],
        n_apps: int,
    ) -> tuple[
        np.ndarray,
        np.ndarray | None,
        np.ndarray | None,
        np.ndarray | None,
        np.ndarray | None,
        np.ndarray | None,
        np.ndarray | None,
    ]:
        """Coefficient tensors and partner mask for a grid, memoized per grid.

        The gather depends only on the grid and the fitted coefficients —
        not on the profiles being predicted — so scheduling loops that
        re-solve the same grid for different application groups skip the
        per-candidate dictionary lookups entirely.  The memo is invalidated
        whenever a coefficient vector is (re)installed, and evicts the
        least-recently-used grid when full, so a loop alternating a few hot
        grids never rebuilds them.

        The interference tensor is padded to ``j_dim + h_dim +
        POOL_TERM_DIM`` columns; full-chip keys leave the capacity-aware
        columns zero (and their pool fraction 1.0, keeping the batched
        divisions well-defined).  The composition mask/tensor pair is only
        allocated when a candidate can co-locate three or more
        applications — the N=2 hot path never pays for it.
        """
        cache_key = (
            self._coefficients_version,
            n_apps,
            tuple((state.key(), float(cap)) for state, cap in candidates),
        )
        cached = self._gather_cache.get(cache_key)
        if cached is not None:
            # Refresh recency (dicts preserve insertion order) so the
            # eviction below drops stale grids, never the hot ones.
            self._gather_cache.pop(cache_key)
            self._gather_cache[cache_key] = cached
            return cached
        n_candidates = len(candidates)
        scalability = np.empty((n_candidates, n_apps, self._basis.h_dim), dtype=float)
        interference = (
            np.zeros(
                (
                    n_candidates,
                    n_apps,
                    self._basis.j_dim + self._basis.h_dim + POOL_TERM_DIM,
                ),
                dtype=float,
            )
            if n_apps > 1
            else None
        )
        partner_mask = (
            np.zeros((n_candidates, n_apps, n_apps), dtype=float)
            if n_apps > 1
            else None
        )
        sub_chip = (
            np.zeros((n_candidates, n_apps), dtype=float) if n_apps > 1 else None
        )
        pool_fractions = (
            np.ones((n_candidates, n_apps), dtype=float) if n_apps > 1 else None
        )
        comp_mask = (
            np.zeros((n_candidates, n_apps), dtype=float) if n_apps > 2 else None
        )
        composition = (
            np.zeros(
                (n_candidates, n_apps, self._basis.h_dim + POOL_TERM_DIM),
                dtype=float,
            )
            if n_apps > 2
            else None
        )
        for ci, (state, power_cap_w) in enumerate(candidates):
            if state.n_apps != n_apps:
                raise ModelError(
                    f"candidate state {state.describe()} has {state.n_apps} "
                    f"applications but {n_apps} profiles were supplied"
                )
            for i in range(n_apps):
                key = HardwareStateKey.from_state(state, i, power_cap_w, self._spec)
                self._require_scalability(key)
                scalability[ci, i] = self._scalability[key]
                if interference is not None and partner_mask is not None:
                    if key not in self._interference:
                        raise NotFittedError(
                            f"no interference coefficients fitted for state {key.describe()}"
                        )
                    coefficients = self._interference[key]
                    interference[ci, i, : coefficients.shape[0]] = coefficients
                    partners = list(state.interference_partners(i))
                    partner_mask[ci, i, partners] = 1.0
                    if self.is_sub_chip_shared(key):
                        assert sub_chip is not None and pool_fractions is not None
                        sub_chip[ci, i] = 1.0
                        pool_fractions[ci, i] = self.pool_fraction(key)
                    elif (
                        comp_mask is not None
                        and len(partners) >= 2
                        and key in self._composition
                    ):
                        assert composition is not None
                        comp_mask[ci, i] = 1.0
                        composition[ci, i] = self._composition[key]
        self._gather_builds += 1
        if len(self._gather_cache) >= self._GATHER_CACHE_SIZE:
            self._gather_cache.pop(next(iter(self._gather_cache)))
        self._gather_cache[cache_key] = (
            scalability,
            interference,
            partner_mask,
            sub_chip,
            pool_fractions,
            comp_mask,
            composition,
        )
        return (
            scalability,
            interference,
            partner_mask,
            sub_chip,
            pool_fractions,
            comp_mask,
            composition,
        )

    def supports_candidate(
        self,
        state: PartitionState,
        power_caps: Iterable[float],
        with_interference: bool | None = None,
    ) -> bool:
        """Whether every per-application key of ``state`` × ``power_caps`` is fitted.

        ``with_interference`` defaults to requiring the interference term
        exactly when the state co-locates more than one application.
        """
        needs_interference = (
            state.n_apps > 1 if with_interference is None else with_interference
        )
        for power_cap in power_caps:
            for index in range(state.n_apps):
                key = HardwareStateKey.from_state(state, index, power_cap, self._spec)
                if key not in self._scalability:
                    return False
                if needs_interference and key not in self._interference:
                    return False
        return True

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Serialize all coefficients to a JSON-compatible dictionary."""

        def encode(table: Mapping[HardwareStateKey, np.ndarray]) -> list[dict]:
            return [
                {
                    "gpcs": key.gpcs,
                    "mem_slices": key.mem_slices,
                    "option": key.option.value,
                    "power_cap_w": key.power_cap_w,
                    "coefficients": [float(v) for v in coeffs],
                }
                for key, coeffs in table.items()
            ]

        return {
            "format": "repro-linear-perf-model",
            "version": KEY_SCHEMA_VERSION,
            "basis": self._basis.name,
            "spec": self._spec.name,
            "scalability": encode(self._scalability),
            "interference": encode(self._interference),
            "composition": encode(self._composition),
        }

    @classmethod
    def from_dict(
        cls,
        data: dict,
        basis: BasisFunctions = DEFAULT_BASIS,
        spec: GPUSpec | None = None,
    ) -> "LinearPerfModel":
        """Rebuild a model from :meth:`to_dict` output.

        ``spec`` defaults to the built-in spec whose full name the document
        recorded; pass it explicitly when the model was fitted against a
        custom :class:`~repro.gpu.spec.GPUSpec`.
        """
        if data.get("format") != "repro-linear-perf-model":
            raise ModelError("not a linear-performance-model document")
        version = data.get("version")
        if version != KEY_SCHEMA_VERSION:
            raise ModelError(
                f"model document uses key schema v{version!r} but this build "
                f"expects v{KEY_SCHEMA_VERSION} (v2 added the GPU Instance's "
                f"memory-slice count to the keys, v3 the capacity-aware "
                f"saturating interference basis of sub-chip shared keys); "
                f"retrain the model to regenerate its coefficients"
            )
        if data.get("basis") != basis.name:
            raise ModelError(
                f"model was fitted with basis {data.get('basis')!r} but "
                f"{basis.name!r} was supplied"
            )
        stored_spec_name = str(data.get("spec", ""))
        if spec is None:
            spec = builtin_spec_named(stored_spec_name)
            if spec is None:
                raise ModelError(
                    f"model document was fitted for spec {stored_spec_name!r}, "
                    f"which is not a built-in spec; pass the matching GPUSpec "
                    f"to from_dict explicitly"
                )
        elif stored_spec_name and spec.name != stored_spec_name:
            raise ModelError(
                f"model document was fitted for spec {stored_spec_name!r} but "
                f"{spec.name!r} was supplied"
            )

        def decode_key(entry: dict) -> HardwareStateKey:
            return HardwareStateKey(
                entry["gpcs"],
                entry["mem_slices"],
                MemoryOption(entry["option"]),
                entry["power_cap_w"],
            )

        model = cls(basis, spec=spec)
        for entry in data.get("scalability", []):
            model.set_scalability_coefficients(decode_key(entry), np.array(entry["coefficients"]))
        for entry in data.get("interference", []):
            model.set_interference_coefficients(decode_key(entry), np.array(entry["coefficients"]))
        for entry in data.get("composition", []):
            model.set_composition_coefficients(decode_key(entry), np.array(entry["coefficients"]))
        return model

    # ------------------------------------------------------------------
    def _require_scalability(self, key: HardwareStateKey) -> None:
        if key not in self._scalability:
            raise NotFittedError(
                f"no scalability coefficients fitted for state {key.describe()}; "
                f"fitted states: {[k.describe() for k in self.fitted_scalability_states()]}"
            )


def required_state_keys(
    states: Iterable[PartitionState],
    power_caps: Iterable[float],
    spec: GPUSpec,
) -> tuple[HardwareStateKey, ...]:
    """Every per-application hardware state implied by states × power caps."""
    keys: set[HardwareStateKey] = set()
    for state in states:
        for power_cap in power_caps:
            for index in range(state.n_apps):
                keys.add(HardwareStateKey.from_state(state, index, power_cap, spec))
    return tuple(sorted(keys, key=HardwareStateKey.sort_key))
