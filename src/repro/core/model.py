"""The linear-regression relative-performance model (Section 4.3).

For application ``i`` co-located with applications ``j ≠ i`` under hardware
state ``(S, P)`` the paper models the relative performance as::

    RPerf_i(S, P) = C(S, P) · H(F_i)  +  Σ_{j≠i} D(S, P) · J(F_j)

where ``F_i`` is the profiled counter vector of application ``i`` and the
coefficient vectors ``C`` and ``D`` are fitted *per hardware state* with
least squares.  A hardware state, from the point of view of one application,
is the triple (number of GPCs it received, memory option, chip power cap) —
that is exactly what :class:`HardwareStateKey` encodes.

The scalability term alone is used for solo predictions (the paper ignores
the interference term when only one application runs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import ModelError, NotFittedError
from repro.core.features import DEFAULT_BASIS, BasisFunctions
from repro.gpu.mig import MemoryOption, PartitionState
from repro.sim.counters import CounterVector


@dataclass(frozen=True)
class HardwareStateKey:
    """One application's view of the hardware state ``(S, P)``.

    Attributes
    ----------
    gpcs:
        GPCs allocated to the application.
    option:
        LLC/HBM sharing option of the partition state.
    power_cap_w:
        Chip power cap in watts.
    """

    gpcs: int
    option: MemoryOption
    power_cap_w: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "option", MemoryOption(self.option))
        object.__setattr__(self, "power_cap_w", float(self.power_cap_w))

    @classmethod
    def from_state(
        cls, state: PartitionState, app_index: int, power_cap_w: float
    ) -> "HardwareStateKey":
        """The key seen by application ``app_index`` under ``state`` at ``power_cap_w``."""
        return cls(
            gpcs=state.gpc_allocations[app_index],
            option=state.option,
            power_cap_w=float(power_cap_w),
        )

    def describe(self) -> str:
        """Human-readable description."""
        return f"{self.gpcs}GPCs/{self.option.value}/{self.power_cap_w:.0f}W"


class LinearPerfModel:
    """Per-hardware-state linear regression over profiled features.

    The model stores one scalability coefficient vector ``C`` and one
    interference coefficient vector ``D`` per :class:`HardwareStateKey`.
    Training happens in :mod:`repro.core.training`; this class only holds
    coefficients and evaluates predictions.
    """

    def __init__(self, basis: BasisFunctions = DEFAULT_BASIS) -> None:
        self._basis = basis
        self._scalability: dict[HardwareStateKey, np.ndarray] = {}
        self._interference: dict[HardwareStateKey, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def basis(self) -> BasisFunctions:
        """The basis functions the coefficients were fitted against."""
        return self._basis

    def fitted_scalability_states(self) -> tuple[HardwareStateKey, ...]:
        """Hardware states with a fitted scalability term."""
        return tuple(sorted(self._scalability, key=lambda k: (k.option.value, k.gpcs, k.power_cap_w)))

    def fitted_interference_states(self) -> tuple[HardwareStateKey, ...]:
        """Hardware states with a fitted interference term."""
        return tuple(sorted(self._interference, key=lambda k: (k.option.value, k.gpcs, k.power_cap_w)))

    def has_scalability(self, key: HardwareStateKey) -> bool:
        """Whether a scalability coefficient vector exists for ``key``."""
        return key in self._scalability

    def has_interference(self, key: HardwareStateKey) -> bool:
        """Whether an interference coefficient vector exists for ``key``."""
        return key in self._interference

    def scalability_coefficients(self, key: HardwareStateKey) -> np.ndarray:
        """The fitted ``C`` vector for ``key`` (copy)."""
        self._require_scalability(key)
        return self._scalability[key].copy()

    def interference_coefficients(self, key: HardwareStateKey) -> np.ndarray:
        """The fitted ``D`` vector for ``key`` (copy)."""
        if key not in self._interference:
            raise NotFittedError(
                f"no interference coefficients fitted for state {key.describe()}"
            )
        return self._interference[key].copy()

    # ------------------------------------------------------------------
    # Coefficient installation (used by the trainer and by persistence)
    # ------------------------------------------------------------------
    def set_scalability_coefficients(
        self, key: HardwareStateKey, coefficients: np.ndarray
    ) -> None:
        """Install the ``C`` vector for one hardware state."""
        coefficients = np.asarray(coefficients, dtype=float)
        if coefficients.shape != (self._basis.h_dim,):
            raise ModelError(
                f"scalability coefficients for {key.describe()} must have shape "
                f"({self._basis.h_dim},), got {coefficients.shape}"
            )
        self._scalability[key] = coefficients.copy()

    def set_interference_coefficients(
        self, key: HardwareStateKey, coefficients: np.ndarray
    ) -> None:
        """Install the ``D`` vector for one hardware state."""
        coefficients = np.asarray(coefficients, dtype=float)
        if coefficients.shape != (self._basis.j_dim,):
            raise ModelError(
                f"interference coefficients for {key.describe()} must have shape "
                f"({self._basis.j_dim},), got {coefficients.shape}"
            )
        self._interference[key] = coefficients.copy()

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict_solo(self, counters: CounterVector, key: HardwareStateKey) -> float:
        """Predicted relative performance of a solo run under ``key``."""
        self._require_scalability(key)
        value = float(self._scalability[key] @ self._basis.h(counters))
        return max(0.0, value)

    def predict_rperf(
        self,
        counters: CounterVector,
        key: HardwareStateKey,
        co_counters: Sequence[CounterVector] = (),
    ) -> float:
        """Predicted relative performance of one co-located application.

        ``co_counters`` are the profiled counter vectors of the other
        applications sharing the GPU; when it is empty the interference term
        is skipped (solo prediction).
        """
        self._require_scalability(key)
        value = float(self._scalability[key] @ self._basis.h(counters))
        if co_counters:
            if key not in self._interference:
                raise NotFittedError(
                    f"no interference coefficients fitted for state {key.describe()}"
                )
            d = self._interference[key]
            for other in co_counters:
                value += float(d @ self._basis.j(other))
        return max(0.0, value)

    def predict_corun(
        self,
        counters_list: Sequence[CounterVector],
        state: PartitionState,
        power_cap_w: float,
    ) -> tuple[float, ...]:
        """Predicted relative performance of every application under ``state``."""
        if state.n_apps != len(counters_list):
            raise ModelError(
                f"state {state.describe()} has {state.n_apps} applications but "
                f"{len(counters_list)} profiles were supplied"
            )
        predictions = []
        for index, counters in enumerate(counters_list):
            key = HardwareStateKey.from_state(state, index, power_cap_w)
            others = [c for j, c in enumerate(counters_list) if j != index]
            predictions.append(self.predict_rperf(counters, key, others))
        return tuple(predictions)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Serialize all coefficients to a JSON-compatible dictionary."""

        def encode(table: Mapping[HardwareStateKey, np.ndarray]) -> list[dict]:
            return [
                {
                    "gpcs": key.gpcs,
                    "option": key.option.value,
                    "power_cap_w": key.power_cap_w,
                    "coefficients": [float(v) for v in coeffs],
                }
                for key, coeffs in table.items()
            ]

        return {
            "format": "repro-linear-perf-model",
            "version": 1,
            "basis": self._basis.name,
            "scalability": encode(self._scalability),
            "interference": encode(self._interference),
        }

    @classmethod
    def from_dict(cls, data: dict, basis: BasisFunctions = DEFAULT_BASIS) -> "LinearPerfModel":
        """Rebuild a model from :meth:`to_dict` output."""
        if data.get("format") != "repro-linear-perf-model":
            raise ModelError("not a linear-performance-model document")
        if data.get("basis") != basis.name:
            raise ModelError(
                f"model was fitted with basis {data.get('basis')!r} but "
                f"{basis.name!r} was supplied"
            )
        model = cls(basis)
        for entry in data.get("scalability", []):
            key = HardwareStateKey(entry["gpcs"], MemoryOption(entry["option"]), entry["power_cap_w"])
            model.set_scalability_coefficients(key, np.array(entry["coefficients"]))
        for entry in data.get("interference", []):
            key = HardwareStateKey(entry["gpcs"], MemoryOption(entry["option"]), entry["power_cap_w"])
            model.set_interference_coefficients(key, np.array(entry["coefficients"]))
        return model

    # ------------------------------------------------------------------
    def _require_scalability(self, key: HardwareStateKey) -> None:
        if key not in self._scalability:
            raise NotFittedError(
                f"no scalability coefficients fitted for state {key.describe()}; "
                f"fitted states: {[k.describe() for k in self.fitted_scalability_states()]}"
            )


def required_state_keys(
    states: Iterable[PartitionState],
    power_caps: Iterable[float],
) -> tuple[HardwareStateKey, ...]:
    """Every per-application hardware state implied by states × power caps."""
    keys: set[HardwareStateKey] = set()
    for state in states:
        for power_cap in power_caps:
            for index in range(state.n_apps):
                keys.add(HardwareStateKey.from_state(state, index, power_cap))
    return tuple(sorted(keys, key=lambda k: (k.option.value, k.gpcs, k.power_cap_w)))
