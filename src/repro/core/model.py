"""The linear-regression relative-performance model (Section 4.3).

For application ``i`` co-located with applications ``j ≠ i`` under hardware
state ``(S, P)`` the paper models the relative performance as::

    RPerf_i(S, P) = C(S, P) · H(F_i)  +  Σ_{j≠i} D(S, P) · J(F_j)

where ``F_i`` is the profiled counter vector of application ``i`` and the
coefficient vectors ``C`` and ``D`` are fitted *per hardware state* with
least squares.  A hardware state, from the point of view of one application,
is the triple (number of GPCs it received, memory option, chip power cap) —
that is exactly what :class:`HardwareStateKey` encodes.

The scalability term alone is used for solo predictions (the paper ignores
the interference term when only one application runs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import ModelError, NotFittedError
from repro.core.features import DEFAULT_BASIS, BasisFunctions
from repro.gpu.mig import MemoryOption, PartitionState
from repro.sim.counters import CounterVector


@dataclass(frozen=True)
class HardwareStateKey:
    """One application's view of the hardware state ``(S, P)``.

    Attributes
    ----------
    gpcs:
        GPCs allocated to the application.
    option:
        LLC/HBM sharing option of the partition state.
    power_cap_w:
        Chip power cap in watts.
    """

    gpcs: int
    option: MemoryOption
    power_cap_w: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "option", MemoryOption(self.option))
        object.__setattr__(self, "power_cap_w", float(self.power_cap_w))

    @classmethod
    def from_state(
        cls, state: PartitionState, app_index: int, power_cap_w: float
    ) -> "HardwareStateKey":
        """The key seen by application ``app_index`` under ``state`` at ``power_cap_w``.

        For mixed states the per-application option is the *effective* one
        (private when the application owns its GPU Instance, shared when it
        shares one), so coefficients calibrated on the two base options can
        be applied to mixed layouts.  This is an approximation: the key
        does not encode the GPU Instance's size, so a shared sub-chip GI
        reuses coefficients fitted on the full-chip pool and overestimates
        the bandwidth available there (see ROADMAP — GI-size-aware keys
        need mixed-state training data).
        """
        return cls(
            gpcs=state.gpc_allocations[app_index],
            option=state.effective_option(app_index),
            power_cap_w=float(power_cap_w),
        )

    def describe(self) -> str:
        """Human-readable description."""
        return f"{self.gpcs}GPCs/{self.option.value}/{self.power_cap_w:.0f}W"


class LinearPerfModel:
    """Per-hardware-state linear regression over profiled features.

    The model stores one scalability coefficient vector ``C`` and one
    interference coefficient vector ``D`` per :class:`HardwareStateKey`.
    Training happens in :mod:`repro.core.training`; this class only holds
    coefficients and evaluates predictions.
    """

    #: Candidate-grid coefficient gathers memoized per model (see
    #: :meth:`predict_candidates`); bounded so stale grids are dropped.
    _GATHER_CACHE_SIZE = 8

    def __init__(self, basis: BasisFunctions = DEFAULT_BASIS) -> None:
        self._basis = basis
        self._scalability: dict[HardwareStateKey, np.ndarray] = {}
        self._interference: dict[HardwareStateKey, np.ndarray] = {}
        self._coefficients_version = 0
        self._gather_cache: dict[
            tuple, tuple[np.ndarray, np.ndarray | None, np.ndarray | None]
        ] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def basis(self) -> BasisFunctions:
        """The basis functions the coefficients were fitted against."""
        return self._basis

    @property
    def coefficients_version(self) -> int:
        """Counter bumped whenever a coefficient vector is (re)installed.

        Caches keyed on model predictions (the gather memo here, the
        allocator's decision cache, the online layer's state cache) include
        this so refitting invalidates them.
        """
        return self._coefficients_version

    def fitted_scalability_states(self) -> tuple[HardwareStateKey, ...]:
        """Hardware states with a fitted scalability term."""
        return tuple(sorted(self._scalability, key=lambda k: (k.option.value, k.gpcs, k.power_cap_w)))

    def fitted_interference_states(self) -> tuple[HardwareStateKey, ...]:
        """Hardware states with a fitted interference term."""
        return tuple(sorted(self._interference, key=lambda k: (k.option.value, k.gpcs, k.power_cap_w)))

    def has_scalability(self, key: HardwareStateKey) -> bool:
        """Whether a scalability coefficient vector exists for ``key``."""
        return key in self._scalability

    def has_interference(self, key: HardwareStateKey) -> bool:
        """Whether an interference coefficient vector exists for ``key``."""
        return key in self._interference

    def scalability_coefficients(self, key: HardwareStateKey) -> np.ndarray:
        """The fitted ``C`` vector for ``key`` (copy)."""
        self._require_scalability(key)
        return self._scalability[key].copy()

    def interference_coefficients(self, key: HardwareStateKey) -> np.ndarray:
        """The fitted ``D`` vector for ``key`` (copy)."""
        if key not in self._interference:
            raise NotFittedError(
                f"no interference coefficients fitted for state {key.describe()}"
            )
        return self._interference[key].copy()

    # ------------------------------------------------------------------
    # Coefficient installation (used by the trainer and by persistence)
    # ------------------------------------------------------------------
    def set_scalability_coefficients(
        self, key: HardwareStateKey, coefficients: np.ndarray
    ) -> None:
        """Install the ``C`` vector for one hardware state."""
        coefficients = np.asarray(coefficients, dtype=float)
        if coefficients.shape != (self._basis.h_dim,):
            raise ModelError(
                f"scalability coefficients for {key.describe()} must have shape "
                f"({self._basis.h_dim},), got {coefficients.shape}"
            )
        self._scalability[key] = coefficients.copy()
        self._coefficients_version += 1

    def set_interference_coefficients(
        self, key: HardwareStateKey, coefficients: np.ndarray
    ) -> None:
        """Install the ``D`` vector for one hardware state."""
        coefficients = np.asarray(coefficients, dtype=float)
        if coefficients.shape != (self._basis.j_dim,):
            raise ModelError(
                f"interference coefficients for {key.describe()} must have shape "
                f"({self._basis.j_dim},), got {coefficients.shape}"
            )
        self._interference[key] = coefficients.copy()
        self._coefficients_version += 1

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict_solo(self, counters: CounterVector, key: HardwareStateKey) -> float:
        """Predicted relative performance of a solo run under ``key``."""
        self._require_scalability(key)
        value = float(self._scalability[key] @ self._basis.h(counters))
        return max(0.0, value)

    def predict_rperf(
        self,
        counters: CounterVector,
        key: HardwareStateKey,
        co_counters: Sequence[CounterVector] = (),
    ) -> float:
        """Predicted relative performance of one co-located application.

        ``co_counters`` are the profiled counter vectors of the other
        applications sharing the GPU; when it is empty the interference term
        is skipped (solo prediction).
        """
        self._require_scalability(key)
        value = float(self._scalability[key] @ self._basis.h(counters))
        if co_counters:
            if key not in self._interference:
                raise NotFittedError(
                    f"no interference coefficients fitted for state {key.describe()}"
                )
            d = self._interference[key]
            for other in co_counters:
                value += float(d @ self._basis.j(other))
        return max(0.0, value)

    def predict_corun(
        self,
        counters_list: Sequence[CounterVector],
        state: PartitionState,
        power_cap_w: float,
    ) -> tuple[float, ...]:
        """Predicted relative performance of every application under ``state``."""
        if state.n_apps != len(counters_list):
            raise ModelError(
                f"state {state.describe()} has {state.n_apps} applications but "
                f"{len(counters_list)} profiles were supplied"
            )
        predictions = []
        for index, counters in enumerate(counters_list):
            key = HardwareStateKey.from_state(state, index, power_cap_w)
            partners = [
                counters_list[j] for j in state.interference_partners(index)
            ]
            predictions.append(self.predict_rperf(counters, key, partners))
        return tuple(predictions)

    def predict_candidates(
        self,
        counters_list: Sequence[CounterVector],
        candidates: Sequence[tuple[PartitionState, float]],
    ) -> np.ndarray:
        """Batched predictions over a grid of ``(state, power_cap)`` candidates.

        Returns an array of shape ``(len(candidates), n_apps)`` whose rows
        match :meth:`predict_corun` for the corresponding candidate.  The
        basis features of each application are computed once and the
        per-candidate work reduces to coefficient gathers plus vectorized
        matrix-vector products — this is the allocator's hot path when the
        candidate space grows beyond the paper's 24-point grid.
        """
        n_apps = len(counters_list)
        if n_apps == 0:
            raise ModelError("predict_candidates needs at least one application")
        n_candidates = len(candidates)
        h_vecs = [self._basis.h(c) for c in counters_list]
        j_vecs = [self._basis.j(c) for c in counters_list]
        scalability, interference, partner_mask = self._gather_coefficients(
            candidates, n_apps
        )
        predictions = np.empty((n_candidates, n_apps), dtype=float)
        for i in range(n_apps):
            # Accumulate in the same order as the scalar path (own term,
            # then each interference partner in index order) so both paths
            # agree; the mask zeroes non-partners (other GIs of a mixed
            # state) per candidate.
            acc = scalability[:, i, :] @ h_vecs[i]
            if interference is not None:
                for k in range(n_apps):
                    if k == i:
                        continue
                    acc = acc + partner_mask[:, i, k] * (
                        interference[:, i, :] @ j_vecs[k]
                    )
            predictions[:, i] = np.maximum(0.0, acc)
        return predictions

    def _gather_coefficients(
        self,
        candidates: Sequence[tuple[PartitionState, float]],
        n_apps: int,
    ) -> tuple[np.ndarray, np.ndarray | None, np.ndarray | None]:
        """Coefficient tensors and partner mask for a grid, memoized per grid.

        The gather depends only on the grid and the fitted coefficients —
        not on the profiles being predicted — so scheduling loops that
        re-solve the same grid for different application groups skip the
        per-candidate dictionary lookups entirely.  The memo is invalidated
        whenever a coefficient vector is (re)installed.
        """
        cache_key = (
            self._coefficients_version,
            n_apps,
            tuple((state.key(), float(cap)) for state, cap in candidates),
        )
        cached = self._gather_cache.get(cache_key)
        if cached is not None:
            return cached
        n_candidates = len(candidates)
        scalability = np.empty((n_candidates, n_apps, self._basis.h_dim), dtype=float)
        interference = (
            np.empty((n_candidates, n_apps, self._basis.j_dim), dtype=float)
            if n_apps > 1
            else None
        )
        partner_mask = (
            np.zeros((n_candidates, n_apps, n_apps), dtype=float)
            if n_apps > 1
            else None
        )
        for ci, (state, power_cap_w) in enumerate(candidates):
            if state.n_apps != n_apps:
                raise ModelError(
                    f"candidate state {state.describe()} has {state.n_apps} "
                    f"applications but {n_apps} profiles were supplied"
                )
            for i in range(n_apps):
                key = HardwareStateKey.from_state(state, i, power_cap_w)
                self._require_scalability(key)
                scalability[ci, i] = self._scalability[key]
                if interference is not None and partner_mask is not None:
                    if key not in self._interference:
                        raise NotFittedError(
                            f"no interference coefficients fitted for state {key.describe()}"
                        )
                    interference[ci, i] = self._interference[key]
                    partner_mask[ci, i, list(state.interference_partners(i))] = 1.0
        if len(self._gather_cache) >= self._GATHER_CACHE_SIZE:
            self._gather_cache.clear()
        self._gather_cache[cache_key] = (scalability, interference, partner_mask)
        return scalability, interference, partner_mask

    def supports_candidate(
        self,
        state: PartitionState,
        power_caps: Iterable[float],
        with_interference: bool | None = None,
    ) -> bool:
        """Whether every per-application key of ``state`` × ``power_caps`` is fitted.

        ``with_interference`` defaults to requiring the interference term
        exactly when the state co-locates more than one application.
        """
        needs_interference = (
            state.n_apps > 1 if with_interference is None else with_interference
        )
        for power_cap in power_caps:
            for index in range(state.n_apps):
                key = HardwareStateKey.from_state(state, index, power_cap)
                if key not in self._scalability:
                    return False
                if needs_interference and key not in self._interference:
                    return False
        return True

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Serialize all coefficients to a JSON-compatible dictionary."""

        def encode(table: Mapping[HardwareStateKey, np.ndarray]) -> list[dict]:
            return [
                {
                    "gpcs": key.gpcs,
                    "option": key.option.value,
                    "power_cap_w": key.power_cap_w,
                    "coefficients": [float(v) for v in coeffs],
                }
                for key, coeffs in table.items()
            ]

        return {
            "format": "repro-linear-perf-model",
            "version": 1,
            "basis": self._basis.name,
            "scalability": encode(self._scalability),
            "interference": encode(self._interference),
        }

    @classmethod
    def from_dict(cls, data: dict, basis: BasisFunctions = DEFAULT_BASIS) -> "LinearPerfModel":
        """Rebuild a model from :meth:`to_dict` output."""
        if data.get("format") != "repro-linear-perf-model":
            raise ModelError("not a linear-performance-model document")
        if data.get("basis") != basis.name:
            raise ModelError(
                f"model was fitted with basis {data.get('basis')!r} but "
                f"{basis.name!r} was supplied"
            )
        model = cls(basis)
        for entry in data.get("scalability", []):
            key = HardwareStateKey(entry["gpcs"], MemoryOption(entry["option"]), entry["power_cap_w"])
            model.set_scalability_coefficients(key, np.array(entry["coefficients"]))
        for entry in data.get("interference", []):
            key = HardwareStateKey(entry["gpcs"], MemoryOption(entry["option"]), entry["power_cap_w"])
            model.set_interference_coefficients(key, np.array(entry["coefficients"]))
        return model

    # ------------------------------------------------------------------
    def _require_scalability(self, key: HardwareStateKey) -> None:
        if key not in self._scalability:
            raise NotFittedError(
                f"no scalability coefficients fitted for state {key.describe()}; "
                f"fitted states: {[k.describe() for k in self.fitted_scalability_states()]}"
            )


def required_state_keys(
    states: Iterable[PartitionState],
    power_caps: Iterable[float],
) -> tuple[HardwareStateKey, ...]:
    """Every per-application hardware state implied by states × power caps."""
    keys: set[HardwareStateKey] = set()
    for state in states:
        for power_cap in power_caps:
            for index in range(state.n_apps):
                keys.add(HardwareStateKey.from_state(state, index, power_cap))
    return tuple(sorted(keys, key=lambda k: (k.option.value, k.gpcs, k.power_cap_w)))
