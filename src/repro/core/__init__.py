"""The paper's contribution: modelling and optimization.

This package implements the methodology of Section 4:

* :mod:`repro.core.features` — the Table 4 basis functions ``H(F)`` and
  ``J(F)`` over the Table 3 counter vector ``F``.
* :mod:`repro.core.model` — the linear-regression relative-performance model
  ``RPerf_i(S, P) = C(S, P)·H(F_i) + Σ_j D(S, P)·J(F_j)``.
* :mod:`repro.core.training` — offline least-squares calibration of the
  coefficients from solo and co-run measurements.
* :mod:`repro.core.metrics` — throughput (weighted speedup), fairness, and
  energy-efficiency metrics.
* :mod:`repro.core.policies` — the two optimization problems (Problem 1:
  throughput under a fairness constraint at a given cap; Problem 2: energy
  efficiency with the cap as a free variable).
* :mod:`repro.core.search` — exhaustive search (used by the paper) and hill
  climbing (the paper's suggested scaling path).
* :mod:`repro.core.optimizer` — the Resource & Power Allocator.
* :mod:`repro.core.workflow` — the offline/online workflow of Figure 7.
* :mod:`repro.core.modelstore` — persistence of trained model coefficients
  (the CLI's ``--model`` cache).
"""

from repro.core.decision import AllocationDecision, CandidateEvaluation
from repro.core.features import (
    DEFAULT_BASIS,
    RAW_COUNTER_BASIS,
    BasisFunctions,
    basis_h,
    basis_j,
)
from repro.core.metrics import (
    energy_efficiency,
    fairness,
    fairness_batch,
    geometric_mean,
    weighted_speedup,
    weighted_speedup_batch,
)
from repro.core.model import HardwareStateKey, LinearPerfModel
from repro.core.modelstore import (
    ModelFingerprint,
    cache_path_for,
    load_model,
    save_model,
)
from repro.core.optimizer import DecisionCache, ResourcePowerAllocator
from repro.core.policies import Policy, Problem1Policy, Problem2Policy
from repro.core.search import ExhaustiveSearch, HillClimbingSearch, SearchCandidate
from repro.core.training import (
    CoRunMeasurement,
    ModelTrainer,
    SoloMeasurement,
    collect_corun_measurements,
    collect_solo_measurements,
)
from repro.core.workflow import (
    OfflineTrainer,
    OnlineAllocator,
    PaperWorkflow,
    TrainingPlan,
    power_caps_for_spec,
)

__all__ = [
    "AllocationDecision",
    "CandidateEvaluation",
    "BasisFunctions",
    "DEFAULT_BASIS",
    "RAW_COUNTER_BASIS",
    "basis_h",
    "basis_j",
    "weighted_speedup",
    "weighted_speedup_batch",
    "fairness",
    "fairness_batch",
    "energy_efficiency",
    "geometric_mean",
    "HardwareStateKey",
    "LinearPerfModel",
    "ModelFingerprint",
    "cache_path_for",
    "load_model",
    "save_model",
    "ResourcePowerAllocator",
    "DecisionCache",
    "Policy",
    "Problem1Policy",
    "Problem2Policy",
    "ExhaustiveSearch",
    "HillClimbingSearch",
    "SearchCandidate",
    "ModelTrainer",
    "SoloMeasurement",
    "CoRunMeasurement",
    "collect_solo_measurements",
    "collect_corun_measurements",
    "OfflineTrainer",
    "OnlineAllocator",
    "PaperWorkflow",
    "TrainingPlan",
    "power_caps_for_spec",
]
