"""The end-to-end workflow of Figure 7.

* **Offline** (:class:`OfflineTrainer`): run the predetermined benchmark set
  through the solo and co-run training sweeps and calibrate the model
  coefficients with least squares.
* **Online** (:class:`OnlineAllocator`): for an application pair coming from
  the co-scheduler, look up (or, on first sight, collect) their profiles and
  solve the requested optimization problem, returning the best partition
  state and power cap.

:class:`PaperWorkflow` bundles the two for convenience: it is what the
examples and benchmark harnesses instantiate to go from nothing to decisions
in a few lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.config import DEFAULT_POWER_CAPS, SCALABILITY_GPC_COUNTS
from repro.core.decision import AllocationDecision
from repro.core.features import DEFAULT_BASIS, BasisFunctions
from repro.core.model import LinearPerfModel
from repro.core.optimizer import ResourcePowerAllocator
from repro.core.policies import Policy, Problem1Policy, Problem2Policy
from repro.core.search import SearchStrategy
from repro.core.training import (
    ModelTrainer,
    collect_corun_measurements,
    collect_solo_measurements,
)
from repro.errors import MissingProfileError
from repro.gpu.mig import CORUN_STATES, MemoryOption, PartitionState
from repro.profiling.database import ProfileDatabase
from repro.profiling.profiler import ProfileCollector
from repro.sim.engine import PerformanceSimulator
from repro.workloads.kernel import KernelCharacteristics
from repro.workloads.pairs import CORUN_PAIRS, CoRunPair
from repro.workloads.suite import BenchmarkSuite, DEFAULT_SUITE


@dataclass(frozen=True)
class TrainingPlan:
    """What the offline stage will execute.

    Attributes
    ----------
    gpc_counts, options, power_caps:
        The solo-sweep grid (GPC counts × memory options × power caps).
    states:
        The co-run partition states used for the interference calibration.
    """

    gpc_counts: tuple[int, ...] = SCALABILITY_GPC_COUNTS
    options: tuple[MemoryOption, ...] = (MemoryOption.PRIVATE, MemoryOption.SHARED)
    power_caps: tuple[float, ...] = DEFAULT_POWER_CAPS
    states: tuple[PartitionState, ...] = CORUN_STATES

    @property
    def solo_runs_per_kernel(self) -> int:
        """Number of solo training runs each benchmark requires."""
        return len(self.gpc_counts) * len(self.options) * len(self.power_caps)

    @property
    def corun_runs_per_pair(self) -> int:
        """Number of co-run training runs each pair requires."""
        return len(self.states) * len(self.power_caps)


class OfflineTrainer:
    """The offline half of Figure 7: calibrate the model coefficients."""

    def __init__(
        self,
        simulator: PerformanceSimulator | None = None,
        suite: BenchmarkSuite = DEFAULT_SUITE,
        plan: TrainingPlan | None = None,
        basis: BasisFunctions = DEFAULT_BASIS,
    ) -> None:
        self._simulator = simulator if simulator is not None else PerformanceSimulator()
        self._suite = suite
        self._plan = plan if plan is not None else TrainingPlan()
        self._basis = basis
        self._trainer = ModelTrainer(basis)

    @property
    def simulator(self) -> PerformanceSimulator:
        """The simulator used for training runs."""
        return self._simulator

    @property
    def plan(self) -> TrainingPlan:
        """The training plan in use."""
        return self._plan

    @property
    def trainer(self) -> ModelTrainer:
        """The underlying least-squares trainer (exposes the training report)."""
        return self._trainer

    def run(
        self,
        training_kernels: Iterable[KernelCharacteristics] | None = None,
        training_pairs: Sequence[CoRunPair] | None = None,
    ) -> LinearPerfModel:
        """Execute the training sweeps and return the calibrated model.

        ``training_kernels`` defaults to every benchmark of the suite;
        ``training_pairs`` defaults to the Table 8 co-run workloads.
        """
        kernels = (
            list(training_kernels)
            if training_kernels is not None
            else list(self._suite.all())
        )
        pairs = list(training_pairs) if training_pairs is not None else list(CORUN_PAIRS)
        solo = collect_solo_measurements(
            self._simulator,
            kernels,
            gpc_counts=self._plan.gpc_counts,
            options=self._plan.options,
            power_caps=self._plan.power_caps,
        )
        pair_kernels = [pair.kernels(self._suite) for pair in pairs]
        corun = collect_corun_measurements(
            self._simulator,
            pair_kernels,
            states=self._plan.states,
            power_caps=self._plan.power_caps,
        )
        return self._trainer.train(solo, corun)


class OnlineAllocator:
    """The online half of Figure 7: profile lookup + optimization."""

    def __init__(
        self,
        model: LinearPerfModel,
        database: ProfileDatabase | None = None,
        collector: ProfileCollector | None = None,
        candidate_states: Sequence[PartitionState] = CORUN_STATES,
        power_caps: Sequence[float] = DEFAULT_POWER_CAPS,
        search: SearchStrategy | None = None,
    ) -> None:
        self._database = database if database is not None else ProfileDatabase()
        self._collector = collector
        self._allocator = ResourcePowerAllocator(
            model,
            candidate_states=candidate_states,
            power_caps=power_caps,
            search=search,
        )

    @property
    def database(self) -> ProfileDatabase:
        """The profile database backing the allocator."""
        return self._database

    @property
    def allocator(self) -> ResourcePowerAllocator:
        """The underlying Resource & Power Allocator."""
        return self._allocator

    # ------------------------------------------------------------------
    def ensure_profiled(self, kernel: KernelCharacteristics) -> None:
        """Collect and store a profile for ``kernel`` if none exists.

        This is the paper's "first run must be a profile run" rule; it only
        works when a collector was supplied, otherwise the application is
        simply reported as unprofiled.
        """
        if self._database.has(kernel.name):
            return
        if self._collector is None:
            raise MissingProfileError(
                f"no profile recorded for application {kernel.name!r} and no "
                "profile collector is configured"
            )
        self._database.add(self._collector.collect(kernel))

    def decide(self, app_names: Sequence[str], policy: Policy) -> AllocationDecision:
        """Solve ``policy`` for the applications named in ``app_names``.

        Every application must already have a profile in the database.
        """
        counters = [self._database.get(name).counters for name in app_names]
        return self._allocator.solve(counters, policy)


class PaperWorkflow:
    """Offline training + online decisions, bundled (Figure 7 end to end)."""

    def __init__(
        self,
        simulator: PerformanceSimulator | None = None,
        suite: BenchmarkSuite = DEFAULT_SUITE,
        plan: TrainingPlan | None = None,
        basis: BasisFunctions = DEFAULT_BASIS,
        candidate_states: Sequence[PartitionState] = CORUN_STATES,
        power_caps: Sequence[float] = DEFAULT_POWER_CAPS,
        search: SearchStrategy | None = None,
    ) -> None:
        self._simulator = simulator if simulator is not None else PerformanceSimulator()
        self._suite = suite
        self._offline = OfflineTrainer(self._simulator, suite, plan, basis)
        self._candidate_states = tuple(candidate_states)
        self._power_caps = tuple(float(p) for p in power_caps)
        self._search = search
        self._model: LinearPerfModel | None = None
        self._online: OnlineAllocator | None = None

    @property
    def simulator(self) -> PerformanceSimulator:
        """The simulator shared by training, profiling, and evaluation."""
        return self._simulator

    @property
    def suite(self) -> BenchmarkSuite:
        """The benchmark suite in use."""
        return self._suite

    @property
    def offline(self) -> OfflineTrainer:
        """The offline trainer (exposes the training plan and report)."""
        return self._offline

    @property
    def model(self) -> LinearPerfModel:
        """The trained model (training is triggered on first access)."""
        if self._model is None:
            self.train()
        assert self._model is not None
        return self._model

    @property
    def online(self) -> OnlineAllocator:
        """The online allocator (training is triggered on first access)."""
        if self._online is None:
            self.train()
        assert self._online is not None
        return self._online

    # ------------------------------------------------------------------
    def train(
        self,
        training_kernels: Iterable[KernelCharacteristics] | None = None,
        training_pairs: Sequence[CoRunPair] | None = None,
    ) -> LinearPerfModel:
        """Run the offline stage and set up the online allocator."""
        self._model = self._offline.run(training_kernels, training_pairs)
        collector = ProfileCollector(self._simulator)
        database = ProfileDatabase()
        collector.collect_into(self._suite.all(), database)
        self._online = OnlineAllocator(
            self._model,
            database=database,
            collector=collector,
            candidate_states=self._candidate_states,
            power_caps=self._power_caps,
            search=self._search,
        )
        return self._model

    # ------------------------------------------------------------------
    def decide_problem1(
        self, app_names: Sequence[str], power_cap_w: float, alpha: float = 0.2
    ) -> AllocationDecision:
        """Problem 1 decision for a pair of profiled applications."""
        return self.online.decide(
            app_names, Problem1Policy(power_cap_w=power_cap_w, alpha=alpha)
        )

    def decide_problem2(
        self, app_names: Sequence[str], alpha: float = 0.2
    ) -> AllocationDecision:
        """Problem 2 decision for a pair of profiled applications."""
        return self.online.decide(
            app_names, Problem2Policy(alpha=alpha, power_caps=self._power_caps)
        )
