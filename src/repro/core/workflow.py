"""The end-to-end workflow of Figure 7.

* **Offline** (:class:`OfflineTrainer`): run the predetermined benchmark set
  through the solo and co-run training sweeps and calibrate the model
  coefficients with least squares.
* **Online** (:class:`OnlineAllocator`): for an application pair coming from
  the co-scheduler, look up (or, on first sight, collect) their profiles and
  solve the requested optimization problem, returning the best partition
  state and power cap.

:class:`PaperWorkflow` bundles the two for convenience: it is what the
examples and benchmark harnesses instantiate to go from nothing to decisions
in a few lines.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.config import DEFAULT_POWER_CAPS, SCALABILITY_GPC_COUNTS
from repro.core.decision import AllocationDecision
from repro.core.features import DEFAULT_BASIS, BasisFunctions
from repro.core.model import LinearPerfModel
from repro.core.optimizer import ResourcePowerAllocator
from repro.core.policies import Policy, Problem1Policy, Problem2Policy
from repro.core.search import SearchStrategy
from repro.core.training import (
    ModelTrainer,
    collect_corun_measurements,
    collect_solo_measurements,
)
from repro.errors import (
    InfeasibleProblemError,
    MissingProfileError,
    PartitioningError,
)
from repro.gpu.mig import (
    CORUN_STATES,
    MemoryOption,
    PartitionState,
    enumerate_partition_states,
    mixed_training_states,
    shared_training_states,
)
from repro.gpu.spec import A100_SPEC, GPUSpec
from repro.profiling.database import ProfileDatabase
from repro.profiling.profiler import ProfileCollector
from repro.sim.engine import PerformanceSimulator
from repro.workloads.groups import (
    CoRunGroup,
    groups_of_size,
    synthetic_training_groups,
    tiny_pool_training_groups,
)
from repro.workloads.kernel import KernelCharacteristics
from repro.workloads.pairs import CORUN_PAIRS, CoRunPair
from repro.workloads.suite import BenchmarkSuite, DEFAULT_SUITE


#: The paper's cap grid expressed as fractions of the factory power limit
#: (150–250 W on the 250 W A100); used to derive grids for other specs.
_CAP_FRACTIONS: tuple[float, ...] = (0.60, 0.68, 0.76, 0.84, 0.92, 1.00)


def power_caps_for_spec(spec: GPUSpec) -> tuple[float, ...]:
    """A Table 5-style power-cap grid scaled to ``spec``'s envelope.

    The fractions of the factory limit match the paper's A100 grid (for the
    A100 this reproduces ``DEFAULT_POWER_CAPS`` exactly); values below the
    spec's minimum supported cap are clamped up to it.
    """
    caps = []
    for fraction in _CAP_FRACTIONS:
        cap = max(spec.min_power_cap_w, fraction * spec.default_power_limit_w)
        if cap not in caps:
            caps.append(cap)
    return tuple(caps)


@dataclass(frozen=True)
class TrainingPlan:
    """What the offline stage will execute.

    Attributes
    ----------
    gpc_counts, options, power_caps:
        The solo-sweep grid (GPC counts × memory options × power caps).
    states:
        The co-run partition states used for the interference calibration.
        States of any group size may be listed; each training workload only
        executes the states matching its size, and *mixed* states feed the
        joint sub-chip shared GI fit (``ModelTrainer.fit_mixed``).
    """

    gpc_counts: tuple[int, ...] = SCALABILITY_GPC_COUNTS
    options: tuple[MemoryOption, ...] = (MemoryOption.PRIVATE, MemoryOption.SHARED)
    power_caps: tuple[float, ...] = DEFAULT_POWER_CAPS
    states: tuple[PartitionState, ...] = CORUN_STATES

    @property
    def pair_states(self) -> tuple[PartitionState, ...]:
        """The two-application states of the calibration grid."""
        return tuple(state for state in self.states if state.n_apps == 2)

    @property
    def mixed_states(self) -> tuple[PartitionState, ...]:
        """The mixed (multi-GI) states of the calibration grid."""
        return tuple(
            state for state in self.states if state.option is MemoryOption.MIXED
        )

    @property
    def group_sizes(self) -> tuple[int, ...]:
        """Sizes above two whose states need N-way training workloads."""
        return tuple(sorted({s.n_apps for s in self.states if s.n_apps > 2}))

    @property
    def solo_runs_per_kernel(self) -> int:
        """Number of solo training runs each benchmark requires."""
        return len(self.gpc_counts) * len(self.options) * len(self.power_caps)

    @property
    def corun_runs_per_pair(self) -> int:
        """Number of co-run training runs each pair requires."""
        return len(self.pair_states) * len(self.power_caps)

    @classmethod
    def for_spec(
        cls,
        spec: GPUSpec,
        power_caps: Sequence[float] | None = None,
    ) -> "TrainingPlan":
        """A plan whose grid is derived from ``spec`` instead of Table 5.

        The solo sweep covers every instance size the spec's partition
        scheme offers, the interference calibration covers *every*
        realizable pair state, a covering subset of multi-application
        mixed states calibrates the sub-chip shared GI keys that only
        mixed layouts reach, and a covering subset of N≥3 full-chip
        shared states calibrates the composition correction
        (``ModelTrainer.fit_composition``), so the fitted coefficients
        support allocation decisions for groups of any size (the
        interference term composes additively over co-runners, Section
        4.3).  This is the plan to use for N-way scheduling or for
        non-A100 specs whose profile table differs.  Schemes without
        three-application mixed layouts (independent-axes partitioning
        only realizes symmetric compute groups) fall back to
        four-application mixed states so their sub-chip shared keys still
        get calibrated.
        """
        if power_caps is None:
            power_caps = power_caps_for_spec(spec)
        sizes = tuple(
            s for s in spec.scheme.instance_sizes(spec) if s <= spec.mig_gpcs
        )
        pair_states = tuple(
            enumerate_partition_states(
                2, spec, (MemoryOption.SHARED, MemoryOption.PRIVATE)
            )
        )
        mixed = mixed_training_states(spec)
        if not mixed:
            mixed = mixed_training_states(spec, 4)
        # Shared N≥3 states go last so the per-key measurement row order
        # of the pair and mixed fits is unchanged (bit-identical fits).
        return cls(
            gpc_counts=sizes,
            options=(MemoryOption.PRIVATE, MemoryOption.SHARED),
            power_caps=tuple(float(p) for p in power_caps),
            states=pair_states + mixed + shared_training_states(spec),
        )


def _default_plan_for(spec: GPUSpec) -> TrainingPlan:
    """The Table 5 plan on the A100, a spec-derived plan everywhere else.

    The paper's grid (S1–S4, 150–250 W) is hard-wired to the A100's
    envelope; other specs get :meth:`TrainingPlan.for_spec` so training
    stays within their cap range and instance-profile table.
    """
    if spec == A100_SPEC:
        return TrainingPlan()
    return TrainingPlan.for_spec(spec)


class OfflineTrainer:
    """The offline half of Figure 7: calibrate the model coefficients."""

    def __init__(
        self,
        simulator: PerformanceSimulator | None = None,
        suite: BenchmarkSuite = DEFAULT_SUITE,
        plan: TrainingPlan | None = None,
        basis: BasisFunctions = DEFAULT_BASIS,
    ) -> None:
        self._simulator = simulator if simulator is not None else PerformanceSimulator()
        if plan is None:
            plan = _default_plan_for(self._simulator.spec)
        self._suite = suite
        self._plan = plan
        self._basis = basis
        self._trainer = ModelTrainer(basis, spec=self._simulator.spec)

    @property
    def simulator(self) -> PerformanceSimulator:
        """The simulator used for training runs."""
        return self._simulator

    @property
    def plan(self) -> TrainingPlan:
        """The training plan in use."""
        return self._plan

    @property
    def trainer(self) -> ModelTrainer:
        """The underlying least-squares trainer (exposes the training report)."""
        return self._trainer

    def run(
        self,
        training_kernels: Iterable[KernelCharacteristics] | None = None,
        training_pairs: Sequence[CoRunPair] | None = None,
        training_groups: Sequence[CoRunGroup] | None = None,
    ) -> LinearPerfModel:
        """Execute the training sweeps and return the calibrated model.

        ``training_kernels`` defaults to every benchmark of the suite;
        ``training_pairs`` defaults to the Table 8 co-run workloads;
        ``training_groups`` defaults to the predefined N-way workloads of
        every size the plan's states need beyond pairs, plus synthetic
        groups densifying the mixed-state sweep — pass an explicit
        sequence (even an empty one) to control exactly which N-way
        workloads execute.
        """
        kernels = (
            list(training_kernels)
            if training_kernels is not None
            else list(self._suite.all())
        )
        pairs = list(training_pairs) if training_pairs is not None else list(CORUN_PAIRS)
        synthetic: list[tuple[KernelCharacteristics, ...]] = []
        if training_groups is None:
            training_groups = [
                group
                for size in self._plan.group_sizes
                for group in groups_of_size(size)
            ]
            # Sub-chip shared GI keys are calibrated jointly from
            # mixed-state rows only; densify that sweep with synthetic
            # groups so the fit spans the victim x co-runner feature plane
            # beyond the handful of named triples, plus the tiny-pool
            # groups that give the capacity-aware basis terms samples on
            # both sides of the 2-slice pool's clip point.  Passing an
            # explicit ``training_groups`` (even an empty one) suppresses
            # this, so ablations and real-hardware calibrations keep full
            # control of what actually runs.
            for size in sorted({s.n_apps for s in self._plan.mixed_states}):
                synthetic.extend(synthetic_training_groups(group_size=size))
                synthetic.extend(tiny_pool_training_groups(group_size=size))
        solo = collect_solo_measurements(
            self._simulator,
            kernels,
            gpc_counts=self._plan.gpc_counts,
            options=self._plan.options,
            power_caps=self._plan.power_caps,
        )
        group_kernels = [pair.kernels(self._suite) for pair in pairs]
        group_kernels.extend(group.kernels(self._suite) for group in training_groups)
        group_kernels.extend(synthetic)
        corun = collect_corun_measurements(
            self._simulator,
            group_kernels,
            states=self._plan.states,
            power_caps=self._plan.power_caps,
        )
        return self._trainer.train(solo, corun)


class OnlineAllocator:
    """The online half of Figure 7: profile lookup + optimization.

    Decisions are not limited to pairs: for a group size with no configured
    candidate state the allocator enumerates every realizable state on
    ``spec`` (private, shared, and mixed GI layouts) and keeps those the
    trained model can evaluate.
    """

    def __init__(
        self,
        model: LinearPerfModel,
        database: ProfileDatabase | None = None,
        collector: ProfileCollector | None = None,
        candidate_states: Sequence[PartitionState] = CORUN_STATES,
        power_caps: Sequence[float] = DEFAULT_POWER_CAPS,
        search: SearchStrategy | None = None,
        spec: GPUSpec = A100_SPEC,
    ) -> None:
        self._database = database if database is not None else ProfileDatabase()
        self._collector = collector
        self._spec = spec
        self._model = model
        self._state_cache: dict[tuple, tuple[PartitionState, ...]] = {}
        self._decide_cache: OrderedDict[tuple, AllocationDecision] = OrderedDict()
        # Policy signature memo keyed by object identity (policies are
        # frozen) with a weakref guard: a dead policy's recycled address
        # can never alias a fresh one, and dead entries evict themselves
        # via the ref callback.
        self._policy_keys: dict[int, tuple[weakref.ref[Policy], tuple]] = {}
        self._allocator = ResourcePowerAllocator(
            model,
            candidate_states=candidate_states,
            power_caps=power_caps,
            search=search,
        )

    @property
    def database(self) -> ProfileDatabase:
        """The profile database backing the allocator."""
        return self._database

    @property
    def allocator(self) -> ResourcePowerAllocator:
        """The underlying Resource & Power Allocator."""
        return self._allocator

    # ------------------------------------------------------------------
    def ensure_profiled(self, kernel: KernelCharacteristics) -> None:
        """Collect and store a profile for ``kernel`` if none exists.

        This is the paper's "first run must be a profile run" rule; it only
        works when a collector was supplied, otherwise the application is
        simply reported as unprofiled.
        """
        if self._database.has(kernel.name):
            return
        if self._collector is None:
            raise MissingProfileError(
                f"no profile recorded for application {kernel.name!r} and no "
                "profile collector is configured"
            )
        self._database.add(self._collector.collect(kernel))

    def candidate_states_for(
        self, n_apps: int, power_caps: Sequence[float] | None = None
    ) -> tuple[PartitionState, ...]:
        """Candidate partition states for a group of ``n_apps`` applications.

        Configured states matching the group size win (this keeps the
        paper's S1–S4 behaviour for pairs); otherwise the states are
        enumerated from the spec.  Either way only states whose
        per-application hardware keys the model has coefficients for at
        every candidate cap are returned, so an off-grid cap shows up as an
        empty result instead of a :class:`NotFittedError` mid-search.  The
        result is cached per (group size, caps, model version).
        """
        caps = tuple(
            float(p)
            for p in (self._allocator.power_caps if power_caps is None else power_caps)
        )
        version = self._model.coefficients_version
        cache_key = (n_apps, caps, version)
        cached = self._state_cache.get(cache_key)
        if cached is not None:
            return cached
        # A refit invalidates everything cached for older versions; purge so
        # long-lived recalibrating processes don't accumulate stale entries.
        self._state_cache = {
            key: value for key, value in self._state_cache.items() if key[2] == version
        }
        configured = tuple(
            state
            for state in self._allocator.candidate_states
            if state.n_apps == n_apps
        )
        pool = configured if configured else enumerate_partition_states(n_apps, self._spec)
        supported = tuple(
            state for state in pool if self._model.supports_candidate(state, caps)
        )
        self._state_cache[cache_key] = supported
        return supported

    def _policy_cache_key(self, policy: Policy) -> tuple:
        """The hashable signature of ``policy``, memoized per live object.

        The memo keys on ``id(policy)`` with a weakref identity guard: the
        stored ref must still point at *this* policy, so a dead policy's
        recycled address can never alias a fresh one, and the ref's
        callback evicts the entry instead of pinning the policy alive.
        """
        keys = self._policy_keys
        key = id(policy)
        entry = keys.get(key)
        if entry is not None and entry[0]() is policy:
            return entry[1]
        policy_key = (
            type(policy).__name__,
            policy.name,
            float(policy.alpha),
            tuple(policy.candidate_power_caps()),
        )
        try:
            ref = weakref.ref(policy, lambda _, k=keys, i=key: k.pop(i, None))
        except TypeError:
            # A slotted policy without __weakref__: skip the memo rather
            # than risk an unguarded id-keyed entry.
            return policy_key
        keys[key] = (ref, policy_key)
        return policy_key

    def decide(self, app_names: Sequence[str], policy: Policy) -> AllocationDecision:
        """Solve ``policy`` for the application group named in ``app_names``.

        Every application must already have a profile in the database.  The
        group may have any size; see :meth:`candidate_states_for` for how
        the candidate space is chosen.

        Decisions are memoized on (group names, policy, model version):
        profiles are append-only (a name's counters never change once
        stored), so the full lookup — counters, candidate states, and the
        allocator's solve — is a pure function of that key.
        """
        decide_key = (
            tuple(app_names),
            self._policy_cache_key(policy),
            self._model.coefficients_version,
        )
        cached = self._decide_cache.get(decide_key)
        if cached is not None:
            self._decide_cache.move_to_end(decide_key)
            return cached
        counters = [self._database.get(name).counters for name in app_names]
        policy_caps = policy.candidate_power_caps()
        states = self.candidate_states_for(len(app_names), policy_caps)
        if not states:
            # Distinguish an off-grid power cap (states exist, just not at
            # these caps) from a genuinely uncovered group size.
            if self.candidate_states_for(len(app_names)):
                raise InfeasibleProblemError(
                    f"the trained model has no coefficients for power cap(s) "
                    f"{tuple(float(p) for p in policy_caps)} W; fitted caps: "
                    f"{self._allocator.power_caps}"
                )
            raise InfeasibleProblemError(
                f"the trained model supports no partition state for a group of "
                f"{len(app_names)} application(s) on {self._spec.name}; train with "
                f"TrainingPlan.for_spec(spec) to cover the full instance-size grid"
            )
        decision = self._allocator.solve(counters, policy, states=states)
        self._decide_cache[decide_key] = decision
        if len(self._decide_cache) > 4096:
            self._decide_cache.popitem(last=False)
        return decision


class PaperWorkflow:
    """Offline training + online decisions, bundled (Figure 7 end to end)."""

    def __init__(
        self,
        simulator: PerformanceSimulator | None = None,
        suite: BenchmarkSuite = DEFAULT_SUITE,
        plan: TrainingPlan | None = None,
        basis: BasisFunctions = DEFAULT_BASIS,
        candidate_states: Sequence[PartitionState] | None = None,
        power_caps: Sequence[float] | None = None,
        search: SearchStrategy | None = None,
    ) -> None:
        self._simulator = simulator if simulator is not None else PerformanceSimulator()
        self._suite = suite
        self._offline = OfflineTrainer(self._simulator, suite, plan, basis)
        spec = self._simulator.spec
        if candidate_states is None:
            candidate_states = self._default_candidate_states(spec)
        if power_caps is None:
            power_caps = (
                DEFAULT_POWER_CAPS if spec == A100_SPEC else power_caps_for_spec(spec)
            )
        self._candidate_states = tuple(candidate_states)
        self._power_caps = tuple(float(p) for p in power_caps)
        self._search = search
        self._model: LinearPerfModel | None = None
        self._online: OnlineAllocator | None = None

    @staticmethod
    def _default_candidate_states(spec: GPUSpec) -> tuple[PartitionState, ...]:
        """Table 5's S1–S4 when the spec realizes them, else spec-derived pairs."""
        try:
            for state in CORUN_STATES:
                state.validate_against(spec)
        except PartitioningError:
            return tuple(
                enumerate_partition_states(
                    2, spec, (MemoryOption.SHARED, MemoryOption.PRIVATE)
                )
            )
        return CORUN_STATES

    @property
    def simulator(self) -> PerformanceSimulator:
        """The simulator shared by training, profiling, and evaluation."""
        return self._simulator

    @property
    def suite(self) -> BenchmarkSuite:
        """The benchmark suite in use."""
        return self._suite

    @property
    def offline(self) -> OfflineTrainer:
        """The offline trainer (exposes the training plan and report)."""
        return self._offline

    @property
    def model(self) -> LinearPerfModel:
        """The trained model (training is triggered on first access)."""
        if self._model is None:
            self.train()
        assert self._model is not None
        return self._model

    @property
    def online(self) -> OnlineAllocator:
        """The online allocator (training is triggered on first access)."""
        if self._online is None:
            self.train()
        assert self._online is not None
        return self._online

    # ------------------------------------------------------------------
    def train(
        self,
        training_kernels: Iterable[KernelCharacteristics] | None = None,
        training_pairs: Sequence[CoRunPair] | None = None,
    ) -> LinearPerfModel:
        """Run the offline stage and set up the online allocator."""
        return self.adopt_model(self._offline.run(training_kernels, training_pairs))

    def adopt_model(self, model: LinearPerfModel) -> LinearPerfModel:
        """Install a pre-trained model, skipping the offline training sweeps.

        Profile collection still runs (it is one solo run per benchmark,
        cheap next to the calibration grid); this is the entry point the
        model store uses to make CLI invocations start from a cache instead
        of a 30-60 s retrain.
        """
        self._model = model
        collector = ProfileCollector(self._simulator)
        database = ProfileDatabase()
        collector.collect_into(self._suite.all(), database)
        self._online = OnlineAllocator(
            self._model,
            database=database,
            collector=collector,
            candidate_states=self._candidate_states,
            power_caps=self._power_caps,
            search=self._search,
            spec=self._simulator.spec,
        )
        return self._model

    def train_or_load(self, model_path: str | None) -> LinearPerfModel:
        """Load the model from ``model_path`` if it exists, else train and save.

        ``None`` falls back to a plain :meth:`train`.  The cache is
        fingerprinted with the spec name and cap grid, so a file trained for
        different hardware raises instead of mis-deciding.
        """
        if model_path is None:
            return self.train()
        from pathlib import Path

        from repro.core.modelstore import ModelFingerprint, load_model, save_model

        fingerprint = ModelFingerprint.for_workflow(
            self._simulator.spec, self._power_caps, plan=self._offline.plan
        )
        path = Path(model_path)
        if path.exists():
            return self.adopt_model(
                load_model(
                    path,
                    basis=self._offline.trainer.basis,
                    expected=fingerprint,
                    spec=self._simulator.spec,
                )
            )
        model = self.train()
        save_model(model, path, fingerprint)
        return model

    # ------------------------------------------------------------------
    def decide_problem1(
        self, app_names: Sequence[str], power_cap_w: float, alpha: float = 0.2
    ) -> AllocationDecision:
        """Problem 1 decision for a group of profiled applications."""
        return self.online.decide(
            app_names, Problem1Policy(power_cap_w=power_cap_w, alpha=alpha)
        )

    def decide_problem2(
        self, app_names: Sequence[str], alpha: float = 0.2
    ) -> AllocationDecision:
        """Problem 2 decision for a group of profiled applications."""
        return self.online.decide(
            app_names, Problem2Policy(alpha=alpha, power_caps=self._power_caps)
        )
