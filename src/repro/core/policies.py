"""Optimization problems (policies) solved by the allocator (Section 4.2).

* **Problem 1** — the chip power cap ``P`` is given (e.g. dictated by the
  cluster-level power budget); choose the partition state ``S`` that
  maximizes throughput subject to the fairness constraint
  ``Fairness(S, P) > α``.
* **Problem 2** — both ``S`` and ``P`` are free; maximize energy efficiency
  ``Throughput / P`` subject to the same fairness constraint.

Both are expressed through a tiny common interface so the allocator and the
search strategies don't need to know which problem they are solving:
``candidate_power_caps()`` enumerates the allowed caps, ``objective()`` maps
predicted metrics to the quantity being maximized, and ``is_feasible()``
encodes the constraint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

from repro.config import DEFAULT_POWER_CAPS
from repro.errors import ConfigurationError


@runtime_checkable
class Policy(Protocol):
    """Interface every optimization policy exposes to the allocator."""

    name: str
    alpha: float

    def candidate_power_caps(self) -> tuple[float, ...]:
        """Power caps the search may choose from."""
        ...

    def objective(self, throughput: float, power_cap_w: float) -> float:
        """The quantity to maximize, from predicted throughput and the cap."""
        ...

    def is_feasible(self, fairness: float) -> bool:
        """Whether the fairness constraint is satisfied."""
        ...


@dataclass(frozen=True)
class Problem1Policy:
    """Maximize throughput at a fixed power cap, subject to fairness > α."""

    power_cap_w: float
    alpha: float = 0.2
    name: str = "problem1-throughput"

    def __post_init__(self) -> None:
        if self.power_cap_w <= 0:
            raise ConfigurationError(f"power cap must be positive, got {self.power_cap_w}")
        if not (0.0 <= self.alpha < 1.0):
            raise ConfigurationError(f"alpha must be in [0, 1), got {self.alpha}")

    def candidate_power_caps(self) -> tuple[float, ...]:
        """Problem 1 has no freedom in the cap: only the given value."""
        return (float(self.power_cap_w),)

    def objective(self, throughput: float, power_cap_w: float) -> float:
        """Throughput (weighted speedup) is maximized directly."""
        return throughput

    def is_feasible(self, fairness: float) -> bool:
        """The paper's constraint ``Fairness > α``."""
        return fairness > self.alpha


@dataclass(frozen=True)
class Problem2Policy:
    """Maximize energy efficiency over both the state and the power cap."""

    alpha: float = 0.2
    power_caps: tuple[float, ...] = DEFAULT_POWER_CAPS
    name: str = "problem2-energy-efficiency"

    def __post_init__(self) -> None:
        if not (0.0 <= self.alpha < 1.0):
            raise ConfigurationError(f"alpha must be in [0, 1), got {self.alpha}")
        if not self.power_caps:
            raise ConfigurationError("Problem 2 needs at least one candidate power cap")
        if any(p <= 0 for p in self.power_caps):
            raise ConfigurationError("power caps must be positive")
        object.__setattr__(self, "power_caps", tuple(float(p) for p in self.power_caps))

    def candidate_power_caps(self) -> tuple[float, ...]:
        """All caps of the evaluation grid (Table 5 by default)."""
        return self.power_caps

    def objective(self, throughput: float, power_cap_w: float) -> float:
        """Energy efficiency: throughput divided by the chosen cap."""
        return throughput / power_cap_w

    def is_feasible(self, fairness: float) -> bool:
        """The paper's constraint ``Fairness > α``."""
        return fairness > self.alpha


#: Accepted aliases for the two optimization problems (the single source of
#: truth shared by :func:`make_policy` and the scheduler's config check).
PROBLEM1_ALIASES: tuple[str, ...] = ("problem1", "throughput")
PROBLEM2_ALIASES: tuple[str, ...] = ("problem2", "energy-efficiency", "efficiency")
POLICY_NAMES: tuple[str, ...] = PROBLEM1_ALIASES + PROBLEM2_ALIASES


def make_policy(
    name: str,
    alpha: float,
    power_cap_w: float | None = None,
    power_caps: Sequence[float] = DEFAULT_POWER_CAPS,
) -> Policy:
    """Convenience factory used by examples and the cluster scheduler.

    ``name`` may be ``"problem1"``/``"throughput"`` or
    ``"problem2"``/``"energy-efficiency"``.
    """
    normalized = name.lower()
    if normalized in PROBLEM1_ALIASES:
        if power_cap_w is None:
            raise ConfigurationError("Problem 1 requires a given power cap")
        return Problem1Policy(power_cap_w=power_cap_w, alpha=alpha)
    if normalized in PROBLEM2_ALIASES:
        return Problem2Policy(alpha=alpha, power_caps=tuple(power_caps))
    raise ConfigurationError(f"unknown policy {name!r}; valid names: {POLICY_NAMES}")
