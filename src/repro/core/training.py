"""Offline calibration of the model coefficients (Section 5.1.3).

The paper's calibration procedure has two stages:

1. **Scalability term** — every benchmark of the training set is executed
   *solo* while sweeping the hardware state (GPC count × memory option ×
   power cap).  For each hardware state the measured relative performances
   are regressed (least squares) on the ``H(F)`` features, giving ``C(S,P)``.
2. **Interference term** — the co-run training workloads are executed for
   every co-run hardware state.  For each application the residual between
   its measured relative performance and the already-fitted scalability
   prediction is regressed on the co-runner's ``J(F)`` features, giving
   ``D(S,P)``.

A third stage extends the paper's procedure to *mixed* GI layouts: a
Compute Instance inside a sub-chip shared GPU Instance reaches a hardware
state (GPCs × the GI's memory slices × shared) that no solo run can
realize, so its scalability and interference coefficients are fitted
**jointly** from mixed-state co-run measurements (design ``[H | ΣJ]``).
Keys the solo sweep does reach are never touched by this stage, which
keeps full-GI predictions bit-identical to the two-stage fit.

All stages work purely on measurement records, so they can equally be fed
from the simulator (this reproduction) or from real hardware runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.config import DEFAULT_POWER_CAPS, SCALABILITY_GPC_COUNTS
from repro.core.features import (
    DEFAULT_BASIS,
    BasisFunctions,
    dram_demand,
    pool_saturation_terms,
    servable_fraction,
)
from repro.core.model import HardwareStateKey, LinearPerfModel
from repro.errors import ModelError
from repro.gpu.mig import CORUN_STATES, MemoryOption, PartitionState, solo_state
from repro.gpu.spec import A100_SPEC, GPUSpec
from repro.sim.counters import CounterVector
from repro.sim.engine import PerformanceSimulator
from repro.workloads.kernel import KernelCharacteristics

#: Floor on the RPerf value used for the relative weighting of the mixed
#: fit; keeps a (theoretical) zero measurement from producing an infinite
#: row weight.
_RELATIVE_WEIGHT_FLOOR = 1e-3


@dataclass(frozen=True)
class SoloMeasurement:
    """One solo training measurement: an application on one hardware state.

    ``mem_slices`` records the memory slices of the GPU Instance the run
    executed in (the GI's own slices under the private option, the full
    chip's under the shared option), so the measurement carries its
    complete GI-size-aware hardware-state key.
    """

    kernel_name: str
    counters: CounterVector
    gpcs: int
    option: MemoryOption
    power_cap_w: float
    relative_performance: float
    mem_slices: int

    @property
    def key(self) -> HardwareStateKey:
        """The hardware-state key this measurement calibrates."""
        return HardwareStateKey(self.gpcs, self.mem_slices, self.option, self.power_cap_w)


@dataclass(frozen=True)
class CoRunMeasurement:
    """One co-run training measurement: a pair (or more) on one state."""

    kernel_names: tuple[str, ...]
    counters: tuple[CounterVector, ...]
    state: PartitionState
    power_cap_w: float
    relative_performances: tuple[float, ...]

    def __post_init__(self) -> None:
        if not (
            len(self.kernel_names)
            == len(self.counters)
            == len(self.relative_performances)
            == self.state.n_apps
        ):
            raise ModelError(
                "co-run measurement is inconsistent: "
                f"{len(self.kernel_names)} names, {len(self.counters)} profiles, "
                f"{len(self.relative_performances)} performances, "
                f"state with {self.state.n_apps} applications"
            )


@dataclass
class TrainingReport:
    """Summary of one calibration run (sizes and per-state residuals)."""

    n_solo_measurements: int = 0
    n_corun_measurements: int = 0
    scalability_residuals: dict[HardwareStateKey, float] = field(default_factory=dict)
    interference_residuals: dict[HardwareStateKey, float] = field(default_factory=dict)
    mixed_residuals: dict[HardwareStateKey, float] = field(default_factory=dict)
    composition_residuals: dict[HardwareStateKey, float] = field(default_factory=dict)

    @property
    def worst_scalability_residual(self) -> float:
        """Largest per-state RMS residual of the scalability fit."""
        return max(self.scalability_residuals.values(), default=0.0)

    @property
    def worst_interference_residual(self) -> float:
        """Largest per-state RMS residual of the interference fit."""
        return max(self.interference_residuals.values(), default=0.0)

    @property
    def worst_mixed_residual(self) -> float:
        """Largest per-state RMS residual of the joint mixed-state fit."""
        return max(self.mixed_residuals.values(), default=0.0)

    @property
    def worst_composition_residual(self) -> float:
        """Largest per-state RMS residual of the full-chip composition fit."""
        return max(self.composition_residuals.values(), default=0.0)


class ModelTrainer:
    """Least-squares calibration of :class:`~repro.core.model.LinearPerfModel`."""

    def __init__(
        self,
        basis: BasisFunctions = DEFAULT_BASIS,
        ridge: float = 1e-6,
        spec: GPUSpec = A100_SPEC,
    ) -> None:
        if ridge < 0:
            raise ModelError(f"ridge parameter must be >= 0, got {ridge}")
        self._basis = basis
        self._ridge = ridge
        self._spec = spec
        self.last_report: TrainingReport | None = None

    @property
    def basis(self) -> BasisFunctions:
        """The basis functions used for fitting."""
        return self._basis

    @property
    def spec(self) -> GPUSpec:
        """The hardware spec the per-application keys are derived against."""
        return self._spec

    # ------------------------------------------------------------------
    # Low-level regression helper
    # ------------------------------------------------------------------
    def _least_squares(self, design: np.ndarray, target: np.ndarray) -> np.ndarray:
        """Ridge-stabilised least squares (the well-known normal equations)."""
        if design.shape[0] == 0:
            raise ModelError("cannot fit coefficients from zero measurements")
        gram = design.T @ design + self._ridge * np.eye(design.shape[1])
        return np.linalg.solve(gram, design.T @ target)

    # ------------------------------------------------------------------
    # Stage 1: scalability term
    # ------------------------------------------------------------------
    def fit_scalability(
        self,
        measurements: Sequence[SoloMeasurement],
        model: LinearPerfModel | None = None,
    ) -> LinearPerfModel:
        """Fit ``C(S, P)`` for every hardware state present in ``measurements``."""
        model = model if model is not None else LinearPerfModel(self._basis, spec=self._spec)
        report = self.last_report or TrainingReport()
        report.n_solo_measurements += len(measurements)
        grouped: dict[HardwareStateKey, list[SoloMeasurement]] = {}
        for measurement in measurements:
            grouped.setdefault(measurement.key, []).append(measurement)
        for key, group in grouped.items():
            design = self._basis.h_matrix([m.counters for m in group])
            target = np.array([m.relative_performance for m in group], dtype=float)
            coefficients = self._least_squares(design, target)
            model.set_scalability_coefficients(key, coefficients)
            residual = design @ coefficients - target
            report.scalability_residuals[key] = float(
                np.sqrt(np.mean(residual**2))
            )
        self.last_report = report
        return model

    # ------------------------------------------------------------------
    # Stage 2: interference term
    # ------------------------------------------------------------------
    def fit_interference(
        self,
        measurements: Sequence[CoRunMeasurement],
        model: LinearPerfModel,
    ) -> LinearPerfModel:
        """Fit ``D(S, P)`` from co-run measurements, with ``C`` already fitted.

        Mixed-state measurements are excluded: their sub-chip shared keys
        have no solo-swept scalability term to take residuals against, and
        even their private-GI rows must not perturb the pair-era residual
        regressions (full-GI coefficients stay bit-identical to a training
        run without mixed states).  They are consumed by :meth:`fit_mixed`.
        N≥3 full-chip shared measurements are likewise excluded — folding
        their rows into the residual regression would move the pair-era
        ``D`` vectors; they feed :meth:`fit_composition` instead.
        """
        report = self.last_report or TrainingReport()
        report.n_corun_measurements += len(measurements)
        design_rows: dict[HardwareStateKey, list[np.ndarray]] = {}
        targets: dict[HardwareStateKey, list[float]] = {}
        for measurement in measurements:
            if measurement.state.option is MemoryOption.MIXED:
                continue
            if (
                measurement.state.option is MemoryOption.SHARED
                and measurement.state.n_apps > 2
            ):
                continue
            for index in range(measurement.state.n_apps):
                key = HardwareStateKey.from_state(
                    measurement.state, index, measurement.power_cap_w, self._spec
                )
                own_counters = measurement.counters[index]
                others = [
                    measurement.counters[j]
                    for j in measurement.state.interference_partners(index)
                ]
                if not others:
                    continue
                scalability = model.predict_solo(own_counters, key)
                residual = measurement.relative_performances[index] - scalability
                # The interference contribution of several co-runners is the
                # sum of their J features — stack them into one row.
                row = np.sum(self._basis.j_matrix(others), axis=0)
                design_rows.setdefault(key, []).append(row)
                targets.setdefault(key, []).append(residual)
        for key, rows in design_rows.items():
            design = np.vstack(rows)
            target = np.array(targets[key], dtype=float)
            coefficients = self._least_squares(design, target)
            model.set_interference_coefficients(key, coefficients)
            residual = design @ coefficients - target
            report.interference_residuals[key] = float(np.sqrt(np.mean(residual**2)))
        self.last_report = report
        return model

    # ------------------------------------------------------------------
    # Stage 3: mixed-state (sub-chip shared GI) term
    # ------------------------------------------------------------------
    def fit_mixed(
        self,
        measurements: Sequence[CoRunMeasurement],
        model: LinearPerfModel,
    ) -> LinearPerfModel:
        """Jointly fit ``C`` and ``D`` for sub-chip shared GI states.

        A Compute Instance inside a sub-chip shared GPU Instance reaches a
        hardware-state key no solo run can realize, so its scalability and
        interference coefficients are regressed together from mixed-state
        co-run measurements: each row stacks
        ``[H(F_i) | s_i · Σ_j J(F_j) | σ · H(F_i) | P(F_i, F_j, q)]``
        against the measured relative performance, where ``s_i`` is the
        victim-side interference scale the model applies at prediction time
        (see :meth:`LinearPerfModel.interference_scale` — sub-chip pools
        saturate, so a co-runner's pressure costs the victim in proportion
        to its own DRAM appetite), ``σ`` is the pool's servable fraction
        of the combined DRAM demand
        (:func:`repro.core.features.servable_fraction`), and ``P`` are the
        capacity-aware pool terms of
        :func:`repro.core.features.pool_saturation_terms` (key schema v3).
        The ``σ``-scaled copy of the victim's own basis reproduces the
        reciprocal roll-off of a clipped pool, and the saturating /
        excess-hinge pool terms let the fit bend exactly where a tiny pool
        (the 1-GPC/2-slice GI) clips — which a linear-in-``J`` model
        cannot.  The model applies the identical basis at prediction time,
        keeping fit and prediction consistent.  Keys the solo sweep
        already calibrated are skipped (their rows belong to the private
        or full-chip shared fits and must stay untouched), as are
        applications alone in their GI (their keys are plain private
        ones).
        """
        report = self.last_report or TrainingReport()
        design_rows: dict[HardwareStateKey, list[np.ndarray]] = {}
        targets: dict[HardwareStateKey, list[float]] = {}
        for measurement in measurements:
            if measurement.state.option is not MemoryOption.MIXED:
                continue
            for index in range(measurement.state.n_apps):
                key = HardwareStateKey.from_state(
                    measurement.state, index, measurement.power_cap_w, self._spec
                )
                # Only sub-chip shared keys are fitted here.  An application
                # alone in its GI carries a plain PRIVATE key: if the solo
                # sweep covered it the coefficients must stay untouched, and
                # if it did not, fitting it from cross-GI co-runner rows
                # would silently produce wrong private-key coefficients —
                # leaving it unfitted raises the honest NotFittedError.
                if not model.is_sub_chip_shared(key):
                    continue
                if model.has_scalability(key):
                    continue
                others = [
                    measurement.counters[j]
                    for j in measurement.state.interference_partners(index)
                ]
                own = self._basis.h(measurement.counters[index])
                scale = model.interference_scale(key, measurement.counters[index])
                partners = scale * np.sum(self._basis.j_matrix(others), axis=0)
                victim_demand = dram_demand(measurement.counters[index])
                co_runner_demand = sum(dram_demand(other) for other in others)
                pool_fraction = model.pool_fraction(key)
                servable = servable_fraction(
                    victim_demand, co_runner_demand, pool_fraction
                )
                pool = pool_saturation_terms(
                    victim_demand, co_runner_demand, pool_fraction
                )
                design_rows.setdefault(key, []).append(
                    np.concatenate([own, partners, servable * own, pool])
                )
                targets.setdefault(key, []).append(
                    measurement.relative_performances[index]
                )
        h_dim = self._basis.h_dim
        for key, rows in design_rows.items():
            design = np.vstack(rows)
            target = np.array(targets[key], dtype=float)
            # Sub-chip pools crush bandwidth-bound victims to tiny RPerf
            # values; plain least squares all but ignores those rows (their
            # absolute residuals are small by construction) and the
            # *relative* error — the paper's accuracy metric — explodes.
            # Weighting each row by 1/RPerf makes the fit minimize the
            # relative residual instead.  Full-GI fits are untouched.
            weights = 1.0 / np.maximum(target, _RELATIVE_WEIGHT_FLOOR)
            coefficients = self._least_squares(
                design * weights[:, None], target * weights
            )
            model.set_scalability_coefficients(key, coefficients[:h_dim])
            model.set_interference_coefficients(key, coefficients[h_dim:])
            residual = design @ coefficients - target
            report.mixed_residuals[key] = float(np.sqrt(np.mean(residual**2)))
        self.last_report = report
        return model

    # ------------------------------------------------------------------
    # Stage 4: full-chip composition (N ≥ 3 shared) correction
    # ------------------------------------------------------------------
    def fit_composition(
        self,
        measurements: Sequence[CoRunMeasurement],
        model: LinearPerfModel,
    ) -> LinearPerfModel:
        """Fit the full-chip composition correction from N≥3 shared runs.

        The pair-fitted full-chip shared model composes co-runners
        additively, so with three or more applications the summed ``J``
        terms overshoot exactly where the chip-wide pool clips.  This
        stage regresses the *residual* of the pair-era prediction
        (``C·H + Σ_j D·J_j``, unclamped) on the capacity-aware basis at
        ``q = 1`` — the servable-fraction-scaled victim ``H`` block
        followed by the saturating/excess pool terms, the same layout the
        sub-chip keys append to ``D`` (key schema v3).  Pair predictions
        are bit-identical by construction: the correction only evaluates
        when an application sees two or more co-runners, and the pair
        ``C``/``D`` vectors are never touched.  Rows are weighted by the
        reciprocal measured RPerf (floored), mirroring :meth:`fit_mixed`,
        so the paper's relative-error metric is what the fit minimizes.
        """
        report = self.last_report or TrainingReport()
        j_dim = self._basis.j_dim
        design_rows: dict[HardwareStateKey, list[np.ndarray]] = {}
        targets: dict[HardwareStateKey, list[float]] = {}
        weights_rows: dict[HardwareStateKey, list[float]] = {}
        for measurement in measurements:
            if measurement.state.option is not MemoryOption.SHARED:
                continue
            if measurement.state.n_apps <= 2:
                continue
            for index in range(measurement.state.n_apps):
                key = HardwareStateKey.from_state(
                    measurement.state, index, measurement.power_cap_w, self._spec
                )
                if model.is_sub_chip_shared(key):
                    continue
                if not model.has_scalability(key) or not model.has_interference(key):
                    continue
                own_counters = measurement.counters[index]
                others = [
                    measurement.counters[j]
                    for j in measurement.state.interference_partners(index)
                ]
                base = float(
                    model.scalability_coefficients(key)
                    @ self._basis.h(own_counters)
                )
                d = model.interference_coefficients(key)
                for other in others:
                    base += float(d[:j_dim] @ self._basis.j(other))
                measured = measurement.relative_performances[index]
                victim_demand = dram_demand(own_counters)
                co_runner_demand = sum(dram_demand(other) for other in others)
                pool_fraction = model.pool_fraction(key)
                servable = servable_fraction(
                    victim_demand, co_runner_demand, pool_fraction
                )
                pool = pool_saturation_terms(
                    victim_demand, co_runner_demand, pool_fraction
                )
                own = self._basis.h(own_counters)
                design_rows.setdefault(key, []).append(
                    np.concatenate([servable * own, pool])
                )
                targets.setdefault(key, []).append(measured - base)
                weights_rows.setdefault(key, []).append(
                    1.0 / max(measured, _RELATIVE_WEIGHT_FLOOR)
                )
        for key, rows in design_rows.items():
            design = np.vstack(rows)
            target = np.array(targets[key], dtype=float)
            weights = np.array(weights_rows[key], dtype=float)
            coefficients = self._least_squares(
                design * weights[:, None], target * weights
            )
            model.set_composition_coefficients(key, coefficients)
            residual = design @ coefficients - target
            report.composition_residuals[key] = float(
                np.sqrt(np.mean(residual**2))
            )
        self.last_report = report
        return model

    # ------------------------------------------------------------------
    def train(
        self,
        solo_measurements: Sequence[SoloMeasurement],
        corun_measurements: Sequence[CoRunMeasurement] = (),
    ) -> LinearPerfModel:
        """Run every calibration stage and return the fitted model."""
        self.last_report = TrainingReport()
        model = self.fit_scalability(solo_measurements)
        if corun_measurements:
            model = self.fit_interference(corun_measurements, model)
            model = self.fit_mixed(corun_measurements, model)
            model = self.fit_composition(corun_measurements, model)
        return model


# ----------------------------------------------------------------------
# Measurement collection (driving the simulator, as the paper drives the GPU)
# ----------------------------------------------------------------------
def collect_solo_measurements(
    simulator: PerformanceSimulator,
    kernels: Iterable[KernelCharacteristics],
    gpc_counts: Sequence[int] = SCALABILITY_GPC_COUNTS,
    options: Sequence[MemoryOption] = (MemoryOption.PRIVATE, MemoryOption.SHARED),
    power_caps: Sequence[float] = DEFAULT_POWER_CAPS,
) -> list[SoloMeasurement]:
    """Execute the solo training sweep and return its measurements."""
    measurements: list[SoloMeasurement] = []
    for kernel in kernels:
        counters = simulator.profile(kernel)
        for option in options:
            for gpcs in gpc_counts:
                state = solo_state(gpcs, option)
                mem_slices = state.mem_slices_for(0, simulator.spec)
                for power_cap in power_caps:
                    run = simulator.solo_run(kernel, state, power_cap)
                    measurements.append(
                        SoloMeasurement(
                            kernel_name=kernel.name,
                            counters=counters,
                            gpcs=gpcs,
                            option=MemoryOption(option),
                            power_cap_w=float(power_cap),
                            relative_performance=run.relative_performance,
                            mem_slices=mem_slices,
                        )
                    )
    return measurements


def collect_corun_measurements(
    simulator: PerformanceSimulator,
    kernel_pairs: Iterable[tuple[KernelCharacteristics, ...]],
    states: Sequence[PartitionState] = CORUN_STATES,
    power_caps: Sequence[float] = DEFAULT_POWER_CAPS,
) -> list[CoRunMeasurement]:
    """Execute the co-run training sweep and return its measurements.

    ``kernel_pairs`` may contain groups of any size; each group is only run
    under the states describing the same number of applications, so a mixed
    collection of pair and N-way training workloads can share one grid.
    """
    measurements: list[CoRunMeasurement] = []
    for kernels in kernel_pairs:
        counters = tuple(simulator.profile(kernel) for kernel in kernels)
        names = tuple(kernel.name for kernel in kernels)
        for state in states:
            if state.n_apps != len(kernels):
                continue
            for power_cap in power_caps:
                result = simulator.co_run(list(kernels), state, power_cap)
                measurements.append(
                    CoRunMeasurement(
                        kernel_names=names,
                        counters=counters,
                        state=state,
                        power_cap_w=float(power_cap),
                        relative_performances=result.relative_performances,
                    )
                )
    return measurements
