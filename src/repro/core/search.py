"""Search strategies over the candidate ``(S, P)`` space.

The paper's evaluation space is tiny (4 states × 6 power caps = 24
candidates), so exhaustive search is used there.  Section 6 points out that
a larger space (finer partitioning, finer power steps, more than two
applications) would call for a heuristic such as hill climbing; both are
implemented here behind the same interface so the allocator — and the
ablation benchmark comparing them — can switch freely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, Sequence

import numpy as np

from repro.core.decision import CandidateEvaluation
from repro.errors import OptimizationError
from repro.gpu.mig import PartitionState


@dataclass(frozen=True)
class SearchCandidate:
    """One point of the search space: a partition state and a power cap."""

    state: PartitionState
    power_cap_w: float

    def describe(self) -> str:
        """Human-readable description."""
        return f"{self.state.describe()} @ {self.power_cap_w:.0f}W"


#: An evaluator maps a candidate to its model-predicted metrics.
Evaluator = Callable[[SearchCandidate], CandidateEvaluation]

#: A batch evaluator maps many candidates to their metrics in one call
#: (backed by the model's vectorized grid prediction).
BatchEvaluator = Callable[
    [Sequence[SearchCandidate]], tuple[CandidateEvaluation, ...]
]


class SearchStrategy(Protocol):
    """Interface of a search strategy over candidates.

    Strategies that can exploit a vectorized evaluator advertise it with a
    class attribute ``accepts_batch = True`` and receive an optional
    ``evaluate_batch`` callable; the scalar ``evaluate`` is always supplied.
    """

    name: str

    def search(
        self,
        candidates: Sequence[SearchCandidate],
        evaluate: Evaluator,
    ) -> tuple[CandidateEvaluation, tuple[CandidateEvaluation, ...]]:
        """Return the best feasible evaluation and every evaluation performed."""
        ...


def _best_feasible(
    evaluations: Sequence[CandidateEvaluation],
) -> CandidateEvaluation:
    feasible = [e for e in evaluations if e.feasible]
    if not feasible:
        raise OptimizationError("no evaluated candidate satisfies the fairness constraint")
    return max(feasible, key=lambda e: e.objective)


class ExhaustiveSearch:
    """Evaluate every candidate (the paper's approach for the 24-point grid).

    When the caller supplies a vectorized ``evaluate_batch`` the whole grid
    is evaluated in one call, which is what keeps the allocator fast on the
    much larger N-way candidate spaces.
    """

    name = "exhaustive"
    accepts_batch = True

    def search(
        self,
        candidates: Sequence[SearchCandidate],
        evaluate: Evaluator,
        evaluate_batch: BatchEvaluator | None = None,
    ) -> tuple[CandidateEvaluation, tuple[CandidateEvaluation, ...]]:
        """Evaluate every candidate and return the best feasible one."""
        if not candidates:
            raise OptimizationError("the candidate space is empty")
        if evaluate_batch is not None:
            evaluations = tuple(evaluate_batch(candidates))
        else:
            evaluations = tuple(evaluate(candidate) for candidate in candidates)
        return _best_feasible(evaluations), evaluations


class HillClimbingSearch:
    """Greedy local search over the (state index, power-cap index) grid.

    The search space is organised as a two-dimensional grid: one axis indexes
    the candidate partition states, the other the candidate power caps.
    Starting from one (or several, ``restarts``) random grid points the
    search repeatedly moves to the best improving neighbour (±1 along either
    axis).  Infeasible points are allowed as intermediate steps but can never
    be returned as the final answer.
    """

    name = "hill-climbing"

    def __init__(self, restarts: int = 3, seed: int = 2022) -> None:
        if restarts < 1:
            raise OptimizationError(f"restarts must be >= 1, got {restarts}")
        self._restarts = restarts
        self._seed = seed

    def search(
        self,
        candidates: Sequence[SearchCandidate],
        evaluate: Evaluator,
    ) -> tuple[CandidateEvaluation, tuple[CandidateEvaluation, ...]]:
        """Hill climb from ``restarts`` random starting points."""
        if not candidates:
            raise OptimizationError("the candidate space is empty")
        states: list[tuple] = []
        caps: list[float] = []
        for candidate in candidates:
            if candidate.state.key() not in states:
                states.append(candidate.state.key())
            if candidate.power_cap_w not in caps:
                caps.append(candidate.power_cap_w)
        caps.sort()
        grid: dict[tuple[int, int], SearchCandidate] = {}
        for candidate in candidates:
            grid[(states.index(candidate.state.key()), caps.index(candidate.power_cap_w))] = candidate

        rng = np.random.default_rng(self._seed)
        cache: dict[tuple[int, int], CandidateEvaluation] = {}

        def evaluate_cell(cell: tuple[int, int]) -> CandidateEvaluation:
            if cell not in cache:
                cache[cell] = evaluate(grid[cell])
            return cache[cell]

        def score(evaluation: CandidateEvaluation) -> float:
            # Infeasible points rank below every feasible point.
            if evaluation.feasible:
                return evaluation.objective
            return evaluation.objective - 1e6

        cells = sorted(grid)
        for _ in range(self._restarts):
            current = cells[int(rng.integers(len(cells)))]
            current_eval = evaluate_cell(current)
            improved = True
            while improved:
                improved = False
                si, pi = current
                neighbours = [
                    (si + 1, pi),
                    (si - 1, pi),
                    (si, pi + 1),
                    (si, pi - 1),
                ]
                for cell in neighbours:
                    if cell not in grid:
                        continue
                    candidate_eval = evaluate_cell(cell)
                    if score(candidate_eval) > score(current_eval):
                        current, current_eval = cell, candidate_eval
                        improved = True
        evaluations = tuple(cache.values())
        return _best_feasible(evaluations), evaluations
