"""The Resource & Power Allocator (the right-hand half of Figure 1).

Given the profiles of the applications in a co-location group, the
allocator evaluates every candidate combination of partition state and power
cap with the linear performance model, filters by the fairness constraint,
and returns the combination that maximizes the policy's objective.

Two things keep the allocator fast when the candidate space grows beyond
the paper's 24-point grid (more applications, finer partitioning):

* the whole ``(S, P)`` grid is predicted in one **batched** NumPy call
  (see :meth:`LinearPerfModel.predict_candidates`) whenever the search
  strategy can consume it, and
* identical requests are answered from a small **LRU decision cache**
  keyed by the profile signatures, the candidate grid, and the policy.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Sequence

from repro.config import DEFAULT_POWER_CAPS
from repro.core.decision import AllocationDecision, CandidateEvaluation
from repro.core.metrics import fairness as fairness_metric
from repro.core.metrics import fairness_batch, weighted_speedup, weighted_speedup_batch
from repro.core.model import LinearPerfModel
from repro.core.policies import Policy, Problem1Policy, Problem2Policy
from repro.core.search import ExhaustiveSearch, SearchCandidate, SearchStrategy
from repro.errors import InfeasibleProblemError, OptimizationError
from repro.gpu.mig import CORUN_STATES, PartitionState
from repro.sim.counters import CounterVector


class DecisionCache:
    """A small LRU cache of allocation decisions.

    Keys combine the (hashable) profile signatures of the group, the
    candidate grid, and the policy parameters; values are the frozen
    :class:`~repro.core.decision.AllocationDecision` records, which are safe
    to share between callers.
    """

    def __init__(self, maxsize: int = 4096) -> None:
        if maxsize < 0:
            raise OptimizationError(f"cache maxsize must be >= 0, got {maxsize}")
        self._maxsize = maxsize
        self._entries: OrderedDict[Hashable, AllocationDecision] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def maxsize(self) -> int:
        """Capacity of the cache (0 disables caching)."""
        return self._maxsize

    def get(self, key: Hashable) -> AllocationDecision | None:
        """Look up ``key``, refreshing its recency on a hit."""
        decision = self._entries.get(key)
        if decision is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return decision

    def put(self, key: Hashable, decision: AllocationDecision) -> None:
        """Insert ``key``, evicting the least recently used entry if full."""
        if self._maxsize == 0:
            return
        self._entries[key] = decision
        self._entries.move_to_end(key)
        while len(self._entries) > self._maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0


class ResourcePowerAllocator:
    """Chooses the partition state, job allocation, and power cap for a group.

    Parameters
    ----------
    model:
        A trained :class:`~repro.core.model.LinearPerfModel`.
    candidate_states:
        Partition/allocation states to consider (Table 5's S1–S4 by default).
        Job allocation is part of the state: S1 vs S2 (and S3 vs S4) differ
        only in which application receives the larger partition.  States for
        any group size may be mixed freely; each solve only considers the
        states matching its group.
    power_caps:
        Power caps Problem 2 may choose from.
    search:
        Search strategy over the candidate space (exhaustive by default, as
        in the paper).
    cache_size:
        Capacity of the LRU decision cache (0 disables caching).
    batch_threshold:
        Candidate-grid size above which the batched NumPy evaluation is
        used.  The default equals the paper's 4-state × 6-cap grid, so the
        original evaluation stays bit-identical to the scalar path while
        every larger (N-way / finer-grained) grid is vectorized; batched
        and scalar results agree to floating-point associativity either
        way.  Set to 0 to always batch.
    """

    def __init__(
        self,
        model: LinearPerfModel,
        candidate_states: Sequence[PartitionState] = CORUN_STATES,
        power_caps: Sequence[float] = DEFAULT_POWER_CAPS,
        search: SearchStrategy | None = None,
        cache_size: int = 4096,
        batch_threshold: int = 24,
    ) -> None:
        if not candidate_states:
            raise OptimizationError("at least one candidate partition state is required")
        if not power_caps:
            raise OptimizationError("at least one candidate power cap is required")
        if any(p <= 0 for p in power_caps):
            raise OptimizationError(f"power caps must be positive, got {tuple(power_caps)}")
        self._model = model
        self._states = tuple(candidate_states)
        self._power_caps = tuple(float(p) for p in power_caps)
        self._search: SearchStrategy = search if search is not None else ExhaustiveSearch()
        self._cache = DecisionCache(cache_size)
        if batch_threshold < 0:
            raise OptimizationError(f"batch_threshold must be >= 0, got {batch_threshold}")
        self._batch_threshold = batch_threshold

    # ------------------------------------------------------------------
    @property
    def model(self) -> LinearPerfModel:
        """The performance model used for predictions."""
        return self._model

    @property
    def candidate_states(self) -> tuple[PartitionState, ...]:
        """The candidate partition states."""
        return self._states

    @property
    def power_caps(self) -> tuple[float, ...]:
        """The candidate power caps for Problem 2."""
        return self._power_caps

    @property
    def cache(self) -> DecisionCache:
        """The LRU decision cache (exposes hit/miss statistics)."""
        return self._cache

    # ------------------------------------------------------------------
    # Candidate evaluation
    # ------------------------------------------------------------------
    def evaluate_candidate(
        self,
        counters_list: Sequence[CounterVector],
        state: PartitionState,
        power_cap_w: float,
        policy: Policy,
    ) -> CandidateEvaluation:
        """Model-predicted metrics of one ``(S, P)`` combination."""
        predictions = self._model.predict_corun(counters_list, state, power_cap_w)
        return self._evaluation_from_predictions(
            predictions, state, power_cap_w, policy
        )

    def evaluate_candidates_batch(
        self,
        counters_list: Sequence[CounterVector],
        candidates: Sequence[SearchCandidate],
        policy: Policy,
    ) -> tuple[CandidateEvaluation, ...]:
        """Metrics of many ``(S, P)`` combinations via one vectorized call.

        The per-candidate records are identical to what
        :meth:`evaluate_candidate` produces; only the model evaluation is
        batched.
        """
        predictions = self._model.predict_candidates(
            counters_list, [(c.state, c.power_cap_w) for c in candidates]
        )
        throughputs = weighted_speedup_batch(predictions)
        fairnesses = fairness_batch(predictions)
        evaluations = []
        for index, candidate in enumerate(candidates):
            throughput = float(throughputs[index])
            fairness = float(fairnesses[index])
            evaluations.append(
                CandidateEvaluation(
                    state=candidate.state,
                    power_cap_w=float(candidate.power_cap_w),
                    predicted_rperfs=tuple(float(v) for v in predictions[index]),
                    predicted_throughput=throughput,
                    predicted_fairness=fairness,
                    objective=policy.objective(throughput, candidate.power_cap_w),
                    feasible=policy.is_feasible(fairness),
                )
            )
        return tuple(evaluations)

    def _evaluation_from_predictions(
        self,
        predictions: tuple[float, ...],
        state: PartitionState,
        power_cap_w: float,
        policy: Policy,
    ) -> CandidateEvaluation:
        throughput = weighted_speedup(predictions)
        fairness = fairness_metric(predictions)
        return CandidateEvaluation(
            state=state,
            power_cap_w=float(power_cap_w),
            predicted_rperfs=tuple(predictions),
            predicted_throughput=throughput,
            predicted_fairness=fairness,
            objective=policy.objective(throughput, power_cap_w),
            feasible=policy.is_feasible(fairness),
        )

    def _states_for(
        self, n_apps: int, states: Sequence[PartitionState] | None
    ) -> tuple[PartitionState, ...]:
        pool = self._states if states is None else tuple(states)
        matching = tuple(state for state in pool if state.n_apps == n_apps)
        if not matching:
            raise InfeasibleProblemError(
                f"no candidate partition state describes {n_apps} application(s); "
                f"available group sizes: {sorted({s.n_apps for s in pool})}"
            )
        return matching

    def _candidates(
        self, policy: Policy, states: Sequence[PartitionState]
    ) -> list[SearchCandidate]:
        return [
            SearchCandidate(state=state, power_cap_w=float(power_cap))
            for state in states
            for power_cap in policy.candidate_power_caps()
        ]

    @staticmethod
    def _policy_key(policy: Policy) -> Hashable:
        return (
            type(policy).__name__,
            policy.name,
            float(policy.alpha),
            tuple(policy.candidate_power_caps()),
        )

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(
        self,
        counters_list: Sequence[CounterVector],
        policy: Policy,
        states: Sequence[PartitionState] | None = None,
    ) -> AllocationDecision:
        """Pick the best feasible ``(S, P)`` combination for ``policy``.

        ``states`` optionally overrides the configured candidate states
        (used by the online layer to supply spec-derived N-way states);
        either way only states matching the group size are considered.
        """
        matching_states = self._states_for(len(counters_list), states)
        cache_key = (
            tuple(counters_list),
            tuple(state.key() for state in matching_states),
            self._policy_key(policy),
            self._model.coefficients_version,
        )
        cached = self._cache.get(cache_key)
        if cached is not None:
            return cached
        candidates = self._candidates(policy, matching_states)

        def evaluate(candidate: SearchCandidate) -> CandidateEvaluation:
            return self.evaluate_candidate(
                counters_list, candidate.state, candidate.power_cap_w, policy
            )

        def evaluate_batch(
            batch: Sequence[SearchCandidate],
        ) -> tuple[CandidateEvaluation, ...]:
            return self.evaluate_candidates_batch(counters_list, batch, policy)

        use_batch = (
            getattr(self._search, "accepts_batch", False)
            and len(candidates) > self._batch_threshold
        )
        try:
            if use_batch:
                best, evaluations = self._search.search(
                    candidates, evaluate, evaluate_batch=evaluate_batch
                )
            else:
                best, evaluations = self._search.search(candidates, evaluate)
        except OptimizationError as exc:
            raise InfeasibleProblemError(
                f"policy {policy.name}: {exc} "
                f"(alpha={policy.alpha}, {len(candidates)} candidates)"
            ) from exc
        decision = AllocationDecision(
            state=best.state,
            power_cap_w=best.power_cap_w,
            predicted_rperfs=best.predicted_rperfs,
            predicted_throughput=best.predicted_throughput,
            predicted_fairness=best.predicted_fairness,
            predicted_objective=best.objective,
            policy_name=policy.name,
            candidates_evaluated=len(evaluations),
            evaluations=evaluations,
        )
        self._cache.put(cache_key, decision)
        return decision

    def solve_problem1(
        self,
        counters_list: Sequence[CounterVector],
        power_cap_w: float,
        alpha: float = 0.2,
    ) -> AllocationDecision:
        """Problem 1: maximize throughput at a fixed cap under the fairness constraint."""
        return self.solve(counters_list, Problem1Policy(power_cap_w=power_cap_w, alpha=alpha))

    def solve_problem2(
        self,
        counters_list: Sequence[CounterVector],
        alpha: float = 0.2,
    ) -> AllocationDecision:
        """Problem 2: maximize energy efficiency over both the state and the cap."""
        return self.solve(
            counters_list, Problem2Policy(alpha=alpha, power_caps=self._power_caps)
        )
