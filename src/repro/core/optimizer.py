"""The Resource & Power Allocator (the right-hand half of Figure 1).

Given the profiles of the applications in a co-location candidate, the
allocator evaluates every candidate combination of partition state and power
cap with the linear performance model, filters by the fairness constraint,
and returns the combination that maximizes the policy's objective.
"""

from __future__ import annotations

from typing import Sequence

from repro.config import DEFAULT_POWER_CAPS
from repro.core.decision import AllocationDecision, CandidateEvaluation
from repro.core.metrics import fairness as fairness_metric
from repro.core.metrics import weighted_speedup
from repro.core.model import LinearPerfModel
from repro.core.policies import Policy, Problem1Policy, Problem2Policy
from repro.core.search import ExhaustiveSearch, SearchCandidate, SearchStrategy
from repro.errors import InfeasibleProblemError, OptimizationError
from repro.gpu.mig import CORUN_STATES, PartitionState
from repro.sim.counters import CounterVector


class ResourcePowerAllocator:
    """Chooses the partition state, job allocation, and power cap for a pair.

    Parameters
    ----------
    model:
        A trained :class:`~repro.core.model.LinearPerfModel`.
    candidate_states:
        Partition/allocation states to consider (Table 5's S1–S4 by default).
        Job allocation is part of the state: S1 vs S2 (and S3 vs S4) differ
        only in which application receives the larger partition.
    power_caps:
        Power caps Problem 2 may choose from.
    search:
        Search strategy over the candidate space (exhaustive by default, as
        in the paper).
    """

    def __init__(
        self,
        model: LinearPerfModel,
        candidate_states: Sequence[PartitionState] = CORUN_STATES,
        power_caps: Sequence[float] = DEFAULT_POWER_CAPS,
        search: SearchStrategy | None = None,
    ) -> None:
        if not candidate_states:
            raise OptimizationError("at least one candidate partition state is required")
        if not power_caps:
            raise OptimizationError("at least one candidate power cap is required")
        self._model = model
        self._states = tuple(candidate_states)
        self._power_caps = tuple(float(p) for p in power_caps)
        self._search: SearchStrategy = search if search is not None else ExhaustiveSearch()

    # ------------------------------------------------------------------
    @property
    def model(self) -> LinearPerfModel:
        """The performance model used for predictions."""
        return self._model

    @property
    def candidate_states(self) -> tuple[PartitionState, ...]:
        """The candidate partition states."""
        return self._states

    @property
    def power_caps(self) -> tuple[float, ...]:
        """The candidate power caps for Problem 2."""
        return self._power_caps

    # ------------------------------------------------------------------
    # Candidate evaluation
    # ------------------------------------------------------------------
    def evaluate_candidate(
        self,
        counters_list: Sequence[CounterVector],
        state: PartitionState,
        power_cap_w: float,
        policy: Policy,
    ) -> CandidateEvaluation:
        """Model-predicted metrics of one ``(S, P)`` combination."""
        predictions = self._model.predict_corun(counters_list, state, power_cap_w)
        throughput = weighted_speedup(predictions)
        fairness = fairness_metric(predictions)
        return CandidateEvaluation(
            state=state,
            power_cap_w=float(power_cap_w),
            predicted_rperfs=predictions,
            predicted_throughput=throughput,
            predicted_fairness=fairness,
            objective=policy.objective(throughput, power_cap_w),
            feasible=policy.is_feasible(fairness),
        )

    def _candidates(self, policy: Policy) -> list[SearchCandidate]:
        return [
            SearchCandidate(state=state, power_cap_w=float(power_cap))
            for state in self._states
            for power_cap in policy.candidate_power_caps()
        ]

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(
        self,
        counters_list: Sequence[CounterVector],
        policy: Policy,
    ) -> AllocationDecision:
        """Pick the best feasible ``(S, P)`` combination for ``policy``."""
        candidates = self._candidates(policy)

        def evaluate(candidate: SearchCandidate) -> CandidateEvaluation:
            return self.evaluate_candidate(
                counters_list, candidate.state, candidate.power_cap_w, policy
            )

        try:
            best, evaluations = self._search.search(candidates, evaluate)
        except OptimizationError as exc:
            raise InfeasibleProblemError(
                f"policy {policy.name}: {exc} "
                f"(alpha={policy.alpha}, {len(candidates)} candidates)"
            ) from exc
        return AllocationDecision(
            state=best.state,
            power_cap_w=best.power_cap_w,
            predicted_rperfs=best.predicted_rperfs,
            predicted_throughput=best.predicted_throughput,
            predicted_fairness=best.predicted_fairness,
            predicted_objective=best.objective,
            policy_name=policy.name,
            candidates_evaluated=len(evaluations),
            evaluations=evaluations,
        )

    def solve_problem1(
        self,
        counters_list: Sequence[CounterVector],
        power_cap_w: float,
        alpha: float = 0.2,
    ) -> AllocationDecision:
        """Problem 1: maximize throughput at a fixed cap under the fairness constraint."""
        return self.solve(counters_list, Problem1Policy(power_cap_w=power_cap_w, alpha=alpha))

    def solve_problem2(
        self,
        counters_list: Sequence[CounterVector],
        alpha: float = 0.2,
    ) -> AllocationDecision:
        """Problem 2: maximize energy efficiency over both the state and the cap."""
        return self.solve(
            counters_list, Problem2Policy(alpha=alpha, power_caps=self._power_caps)
        )
