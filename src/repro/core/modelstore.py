"""Persistence of trained :class:`LinearPerfModel` coefficients.

Offline calibration is by far the most expensive step of the workflow
(tens of seconds for spec-derived N-way grids), and the CLI used to pay it
on every ``decide`` invocation.  The model store wraps the model's existing
``to_dict``/``from_dict`` round-trip in a small JSON document that also
records *what* the model was trained for — the hardware spec and the power
cap grid — so a stale cache is rejected instead of silently producing
decisions off the wrong grid.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro.core.features import DEFAULT_BASIS, BasisFunctions
from repro.core.model import KEY_SCHEMA_VERSION, LinearPerfModel
from repro.errors import ModelCacheError, ModelError
from repro.gpu.spec import GPUSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle (workflow imports us)
    from repro.core.workflow import TrainingPlan

#: Format tag of the model-store document.
STORE_FORMAT = "repro-model-store"
#: Version written by :func:`save_model`.  Version 1 stored pair-era
#: (gpcs, option, cap) keys; version 2 carried the GI-size-aware key
#: schema; version 3 adds the capacity-aware saturating interference
#: basis of sub-chip shared keys (see
#: :data:`repro.core.model.KEY_SCHEMA_VERSION`).
STORE_VERSION = 3


def plan_digest(plan: "TrainingPlan") -> str:
    """A stable digest of a training plan's coefficient coverage.

    Two plans with the same digest fit coefficients for exactly the same
    hardware-state keys.  This is what distinguishes the paper's pair-only
    Table 5 grid from a spec-derived N-way grid at the *same* spec and cap
    grid — a distinction the cap list alone cannot make.
    """
    parts = [
        ",".join(str(g) for g in plan.gpc_counts),
        ",".join(option.value for option in plan.options),
        ",".join(f"{float(p):.3f}" for p in plan.power_caps),
        ";".join(str(state.key()) for state in plan.states),
    ]
    return hashlib.sha256("|".join(parts).encode()).hexdigest()[:16]


@dataclass(frozen=True)
class ModelFingerprint:
    """What a stored model was trained for.

    Two fingerprints are compatible when the model-key schema version
    matches, the spec name matches, the stored cap grid covers every cap
    the caller wants to use, and the training grids coincide (see
    :func:`plan_digest`) — a cache trained on the pair-only Table 5 grid
    must not silently serve an N-way request it has no coefficients for,
    and a pair-era (schema v1) cache must not silently serve GI-size-aware
    predictions.
    """

    spec_name: str
    power_caps: tuple[float, ...]
    grid_digest: str = ""
    key_schema: int = KEY_SCHEMA_VERSION

    @classmethod
    def for_workflow(
        cls,
        spec: GPUSpec,
        power_caps: Sequence[float],
        plan: "TrainingPlan | None" = None,
    ) -> "ModelFingerprint":
        """The fingerprint of a workflow on ``spec`` with ``power_caps``."""
        return cls(
            spec_name=spec.name,
            power_caps=tuple(sorted(float(p) for p in power_caps)),
            grid_digest=plan_digest(plan) if plan is not None else "",
            key_schema=KEY_SCHEMA_VERSION,
        )

    def check_compatible(self, other: "ModelFingerprint", path: Path) -> None:
        """Raise :class:`ModelCacheError` when ``other`` cannot serve this request."""
        if self.key_schema != other.key_schema:
            raise ModelCacheError(
                f"model cache {path} was written with model-key schema "
                f"v{other.key_schema} but this build uses v{self.key_schema} "
                f"(v2 added the GPU Instance's memory-slice count to the "
                f"keys, v3 the capacity-aware saturating interference basis "
                f"of sub-chip shared keys); delete the cache and retrain to "
                f"regenerate it"
            )
        if self.spec_name != other.spec_name:
            raise ModelCacheError(
                f"model cache {path} was trained for {other.spec_name!r} but "
                f"{self.spec_name!r} was requested; delete the cache or pass a "
                f"different --model path"
            )
        missing = [p for p in self.power_caps if p not in other.power_caps]
        if missing:
            raise ModelCacheError(
                f"model cache {path} lacks coefficients for power cap(s) "
                f"{missing} W (stored grid: {list(other.power_caps)} W); "
                f"delete the cache and retrain on the requested grid"
            )
        if self.grid_digest and other.grid_digest and self.grid_digest != other.grid_digest:
            raise ModelCacheError(
                f"model cache {path} was trained on a different partition-state "
                f"grid (e.g. pair-only Table 5 vs spec-derived N-way); delete "
                f"the cache or pass a different --model path"
            )


def cache_path_for(directory: str | Path, fingerprint: ModelFingerprint) -> Path:
    """The canonical cache file for ``fingerprint`` under ``directory``.

    The filename folds the spec name with a digest of the full fingerprint
    (cap grid, training-grid digest, key-schema version), so every distinct
    session the service can build maps to its own file and two processes
    configured the same way converge on the same path — this is what gives
    :class:`repro.api.PlannerService` cross-process model persistence.
    """
    identity = "|".join(
        (
            fingerprint.spec_name,
            ",".join(f"{p:.3f}" for p in fingerprint.power_caps),
            fingerprint.grid_digest,
            f"v{fingerprint.key_schema}",
        )
    )
    digest = hashlib.sha256(identity.encode()).hexdigest()[:12]
    return Path(directory) / f"{fingerprint.spec_name}-{digest}.json"


def save_model(
    model: LinearPerfModel,
    path: str | Path,
    fingerprint: ModelFingerprint,
) -> Path:
    """Write ``model`` (plus its fingerprint) to ``path``; returns the path."""
    path = Path(path)
    document = {
        "format": STORE_FORMAT,
        "version": STORE_VERSION,
        "key_schema": fingerprint.key_schema,
        "spec": fingerprint.spec_name,
        "power_caps": list(fingerprint.power_caps),
        "grid_digest": fingerprint.grid_digest,
        "model": model.to_dict(),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document) + "\n")
    return path


def load_model(
    path: str | Path,
    basis: BasisFunctions = DEFAULT_BASIS,
    expected: ModelFingerprint | None = None,
    spec: GPUSpec | None = None,
) -> LinearPerfModel:
    """Read a model from ``path``, optionally validating its fingerprint.

    Raises
    ------
    repro.errors.ModelCacheError
        If the cache predates the GI-size-aware key schema or was trained
        for different hardware / a different grid than ``expected``.
    repro.errors.ModelError
        If the file is not a model-store document at all.
    """
    path = Path(path)
    if not path.exists():
        raise ModelError(f"model cache {path} does not exist")
    try:
        document = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ModelError(f"model cache {path} is not valid JSON: {exc}") from None
    if not isinstance(document, dict) or document.get("format") != STORE_FORMAT:
        raise ModelError(f"{path} is not a {STORE_FORMAT!r} document")
    version = document.get("version")
    if version == 1:
        raise ModelCacheError(
            f"model cache {path} predates the GI-size-aware key schema "
            f"(store version 1, keys without memory-slice counts); delete the "
            f"cache and retrain — the CLI retrains and rewrites it "
            f"automatically when the file is absent"
        )
    if version == 2:
        raise ModelCacheError(
            f"model cache {path} predates the capacity-aware saturating "
            f"interference basis (store version 2, key schema v2): its "
            f"sub-chip shared coefficients have the wrong dimensionality "
            f"for this build; delete the cache and retrain — the CLI "
            f"retrains and rewrites it automatically when the file is absent"
        )
    if version != STORE_VERSION:
        raise ModelError(
            f"{path}: unsupported model-store version {version!r}"
        )
    stored = ModelFingerprint(
        spec_name=str(document.get("spec", "")),
        power_caps=tuple(float(p) for p in document.get("power_caps", [])),
        grid_digest=str(document.get("grid_digest", "")),
        key_schema=int(document.get("key_schema", 1)),
    )
    if expected is not None:
        expected.check_compatible(stored, path)
    return LinearPerfModel.from_dict(document["model"], basis=basis, spec=spec)
