"""Profile collection (the Nsight-Compute stand-in).

The collector runs an application exclusively on the full GPU (no MIG, no
power cap), records its counter vector, and produces a
:class:`~repro.profiling.records.ProfileRecord`.  In the paper this is the
mandatory first run of every application; the same requirement is enforced
here by the online allocator, which refuses to co-schedule applications
without a stored profile.
"""

from __future__ import annotations

from typing import Iterable

from repro.profiling.database import ProfileDatabase
from repro.profiling.records import ProfileRecord
from repro.sim.engine import PerformanceSimulator
from repro.workloads.kernel import KernelCharacteristics


class ProfileCollector:
    """Collect profile records by running applications through the simulator."""

    def __init__(self, simulator: PerformanceSimulator | None = None) -> None:
        self._simulator = simulator if simulator is not None else PerformanceSimulator()

    @property
    def simulator(self) -> PerformanceSimulator:
        """The simulator used for profile runs."""
        return self._simulator

    # ------------------------------------------------------------------
    def collect(self, kernel: KernelCharacteristics) -> ProfileRecord:
        """Run one profile run and return its record."""
        counters = self._simulator.profile(kernel)
        reference = self._simulator.reference_time(kernel)
        return ProfileRecord(
            name=kernel.name,
            counters=counters,
            reference_time_s=reference,
            metadata={
                "device": self._simulator.spec.name,
                "collection": "exclusive solo run, MIG off, default power limit",
            },
        )

    def collect_many(
        self, kernels: Iterable[KernelCharacteristics]
    ) -> dict[str, ProfileRecord]:
        """Profile several applications, returning records keyed by name."""
        return {kernel.name: self.collect(kernel) for kernel in kernels}

    def collect_into(
        self,
        kernels: Iterable[KernelCharacteristics],
        database: ProfileDatabase,
        overwrite: bool = False,
    ) -> ProfileDatabase:
        """Profile several applications directly into a database."""
        for kernel in kernels:
            if database.has(kernel.name) and not overwrite:
                continue
            database.add(self.collect(kernel), overwrite=overwrite)
        return database
