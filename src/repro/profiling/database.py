"""JSON-backed profile database.

This is the "Database" box of the paper's Figure 1: the job manager stores
one profile per application and consults it whenever the application shows
up in the queue again.  Applications without a profile must first run
exclusively (profile run) before they can be co-scheduled.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator

from repro.errors import MissingProfileError, ProfileError
from repro.profiling.records import ProfileRecord


class ProfileDatabase:
    """In-memory profile store with optional JSON persistence."""

    def __init__(self) -> None:
        self._records: dict[str, ProfileRecord] = {}

    # ------------------------------------------------------------------
    # Mapping-ish interface
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, name: object) -> bool:
        return name in self._records

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._records))

    def names(self) -> tuple[str, ...]:
        """All profiled application names, sorted."""
        return tuple(sorted(self._records))

    def has(self, name: str) -> bool:
        """Whether a profile exists for ``name``."""
        return name in self._records

    def get(self, name: str) -> ProfileRecord:
        """The stored profile for ``name``.

        Raises
        ------
        repro.errors.MissingProfileError
            If the application has never been profiled — the paper's rule is
            that such an application must first run exclusively.
        """
        try:
            return self._records[name]
        except KeyError:
            raise MissingProfileError(
                f"no profile recorded for application {name!r}; "
                "it must be executed exclusively for a profile run first"
            ) from None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, record: ProfileRecord, overwrite: bool = False) -> None:
        """Store a profile record."""
        if record.name in self._records and not overwrite:
            raise ProfileError(f"profile for {record.name!r} already exists")
        self._records[record.name] = record

    def remove(self, name: str) -> None:
        """Delete the profile for ``name`` (must exist)."""
        if name not in self._records:
            raise MissingProfileError(f"no profile recorded for application {name!r}")
        del self._records[name]

    def clear(self) -> None:
        """Delete every stored profile."""
        self._records.clear()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Serialize the whole database to a JSON-compatible dictionary."""
        return {
            "format": "repro-profile-database",
            "version": 1,
            "profiles": [self._records[name].to_dict() for name in self.names()],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ProfileDatabase":
        """Rebuild a database from :meth:`to_dict` output."""
        if data.get("format") != "repro-profile-database":
            raise ProfileError("not a profile-database document")
        database = cls()
        for entry in data.get("profiles", []):
            database.add(ProfileRecord.from_dict(entry))
        return database

    def save(self, path: str | Path) -> Path:
        """Write the database to a JSON file and return its path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ProfileDatabase":
        """Read a database previously written by :meth:`save`."""
        path = Path(path)
        if not path.exists():
            raise ProfileError(f"profile database file not found: {path}")
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ProfileError(f"profile database {path} is not valid JSON: {exc}") from exc
        return cls.from_dict(data)
