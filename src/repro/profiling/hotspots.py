"""cProfile-backed hot-spot reporting for the event-driven simulator.

The fleet-scale event loop is performance-sensitive; when a trace replays
slower than expected the first question is always *where the time went*.
:class:`HotspotProfiler` wraps a code block with :mod:`cProfile` and
renders the top call sites by cumulative time — the same view used to
drive the event-loop optimization work (incremental free-node state, plan
memoization, vectorized power distribution).

Usage::

    profiler = HotspotProfiler()
    with profiler:
        simulator.run(trace, suite=suite)
    print(profiler.report(top=15))
"""

from __future__ import annotations

import cProfile
import pstats
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["HotSpot", "HotspotProfiler"]


@dataclass(frozen=True)
class HotSpot:
    """One profiled call site, ranked by cumulative time.

    Attributes
    ----------
    location:
        ``file:line(function)`` of the call site, or ``{built-in ...}``
        for C-level callables.
    calls:
        Number of (non-recursive) calls observed.
    total_time_s:
        Time spent in the function itself, excluding callees.
    cumulative_time_s:
        Time spent in the function and everything it called.
    """

    location: str
    calls: int
    total_time_s: float
    cumulative_time_s: float


def _format_location(func: tuple[str, int, str]) -> str:
    """Render a pstats function key as ``file:line(name)``."""
    filename, line, name = func
    if filename == "~" and line == 0:
        # C-level callable: pstats stores the descriptive name directly.
        return name
    return f"{filename}:{line}({name})"


class HotspotProfiler:
    """Context manager that profiles a code block with :mod:`cProfile`.

    The profiler may wrap several blocks in sequence; the stats
    accumulate, mirroring ``cProfile.Profile`` semantics.  Reports are
    only available once at least one block has completed.
    """

    def __init__(self) -> None:
        self._profile = cProfile.Profile()
        self._stats: pstats.Stats | None = None

    def __enter__(self) -> "HotspotProfiler":
        self._profile.enable()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._profile.disable()
        self._stats = pstats.Stats(self._profile)

    def hotspots(self, top: int = 10) -> tuple[HotSpot, ...]:
        """The ``top`` call sites by cumulative time, heaviest first."""
        if top <= 0:
            raise ConfigurationError(f"top must be positive, got {top}")
        if self._stats is None:
            raise ConfigurationError(
                "no profile collected yet; wrap a code block with the "
                "profiler before asking for hot spots"
            )
        entries = sorted(
            self._stats.stats.items(),  # type: ignore[attr-defined]
            key=lambda item: item[1][3],
            reverse=True,
        )
        return tuple(
            HotSpot(
                location=_format_location(func),
                calls=nc,
                total_time_s=tt,
                cumulative_time_s=ct,
            )
            for func, (cc, nc, tt, ct, _callers) in entries[:top]
        )

    def report(self, top: int = 10) -> str:
        """A plain-text table of the top call sites by cumulative time."""
        spots = self.hotspots(top)
        lines = [f"{'cumulative[s]':>13}  {'self[s]':>9}  {'calls':>9}  location"]
        for spot in spots:
            lines.append(
                f"{spot.cumulative_time_s:13.4f}  {spot.total_time_s:9.4f}  "
                f"{spot.calls:9d}  {spot.location}"
            )
        return "\n".join(lines)
