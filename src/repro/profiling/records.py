"""Profile records: the stored outcome of one profile run."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ProfileError
from repro.sim.counters import CounterVector


@dataclass(frozen=True)
class ProfileRecord:
    """Everything the job manager remembers about one application.

    Attributes
    ----------
    name:
        Application (benchmark) name — the database key.
    counters:
        The Table 3 counter vector collected during the profile run.
    reference_time_s:
        Elapsed time of the exclusive full-GPU run the profile was taken
        from; downstream relative-performance numbers are normalized to it.
    metadata:
        Free-form extra information (device name, collection settings, ...).
    """

    name: str
    counters: CounterVector
    reference_time_s: float
    metadata: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ProfileError("profile record needs a non-empty application name")
        if self.reference_time_s <= 0:
            raise ProfileError(
                f"{self.name}: reference time must be positive, got {self.reference_time_s}"
            )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Serialize to a JSON-compatible dictionary."""
        return {
            "name": self.name,
            "counters": self.counters.as_dict(),
            "reference_time_s": self.reference_time_s,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ProfileRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        try:
            return cls(
                name=str(data["name"]),
                counters=CounterVector.from_dict(data["counters"]),
                reference_time_s=float(data["reference_time_s"]),
                metadata={str(k): str(v) for k, v in data.get("metadata", {}).items()},
            )
        except KeyError as exc:
            raise ProfileError(f"profile record is missing field {exc}") from None
