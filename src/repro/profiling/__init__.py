"""Profile collection and storage.

The paper's workflow (Figure 7) requires one profile run per application:
the first time an application is seen it runs exclusively on the full GPU
and its Table 3 counters are recorded.  Afterwards those counters — the
application's *features* — feed the performance model, and the application
becomes eligible for co-scheduling.

* :mod:`repro.profiling.records` — the profile record structure.
* :mod:`repro.profiling.profiler` — collecting profiles with the simulator
  (stand-in for Nsight Compute).
* :mod:`repro.profiling.database` — a small JSON-backed profile store, the
  "Database" box of Figure 1.
* :mod:`repro.profiling.hotspots` — cProfile-backed hot-spot reporting
  for the event-driven simulator (``repro-cli simulate --profile``).
"""

from repro.profiling.database import ProfileDatabase
from repro.profiling.hotspots import HotSpot, HotspotProfiler
from repro.profiling.profiler import ProfileCollector
from repro.profiling.records import ProfileRecord

__all__ = [
    "ProfileRecord",
    "ProfileCollector",
    "ProfileDatabase",
    "HotSpot",
    "HotspotProfiler",
]
