"""Evaluation-wide configuration defaults.

The values below mirror the paper's evaluation setup (Table 5 and
Section 5): the explored power caps, the candidate partition states, and the
fairness thresholds used by the two optimization problems.  They are
gathered here so that benchmarks, examples, and tests agree on a single
source of truth, while every API also accepts explicit overrides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ConfigurationError
from repro.gpu.mig import CORUN_STATES, PartitionState

#: Power caps explored by the paper (Table 5), in watts.
DEFAULT_POWER_CAPS: tuple[float, ...] = (150.0, 170.0, 190.0, 210.0, 230.0, 250.0)

#: The power cap used by the Problem 1 per-workload comparison (Figure 9).
PROBLEM1_POWER_CAP_W: float = 230.0

#: Fairness threshold used by the Problem 1 evaluation (Figures 9 and 10).
DEFAULT_ALPHA: float = 0.2

#: Fairness thresholds compared for Problem 2 (Figures 11 and 12).
PROBLEM2_ALPHAS: tuple[float, ...] = (0.20, 0.42)

#: Fairness-threshold sweep used by Figure 13.
ALPHA_SWEEP: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.42)

#: GPC counts used for the solo scalability observations (Figures 4 and 5).
SCALABILITY_GPC_COUNTS: tuple[int, ...] = (1, 2, 3, 4, 7)


@dataclass(frozen=True)
class EvaluationConfig:
    """Bundle of evaluation parameters shared by benches and examples."""

    power_caps: tuple[float, ...] = DEFAULT_POWER_CAPS
    candidate_states: tuple[PartitionState, ...] = CORUN_STATES
    alpha: float = DEFAULT_ALPHA
    problem1_power_cap_w: float = PROBLEM1_POWER_CAP_W
    problem2_alphas: tuple[float, ...] = PROBLEM2_ALPHAS
    alpha_sweep: tuple[float, ...] = ALPHA_SWEEP
    scalability_gpc_counts: tuple[int, ...] = SCALABILITY_GPC_COUNTS
    noise_sigma: float = 0.03
    random_seed: int = 2022

    def __post_init__(self) -> None:
        if not self.power_caps:
            raise ConfigurationError("at least one power cap is required")
        if any(p <= 0 for p in self.power_caps):
            raise ConfigurationError("power caps must be positive")
        if not self.candidate_states:
            raise ConfigurationError("at least one candidate partition state is required")
        if not (0.0 <= self.alpha < 1.0):
            raise ConfigurationError(f"alpha must be in [0, 1), got {self.alpha}")
        if self.noise_sigma < 0:
            raise ConfigurationError("noise_sigma must be non-negative")

    def with_power_caps(self, power_caps: Sequence[float]) -> "EvaluationConfig":
        """A copy with a different power-cap grid."""
        return EvaluationConfig(
            power_caps=tuple(float(p) for p in power_caps),
            candidate_states=self.candidate_states,
            alpha=self.alpha,
            problem1_power_cap_w=self.problem1_power_cap_w,
            problem2_alphas=self.problem2_alphas,
            alpha_sweep=self.alpha_sweep,
            scalability_gpc_counts=self.scalability_gpc_counts,
            noise_sigma=self.noise_sigma,
            random_seed=self.random_seed,
        )


#: The configuration used throughout the benchmark harnesses.
DEFAULT_CONFIG = EvaluationConfig()
