"""Job traces: timestamped application arrivals for the event simulator.

A trace is deliberately minimal — ``(arrival time, application name)`` per
job — so it serializes to a two-column CSV or a small JSON document and maps
onto real scheduler logs.  Application names are resolved against a
:class:`~repro.workloads.suite.BenchmarkSuite` only when the trace is
replayed, which keeps traces portable across hardware specs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import TraceError
from repro.workloads.kernel import KernelCharacteristics
from repro.workloads.suite import BenchmarkSuite, DEFAULT_SUITE


@dataclass(frozen=True)
class TraceEntry:
    """One job arrival: which application arrives, and when."""

    arrival_time_s: float
    app: str

    def __post_init__(self) -> None:
        if not math.isfinite(self.arrival_time_s) or self.arrival_time_s < 0:
            raise TraceError(
                f"arrival time must be finite and >= 0, got {self.arrival_time_s}"
            )
        if not self.app:
            raise TraceError("trace entries need a non-empty application name")
        object.__setattr__(self, "arrival_time_s", float(self.arrival_time_s))


@dataclass(frozen=True)
class Trace:
    """An arrival-time-ordered sequence of job arrivals.

    Entries are sorted on construction (stable, so simultaneous arrivals
    keep their submission order); the raw input order is not preserved.
    """

    entries: tuple[TraceEntry, ...]
    label: str = "trace"

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.entries, key=lambda entry: entry.arrival_time_s)
        )
        object.__setattr__(self, "entries", ordered)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries)

    @property
    def n_jobs(self) -> int:
        """Number of job arrivals in the trace."""
        return len(self.entries)

    @property
    def duration_s(self) -> float:
        """Time of the last arrival (0 for an empty trace)."""
        return self.entries[-1].arrival_time_s if self.entries else 0.0

    @property
    def app_names(self) -> tuple[str, ...]:
        """Distinct application names appearing in the trace (sorted)."""
        return tuple(sorted({entry.app for entry in self.entries}))

    # ------------------------------------------------------------------
    @classmethod
    def from_arrivals(
        cls,
        arrivals: Iterable[tuple[float, str]],
        label: str = "trace",
    ) -> "Trace":
        """Build a trace from ``(arrival_time_s, app_name)`` tuples."""
        entries = tuple(TraceEntry(time, app) for time, app in arrivals)
        return cls(entries=entries, label=label)

    @classmethod
    def all_at_zero(cls, apps: Sequence[str], label: str = "batch") -> "Trace":
        """The degenerate batch trace: every job arrives at ``t=0``.

        Replaying this trace through the event loop must reproduce the batch
        :meth:`repro.cluster.manager.JobManager.drain` results exactly.
        """
        return cls.from_arrivals(((0.0, app) for app in apps), label=label)

    # ------------------------------------------------------------------
    def shifted(self, offset_s: float) -> "Trace":
        """A copy with every arrival moved ``offset_s`` seconds later."""
        if offset_s < 0 and self.entries and self.entries[0].arrival_time_s + offset_s < 0:
            raise TraceError(
                f"shifting by {offset_s} s would move the first arrival below t=0"
            )
        return Trace(
            entries=tuple(
                TraceEntry(entry.arrival_time_s + offset_s, entry.app)
                for entry in self.entries
            ),
            label=self.label,
        )

    def resolve_kernels(
        self, suite: BenchmarkSuite | None = None
    ) -> tuple[KernelCharacteristics, ...]:
        """The kernel of every entry, in arrival order.

        Raises
        ------
        repro.errors.TraceError
            If an application name is not in ``suite`` (the error lists the
            offending name so operators can fix the trace file).
        """
        suite = suite if suite is not None else DEFAULT_SUITE
        kernels = []
        for entry in self.entries:
            if entry.app not in suite:
                raise TraceError(
                    f"trace {self.label!r} references unknown application "
                    f"{entry.app!r}; known: {suite.names()}"
                )
            kernels.append(suite.get(entry.app))
        return tuple(kernels)

    def summary(self) -> str:
        """One-line human-readable summary."""
        if not self.entries:
            return f"[{self.label}] empty trace"
        rate = self.n_jobs / self.duration_s if self.duration_s > 0 else float("inf")
        rate_text = f"{rate:.2f} jobs/s" if math.isfinite(rate) else "all at t=0"
        return (
            f"[{self.label}] {self.n_jobs} jobs over {self.duration_s:.1f}s "
            f"({rate_text}, {len(self.app_names)} distinct apps)"
        )
