"""Trace persistence: CSV and JSON load/save, selected by file suffix.

The CSV dialect is the two-column scheduler-log shape
(``arrival_time_s,app`` with a header row); the JSON document carries a
format tag and version so future fields (job sizes, priorities) can be
added without breaking old files.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.errors import TraceError
from repro.traces.trace import Trace, TraceEntry

#: Format tag of the JSON trace document.
JSON_FORMAT = "repro-job-trace"
#: Version written by :func:`save_trace` (readers accept this version only).
JSON_VERSION = 1

_CSV_HEADER = ("arrival_time_s", "app")


def save_trace(trace: Trace, path: str | Path) -> Path:
    """Write ``trace`` to ``path`` (``.csv`` or ``.json``); returns the path."""
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix == ".csv":
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(_CSV_HEADER)
            for entry in trace:
                writer.writerow((f"{entry.arrival_time_s!r}", entry.app))
    elif suffix == ".json":
        document = {
            "format": JSON_FORMAT,
            "version": JSON_VERSION,
            "label": trace.label,
            "jobs": [
                {"arrival_time_s": entry.arrival_time_s, "app": entry.app}
                for entry in trace
            ],
        }
        path.write_text(json.dumps(document, indent=2) + "\n")
    else:
        raise TraceError(
            f"unsupported trace suffix {path.suffix!r}; use .csv or .json"
        )
    return path


def load_trace(path: str | Path) -> Trace:
    """Read a trace from a ``.csv`` or ``.json`` file.

    Raises
    ------
    repro.errors.TraceError
        If the file is missing, has an unsupported suffix, or is malformed
        (the error names the offending row/field).
    """
    path = Path(path)
    if not path.exists():
        raise TraceError(f"trace file {path} does not exist")
    suffix = path.suffix.lower()
    if suffix == ".csv":
        return _load_csv(path)
    if suffix == ".json":
        return _load_json(path)
    raise TraceError(f"unsupported trace suffix {path.suffix!r}; use .csv or .json")


def _load_csv(path: Path) -> Trace:
    entries = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or tuple(h.strip() for h in header) != _CSV_HEADER:
            raise TraceError(
                f"{path}: expected header {','.join(_CSV_HEADER)!r}, got {header}"
            )
        for lineno, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != 2:
                raise TraceError(f"{path}:{lineno}: expected 2 columns, got {len(row)}")
            try:
                time = float(row[0])
            except ValueError:
                raise TraceError(
                    f"{path}:{lineno}: arrival time {row[0]!r} is not a number"
                ) from None
            entries.append(TraceEntry(arrival_time_s=time, app=row[1].strip()))
    return Trace(entries=tuple(entries), label=path.stem)


def _load_json(path: Path) -> Trace:
    try:
        document = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise TraceError(f"{path} is not valid JSON: {exc}") from None
    if not isinstance(document, dict) or document.get("format") != JSON_FORMAT:
        raise TraceError(f"{path} is not a {JSON_FORMAT!r} document")
    if document.get("version") != JSON_VERSION:
        raise TraceError(
            f"{path}: unsupported trace version {document.get('version')!r} "
            f"(this reader handles version {JSON_VERSION})"
        )
    entries = []
    for index, job in enumerate(document.get("jobs", [])):
        try:
            entries.append(
                TraceEntry(
                    arrival_time_s=float(job["arrival_time_s"]), app=str(job["app"])
                )
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceError(f"{path}: jobs[{index}] is malformed: {exc}") from None
    return Trace(entries=tuple(entries), label=str(document.get("label", path.stem)))
