"""Job traces: synthetic arrival generators, persistence, and replay.

* :mod:`repro.traces.trace` — :class:`Trace` / :class:`TraceEntry`, the
  timestamped arrival records the event-driven cluster simulator replays.
* :mod:`repro.traces.generators` — seeded Poisson and bursty synthetic
  arrival processes over weighted job mixes.
* :mod:`repro.traces.loader` — CSV/JSON load and save.
"""

from repro.traces.generators import bursty_trace, poisson_trace
from repro.traces.loader import load_trace, save_trace
from repro.traces.trace import Trace, TraceEntry

__all__ = [
    "Trace",
    "TraceEntry",
    "poisson_trace",
    "bursty_trace",
    "load_trace",
    "save_trace",
]
