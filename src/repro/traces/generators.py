"""Synthetic trace generators: Poisson and bursty arrival processes.

Both generators are deterministic for a given seed (they own a private
:class:`random.Random`) and sample application names from a weighted
:class:`~repro.workloads.mixes.JobMix`, so a trace used in a test or a
benchmark can be regenerated bit-for-bit from its parameters.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.errors import TraceError
from repro.traces.trace import Trace, TraceEntry
from repro.workloads.mixes import JobMix, STEADY_MIX


def _sampler(
    rng: random.Random, mix: JobMix | None, apps: Sequence[str] | None
):
    """An app-name sampler from either an explicit list or a weighted mix."""
    if apps is not None:
        if not apps:
            raise TraceError("the application list must not be empty")
        pool = list(apps)
        return lambda: rng.choice(pool)
    mix = mix if mix is not None else STEADY_MIX
    names = list(mix.app_names)
    weights = [mix.weights[name] for name in names]
    return lambda: rng.choices(names, weights=weights, k=1)[0]


def poisson_trace(
    arrival_rate_per_s: float,
    duration_s: float | None = None,
    n_jobs: int | None = None,
    seed: int = 2022,
    mix: JobMix | None = None,
    apps: Sequence[str] | None = None,
    label: str | None = None,
) -> Trace:
    """A Poisson arrival process: exponential inter-arrival times.

    Exactly one of ``duration_s`` (generate arrivals until the window ends)
    and ``n_jobs`` (generate a fixed number of arrivals) bounds the trace;
    supplying both caps the trace at whichever limit is hit first.
    """
    if arrival_rate_per_s <= 0:
        raise TraceError(
            f"the arrival rate must be positive, got {arrival_rate_per_s}"
        )
    if duration_s is None and n_jobs is None:
        raise TraceError("poisson_trace needs duration_s and/or n_jobs")
    if duration_s is not None and duration_s <= 0:
        raise TraceError(f"duration_s must be positive, got {duration_s}")
    if n_jobs is not None and n_jobs < 1:
        raise TraceError(f"n_jobs must be >= 1, got {n_jobs}")
    rng = random.Random(seed)
    sample_app = _sampler(rng, mix, apps)
    entries: list[TraceEntry] = []
    time = 0.0
    while True:
        time += rng.expovariate(arrival_rate_per_s)
        if duration_s is not None and time > duration_s:
            break
        entries.append(TraceEntry(arrival_time_s=time, app=sample_app()))
        if n_jobs is not None and len(entries) >= n_jobs:
            break
    if not entries:
        raise TraceError(
            f"no arrivals generated (rate={arrival_rate_per_s}/s, "
            f"duration={duration_s}s); increase the rate or the window"
        )
    if label is None:
        label = f"poisson(rate={arrival_rate_per_s:g}/s, seed={seed})"
    return Trace(entries=tuple(entries), label=label)


def bursty_trace(
    burst_rate_per_s: float,
    mean_burst_size: float,
    duration_s: float,
    n_jobs: int | None = None,
    seed: int = 2022,
    mix: JobMix | None = None,
    apps: Sequence[str] | None = None,
    intra_burst_spacing_s: float = 0.0,
    label: str | None = None,
) -> Trace:
    """Bursts of simultaneous (or tightly spaced) arrivals.

    Burst *starts* follow a Poisson process at ``burst_rate_per_s``; each
    burst carries a geometrically distributed number of jobs with mean
    ``mean_burst_size``.  ``n_jobs`` additionally caps the trace at that
    many arrivals (the last burst may be cut short).  This is the arrival
    shape that exercises the power-rebalance path: a burst fills several
    nodes at once, so the cluster budget has to be re-split in one step.
    """
    if burst_rate_per_s <= 0:
        raise TraceError(f"the burst rate must be positive, got {burst_rate_per_s}")
    if mean_burst_size < 1:
        raise TraceError(f"mean_burst_size must be >= 1, got {mean_burst_size}")
    if duration_s <= 0:
        raise TraceError(f"duration_s must be positive, got {duration_s}")
    if n_jobs is not None and n_jobs < 1:
        raise TraceError(f"n_jobs must be >= 1, got {n_jobs}")
    if intra_burst_spacing_s < 0:
        raise TraceError(
            f"intra_burst_spacing_s must be >= 0, got {intra_burst_spacing_s}"
        )
    rng = random.Random(seed)
    sample_app = _sampler(rng, mix, apps)
    # Geometric on {1, 2, ...} with mean m has success probability 1/m.
    p_stop = 1.0 / mean_burst_size
    entries: list[TraceEntry] = []
    time = 0.0
    while n_jobs is None or len(entries) < n_jobs:
        time += rng.expovariate(burst_rate_per_s)
        if time > duration_s:
            break
        size = 1
        while rng.random() > p_stop:
            size += 1
        for index in range(size):
            entries.append(
                TraceEntry(
                    arrival_time_s=time + index * intra_burst_spacing_s,
                    app=sample_app(),
                )
            )
            if n_jobs is not None and len(entries) >= n_jobs:
                break
    if not entries:
        raise TraceError(
            f"no bursts generated (rate={burst_rate_per_s}/s, "
            f"duration={duration_s}s); increase the rate or the window"
        )
    if label is None:
        label = (
            f"bursty(rate={burst_rate_per_s:g}/s, "
            f"size~{mean_burst_size:g}, seed={seed})"
        )
    return Trace(entries=tuple(entries), label=label)
