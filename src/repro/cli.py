"""Command-line interface: a thin client of the service-layer API.

A small operator-facing CLI over the library, mirroring how the paper's
workflow would be driven in a deployment:

* ``repro-cli list-benchmarks`` — show the benchmark suite and its classes;
* ``repro-cli classify`` — run the Table 7 classification rule;
* ``repro-cli scalability KERNEL`` — the Figure 4/5 scalability curves for
  one benchmark;
* ``repro-cli decide APP [APP ...]`` — train the model and print the best
  partition state / power cap for a co-location group of any size
  (Problem 1 or Problem 2), optionally on a non-A100 ``--spec``;
* ``repro-cli states N`` — enumerate the realizable N-application
  partition states of a GPU spec;
* ``repro-cli simulate`` — replay a job trace (from a file, or synthetic
  Poisson/bursty arrivals) through the event-driven cluster simulator and
  print online metrics (tail latencies, utilization, energy);
* ``repro-cli accuracy`` — the Section 5.2.1 model-error statistic;
* ``repro-cli figure N`` — regenerate the data behind one of the paper's
  figures (4, 5, 6, 8, 9, 10, 11, 12 or 13);
* ``repro-cli lint [PATH ...]`` — the AST-based invariant analyzer
  (determinism and cache-coherence rules RL001–RL006; see
  :mod:`repro.lint`), ``--strict`` failing on warnings too.

The service-backed commands (``decide``, ``simulate``, ``states``,
``lint``) only parse arguments, build a typed request, call
:class:`~repro.api.PlannerService`, and render the typed response — the
engine plumbing (trainer, suite, allocator, model cache) lives behind the
service.  Each of them also takes ``--json`` to emit the response
dataclass's ``to_dict()`` as machine-readable JSON instead of text.

Exit status: 0 on success, and on a library error one stable code per
failure family (see :data:`EXIT_CODE_MAP`): 2 for configuration / input
problems, 3 for infeasible optimization problems, 4 for a rejected model
cache.  ``lint`` additionally exits 1 when the analysis itself ran but
found violations, mirroring how the other codes distinguish "the tool
failed" from "the answer is no".
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Sequence

from repro.analysis.context import EvaluationContext
from repro.analysis.errors import model_error_summary
from repro.analysis import figures as figure_module
from repro.analysis.report import (
    ascii_table,
    render_alpha_sweep,
    render_comparison,
    render_figure6,
    render_figure8,
    render_power_sweep,
    render_scalability,
    render_table7,
)
from repro.analysis.tables import table7_classification
from repro.api import (
    DecisionRequest,
    LintRequest,
    PlannerService,
    SimulationRequest,
    StatesRequest,
)
from repro.errors import ConfigurationError, ModelCacheError, OptimizationError, ReproError
from repro.gpu.spec import GPU_SPECS
from repro.profiling import HotspotProfiler
from repro.sim.engine import PerformanceSimulator
from repro.sim.sweep import scalability_power_sweep, scalability_sweep
from repro.workloads.classification import EXPECTED_CLASSIFICATION
from repro.workloads.mixes import JOB_MIXES
from repro.workloads.suite import DEFAULT_SUITE

# ----------------------------------------------------------------------
# Exit codes: one stable code per failure family, mapped in one place.
# ----------------------------------------------------------------------
#: ``lint`` ran successfully but found rule violations.
EXIT_LINT_FINDINGS = 1
#: Configuration / input problems (bad spec, unknown kernel, bad trace, ...).
EXIT_CONFIG = 2
#: The optimization problem has no feasible candidate (e.g. alpha too strict).
EXIT_INFEASIBLE = 3
#: A persisted model cache cannot serve the request (stale schema/spec/grid).
EXIT_MODEL_CACHE = 4

#: Most-specific-first mapping from :class:`ReproError` families to exit
#: codes; the first matching row wins, and anything else falls back to
#: :data:`EXIT_CONFIG`.
EXIT_CODE_MAP: tuple[tuple[type[ReproError], int], ...] = (
    (ModelCacheError, EXIT_MODEL_CACHE),
    (OptimizationError, EXIT_INFEASIBLE),
    (ReproError, EXIT_CONFIG),
)


def exit_code_for(exc: ReproError) -> int:
    """The stable CLI exit code of a library error."""
    for exc_type, code in EXIT_CODE_MAP:
        if isinstance(exc, exc_type):
            return code
    return EXIT_CONFIG  # pragma: no cover - ReproError row matches everything


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cli",
        description="MIG partitioning + power capping co-optimization (ICPP Workshops 2022 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list-benchmarks", help="list the benchmark suite")

    subparsers.add_parser("classify", help="run the Table 7 classification")

    scalability = subparsers.add_parser("scalability", help="scalability curves of one benchmark")
    scalability.add_argument("kernel", help="benchmark name (e.g. stream, hgemm)")
    scalability.add_argument("--power-cap", type=float, default=250.0, help="chip power cap in watts")
    scalability.add_argument(
        "--sweep-power",
        action="store_true",
        help="sweep the power cap (Figure 5 style) instead of the memory option",
    )

    decide = subparsers.add_parser(
        "decide", help="best partition/power for a co-location group of applications"
    )
    decide.add_argument(
        "apps",
        nargs="+",
        metavar="APP",
        help="application names in allocation order (two reproduce the paper's pairs; "
        "more enable N-way co-location)",
    )
    decide.add_argument("--policy", choices=("problem1", "problem2"), default="problem1")
    decide.add_argument(
        "--power-cap", type=float, default=None, help="power cap for Problem 1 (default: spec grid's 92%% point)"
    )
    decide.add_argument("--alpha", type=float, default=0.2, help="fairness threshold")
    decide.add_argument(
        "--spec",
        choices=sorted(GPU_SPECS),
        default="a100",
        help="hardware specification to simulate and optimize for",
    )
    decide.add_argument(
        "--model",
        default=None,
        metavar="PATH",
        help="model cache path: load trained coefficients from PATH if it "
        "exists, otherwise train once and save them there",
    )
    decide.add_argument(
        "--json",
        action="store_true",
        help="emit the decision as machine-readable JSON instead of text",
    )

    simulate = subparsers.add_parser(
        "simulate",
        help="replay a job trace through the event-driven cluster simulator",
    )
    simulate.add_argument(
        "--trace", default=None, metavar="PATH",
        help="trace file (.csv or .json); omit to generate a synthetic trace",
    )
    simulate.add_argument(
        "--arrival-rate", type=float, default=2.0,
        help="synthetic arrival rate in jobs/s (ignored with --trace)",
    )
    simulate.add_argument(
        "--duration", type=float, default=600.0,
        help="synthetic arrival window in seconds (ignored with --trace)",
    )
    simulate.add_argument(
        "--jobs", type=int, default=None,
        help="cap the synthetic trace at this many jobs",
    )
    simulate.add_argument(
        "--burst-size", type=float, default=None, metavar="MEAN",
        help="generate bursty arrivals with this mean burst size instead of "
        "a plain Poisson process (burst rate = arrival rate / MEAN)",
    )
    simulate.add_argument(
        "--mix", choices=sorted(JOB_MIXES), default="steady",
        help="job mix the synthetic trace samples applications from",
    )
    simulate.add_argument("--seed", type=int, default=2022, help="trace generator seed")
    simulate.add_argument("--nodes", type=int, default=2, help="number of compute nodes")
    simulate.add_argument(
        "--policy", choices=("problem1", "problem2"), default="problem2"
    )
    simulate.add_argument(
        "--power-cap", type=float, default=None,
        help="power cap for Problem 1 (default: spec grid's 92%% point)",
    )
    simulate.add_argument("--alpha", type=float, default=0.2, help="fairness threshold")
    simulate.add_argument(
        "--window", type=int, default=4, help="co-scheduler look-ahead window"
    )
    simulate.add_argument(
        "--group-size", type=int, default=2,
        help="maximum jobs co-located per GPU (>2 enables N-way groups)",
    )
    simulate.add_argument(
        "--repartition-latency", type=float, default=0.0, metavar="S",
        help="latency per GPU Instance created/destroyed when a node's MIG "
        "layout changes, in seconds (re-binding jobs onto an unchanged GI "
        "multiset is free)",
    )
    simulate.add_argument(
        "--power-budget", type=float, default=None, metavar="W",
        help="cluster-wide GPU power budget re-distributed on load changes",
    )
    simulate.add_argument(
        "--spec",
        choices=sorted(GPU_SPECS),
        default="a100",
        help="hardware specification to simulate and optimize for",
    )
    simulate.add_argument(
        "--model",
        default=None,
        metavar="PATH",
        help="model cache path: load trained coefficients from PATH if it "
        "exists, otherwise train once and save them there",
    )
    simulate.add_argument(
        "--save-trace", default=None, metavar="PATH",
        help="also write the (synthetic) trace to PATH (.csv or .json)",
    )
    simulate.add_argument(
        "--json",
        action="store_true",
        help="emit the simulation report as machine-readable JSON instead of text",
    )
    simulate.add_argument(
        "--profile",
        type=int,
        nargs="?",
        const=15,
        default=None,
        metavar="N",
        help="profile the simulation with cProfile and append the top N "
        "call sites by cumulative time (default 15); the model is trained "
        "before profiling starts so the report shows the event loop, not "
        "one-time training",
    )

    states = subparsers.add_parser(
        "states", help="enumerate the realizable N-application partition states"
    )
    states.add_argument("n_apps", type=int, help="number of co-located applications")
    states.add_argument(
        "--spec",
        choices=sorted(GPU_SPECS),
        default="a100",
        help="hardware specification to enumerate for",
    )
    states.add_argument(
        "--json",
        action="store_true",
        help="emit the state list as machine-readable JSON instead of text",
    )

    lint = subparsers.add_parser(
        "lint",
        help="run the AST-based invariant analyzer (determinism and "
        "cache-coherence rules)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        metavar="PATH",
        help="files and directories to analyze (default: src)",
    )
    lint.add_argument(
        "--strict",
        action="store_true",
        help="fail on warnings too, not only on errors (the mode CI runs)",
    )
    lint.add_argument(
        "--select",
        default=None,
        metavar="RLxxx[,RLxxx...]",
        help="comma-separated subset of rule ids to run (default: all)",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry with rationales and exit",
    )
    lint.add_argument(
        "--json",
        action="store_true",
        help="emit the lint report as machine-readable JSON instead of text",
    )

    subparsers.add_parser("accuracy", help="average model error across the evaluation grid")

    figure = subparsers.add_parser("figure", help="regenerate the data behind one paper figure")
    figure.add_argument("number", type=int, choices=(4, 5, 6, 8, 9, 10, 11, 12, 13))

    return parser


# ----------------------------------------------------------------------
# Command implementations
# ----------------------------------------------------------------------
def _emit_json(result, out: Callable[[str], None]) -> int:
    """Render a response dataclass as indented JSON."""
    out(json.dumps(result.to_dict(), indent=2))
    return 0


def _cmd_list_benchmarks(
    _: argparse.Namespace, out: Callable[[str], None], __: PlannerService
) -> int:
    rows = []
    for name in DEFAULT_SUITE.names():
        kernel = DEFAULT_SUITE.get(name)
        expected = EXPECTED_CLASSIFICATION.get(name)
        rows.append(
            (
                name,
                expected.value if expected else "-",
                f"{kernel.compute_time_full_s:.3f}",
                f"{kernel.memory_time_full_s:.3f}",
                f"{kernel.serial_time_s:.3f}",
                "yes" if kernel.uses_tensor_cores else "no",
            )
        )
    out(ascii_table(["benchmark", "class", "compute[s]", "memory[s]", "serial[s]", "tensor"], rows))
    return 0


def _cmd_classify(
    _: argparse.Namespace, out: Callable[[str], None], __: PlannerService
) -> int:
    context = EvaluationContext.create()
    data = table7_classification(context)
    out(render_table7(data))
    out(f"\nagreement with the paper's Table 7: {data.accuracy:.0%}")
    return 0


def _cmd_scalability(
    args: argparse.Namespace, out: Callable[[str], None], _: PlannerService
) -> int:
    kernel = DEFAULT_SUITE.get(args.kernel)
    simulator = PerformanceSimulator()
    if args.sweep_power:
        points = scalability_power_sweep(simulator, kernel)
        rows = [
            (f"{p.power_cap_w:.0f}W", p.gpcs, f"{p.relative_performance:.3f}", p.bound)
            for p in points
        ]
        out(ascii_table(["power cap", "GPCs", "RPerf", "bound"], rows))
    else:
        points = scalability_sweep(simulator, kernel, power_cap_w=args.power_cap)
        rows = [
            (p.option.value, p.gpcs, f"{p.relative_performance:.3f}", p.bound) for p in points
        ]
        out(ascii_table(["option", "GPCs", "RPerf", "bound"], rows))
    return 0


def _cmd_decide(
    args: argparse.Namespace, out: Callable[[str], None], service: PlannerService
) -> int:
    request = DecisionRequest(
        apps=tuple(args.apps),
        policy=args.policy,
        power_cap_w=args.power_cap,
        alpha=args.alpha,
        spec=args.spec,
        model_path=args.model,
    )
    result = service.decide(request)
    if args.json:
        return _emit_json(result, out)
    out(result.describe())
    out("")
    rows = [
        (
            e.display,
            f"{e.power_cap_w:.0f}",
            f"{e.throughput:.3f}",
            f"{e.fairness:.3f}",
            f"{e.objective:.5f}",
            "yes" if e.feasible else "no",
        )
        for e in result.evaluations
    ]
    out(ascii_table(["state", "P[W]", "throughput", "fairness", "objective", "feasible"], rows))
    return 0


def _cmd_simulate(
    args: argparse.Namespace, out: Callable[[str], None], service: PlannerService
) -> int:
    request = SimulationRequest(
        trace_path=args.trace,
        arrival_rate_per_s=args.arrival_rate,
        duration_s=args.duration,
        n_jobs=args.jobs,
        burst_size=args.burst_size,
        mix=args.mix,
        seed=args.seed,
        n_nodes=args.nodes,
        policy=args.policy,
        power_cap_w=args.power_cap,
        alpha=args.alpha,
        window_size=args.window,
        group_size=args.group_size,
        repartition_latency_s=args.repartition_latency,
        power_budget_w=args.power_budget,
        spec=args.spec,
        model_path=args.model,
        save_trace_path=args.save_trace,
    )
    if args.profile is not None:
        if args.json:
            raise ConfigurationError("--profile cannot be combined with --json")
        # Warm the session up front so the profile shows the event loop,
        # not the one-time offline training of the performance model.
        service.session_for(args.spec, args.group_size, args.model)
        profiler = HotspotProfiler()
        with profiler:
            result = service.simulate(request)
        out(result.trace_summary)
        out("")
        out(result.report_summary)
        out("")
        out(f"top {args.profile} call sites by cumulative time:")
        out(profiler.report(top=args.profile))
        return 0
    result = service.simulate(request)
    if args.json:
        return _emit_json(result, out)
    out(result.trace_summary)
    out("")
    out(result.report_summary)
    return 0


def _cmd_states(
    args: argparse.Namespace, out: Callable[[str], None], service: PlannerService
) -> int:
    result = service.states(StatesRequest(n_apps=args.n_apps, spec=args.spec))
    if args.json:
        return _emit_json(result, out)
    rows = [
        (
            row.state,
            row.option,
            row.total_gpcs,
            "-".join(str(slices) for slices in row.mem_slices_per_app),
        )
        for row in result.states
    ]
    out(ascii_table(["state", "option", "GPCs", "mem slices/app"], rows))
    out(
        f"\n{result.n_states} realizable state(s) for {result.n_apps} "
        f"application(s) on {result.spec_description}"
    )
    return 0


def _cmd_lint(
    args: argparse.Namespace, out: Callable[[str], None], service: PlannerService
) -> int:
    if args.list_rules:
        from repro.lint.report import render_rules

        out(render_rules())
        return 0
    select = (
        tuple(part.strip() for part in args.select.split(",") if part.strip())
        if args.select is not None
        else None
    )
    request = LintRequest(
        paths=tuple(args.paths), strict=args.strict, select=select
    )
    result = service.lint(request)
    if args.json:
        _emit_json(result, out)
    else:
        out(result.describe())
    return 0 if result.clean else EXIT_LINT_FINDINGS


def _cmd_accuracy(
    _: argparse.Namespace, out: Callable[[str], None], __: PlannerService
) -> int:
    context = EvaluationContext.create()
    summary = model_error_summary(context)
    out(
        f"average model error over {summary.n_samples} samples: "
        f"throughput {summary.throughput_mape_pct:.1f}% (paper ~9.7%), "
        f"fairness {summary.fairness_mape_pct:.1f}% (paper ~14.5%)"
    )
    return 0


def _cmd_figure(
    args: argparse.Namespace, out: Callable[[str], None], _: PlannerService
) -> int:
    context = EvaluationContext.create()
    number = args.number
    if number == 4:
        out(render_scalability(figure_module.figure4_scalability_partitioning(context), "Figure 4"))
    elif number == 5:
        out(render_scalability(figure_module.figure5_scalability_power(context), "Figure 5"))
    elif number == 6:
        out(render_figure6(figure_module.figure6_corun_throughput(context)))
    elif number == 8:
        out(render_figure8(figure_module.figure8_model_accuracy(context)))
    elif number == 9:
        data = figure_module.figure9_problem1(context)
        out(render_comparison(data.comparison, "throughput"))
    elif number == 10:
        out(render_power_sweep(figure_module.figure10_problem1_power_sweep(context)))
    elif number == 11:
        data = figure_module.figure11_problem2_efficiency(context)
        for alpha, summary in sorted(data.per_alpha.items()):
            out(f"alpha = {alpha}")
            out(render_comparison(summary, "throughput/W"))
    elif number == 12:
        data = figure_module.figure12_problem2_power_selection(context)
        for alpha, rows in sorted(data.per_alpha.items()):
            out(f"alpha = {alpha}")
            out(
                ascii_table(
                    ["workload", "worst P[W]", "proposal P[W]", "best P[W]"],
                    [
                        (r.pair, f"{r.worst_power_w:.0f}", f"{r.proposal_power_w:.0f}", f"{r.best_power_w:.0f}")
                        for r in rows
                    ],
                )
            )
    elif number == 13:
        out(render_alpha_sweep(figure_module.figure13_efficiency_vs_alpha(context)))
    return 0


_COMMANDS = {
    "list-benchmarks": _cmd_list_benchmarks,
    "classify": _cmd_classify,
    "scalability": _cmd_scalability,
    "decide": _cmd_decide,
    "simulate": _cmd_simulate,
    "states": _cmd_states,
    "lint": _cmd_lint,
    "accuracy": _cmd_accuracy,
    "figure": _cmd_figure,
}


def main(
    argv: Sequence[str] | None = None,
    out: Callable[[str], None] = print,
    service: PlannerService | None = None,
) -> int:
    """CLI entry point; returns the process exit status.

    ``service`` lets a long-lived embedding (tests, a REPL, a daemon) share
    one :class:`PlannerService` — and with it the trained-session cache —
    across invocations; by default each invocation gets a fresh one.
    """
    parser = _build_parser()
    args = parser.parse_args(argv)
    handler = _COMMANDS[args.command]
    if service is None:
        service = PlannerService()
    try:
        return handler(args, out, service)
    except ReproError as exc:
        out(f"error: {exc}")
        return exit_code_for(exc)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
