"""Command-line interface.

A small operator-facing CLI over the library, mirroring how the paper's
workflow would be driven in a deployment:

* ``repro-cli list-benchmarks`` — show the benchmark suite and its classes;
* ``repro-cli classify`` — run the Table 7 classification rule;
* ``repro-cli scalability KERNEL`` — the Figure 4/5 scalability curves for
  one benchmark;
* ``repro-cli decide APP [APP ...]`` — train the model and print the best
  partition state / power cap for a co-location group of any size
  (Problem 1 or Problem 2), optionally on a non-A100 ``--spec``;
* ``repro-cli states N`` — enumerate the realizable N-application
  partition states of a GPU spec;
* ``repro-cli accuracy`` — the Section 5.2.1 model-error statistic;
* ``repro-cli figure N`` — regenerate the data behind one of the paper's
  figures (4, 5, 6, 8, 9, 10, 11, 12 or 13).

Every command works offline on the simulated substrate and prints plain
text; exit status is non-zero on invalid arguments.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro.analysis.context import EvaluationContext
from repro.analysis.errors import model_error_summary
from repro.analysis import figures as figure_module
from repro.analysis.report import (
    ascii_table,
    render_alpha_sweep,
    render_comparison,
    render_figure6,
    render_figure8,
    render_power_sweep,
    render_scalability,
    render_table7,
)
from repro.analysis.tables import table7_classification
from repro.config import DEFAULT_POWER_CAPS
from repro.errors import ReproError
from repro.gpu.mig import enumerate_partition_states
from repro.gpu.spec import GPU_SPECS, spec_by_name
from repro.sim.engine import PerformanceSimulator
from repro.sim.sweep import scalability_power_sweep, scalability_sweep
from repro.workloads.classification import EXPECTED_CLASSIFICATION
from repro.workloads.suite import DEFAULT_SUITE


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cli",
        description="MIG partitioning + power capping co-optimization (ICPP Workshops 2022 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list-benchmarks", help="list the benchmark suite")

    subparsers.add_parser("classify", help="run the Table 7 classification")

    scalability = subparsers.add_parser("scalability", help="scalability curves of one benchmark")
    scalability.add_argument("kernel", help="benchmark name (e.g. stream, hgemm)")
    scalability.add_argument("--power-cap", type=float, default=250.0, help="chip power cap in watts")
    scalability.add_argument(
        "--sweep-power",
        action="store_true",
        help="sweep the power cap (Figure 5 style) instead of the memory option",
    )

    decide = subparsers.add_parser(
        "decide", help="best partition/power for a co-location group of applications"
    )
    decide.add_argument(
        "apps",
        nargs="+",
        metavar="APP",
        help="application names in allocation order (two reproduce the paper's pairs; "
        "more enable N-way co-location)",
    )
    decide.add_argument("--policy", choices=("problem1", "problem2"), default="problem1")
    decide.add_argument(
        "--power-cap", type=float, default=None, help="power cap for Problem 1 (default: spec grid's 92%% point)"
    )
    decide.add_argument("--alpha", type=float, default=0.2, help="fairness threshold")
    decide.add_argument(
        "--spec",
        choices=sorted(GPU_SPECS),
        default="a100",
        help="hardware specification to simulate and optimize for",
    )

    states = subparsers.add_parser(
        "states", help="enumerate the realizable N-application partition states"
    )
    states.add_argument("n_apps", type=int, help="number of co-located applications")
    states.add_argument(
        "--spec",
        choices=sorted(GPU_SPECS),
        default="a100",
        help="hardware specification to enumerate for",
    )

    subparsers.add_parser("accuracy", help="average model error across the evaluation grid")

    figure = subparsers.add_parser("figure", help="regenerate the data behind one paper figure")
    figure.add_argument("number", type=int, choices=(4, 5, 6, 8, 9, 10, 11, 12, 13))

    return parser


# ----------------------------------------------------------------------
# Command implementations
# ----------------------------------------------------------------------
def _cmd_list_benchmarks(_: argparse.Namespace, out: Callable[[str], None]) -> int:
    rows = []
    for name in DEFAULT_SUITE.names():
        kernel = DEFAULT_SUITE.get(name)
        expected = EXPECTED_CLASSIFICATION.get(name)
        rows.append(
            (
                name,
                expected.value if expected else "-",
                f"{kernel.compute_time_full_s:.3f}",
                f"{kernel.memory_time_full_s:.3f}",
                f"{kernel.serial_time_s:.3f}",
                "yes" if kernel.uses_tensor_cores else "no",
            )
        )
    out(ascii_table(["benchmark", "class", "compute[s]", "memory[s]", "serial[s]", "tensor"], rows))
    return 0


def _cmd_classify(_: argparse.Namespace, out: Callable[[str], None]) -> int:
    context = EvaluationContext.create()
    data = table7_classification(context)
    out(render_table7(data))
    out(f"\nagreement with the paper's Table 7: {data.accuracy:.0%}")
    return 0


def _cmd_scalability(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    kernel = DEFAULT_SUITE.get(args.kernel)
    simulator = PerformanceSimulator()
    if args.sweep_power:
        points = scalability_power_sweep(simulator, kernel)
        rows = [
            (f"{p.power_cap_w:.0f}W", p.gpcs, f"{p.relative_performance:.3f}", p.bound)
            for p in points
        ]
        out(ascii_table(["power cap", "GPCs", "RPerf", "bound"], rows))
    else:
        points = scalability_sweep(simulator, kernel, power_cap_w=args.power_cap)
        rows = [
            (p.option.value, p.gpcs, f"{p.relative_performance:.3f}", p.bound) for p in points
        ]
        out(ascii_table(["option", "GPCs", "RPerf", "bound"], rows))
    return 0


def _cmd_decide(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    from repro.core.workflow import PaperWorkflow, TrainingPlan, power_caps_for_spec

    spec = spec_by_name(args.spec)
    needs_general_grid = args.spec != "a100" or len(args.apps) != 2
    if needs_general_grid:
        # N-way groups and non-A100 specs need coefficients for the whole
        # instance-size grid, not just the S1-S4 keys of Table 5.
        caps = power_caps_for_spec(spec)
        workflow = PaperWorkflow(
            simulator=PerformanceSimulator(spec),
            plan=TrainingPlan.for_spec(spec, power_caps=caps),
            power_caps=caps,
        )
    else:
        caps = tuple(DEFAULT_POWER_CAPS)
        workflow = PaperWorkflow()
    workflow.train()
    power_cap = args.power_cap if args.power_cap is not None else caps[-2]
    if args.policy == "problem1":
        decision = workflow.decide_problem1(args.apps, power_cap, args.alpha)
    else:
        decision = workflow.decide_problem2(args.apps, args.alpha)
    out(decision.describe())
    out("")
    rows = [
        (
            e.state.label or e.state.describe(),
            f"{e.power_cap_w:.0f}",
            f"{e.predicted_throughput:.3f}",
            f"{e.predicted_fairness:.3f}",
            f"{e.objective:.5f}",
            "yes" if e.feasible else "no",
        )
        for e in decision.evaluations
    ]
    out(ascii_table(["state", "P[W]", "throughput", "fairness", "objective", "feasible"], rows))
    return 0


def _cmd_states(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    spec = spec_by_name(args.spec)
    states = tuple(enumerate_partition_states(args.n_apps, spec))
    rows = [
        (
            state.describe(),
            state.option.value,
            state.total_gpcs,
            "-".join(str(a.mem_slices) for a in state.allocations(spec)),
        )
        for state in states
    ]
    out(ascii_table(["state", "option", "GPCs", "mem slices/app"], rows))
    out(f"\n{len(states)} realizable state(s) for {args.n_apps} application(s) on {spec.name}")
    return 0


def _cmd_accuracy(_: argparse.Namespace, out: Callable[[str], None]) -> int:
    context = EvaluationContext.create()
    summary = model_error_summary(context)
    out(
        f"average model error over {summary.n_samples} samples: "
        f"throughput {summary.throughput_mape_pct:.1f}% (paper ~9.7%), "
        f"fairness {summary.fairness_mape_pct:.1f}% (paper ~14.5%)"
    )
    return 0


def _cmd_figure(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    context = EvaluationContext.create()
    number = args.number
    if number == 4:
        out(render_scalability(figure_module.figure4_scalability_partitioning(context), "Figure 4"))
    elif number == 5:
        out(render_scalability(figure_module.figure5_scalability_power(context), "Figure 5"))
    elif number == 6:
        out(render_figure6(figure_module.figure6_corun_throughput(context)))
    elif number == 8:
        out(render_figure8(figure_module.figure8_model_accuracy(context)))
    elif number == 9:
        data = figure_module.figure9_problem1(context)
        out(render_comparison(data.comparison, "throughput"))
    elif number == 10:
        out(render_power_sweep(figure_module.figure10_problem1_power_sweep(context)))
    elif number == 11:
        data = figure_module.figure11_problem2_efficiency(context)
        for alpha, summary in sorted(data.per_alpha.items()):
            out(f"alpha = {alpha}")
            out(render_comparison(summary, "throughput/W"))
    elif number == 12:
        data = figure_module.figure12_problem2_power_selection(context)
        for alpha, rows in sorted(data.per_alpha.items()):
            out(f"alpha = {alpha}")
            out(
                ascii_table(
                    ["workload", "worst P[W]", "proposal P[W]", "best P[W]"],
                    [
                        (r.pair, f"{r.worst_power_w:.0f}", f"{r.proposal_power_w:.0f}", f"{r.best_power_w:.0f}")
                        for r in rows
                    ],
                )
            )
    elif number == 13:
        out(render_alpha_sweep(figure_module.figure13_efficiency_vs_alpha(context)))
    return 0


_COMMANDS = {
    "list-benchmarks": _cmd_list_benchmarks,
    "classify": _cmd_classify,
    "scalability": _cmd_scalability,
    "decide": _cmd_decide,
    "states": _cmd_states,
    "accuracy": _cmd_accuracy,
    "figure": _cmd_figure,
}


def main(argv: Sequence[str] | None = None, out: Callable[[str], None] = print) -> int:
    """CLI entry point; returns the process exit status."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handler = _COMMANDS[args.command]
    try:
        return handler(args, out)
    except ReproError as exc:
        out(f"error: {exc}")
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
