"""The typed service-layer API: the one public surface over the engine.

The paper's offline-train / online-allocate split is exposed here as a
facade whose hot path amortizes training across requests:

* :mod:`repro.api.requests` — frozen request dataclasses
  (:class:`DecisionRequest`, :class:`SimulationRequest`,
  :class:`StatesRequest`) with ``to_dict()``/``from_dict()`` round-tripping;
* :mod:`repro.api.results` — the matching response dataclasses
  (:class:`DecisionResult`, :class:`SimulationResult`,
  :class:`StatesResult`), plain data, JSON-safe;
* :mod:`repro.api.service` — :class:`PlannerService`, a session-caching
  facade: the first ``decide()`` per ``(spec, training grid, model path)``
  trains (or loads from the fingerprinted model store), every later call
  is pure online allocation.  ``decide_batch()`` fans a list of requests
  over the batched candidate-grid path in one call.

Embed it in three lines::

    from repro.api import PlannerService, DecisionRequest

    service = PlannerService()
    result = service.decide(DecisionRequest(apps=("igemm4", "stream")))

The CLI (:mod:`repro.cli`) is a thin client of exactly this surface.
"""

from repro.api.requests import (
    POLICY_NAMES,
    DecisionRequest,
    LintRequest,
    SimulationRequest,
    StatesRequest,
    decision_requests,
)
from repro.api.results import (
    CandidateEvaluationResult,
    DecisionResult,
    LatencyStatsResult,
    LintFindingRow,
    LintResult,
    PartitionStateRow,
    SimulationResult,
    StatesResult,
)
from repro.api.service import (
    GENERAL_GRID,
    TABLE5_GRID,
    PlannerService,
    PlannerSession,
    ServiceStats,
    SessionKey,
)

__all__ = [
    "POLICY_NAMES",
    "DecisionRequest",
    "LintRequest",
    "SimulationRequest",
    "StatesRequest",
    "decision_requests",
    "CandidateEvaluationResult",
    "DecisionResult",
    "LatencyStatsResult",
    "LintFindingRow",
    "LintResult",
    "PartitionStateRow",
    "SimulationResult",
    "StatesResult",
    "PlannerService",
    "PlannerSession",
    "ServiceStats",
    "SessionKey",
    "TABLE5_GRID",
    "GENERAL_GRID",
]
