"""Typed response dataclasses — the output half of the service-layer API.

Responses are frozen value objects built from the engine's internal records
(:class:`~repro.core.decision.AllocationDecision`,
:class:`~repro.cluster.events.report.SimulationReport`, partition-state
enumerations) but carrying only plain data, so they round-trip through
``to_dict()``/``from_dict()`` and serialize to JSON unchanged.  Rendering
helpers (`describe()` on a decision, the carried canonical summary text on
a simulation) let the thin-client CLI print byte-identical output without
touching the engine.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.api.serde import build, checked_kwargs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.events.report import SimulationReport
    from repro.core.decision import AllocationDecision, CandidateEvaluation
    from repro.gpu.mig import PartitionState
    from repro.gpu.spec import GPUSpec
    from repro.lint.analyzer import LintReport
    from repro.lint.findings import Finding


@dataclass(frozen=True)
class CandidateEvaluationResult:
    """Model-predicted metrics of one candidate ``(S, P)`` combination."""

    state: str
    label: str | None
    power_cap_w: float
    predicted_rperfs: tuple[float, ...]
    throughput: float
    fairness: float
    objective: float
    feasible: bool

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "predicted_rperfs", tuple(float(v) for v in self.predicted_rperfs)
        )

    @property
    def display(self) -> str:
        """Short name for tables: the state label when one exists."""
        return self.label or self.state

    @classmethod
    def from_evaluation(
        cls, evaluation: "CandidateEvaluation"
    ) -> "CandidateEvaluationResult":
        """Convert one engine-level candidate evaluation."""
        return cls(
            state=evaluation.state.describe(),
            label=evaluation.state.label,
            power_cap_w=float(evaluation.power_cap_w),
            predicted_rperfs=tuple(evaluation.predicted_rperfs),
            throughput=float(evaluation.predicted_throughput),
            fairness=float(evaluation.predicted_fairness),
            objective=float(evaluation.objective),
            feasible=bool(evaluation.feasible),
        )

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (JSON-safe)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CandidateEvaluationResult":
        """Rebuild from :meth:`to_dict` output (unknown keys fail)."""
        return build(cls, data)


@dataclass(frozen=True)
class DecisionResult:
    """The service's answer to one :class:`~repro.api.requests.DecisionRequest`.

    ``state`` is the human-readable description of the chosen partition /
    allocation state (including its ``S1``-style label when it has one);
    ``evaluations`` lists every candidate the search examined, in search
    order, so clients can render the full comparison table or re-rank by
    their own criteria.
    """

    policy: str
    apps: tuple[str, ...]
    spec: str
    state: str
    state_label: str | None
    power_cap_w: float
    predicted_rperfs: tuple[float, ...]
    predicted_throughput: float
    predicted_fairness: float
    predicted_objective: float
    candidates_evaluated: int
    evaluations: tuple[CandidateEvaluationResult, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "apps", tuple(str(app) for app in self.apps))
        object.__setattr__(
            self, "predicted_rperfs", tuple(float(v) for v in self.predicted_rperfs)
        )
        object.__setattr__(self, "evaluations", tuple(self.evaluations))

    def describe(self) -> str:
        """One-line summary, identical to the engine decision's wording."""
        return (
            f"[{self.policy}] choose {self.state} @ "
            f"{self.power_cap_w:.0f}W (objective={self.predicted_objective:.4f}, "
            f"throughput={self.predicted_throughput:.3f}, "
            f"fairness={self.predicted_fairness:.3f})"
        )

    @classmethod
    def from_decision(
        cls,
        decision: "AllocationDecision",
        apps: Sequence[str],
        spec: str,
    ) -> "DecisionResult":
        """Convert an engine-level :class:`AllocationDecision`."""
        return cls(
            policy=decision.policy_name,
            apps=tuple(apps),
            spec=spec,
            state=decision.state.describe(),
            state_label=decision.state.label,
            power_cap_w=float(decision.power_cap_w),
            predicted_rperfs=tuple(decision.predicted_rperfs),
            predicted_throughput=float(decision.predicted_throughput),
            predicted_fairness=float(decision.predicted_fairness),
            predicted_objective=float(decision.predicted_objective),
            candidates_evaluated=int(decision.candidates_evaluated),
            evaluations=tuple(
                CandidateEvaluationResult.from_evaluation(e)
                for e in decision.evaluations
            ),
        )

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (JSON-safe; nested evaluations become dicts)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DecisionResult":
        """Rebuild from :meth:`to_dict` output (unknown keys fail)."""
        kwargs = checked_kwargs(cls, data)
        kwargs["evaluations"] = tuple(
            entry
            if isinstance(entry, CandidateEvaluationResult)
            else CandidateEvaluationResult.from_dict(entry)
            for entry in kwargs.get("evaluations", ())
        )
        return build(cls, kwargs)


@dataclass(frozen=True)
class PartitionStateRow:
    """One realizable partition state in a :class:`StatesResult`."""

    state: str
    option: str
    total_gpcs: int
    mem_slices_per_app: tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "mem_slices_per_app", tuple(int(v) for v in self.mem_slices_per_app)
        )

    @classmethod
    def from_state(cls, state: "PartitionState", spec: "GPUSpec") -> "PartitionStateRow":
        """Convert one engine-level partition state on ``spec``."""
        return cls(
            state=state.describe(),
            option=state.option.value,
            total_gpcs=state.total_gpcs,
            mem_slices_per_app=tuple(a.mem_slices for a in state.allocations(spec)),
        )

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (JSON-safe)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PartitionStateRow":
        """Rebuild from :meth:`to_dict` output (unknown keys fail)."""
        return build(cls, data)


@dataclass(frozen=True)
class StatesResult:
    """The realizable partition states of one :class:`StatesRequest`.

    ``spec`` echoes the request's spec name; ``spec_description`` is the
    hardware specification's display name (used in the CLI footer line).
    """

    spec: str
    spec_description: str
    n_apps: int
    states: tuple[PartitionStateRow, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "states", tuple(self.states))

    @property
    def n_states(self) -> int:
        """Number of realizable states."""
        return len(self.states)

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (JSON-safe; nested states become dicts)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StatesResult":
        """Rebuild from :meth:`to_dict` output (unknown keys fail)."""
        kwargs = checked_kwargs(cls, data)
        kwargs["states"] = tuple(
            entry
            if isinstance(entry, PartitionStateRow)
            else PartitionStateRow.from_dict(entry)
            for entry in kwargs.get("states", ())
        )
        return build(cls, kwargs)


@dataclass(frozen=True)
class LatencyStatsResult:
    """Mean and tail percentiles of one latency population (seconds)."""

    mean_s: float
    p50_s: float
    p95_s: float
    p99_s: float
    max_s: float

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (JSON-safe)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LatencyStatsResult":
        """Rebuild from :meth:`to_dict` output (unknown keys fail)."""
        return build(cls, data)


@dataclass(frozen=True)
class SimulationResult:
    """Online metrics of one :class:`~repro.api.requests.SimulationRequest`.

    Carries the structured metrics of the event-driven replay plus the
    canonical human-readable renderings (``trace_summary`` and
    ``report_summary``), which the thin-client CLI prints verbatim — the
    service renders once, every client displays identically.  Node ids in
    ``final_power_allocation_w`` are strings so the document survives JSON
    round-trips unchanged.
    """

    label: str
    spec: str
    n_jobs: int
    n_nodes: int
    makespan_s: float
    sustained_throughput_jobs_per_s: float
    wait: LatencyStatsResult
    turnaround: LatencyStatsResult
    utilization: float
    energy_wh: float
    co_scheduled_jobs: int
    exclusive_jobs: int
    profile_runs: int
    events_processed: int
    repartitions: int
    repartition_time_s: float
    mig_instance_changes: int
    power_rebalances: int
    final_power_allocation_w: dict[str, float]
    peak_queue_length: int
    trace_summary: str
    report_summary: str

    @classmethod
    def from_report(
        cls, report: "SimulationReport", trace_summary: str, spec: str
    ) -> "SimulationResult":
        """Convert an engine-level :class:`SimulationReport`."""
        return cls(
            label=report.label,
            spec=spec,
            n_jobs=report.n_jobs,
            n_nodes=report.n_nodes,
            makespan_s=float(report.makespan_s),
            sustained_throughput_jobs_per_s=float(
                report.sustained_throughput_jobs_per_s
            ),
            wait=LatencyStatsResult(
                mean_s=report.wait.mean_s,
                p50_s=report.wait.p50_s,
                p95_s=report.wait.p95_s,
                p99_s=report.wait.p99_s,
                max_s=report.wait.max_s,
            ),
            turnaround=LatencyStatsResult(
                mean_s=report.turnaround.mean_s,
                p50_s=report.turnaround.p50_s,
                p95_s=report.turnaround.p95_s,
                p99_s=report.turnaround.p99_s,
                max_s=report.turnaround.max_s,
            ),
            utilization=float(report.utilization),
            energy_wh=float(report.energy_wh),
            co_scheduled_jobs=report.co_scheduled_jobs,
            exclusive_jobs=report.exclusive_jobs,
            profile_runs=report.profile_runs,
            events_processed=report.events_processed,
            repartitions=report.repartitions,
            repartition_time_s=float(report.repartition_time_s),
            mig_instance_changes=report.mig_instance_changes,
            power_rebalances=report.power_rebalances,
            final_power_allocation_w={
                str(node_id): float(cap)
                for node_id, cap in sorted(report.final_power_allocation_w.items())
            },
            peak_queue_length=report.peak_queue_length,
            trace_summary=trace_summary,
            report_summary=report.summary(),
        )

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (JSON-safe; nested latency stats become dicts)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SimulationResult":
        """Rebuild from :meth:`to_dict` output (unknown keys fail)."""
        kwargs = checked_kwargs(cls, data)
        for field_name in ("wait", "turnaround"):
            value = kwargs.get(field_name)
            if value is not None and not isinstance(value, LatencyStatsResult):
                kwargs[field_name] = LatencyStatsResult.from_dict(value)
        allocation = kwargs.get("final_power_allocation_w")
        if allocation is not None:
            kwargs["final_power_allocation_w"] = {
                str(node_id): float(cap) for node_id, cap in allocation.items()
            }
        return build(cls, kwargs)


@dataclass(frozen=True)
class LintFindingRow:
    """One invariant violation in a :class:`LintResult`."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: str
    message: str

    @classmethod
    def from_finding(cls, finding: "Finding") -> "LintFindingRow":
        """Convert one analyzer-level :class:`~repro.lint.findings.Finding`."""
        return cls(
            path=finding.path,
            line=finding.line,
            col=finding.col,
            rule_id=finding.rule_id,
            severity=finding.severity,
            message=finding.message,
        )

    def format(self) -> str:
        """The canonical one-line rendering (``path:line:col: RLxxx ...``)."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity}] {self.message}"
        )

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (JSON-safe)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LintFindingRow":
        """Rebuild from :meth:`to_dict` output (unknown keys fail)."""
        return build(cls, data)


@dataclass(frozen=True)
class LintResult:
    """The analyzer's answer to one :class:`~repro.api.requests.LintRequest`.

    ``clean`` is the exit-status verdict the CLI maps to its exit code:
    no error findings, and under ``strict`` no findings at all.  Findings
    arrive sorted (path, line, column, rule id), so two runs over the same
    tree render byte-identically.
    """

    findings: tuple[LintFindingRow, ...]
    files_scanned: int
    suppressed: int
    strict: bool
    clean: bool

    def __post_init__(self) -> None:
        object.__setattr__(self, "findings", tuple(self.findings))

    @property
    def n_errors(self) -> int:
        """Number of error-severity findings."""
        return sum(1 for f in self.findings if f.severity == "error")

    @property
    def n_warnings(self) -> int:
        """Number of warning-severity findings."""
        return sum(1 for f in self.findings if f.severity == "warning")

    @classmethod
    def from_report(cls, report: "LintReport", strict: bool) -> "LintResult":
        """Convert an analyzer-level :class:`~repro.lint.analyzer.LintReport`."""
        return cls(
            findings=tuple(
                LintFindingRow.from_finding(finding) for finding in report.findings
            ),
            files_scanned=report.files_scanned,
            suppressed=report.suppressed,
            strict=strict,
            clean=report.clean(strict),
        )

    def describe(self) -> str:
        """One line per finding plus the verdict summary line."""
        lines = [finding.format() for finding in self.findings]
        verdict = "clean" if self.clean else "FAILED"
        mode = " (strict)" if self.strict else ""
        lines.append(
            f"{verdict}{mode}: {len(self.findings)} finding(s) "
            f"({self.n_errors} error(s), {self.n_warnings} warning(s)), "
            f"{self.suppressed} suppressed, {self.files_scanned} file(s) scanned"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (JSON-safe; nested findings become dicts)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LintResult":
        """Rebuild from :meth:`to_dict` output (unknown keys fail)."""
        kwargs = checked_kwargs(cls, data)
        kwargs["findings"] = tuple(
            entry
            if isinstance(entry, LintFindingRow)
            else LintFindingRow.from_dict(entry)
            for entry in kwargs.get("findings", ())
        )
        return build(cls, kwargs)
