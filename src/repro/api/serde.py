"""Dict round-tripping shared by the API request/response dataclasses.

Every public request and response type serializes with ``to_dict()`` and
rebuilds with ``from_dict()``; the helpers here keep that contract uniform:
``to_dict`` is :func:`dataclasses.asdict` (nested dataclasses become nested
dicts, tuples survive JSON as lists), and ``from_dict`` rejects unknown
keys loudly instead of silently dropping a misspelled field.
"""

from __future__ import annotations

from dataclasses import fields, is_dataclass
from typing import Any, Mapping, Type, TypeVar

from repro.errors import ConfigurationError

T = TypeVar("T")


def checked_kwargs(cls: Type[T], data: Mapping[str, Any]) -> dict[str, Any]:
    """``data`` as constructor kwargs for dataclass ``cls``.

    Raises :class:`~repro.errors.ConfigurationError` when ``data`` is not a
    mapping or carries keys ``cls`` does not declare, so a typo in a JSON
    document fails at the boundary instead of deserializing to defaults.
    """
    assert is_dataclass(cls)
    if not isinstance(data, Mapping):
        raise ConfigurationError(
            f"{cls.__name__}.from_dict needs a mapping, got {type(data).__name__}"
        )
    known = {field.name for field in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ConfigurationError(
            f"{cls.__name__}: unknown field(s) {unknown}; known fields: {sorted(known)}"
        )
    return dict(data)


def build(cls: Type[T], data: Mapping[str, Any]) -> T:
    """Construct dataclass ``cls`` from ``data`` with unknown-key checking.

    Missing required fields surface as :class:`ConfigurationError` (the
    underlying ``TypeError`` names them).
    """
    kwargs = checked_kwargs(cls, data)
    try:
        return cls(**kwargs)  # type: ignore[return-value]
    except TypeError as exc:
        raise ConfigurationError(f"{cls.__name__}: {exc}") from None
