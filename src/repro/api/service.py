"""The :class:`PlannerService` facade: one public surface over the engine.

The paper's split is offline-train / online-allocate; the service makes
that split *operational*: it owns a session cache keyed by
``(spec, training grid, model path)`` so the expensive offline stage runs
at most once per distinct configuration per process, while every
``decide()`` / ``simulate()`` call after the first is pure online work.
With a ``model_dir`` the trained coefficients also persist across
processes through :mod:`repro.core.modelstore` (fingerprinted, so a stale
cache is rejected instead of silently mis-deciding).

This is the layer the CLI, the examples, and any embedding caller talk
to; the engine classes (:class:`~repro.core.workflow.PaperWorkflow`,
:class:`~repro.core.workflow.OnlineAllocator`, ...) stay available for
research code that needs custom plans, but nothing above this module
needs to rebuild trainer/suite/allocator plumbing per call any more.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

from repro.api.requests import (
    DecisionRequest,
    LintRequest,
    SimulationRequest,
    StatesRequest,
)
from repro.api.results import (
    DecisionResult,
    LintResult,
    PartitionStateRow,
    SimulationResult,
    StatesResult,
)
from repro.config import DEFAULT_POWER_CAPS
from repro.core.decision import AllocationDecision
from repro.core.modelstore import ModelFingerprint, cache_path_for
from repro.core.workflow import PaperWorkflow, TrainingPlan, power_caps_for_spec
from repro.gpu.mig import enumerate_partition_states
from repro.gpu.spec import spec_by_name
from repro.sim.engine import PerformanceSimulator
from repro.traces.trace import Trace
from repro.workloads.mixes import mix_by_name

#: Marks sessions trained on the paper's Table 5 pair grid (A100 pairs).
TABLE5_GRID = "table5"
#: Marks sessions trained on the spec-derived N-way grid.
GENERAL_GRID = "general"


@dataclass(frozen=True)
class SessionKey:
    """What distinguishes one trained session from another.

    Two requests share a session — and therefore a trained model and an
    online allocator — exactly when they agree on the hardware spec, on
    which training grid covers them (the paper's Table 5 pair grid vs the
    spec-derived N-way grid), and on the model-cache path.
    """

    spec: str
    grid: str
    model_path: str | None = None


@dataclass
# repro: allow[RL005] a session counts the decisions it served in place;
# it is engine state behind the facade, not a serialized value object
class PlannerSession:
    """One trained workflow the service keeps hot.

    ``workflow`` is fully trained by the time a session is handed out;
    ``power_caps`` is the candidate cap grid its decisions draw from
    (``power_caps[-2]`` is the 92 %-of-TDP default cap the CLI documents).
    """

    key: SessionKey
    workflow: PaperWorkflow
    power_caps: tuple[float, ...]
    decisions_served: int = 0

    @property
    def default_power_cap_w(self) -> float:
        """The Problem 1 cap used when a request does not pin one."""
        return self.power_caps[-2]


@dataclass
# repro: allow[RL005] observability counters mutate in place by design;
# they are never serialized as an API payload (as_dict() is a snapshot)
class ServiceStats:
    """Observability counters of one :class:`PlannerService` instance."""

    sessions_built: int = 0
    session_reuses: int = 0
    trainings_run: int = 0
    models_loaded: int = 0
    decisions_served: int = 0
    batches_served: int = 0
    simulations_served: int = 0
    lints_served: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict snapshot (handy for logs and step summaries)."""
        return {
            "sessions_built": self.sessions_built,
            "session_reuses": self.session_reuses,
            "trainings_run": self.trainings_run,
            "models_loaded": self.models_loaded,
            "decisions_served": self.decisions_served,
            "batches_served": self.batches_served,
            "simulations_served": self.simulations_served,
            "lints_served": self.lints_served,
        }


class PlannerService:
    """Session-caching facade over offline training and online allocation.

    Parameters
    ----------
    model_dir:
        Optional directory for cross-process model persistence: sessions
        without an explicit per-request ``model_path`` store their trained
        coefficients under this directory at a fingerprint-derived path
        (see :func:`repro.core.modelstore.cache_path_for`), so a second
        process — or a second :class:`PlannerService` — configured the
        same way loads instead of retraining.
    """

    def __init__(self, model_dir: str | Path | None = None) -> None:
        self._model_dir = (
            Path(model_dir).expanduser() if model_dir is not None else None
        )
        self._sessions: dict[SessionKey, PlannerSession] = {}
        self.stats = ServiceStats()

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------
    @staticmethod
    def session_key(
        spec: str, group_size: int, model_path: str | None = None
    ) -> SessionKey:
        """The session identity serving ``group_size`` groups on ``spec``.

        A100 pairs ride the paper's Table 5 grid; every other combination
        (N-way groups, non-A100 specs) needs the spec-derived grid, whose
        coefficients cover all group sizes at once — which is why the key
        folds the group size down to a grid choice instead of keeping it.
        """
        spec_by_name(spec)  # validate the name before it becomes a key
        grid = TABLE5_GRID if (spec == "a100" and group_size == 2) else GENERAL_GRID
        return SessionKey(
            spec=spec, grid=grid, model_path=str(model_path) if model_path else None
        )

    def session_for(
        self, spec: str, group_size: int, model_path: str | None = None
    ) -> PlannerSession:
        """The (cached) trained session serving ``group_size`` groups on ``spec``.

        The first call per key pays offline training (or a model-store
        load); every later call returns the same hot session, so repeated
        decisions never retrain or rebuild the allocator.
        """
        key = self.session_key(spec, group_size, model_path)
        session = self._sessions.get(key)
        if session is not None:
            self.stats.session_reuses += 1
            return session
        session = self._build_session(key)
        self._sessions[key] = session
        return session

    def _build_session(self, key: SessionKey) -> PlannerSession:
        spec = spec_by_name(key.spec)
        if key.grid == GENERAL_GRID:
            # N-way groups and non-A100 specs need coefficients for the
            # whole instance-size grid, not just the S1-S4 keys of Table 5.
            caps = power_caps_for_spec(spec)
            workflow = PaperWorkflow(
                simulator=PerformanceSimulator(spec),
                plan=TrainingPlan.for_spec(spec, power_caps=caps),
                power_caps=caps,
            )
        else:
            caps = tuple(DEFAULT_POWER_CAPS)
            workflow = PaperWorkflow()
        path = self._model_path_for(key, workflow, caps)
        if path is None:
            workflow.train()
            self.stats.trainings_run += 1
        else:
            loaded_from_cache = path.exists()
            workflow.train_or_load(str(path))
            if loaded_from_cache:
                self.stats.models_loaded += 1
            else:
                self.stats.trainings_run += 1
        self.stats.sessions_built += 1
        return PlannerSession(key=key, workflow=workflow, power_caps=caps)

    def _model_path_for(
        self,
        key: SessionKey,
        workflow: PaperWorkflow,
        power_caps: tuple[float, ...],
    ) -> Path | None:
        if key.model_path is not None:
            return Path(key.model_path)
        if self._model_dir is None:
            return None
        fingerprint = ModelFingerprint.for_workflow(
            workflow.simulator.spec, power_caps, plan=workflow.offline.plan
        )
        return cache_path_for(self._model_dir, fingerprint)

    @property
    def sessions(self) -> Mapping[SessionKey, PlannerSession]:
        """Read-only view of the live sessions (for tests and dashboards)."""
        return dict(self._sessions)

    def drop_sessions(self) -> None:
        """Forget every cached session (persisted model files survive)."""
        self._sessions.clear()

    # ------------------------------------------------------------------
    # Decide
    # ------------------------------------------------------------------
    def decide(self, request: DecisionRequest) -> DecisionResult:
        """Solve one allocation request, reusing the session cache."""
        result, _ = self._decide(request)
        return result

    def _decide(
        self, request: DecisionRequest
    ) -> tuple[DecisionResult, PlannerSession]:
        session = self.session_for(request.spec, request.group_size, request.model_path)
        decision = self._solve(session, request)
        self.stats.decisions_served += 1
        result = DecisionResult.from_decision(
            decision, apps=request.apps, spec=request.spec
        )
        return result, session

    def decide_batch(
        self, requests: Iterable[DecisionRequest]
    ) -> tuple[DecisionResult, ...]:
        """Solve many allocation requests in one call.

        Sessions are shared across the batch (each distinct
        ``(spec, grid, model path)`` trains at most once), every unique
        request is evaluated through the allocator's batched NumPy
        candidate-grid path, and exact duplicates within the batch are
        answered once and fanned back out in order (they still count as
        served decisions, on the service and on their session).
        """
        memo: dict[DecisionRequest, tuple[DecisionResult, PlannerSession]] = {}
        results = []
        for request in requests:
            cached = memo.get(request)
            if cached is None:
                cached = self._decide(request)
                memo[request] = cached
            else:
                _, session = cached
                session.decisions_served += 1
                self.stats.decisions_served += 1
            results.append(cached[0])
        self.stats.batches_served += 1
        return tuple(results)

    def _solve(
        self, session: PlannerSession, request: DecisionRequest
    ) -> AllocationDecision:
        session.decisions_served += 1
        if request.policy == "problem1":
            power_cap = (
                request.power_cap_w
                if request.power_cap_w is not None
                else session.default_power_cap_w
            )
            return session.workflow.decide_problem1(
                list(request.apps), power_cap, request.alpha
            )
        return session.workflow.decide_problem2(list(request.apps), request.alpha)

    # ------------------------------------------------------------------
    # Simulate
    # ------------------------------------------------------------------
    def simulate(self, request: SimulationRequest) -> SimulationResult:
        """Replay a (recorded or synthetic) trace through the cluster simulator."""
        from repro.traces import bursty_trace, load_trace, poisson_trace, save_trace

        if request.trace_path is not None:
            trace = load_trace(request.trace_path)
        elif request.burst_size is not None:
            trace = bursty_trace(
                burst_rate_per_s=request.arrival_rate_per_s / request.burst_size,
                mean_burst_size=request.burst_size,
                duration_s=request.duration_s,
                n_jobs=request.n_jobs,
                seed=request.seed,
                mix=mix_by_name(request.mix),
            )
        else:
            trace = poisson_trace(
                arrival_rate_per_s=request.arrival_rate_per_s,
                duration_s=request.duration_s,
                n_jobs=request.n_jobs,
                seed=request.seed,
                mix=mix_by_name(request.mix),
            )
        if request.save_trace_path is not None:
            save_trace(trace, request.save_trace_path)
        return self.simulate_trace(trace, request)

    def simulate_trace(
        self, trace: Trace, request: SimulationRequest
    ) -> SimulationResult:
        """Replay an in-memory :class:`Trace` with ``request``'s scheduling knobs.

        The trace-source fields of ``request`` (``trace_path``, arrival
        rate, mix, ...) are ignored; this is the embedding-friendly variant
        for traces built programmatically.
        """
        from repro.cluster.events import ClusterSimulator, SimulationConfig
        from repro.cluster.scheduler import SchedulerConfig

        session = self.session_for(request.spec, request.group_size, request.model_path)
        power_cap = (
            request.power_cap_w
            if request.power_cap_w is not None
            else session.default_power_cap_w
        )
        scheduler_config = SchedulerConfig(
            window_size=request.window_size,
            group_size=request.group_size,
            policy_name=request.policy,
            power_cap_w=power_cap,
            alpha=request.alpha,
        )
        simulator = ClusterSimulator.from_allocator(
            session.workflow.online,
            session.workflow.simulator,
            n_nodes=request.n_nodes,
            scheduler_config=scheduler_config,
            config=SimulationConfig(
                repartition_latency_s=request.repartition_latency_s,
                power_budget_w=request.power_budget_w,
            ),
        )
        report = simulator.run(trace, suite=session.workflow.suite)
        self.stats.simulations_served += 1
        return SimulationResult.from_report(
            report, trace_summary=trace.summary(), spec=request.spec
        )

    # ------------------------------------------------------------------
    # States
    # ------------------------------------------------------------------
    def states(self, request: StatesRequest) -> StatesResult:
        """Enumerate the realizable partition states (no training involved)."""
        spec = spec_by_name(request.spec)
        states = tuple(enumerate_partition_states(request.n_apps, spec))
        return StatesResult(
            spec=request.spec,
            spec_description=spec.name,
            n_apps=request.n_apps,
            states=tuple(PartitionStateRow.from_state(state, spec) for state in states),
        )

    # ------------------------------------------------------------------
    # Lint
    # ------------------------------------------------------------------
    def lint(self, request: LintRequest) -> LintResult:
        """Run the invariant analyzer (no training or session involved)."""
        from repro.lint.analyzer import analyze_paths

        report = analyze_paths(request.paths, select=request.select)
        self.stats.lints_served += 1
        return LintResult.from_report(report, strict=request.strict)
