"""Typed request dataclasses — the input half of the service-layer API.

A request is a frozen, hashable value object that fully describes one call
into the :class:`~repro.api.service.PlannerService`: which applications,
which optimization problem, which hardware spec, and (for simulations)
which trace.  Requests validate the enumerable choices (policy, spec, job
mix) at construction so an embedding caller fails at the boundary with a
:class:`~repro.errors.ConfigurationError` instead of deep inside training,
and they round-trip through ``to_dict()``/``from_dict()`` so the same
payload can travel over JSON (the CLI's ``--json`` mode emits the matching
response types).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Mapping, Sequence

from repro.api.serde import build, checked_kwargs
from repro.errors import ConfigurationError
from repro.gpu.spec import GPU_SPECS
from repro.workloads.mixes import JOB_MIXES

#: The optimization problems the service can solve.
POLICY_NAMES: tuple[str, ...] = ("problem1", "problem2")


def _check_policy(policy: str) -> str:
    if policy not in POLICY_NAMES:
        raise ConfigurationError(
            f"unknown policy {policy!r}; valid policies: {POLICY_NAMES}"
        )
    return policy


def _check_spec(spec: str) -> str:
    if spec not in GPU_SPECS:
        raise ConfigurationError(
            f"unknown hardware spec {spec!r}; valid specs: {tuple(sorted(GPU_SPECS))}"
        )
    return spec


@dataclass(frozen=True)
class DecisionRequest:
    """One allocation question: the best ``(S, P)`` for a co-location group.

    Attributes
    ----------
    apps:
        Application names in allocation order (two reproduce the paper's
        pairs; more enable N-way co-location).
    policy:
        ``"problem1"`` (throughput at a fixed cap) or ``"problem2"``
        (energy efficiency, cap chosen by the allocator).
    power_cap_w:
        The fixed cap for Problem 1; ``None`` selects the spec grid's 92 %
        point (230 W on the A100), matching the CLI default.
    alpha:
        Fairness threshold for either policy.
    spec:
        Hardware specification name (``"a100"``, ``"h100"``, ``"a30"``,
        or the independent-axes ``"mi300x"``).
    model_path:
        Optional model-cache file: load trained coefficients from it if it
        exists, otherwise train once and save them there.
    """

    apps: tuple[str, ...]
    policy: str = "problem1"
    power_cap_w: float | None = None
    alpha: float = 0.2
    spec: str = "a100"
    model_path: str | None = None

    def __post_init__(self) -> None:
        if isinstance(self.apps, str):
            raise ConfigurationError(
                f"apps must be a sequence of application names, not the bare "
                f"string {self.apps!r} (wrap it: apps=({self.apps!r},))"
            )
        object.__setattr__(self, "apps", tuple(str(app) for app in self.apps))
        if not self.apps:
            raise ConfigurationError("a decision request needs at least one application")
        _check_policy(self.policy)
        _check_spec(self.spec)
        object.__setattr__(self, "alpha", float(self.alpha))
        if self.power_cap_w is not None:
            object.__setattr__(self, "power_cap_w", float(self.power_cap_w))

    @property
    def group_size(self) -> int:
        """Number of co-located applications the request describes."""
        return len(self.apps)

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (JSON-safe; tuples serialize as lists)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DecisionRequest":
        """Rebuild a request from :meth:`to_dict` output (unknown keys fail)."""
        return build(cls, data)


@dataclass(frozen=True)
class SimulationRequest:
    """One trace replay through the event-driven cluster simulator.

    ``trace_path`` replays a recorded trace; otherwise a synthetic trace is
    generated (Poisson by default, bursty when ``burst_size`` is set) from
    the named job ``mix``.  The scheduling knobs mirror
    :class:`~repro.cluster.scheduler.SchedulerConfig` and
    :class:`~repro.cluster.events.SimulationConfig`; deeper validation
    (positive rates, budget floors, ...) happens in those layers.
    """

    trace_path: str | None = None
    arrival_rate_per_s: float = 2.0
    duration_s: float = 600.0
    n_jobs: int | None = None
    burst_size: float | None = None
    mix: str = "steady"
    seed: int = 2022
    n_nodes: int = 2
    policy: str = "problem2"
    power_cap_w: float | None = None
    alpha: float = 0.2
    window_size: int = 4
    group_size: int = 2
    repartition_latency_s: float = 0.0
    power_budget_w: float | None = None
    spec: str = "a100"
    model_path: str | None = None
    save_trace_path: str | None = None

    def __post_init__(self) -> None:
        _check_policy(self.policy)
        _check_spec(self.spec)
        if self.mix not in JOB_MIXES:
            raise ConfigurationError(
                f"unknown job mix {self.mix!r}; valid mixes: {tuple(sorted(JOB_MIXES))}"
            )
        if self.burst_size is not None and self.burst_size <= 0:
            raise ConfigurationError(
                f"burst_size must be positive, got {self.burst_size}"
            )
        if self.power_cap_w is not None:
            object.__setattr__(self, "power_cap_w", float(self.power_cap_w))

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (JSON-safe)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SimulationRequest":
        """Rebuild a request from :meth:`to_dict` output (unknown keys fail)."""
        return build(cls, data)


@dataclass(frozen=True)
class StatesRequest:
    """Enumerate the realizable N-application partition states of a spec."""

    n_apps: int
    spec: str = "a100"

    def __post_init__(self) -> None:
        if self.n_apps < 1:
            raise ConfigurationError(f"n_apps must be >= 1, got {self.n_apps}")
        _check_spec(self.spec)

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (JSON-safe)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StatesRequest":
        """Rebuild a request from :meth:`to_dict` output (unknown keys fail)."""
        return build(cls, data)


@dataclass(frozen=True)
class LintRequest:
    """One invariant-analysis run over files and directories.

    Attributes
    ----------
    paths:
        Files and directories to analyze (directories are walked
        recursively, skipping fixture corpora and tool caches).
    strict:
        Fail on warnings too, not only on errors — the mode CI runs.
    select:
        Optional subset of rule ids to run (``("RL001", "RL004")``);
        ``None`` runs the full registry.
    """

    paths: tuple[str, ...]
    strict: bool = False
    select: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if isinstance(self.paths, str):
            raise ConfigurationError(
                f"paths must be a sequence, not the bare string "
                f"{self.paths!r} (wrap it: paths=({self.paths!r},))"
            )
        object.__setattr__(self, "paths", tuple(str(path) for path in self.paths))
        if not self.paths:
            raise ConfigurationError("a lint request needs at least one path")
        object.__setattr__(self, "strict", bool(self.strict))
        if self.select is not None:
            select = tuple(str(rule_id) for rule_id in self.select)
            # Validate the enumerable choice at the boundary, like policy
            # and spec names elsewhere in this module.
            from repro.lint.rules import RULES

            unknown = sorted(set(select) - set(RULES))
            if unknown:
                raise ConfigurationError(
                    f"unknown rule id(s) {unknown}; registered rules: "
                    f"{sorted(RULES)}"
                )
            object.__setattr__(self, "select", select)

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (JSON-safe; tuples serialize as lists)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LintRequest":
        """Rebuild a request from :meth:`to_dict` output (unknown keys fail)."""
        kwargs = checked_kwargs(cls, data)
        if kwargs.get("select") is not None:
            kwargs["select"] = tuple(kwargs["select"])
        return build(cls, kwargs)


def decision_requests(
    groups: Sequence[Sequence[str]], **common: Any
) -> tuple[DecisionRequest, ...]:
    """Convenience fan-out: one :class:`DecisionRequest` per group.

    ``common`` keyword arguments (policy, spec, alpha, ...) apply to every
    request — the typical shape of a :meth:`PlannerService.decide_batch`
    payload.
    """
    return tuple(DecisionRequest(apps=tuple(group), **common) for group in groups)
