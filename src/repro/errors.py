"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by this library derive from :class:`ReproError` so
that callers can catch library-specific failures with a single ``except``
clause while still distinguishing configuration problems from runtime /
simulation problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class SpecificationError(ConfigurationError):
    """A hardware specification (GPU spec, partition state, ...) is invalid."""


class PartitioningError(ReproError):
    """A MIG partitioning request cannot be satisfied.

    Raised, for example, when the requested number of GPCs is not a valid
    Compute Instance size, when the GPU does not have enough free GPCs or
    memory slices, or when MIG mode is not enabled.
    """


class PowerCapError(ReproError):
    """A power-cap request is outside the supported range of the device."""


class WorkloadError(ReproError):
    """A workload/kernel definition or lookup failed."""


class UnknownKernelError(WorkloadError, KeyError):
    """A kernel name was not found in the benchmark suite registry."""


class ProfileError(ReproError):
    """A profile record is missing, malformed, or inconsistent."""


class MissingProfileError(ProfileError, KeyError):
    """No profile has been recorded for the requested application.

    The paper's workflow requires a profile run before an application can be
    considered for co-scheduling; this error mirrors that requirement.
    """


class ModelError(ReproError):
    """The performance model cannot be trained or evaluated as requested."""


class NotFittedError(ModelError):
    """The model was asked to predict before the coefficients were fitted."""


class ModelCacheError(ModelError):
    """A persisted model cache cannot serve this request.

    Raised when a cached model file was written for different hardware, a
    different calibration grid, or an older model-key schema.  The remedy is
    always the same: delete (or re-point) the cache and retrain — the CLI
    retrains and rewrites the file automatically when it is absent.
    """


class OptimizationError(ReproError):
    """The allocator could not produce a decision for the given policy."""


class InfeasibleProblemError(OptimizationError):
    """No candidate configuration satisfies the policy's constraints.

    For instance, no ``(S, P)`` combination meets the fairness threshold
    ``alpha`` for the given application pair.
    """


class SimulationError(ReproError):
    """The execution simulator was driven into an invalid state."""


class AnalysisError(ReproError):
    """An analysis helper was asked to summarize an empty or invalid input.

    Raised, for example, when an error summary is requested over an empty
    power-cap list or an empty evaluation grid — cases that would otherwise
    surface as a bare ``ZeroDivisionError`` deep inside the averaging.
    """


class TraceError(ReproError):
    """A job trace is malformed, unsorted, or cannot be (de)serialized."""


class SchedulingError(ReproError):
    """The cluster-level job manager could not schedule a job."""


class LintError(ReproError):
    """The invariant analyzer was given bad input.

    Raised for a missing lint path, an unknown rule id in ``--select``, or
    a target file that does not parse — usage problems, not findings.  A
    rule *violation* is reported as a
    :class:`~repro.lint.findings.Finding`, never as an exception.
    """
