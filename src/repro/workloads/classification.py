"""Benchmark classification (Table 7 of the paper).

The paper classifies each benchmark into TI / CI / MI / US with a simple,
measurement-driven rule (Section 5.1.2):

1. If the performance degradation at 150 W with **1 GPC using the private
   option** is less than 10 % (i.e. relative performance > 0.9), the
   benchmark is **US** (un-scalable).
2. Otherwise, compute the ratio ``F1 / F2`` of the profiled compute
   throughput to memory throughput.  If it is greater than 0.80 the
   benchmark is compute dominated: **TI** if it uses the Tensor Cores,
   **CI** otherwise.
3. Otherwise it is **MI** (memory intensive).

Two entry points are provided: :func:`classify_from_measurements` is a pure
function over already-collected measurements (useful for testing the rule in
isolation) and :func:`classify_kernel` drives the simulator + profiler to
obtain those measurements, mirroring the paper's methodology end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.workloads.kernel import KernelCharacteristics, WorkloadClass

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.counters import CounterVector
    from repro.sim.engine import PerformanceSimulator


#: Degradation threshold of the US rule (10 % → relative performance 0.9).
US_RELATIVE_PERFORMANCE_THRESHOLD = 0.90

#: Compute/memory throughput ratio separating compute- from memory-dominated.
COMPUTE_MEMORY_RATIO_THRESHOLD = 0.80

#: Minimum summed Tensor-pipe utilization (in percent) to call a kernel a
#: Tensor-Core user.
TENSOR_UTILIZATION_THRESHOLD_PCT = 1.0

#: Power cap and partition used by the US test in the paper's rule.
US_TEST_POWER_CAP_W = 150.0
US_TEST_GPCS = 1


#: Table 7 — the classification published in the paper, used as the expected
#: outcome in tests and reports.
EXPECTED_CLASSIFICATION: Mapping[str, WorkloadClass] = {
    # TI
    "tdgemm": WorkloadClass.TI,
    "tf32gemm": WorkloadClass.TI,
    "hgemm": WorkloadClass.TI,
    "fp16gemm": WorkloadClass.TI,
    "bf16gemm": WorkloadClass.TI,
    "igemm4": WorkloadClass.TI,
    "igemm8": WorkloadClass.TI,
    # CI
    "hotspot": WorkloadClass.CI,
    "lavaMD": WorkloadClass.CI,
    "sgemm": WorkloadClass.CI,
    "dgemm": WorkloadClass.CI,
    "srad": WorkloadClass.CI,
    "heartwell": WorkloadClass.CI,
    # MI
    "randomaccess": WorkloadClass.MI,
    "stream": WorkloadClass.MI,
    "gaussian": WorkloadClass.MI,
    "leukocyte": WorkloadClass.MI,
    "lud": WorkloadClass.MI,
    # US
    "backprop": WorkloadClass.US,
    "bfs": WorkloadClass.US,
    "dwt2d": WorkloadClass.US,
    "kmeans": WorkloadClass.US,
    "needle": WorkloadClass.US,
    "pathfinder": WorkloadClass.US,
}


@dataclass(frozen=True)
class ClassificationReport:
    """Outcome of classifying one benchmark, with the evidence used."""

    name: str
    workload_class: WorkloadClass
    relative_perf_us_test: float
    compute_memory_ratio: float
    tensor_utilization_pct: float

    @property
    def matches_paper(self) -> bool:
        """Whether the outcome matches Table 7 (if the benchmark appears there)."""
        expected = EXPECTED_CLASSIFICATION.get(self.name)
        return expected is None or expected is self.workload_class


def classify_from_measurements(
    name: str,
    relative_perf_us_test: float,
    counters: "CounterVector",
) -> ClassificationReport:
    """Apply the paper's classification rule to already-collected measurements.

    Parameters
    ----------
    name:
        Benchmark name (only recorded in the report).
    relative_perf_us_test:
        Relative performance measured at 150 W on 1 GPC with the private
        option, normalized to the exclusive full-GPU run.
    counters:
        Profiled counter vector (Table 3) from the solo full-GPU run.
    """
    tensor_pct = counters.tensor_mixed + counters.tensor_double + counters.tensor_int
    memory_pct = max(counters.memory_throughput, 1e-9)
    ratio = counters.compute_throughput / memory_pct

    if relative_perf_us_test > US_RELATIVE_PERFORMANCE_THRESHOLD:
        workload_class = WorkloadClass.US
    elif ratio > COMPUTE_MEMORY_RATIO_THRESHOLD:
        if tensor_pct > TENSOR_UTILIZATION_THRESHOLD_PCT:
            workload_class = WorkloadClass.TI
        else:
            workload_class = WorkloadClass.CI
    else:
        workload_class = WorkloadClass.MI

    return ClassificationReport(
        name=name,
        workload_class=workload_class,
        relative_perf_us_test=relative_perf_us_test,
        compute_memory_ratio=ratio,
        tensor_utilization_pct=tensor_pct,
    )


def classify_kernel(
    kernel: KernelCharacteristics,
    simulator: "PerformanceSimulator | None" = None,
) -> ClassificationReport:
    """Classify a kernel by running the paper's measurement procedure.

    A profile run (solo, full GPU, no cap) provides the counters; a solo run
    on 1 GPC with the private option at 150 W provides the degradation used
    by the US rule.
    """
    # Imported lazily to keep the workloads package importable without the
    # simulator (and to avoid a circular import at module load time).
    from repro.gpu.mig import MemoryOption, solo_state
    from repro.sim.engine import PerformanceSimulator

    sim = simulator if simulator is not None else PerformanceSimulator()
    counters = sim.profile(kernel)
    us_run = sim.solo_run(
        kernel,
        solo_state(US_TEST_GPCS, MemoryOption.PRIVATE),
        power_cap_w=US_TEST_POWER_CAP_W,
    )
    return classify_from_measurements(kernel.name, us_run.relative_performance, counters)


def classify_suite(
    kernels: Mapping[str, KernelCharacteristics],
    simulator: "PerformanceSimulator | None" = None,
) -> dict[str, ClassificationReport]:
    """Classify every kernel in a mapping, returning per-benchmark reports."""
    return {name: classify_kernel(kernel, simulator) for name, kernel in kernels.items()}
