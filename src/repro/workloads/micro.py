"""Micro-benchmarks: ``stream`` and ``randomaccess``.

The paper complements Rodinia and CUTLASS with two classic memory
micro-benchmarks:

* ``stream`` — the CUDA STREAM triad: pure sequential bandwidth, essentially
  no arithmetic, no cache reuse.  It is the canonical *memory-intensive*
  workload, and the one whose performance depends most strongly on the
  private-vs-shared LLC/HBM option (Figure 4).
* ``randomaccess`` — GUPS-style random updates: bandwidth- and latency-bound
  with almost no cache hits.

Both are modelled with a small compute component (address generation) so
that a one-GPC allocation cannot quite saturate the chip bandwidth — which
reproduces the dip the paper observes for ``stream`` with the shared option
at very small partitions.
"""

from __future__ import annotations

from repro.gpu.spec import Pipe
from repro.workloads.kernel import KernelCharacteristics


def micro_kernels() -> dict[str, KernelCharacteristics]:
    """The ``stream`` and ``randomaccess`` kernel models."""
    stream = KernelCharacteristics(
        name="stream",
        compute_time_full_s=0.18,
        memory_time_full_s=0.95,
        serial_time_s=0.010,
        pipe_fractions={Pipe.FP64: 1.0},
        l2_hit_rate=0.02,
        occupancy=0.80,
        working_set_mb=3000.0,
        l2_sensitivity=0.05,
        description="CUDA STREAM triad (sequential bandwidth)",
        tags=("micro", "memory-intensive"),
    )
    randomaccess = KernelCharacteristics(
        name="randomaccess",
        compute_time_full_s=0.10,
        memory_time_full_s=0.92,
        serial_time_s=0.010,
        pipe_fractions={Pipe.FP32: 1.0},
        l2_hit_rate=0.05,
        occupancy=0.40,
        working_set_mb=4000.0,
        l2_sensitivity=0.10,
        description="GUPS-style random memory updates",
        tags=("micro", "memory-intensive"),
    )
    return {kernel.name: kernel for kernel in (stream, randomaccess)}
