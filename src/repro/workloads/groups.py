"""N-way co-run workload groups (the Section 6 extension of Table 8).

The paper evaluates two-application workloads only (Table 8, encoded in
:mod:`repro.workloads.pairs`); its Section 6 names co-locating *more* than
two applications as the natural extension.  This module provides the group
generalization: :class:`CoRunGroup` describes a named N-application
workload, and a small set of three- and four-application groups — drawn
from the same benchmark classes as Table 8 — is exported for evaluation and
testing of the N-way engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import WorkloadError
from repro.workloads.kernel import KernelCharacteristics, WorkloadClass
from repro.workloads.pairs import CORUN_PAIRS, CoRunPair
from repro.workloads.suite import BenchmarkSuite, DEFAULT_SUITE


@dataclass(frozen=True)
class CoRunGroup:
    """One co-scheduled workload: a named group of N >= 2 applications.

    Attributes
    ----------
    name:
        Workload name, e.g. ``"TI-MI-US1"``.
    apps:
        Benchmark names in application order (App1 first, matching the
        partition states' ``gpc_allocations`` order).
    classes:
        Benchmark class of each application, in the same order.
    """

    name: str
    apps: tuple[str, ...]
    classes: tuple[WorkloadClass, ...]

    def __post_init__(self) -> None:
        if len(self.apps) < 2:
            raise WorkloadError(
                f"co-run group {self.name!r} needs >= 2 applications, got {len(self.apps)}"
            )
        if len(self.classes) != len(self.apps):
            raise WorkloadError(
                f"co-run group {self.name!r} has {len(self.apps)} applications "
                f"but {len(self.classes)} classes"
            )

    @property
    def n_apps(self) -> int:
        """Number of co-located applications."""
        return len(self.apps)

    @property
    def app_names(self) -> tuple[str, ...]:
        """All application names in order (mirrors ``CoRunPair.app_names``)."""
        return self.apps

    def kernels(self, suite: BenchmarkSuite | None = None) -> tuple[KernelCharacteristics, ...]:
        """Resolve every application to its kernel model."""
        resolved = suite or DEFAULT_SUITE
        return tuple(resolved.get(app) for app in self.apps)

    def describe(self) -> str:
        """Human-readable description, e.g. ``"TI-MI-US1 = (hgemm, stream, bfs)"``."""
        return f"{self.name} = ({', '.join(self.apps)})"

    @classmethod
    def from_pair(cls, pair: CoRunPair) -> "CoRunGroup":
        """The group view of a Table 8 pair."""
        return cls(
            name=pair.name,
            apps=(pair.app1, pair.app2),
            classes=(pair.class1, pair.class2),
        )


def _group(name: str, *apps: str) -> CoRunGroup:
    class_labels = name.rstrip("0123456789").split("-")
    return CoRunGroup(
        name=name,
        apps=tuple(apps),
        classes=tuple(WorkloadClass(label) for label in class_labels),
    )


#: Three-application workloads, one per distinct class combination that the
#: Table 8 methodology (one benchmark per class) extends to naturally.
CORUN_TRIPLES: tuple[CoRunGroup, ...] = (
    _group("TI-MI-US1", "hgemm", "stream", "bfs"),
    _group("TI-CI-MI1", "igemm4", "sgemm", "gaussian"),
    _group("CI-MI-US1", "dgemm", "lud", "needle"),
    _group("TI-TI-MI1", "fp16gemm", "tf32gemm", "randomaccess"),
    _group("MI-US-US1", "leukocyte", "kmeans", "dwt2d"),
    _group("CI-CI-US1", "lavaMD", "hotspot", "pathfinder"),
)

#: Four-application workloads exercising the widest co-location the 7-GPC
#: MIG partition supports with at least one GPC per application.
CORUN_QUADS: tuple[CoRunGroup, ...] = (
    _group("TI-CI-MI-US1", "igemm4", "sgemm", "stream", "bfs"),
    _group("TI-MI-US-US1", "hgemm", "lud", "kmeans", "needle"),
    _group("CI-CI-MI-US1", "dgemm", "hotspot", "gaussian", "dwt2d"),
)

#: Every predefined N-way group (pairs excluded; see ``CORUN_PAIRS``).
CORUN_GROUPS: tuple[CoRunGroup, ...] = CORUN_TRIPLES + CORUN_QUADS


def corun_group_names() -> tuple[str, ...]:
    """All predefined N-way workload names, in definition order."""
    return tuple(group.name for group in CORUN_GROUPS)


def corun_group(name: str) -> CoRunGroup:
    """Look up a predefined N-way workload (or a Table 8 pair) by name."""
    for group in CORUN_GROUPS:
        if group.name == name:
            return group
    for pair in CORUN_PAIRS:
        if pair.name == name:
            return CoRunGroup.from_pair(pair)
    known = corun_group_names() + tuple(pair.name for pair in CORUN_PAIRS)
    raise WorkloadError(f"unknown co-run workload {name!r}; known: {known}")


def groups_of_size(n_apps: int) -> tuple[CoRunGroup, ...]:
    """Every predefined group (pairs included) with exactly ``n_apps`` members."""
    if n_apps == 2:
        return tuple(CoRunGroup.from_pair(pair) for pair in CORUN_PAIRS)
    return tuple(group for group in CORUN_GROUPS if group.n_apps == n_apps)


def iter_group_kernels(
    groups: Sequence[CoRunGroup] = CORUN_GROUPS,
    suite: BenchmarkSuite | None = None,
) -> Iterator[tuple[CoRunGroup, tuple[KernelCharacteristics, ...]]]:
    """Yield each group together with its resolved kernel models."""
    for group in groups:
        yield group, group.kernels(suite)


#: Class combinations of the synthetic mixed-state calibration groups.
#: Memory-intensive members are over-represented on purpose: sub-chip
#: shared GIs are where bandwidth contention bites hardest, and the
#: named triples alone leave that corner of the feature space sparse.
_SYNTHETIC_GROUP_CLASSES: tuple[tuple[WorkloadClass, ...], ...] = (
    (WorkloadClass.MI, WorkloadClass.MI, WorkloadClass.US),
    (WorkloadClass.MI, WorkloadClass.MI, WorkloadClass.CI),
    (WorkloadClass.MI, WorkloadClass.CI, WorkloadClass.TI),
    (WorkloadClass.MI, WorkloadClass.US, WorkloadClass.US),
    (WorkloadClass.CI, WorkloadClass.CI, WorkloadClass.MI),
    (WorkloadClass.MI, WorkloadClass.MI, WorkloadClass.MI),
    (WorkloadClass.US, WorkloadClass.CI, WorkloadClass.MI),
    (WorkloadClass.TI, WorkloadClass.MI, WorkloadClass.MI),
    (WorkloadClass.CI, WorkloadClass.US, WorkloadClass.TI),
    (WorkloadClass.MI, WorkloadClass.TI, WorkloadClass.US),
    (WorkloadClass.CI, WorkloadClass.MI, WorkloadClass.US),
    (WorkloadClass.TI, WorkloadClass.CI, WorkloadClass.CI),
)


def _groups_from_classes(
    class_combos: Sequence[tuple[WorkloadClass, ...]],
    group_size: int,
    seed: int,
) -> tuple[tuple[KernelCharacteristics, ...], ...]:
    """Materialize one synthetic kernel group per class combination.

    Combinations shorter than ``group_size`` are cycled; kernels are drawn
    class-first from :class:`SyntheticWorkloadGenerator`, so the sweep
    stays disjoint from the evaluation benchmarks.
    """
    from repro.workloads.synthetic import SyntheticWorkloadGenerator

    generator = SyntheticWorkloadGenerator(seed)
    groups = []
    for classes in class_combos:
        cycled = tuple(classes[i % len(classes)] for i in range(group_size))
        groups.append(tuple(generator.sample_class(c) for c in cycled))
    return tuple(groups)


def synthetic_training_groups(
    group_size: int = 3, seed: int = 2022
) -> tuple[tuple[KernelCharacteristics, ...], ...]:
    """Deterministic synthetic kernel groups for the mixed-state sweep.

    The named triples cover only six benchmark-per-slot combinations,
    which is too sparse to calibrate the sub-chip shared GI keys across
    the victim × co-runner feature plane; these synthetic groups densify
    it (the simulator makes extra calibration workloads free).
    """
    return _groups_from_classes(_SYNTHETIC_GROUP_CLASSES, group_size, seed)


#: Class combinations of the tiny-pool densification groups.  The smallest
#: shared pool a mixed layout creates (two 1-GPC applications inside a
#: 2-GPC/2-slice GPU Instance) saturates at a quarter of the chip's
#: bandwidth, so its capacity-aware basis terms need samples on *both*
#: sides of the clip point: combinations pairing two memory-hungry members
#: (deep saturation), a memory-hungry member with a compute-bound one
#: (victim-side asymmetry), and two light members (the unclipped regime).
_TINY_POOL_GROUP_CLASSES: tuple[tuple[WorkloadClass, ...], ...] = (
    (WorkloadClass.MI, WorkloadClass.MI, WorkloadClass.TI),
    (WorkloadClass.MI, WorkloadClass.MI, WorkloadClass.CI),
    (WorkloadClass.MI, WorkloadClass.CI, WorkloadClass.US),
    (WorkloadClass.CI, WorkloadClass.MI, WorkloadClass.MI),
    (WorkloadClass.MI, WorkloadClass.US, WorkloadClass.MI),
    (WorkloadClass.US, WorkloadClass.MI, WorkloadClass.CI),
    (WorkloadClass.CI, WorkloadClass.CI, WorkloadClass.TI),
    (WorkloadClass.US, WorkloadClass.US, WorkloadClass.MI),
    (WorkloadClass.TI, WorkloadClass.US, WorkloadClass.MI),
    (WorkloadClass.MI, WorkloadClass.TI, WorkloadClass.TI),
    (WorkloadClass.US, WorkloadClass.CI, WorkloadClass.CI),
    (WorkloadClass.TI, WorkloadClass.CI, WorkloadClass.MI),
)


def tiny_pool_training_groups(
    group_size: int = 3, seed: int = 20221
) -> tuple[tuple[KernelCharacteristics, ...], ...]:
    """Extra synthetic groups densifying the tiny-pool mixed-state sweep.

    The capacity-aware interference basis (key schema v3) adds a
    saturating pool term and an excess-demand hinge to sub-chip shared
    keys; fitting their coefficients needs mixed-state rows that populate
    both the clipped and the unclipped regime of the smallest pools —
    far denser coverage than :func:`synthetic_training_groups` alone
    provides around the 2-slice GI.  The seed is disjoint from both the
    general densification sweep and the held-out evaluation generators.
    """
    return _groups_from_classes(_TINY_POOL_GROUP_CLASSES, group_size, seed)
