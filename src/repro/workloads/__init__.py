"""Workload models for the simulated evaluation.

The paper evaluates Rodinia kernels, CUTLASS GEMM variants (Table 6),
``stream`` and ``randomaccess``, classified into four categories (Table 7):

* **TI** — Tensor-Core intensive,
* **CI** — (non-Tensor) compute intensive,
* **MI** — memory intensive,
* **US** — un-scalable.

In this reproduction every benchmark is an *analytic kernel model*
(:class:`~repro.workloads.kernel.KernelCharacteristics`) whose parameters
are chosen so that each kernel behaves like its class: scalability with
GPCs, sensitivity to memory slices vs. shared bandwidth, sensitivity to
power caps, L2 reuse, and Tensor-pipe usage.
"""

from repro.workloads.kernel import KernelCharacteristics, WorkloadClass
from repro.workloads.gemm import GEMM_VARIANTS, GemmShape, gemm_kernel
from repro.workloads.micro import micro_kernels
from repro.workloads.rodinia import rodinia_kernels
from repro.workloads.suite import (
    BenchmarkSuite,
    DEFAULT_SUITE,
    all_kernel_names,
    get_kernel,
)
from repro.workloads.classification import (
    EXPECTED_CLASSIFICATION,
    ClassificationReport,
    classify_from_measurements,
    classify_kernel,
)
from repro.workloads.pairs import CORUN_PAIRS, CoRunPair, corun_pair, corun_pair_names
from repro.workloads.groups import (
    CORUN_GROUPS,
    CORUN_QUADS,
    CORUN_TRIPLES,
    CoRunGroup,
    corun_group,
    corun_group_names,
    groups_of_size,
)
from repro.workloads.mixes import (
    JOB_MIXES,
    JobMix,
    MEMORY_HEAVY_MIX,
    STEADY_MIX,
    TENSOR_HEAVY_MIX,
    mix_by_name,
)
from repro.workloads.synthetic import SyntheticWorkloadGenerator

__all__ = [
    "KernelCharacteristics",
    "WorkloadClass",
    "GEMM_VARIANTS",
    "GemmShape",
    "gemm_kernel",
    "micro_kernels",
    "rodinia_kernels",
    "BenchmarkSuite",
    "DEFAULT_SUITE",
    "get_kernel",
    "all_kernel_names",
    "classify_kernel",
    "classify_from_measurements",
    "ClassificationReport",
    "EXPECTED_CLASSIFICATION",
    "CORUN_PAIRS",
    "CoRunPair",
    "corun_pair",
    "corun_pair_names",
    "CORUN_GROUPS",
    "CORUN_TRIPLES",
    "CORUN_QUADS",
    "CoRunGroup",
    "corun_group",
    "corun_group_names",
    "groups_of_size",
    "SyntheticWorkloadGenerator",
    "JobMix",
    "JOB_MIXES",
    "STEADY_MIX",
    "TENSOR_HEAVY_MIX",
    "MEMORY_HEAVY_MIX",
    "mix_by_name",
]
