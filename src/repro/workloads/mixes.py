"""Trace-shaped job mixes: weighted application populations for traces.

A :class:`JobMix` describes the application population of an arriving job
stream as per-benchmark sampling weights.  The synthetic trace generators in
:mod:`repro.traces.generators` draw application names from a mix, so a
cluster simulation can be skewed toward Tensor-heavy, memory-heavy, or
balanced traffic without hand-writing traces.

The built-in mixes lean on the paper's Table 7 classification: each class
mix keeps the whole suite in play (every class keeps a small background
weight) but concentrates most of the arrival mass on one class, which is
what production job logs skewed toward one workload family look like.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import WorkloadError
from repro.workloads.classification import EXPECTED_CLASSIFICATION
from repro.workloads.kernel import WorkloadClass


@dataclass(frozen=True)
class JobMix:
    """A named, weighted population of benchmark applications.

    Attributes
    ----------
    name:
        Short identifier of the mix (CLI ``--mix`` value).
    weights:
        Per-application sampling weight (relative, not normalized).  Every
        weight must be positive.
    """

    name: str
    weights: Mapping[str, float]

    def __post_init__(self) -> None:
        if not self.weights:
            raise WorkloadError(f"job mix {self.name!r} has no applications")
        for app, weight in self.weights.items():
            if weight <= 0:
                raise WorkloadError(
                    f"job mix {self.name!r}: weight of {app!r} must be positive, got {weight}"
                )

    @property
    def app_names(self) -> tuple[str, ...]:
        """Application names of the mix, in a stable order."""
        return tuple(sorted(self.weights))

    def normalized(self) -> Mapping[str, float]:
        """Weights rescaled to sum to 1 (sampling probabilities)."""
        total = sum(self.weights.values())
        return {app: weight / total for app, weight in sorted(self.weights.items())}

    def describe(self) -> str:
        """One-line human-readable summary."""
        top = sorted(self.weights.items(), key=lambda kv: (-kv[1], kv[0]))[:3]
        head = ", ".join(f"{app}={weight:g}" for app, weight in top)
        return f"{self.name}: {len(self.weights)} apps ({head}, ...)"


def _class_skewed(name: str, favored: WorkloadClass, ratio: float = 6.0) -> JobMix:
    """A mix that concentrates ``ratio``× the base weight on one class."""
    weights = {
        app: ratio if cls is favored else 1.0
        for app, cls in EXPECTED_CLASSIFICATION.items()
    }
    return JobMix(name=name, weights=weights)


#: Uniform traffic across the whole Table 7 suite.
STEADY_MIX = JobMix(
    name="steady", weights={app: 1.0 for app in EXPECTED_CLASSIFICATION}
)

#: Traffic dominated by Tensor-Core-intensive jobs (training-farm shape).
TENSOR_HEAVY_MIX = _class_skewed("tensor-heavy", WorkloadClass.TI)

#: Traffic dominated by (non-Tensor) compute-intensive jobs.
COMPUTE_HEAVY_MIX = _class_skewed("compute-heavy", WorkloadClass.CI)

#: Traffic dominated by memory-intensive jobs (analytics shape).
MEMORY_HEAVY_MIX = _class_skewed("memory-heavy", WorkloadClass.MI)

#: Traffic dominated by un-scalable jobs (small-kernel inference shape).
UNSCALABLE_HEAVY_MIX = _class_skewed("unscalable-heavy", WorkloadClass.US)

#: Registry of the built-in mixes, by name.
JOB_MIXES: Mapping[str, JobMix] = {
    mix.name: mix
    for mix in (
        STEADY_MIX,
        TENSOR_HEAVY_MIX,
        COMPUTE_HEAVY_MIX,
        MEMORY_HEAVY_MIX,
        UNSCALABLE_HEAVY_MIX,
    )
}


def mix_by_name(name: str) -> JobMix:
    """Look up a built-in :class:`JobMix` (case-insensitive).

    Raises
    ------
    repro.errors.WorkloadError
        If no mix with that name exists, listing the valid names.
    """
    key = name.strip().lower()
    try:
        return JOB_MIXES[key]
    except KeyError:
        raise WorkloadError(
            f"unknown job mix {name!r}; valid names are {sorted(JOB_MIXES)}"
        ) from None
