"""Analytic kernel model.

A kernel is described by how long its three time components would take on
the *full* GPU at the boost clock, plus a handful of micro-architectural
characteristics that drive power, interference, and the simulated profiler:

* ``compute_time_full_s`` — time to push the kernel's arithmetic through the
  compute pipes of all 8 GPCs at the boost clock.  This component scales
  inversely with the number of allocated GPCs and with the clock.
* ``memory_time_full_s`` — time to move the kernel's DRAM traffic at the
  full-chip HBM bandwidth.  This component scales inversely with the number
  of LLC/HBM slices available (private option) and is clock-independent.
* ``serial_time_s`` — launch overhead, host interaction, and intrinsically
  serial work.  It scales with nothing, which is what makes the paper's
  "Un-Scalable" class un-scalable.

The elapsed time on a given allocation is (roughly) the maximum of the two
scalable components plus the serial time; see
:mod:`repro.sim.roofline` for the exact composition.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Mapping

from repro.errors import WorkloadError
from repro.gpu.spec import CUDA_PIPES, TENSOR_PIPES, Pipe


class WorkloadClass(str, Enum):
    """The paper's four benchmark categories (Table 7)."""

    #: Tensor-Core intensive.
    TI = "TI"
    #: (non-Tensor) compute intensive.
    CI = "CI"
    #: Memory intensive.
    MI = "MI"
    #: Un-scalable.
    US = "US"


@dataclass(frozen=True)
class KernelCharacteristics:
    """Complete analytic description of one benchmark kernel.

    Attributes
    ----------
    name:
        Benchmark name as used by the paper (e.g. ``"dgemm"``, ``"stream"``).
    compute_time_full_s:
        Compute-pipe time on the full chip at the boost clock, in seconds.
    memory_time_full_s:
        DRAM-traffic time at full-chip bandwidth, in seconds.
    serial_time_s:
        Non-scalable time (kernel-launch overhead, serial phases), seconds.
    pipe_fractions:
        Fraction of the compute work executed on each :class:`Pipe`.
        Must sum to 1 when there is any compute work.
    l2_hit_rate:
        L2 (LLC) hit rate observed in a solo run, in ``[0, 1]``.
    occupancy:
        Achieved SM occupancy, in ``[0, 1]``.
    working_set_mb:
        Cache-relevant working-set size in MiB; drives how much LLC pressure
        this kernel puts on a co-located one under the shared option.
    l2_sensitivity:
        How strongly this kernel suffers when its LLC share is polluted by a
        co-runner, in ``[0, 1]``.
    description:
        Free-form description shown in reports.
    tags:
        Arbitrary labels (e.g. the originating suite).
    """

    name: str
    compute_time_full_s: float
    memory_time_full_s: float
    serial_time_s: float
    pipe_fractions: Mapping[Pipe, float] = field(
        default_factory=lambda: {Pipe.FP32: 1.0}
    )
    l2_hit_rate: float = 0.5
    occupancy: float = 0.5
    working_set_mb: float = 64.0
    l2_sensitivity: float = 0.3
    description: str = ""
    tags: tuple[str, ...] = ()

    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("kernel name must be non-empty")
        for label, value in (
            ("compute_time_full_s", self.compute_time_full_s),
            ("memory_time_full_s", self.memory_time_full_s),
            ("serial_time_s", self.serial_time_s),
            ("working_set_mb", self.working_set_mb),
        ):
            if value < 0 or not math.isfinite(value):
                raise WorkloadError(f"{self.name}: {label} must be finite and >= 0, got {value}")
        if self.compute_time_full_s + self.memory_time_full_s + self.serial_time_s <= 0:
            raise WorkloadError(f"{self.name}: kernel must have a positive total time")
        for label, value in (
            ("l2_hit_rate", self.l2_hit_rate),
            ("occupancy", self.occupancy),
            ("l2_sensitivity", self.l2_sensitivity),
        ):
            if not (0.0 <= value <= 1.0):
                raise WorkloadError(f"{self.name}: {label} must be in [0, 1], got {value}")
        fractions = {Pipe(p): float(v) for p, v in self.pipe_fractions.items()}
        for pipe, frac in fractions.items():
            if frac < 0:
                raise WorkloadError(
                    f"{self.name}: pipe fraction for {pipe.value} must be >= 0, got {frac}"
                )
        total = sum(fractions.values())
        if self.compute_time_full_s > 0:
            if not math.isclose(total, 1.0, rel_tol=1e-6, abs_tol=1e-6):
                raise WorkloadError(
                    f"{self.name}: pipe fractions must sum to 1, got {total:.4f}"
                )
        object.__setattr__(self, "pipe_fractions", fractions)
        object.__setattr__(self, "tags", tuple(self.tags))

    # ------------------------------------------------------------------
    # Derived characteristics
    # ------------------------------------------------------------------
    @property
    def reference_time_s(self) -> float:
        """Elapsed time on the full chip at the boost clock (no power cap).

        This ignores power throttling (the simulator adds that); it is the
        natural time scale of the kernel.
        """
        return max(self.compute_time_full_s, self.memory_time_full_s) + self.serial_time_s

    @property
    def cuda_fraction(self) -> float:
        """Fraction of compute work running on the CUDA (FP32/FP64) pipes."""
        return sum(self.pipe_fractions.get(p, 0.0) for p in CUDA_PIPES)

    @property
    def tensor_fraction(self) -> float:
        """Fraction of compute work running on the Tensor-Core pipes."""
        return sum(self.pipe_fractions.get(p, 0.0) for p in TENSOR_PIPES)

    @property
    def uses_tensor_cores(self) -> bool:
        """Whether any non-negligible part of the compute work uses Tensor Cores."""
        return self.tensor_fraction > 0.01

    @property
    def compute_memory_ratio(self) -> float:
        """Ratio of compute time to memory time (∞ when there is no memory traffic)."""
        if self.memory_time_full_s <= 0:
            return math.inf
        return self.compute_time_full_s / self.memory_time_full_s

    @property
    def serial_fraction(self) -> float:
        """Fraction of the reference time spent in the non-scalable component."""
        return self.serial_time_s / self.reference_time_s

    def dominant_pipe(self) -> Pipe:
        """The pipe executing the largest share of the compute work."""
        if not self.pipe_fractions:
            return Pipe.FP32
        return max(self.pipe_fractions, key=lambda p: self.pipe_fractions[p])

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def scaled(self, factor: float) -> "KernelCharacteristics":
        """A copy with all time components scaled by ``factor`` (> 0)."""
        if factor <= 0:
            raise WorkloadError(f"scale factor must be positive, got {factor}")
        return replace(
            self,
            compute_time_full_s=self.compute_time_full_s * factor,
            memory_time_full_s=self.memory_time_full_s * factor,
            serial_time_s=self.serial_time_s * factor,
        )

    def with_name(self, name: str) -> "KernelCharacteristics":
        """A copy under a different name."""
        return replace(self, name=name)

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.name}: compute={self.compute_time_full_s:.3f}s "
            f"memory={self.memory_time_full_s:.3f}s serial={self.serial_time_s:.3f}s "
            f"tensor={self.tensor_fraction:.2f} l2hit={self.l2_hit_rate:.2f} "
            f"occ={self.occupancy:.2f}"
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.summary()
