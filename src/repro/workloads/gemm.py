"""CUTLASS-profiler-style GEMM variants (Table 6 of the paper).

The paper uses the CUTLASS profiler to obtain Tensor-Core-intensive kernels
that Rodinia lacks.  Table 6 lists nine GEMM variants differing in the input
and accumulation data types; each one maps onto a different compute pipe of
the GPU (regular FP32/FP64 CUDA cores, or the Tensor-Core modes).

Here each variant is derived from an explicit :class:`GemmShape` so that the
compute time, DRAM traffic, and working set follow from first principles
(FLOP counts, matrix sizes, data-type widths) rather than being hand-picked
numbers.  The iteration count per variant is chosen automatically so that
every variant has a comparable solo runtime (~0.9 s on the full chip), which
mirrors how the paper runs each benchmark long enough to reach steady state.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.gpu.spec import A100_SPEC, GPUSpec, Pipe
from repro.workloads.kernel import KernelCharacteristics


@dataclass(frozen=True)
class GemmShape:
    """Problem shape of one GEMM invocation (``C[m,n] += A[m,k] @ B[k,n]``)."""

    m: int
    n: int
    k: int

    def __post_init__(self) -> None:
        for label, value in (("m", self.m), ("n", self.n), ("k", self.k)):
            if value <= 0:
                raise WorkloadError(f"GEMM dimension {label} must be positive, got {value}")

    @property
    def flops(self) -> float:
        """Floating-point (or integer) operations of one invocation."""
        return 2.0 * self.m * self.n * self.k

    def bytes_moved(self, input_bytes: float, output_bytes: float, traffic_factor: float = 1.5) -> float:
        """Approximate DRAM traffic of one invocation.

        ``traffic_factor`` accounts for imperfect reuse of the tiled
        implementation (partial re-reads of A/B, write-allocate on C).
        """
        element_traffic = (
            (self.m * self.k + self.k * self.n) * input_bytes
            + 2.0 * self.m * self.n * output_bytes
        )
        return element_traffic * traffic_factor


@dataclass(frozen=True)
class GemmVariantSpec:
    """Static description of one Table 6 GEMM variant."""

    name: str
    description: str
    pipe: Pipe
    input_bytes: float
    output_bytes: float
    #: Fraction of the pipe's peak throughput a tuned kernel achieves.
    efficiency: float
    #: Multiplier on the pipe's peak (e.g. INT4 Tensor ops run at twice the
    #: INT8 rate on Ampere).
    peak_multiplier: float = 1.0
    shape: GemmShape = GemmShape(8192, 8192, 8192)
    l2_hit_rate: float = 0.85
    occupancy: float = 0.55
    working_set_mb: float = 24.0
    #: GEMMs rely on L2 blocking, so LLC pollution costs them a moderate
    #: amount of compute efficiency (much less than stencil/imaging kernels).
    l2_sensitivity: float = 0.25


#: Table 6 — workload specifications for the DGEMM/GEMM variants.
GEMM_VARIANTS: dict[str, GemmVariantSpec] = {
    "sgemm": GemmVariantSpec(
        name="sgemm",
        description="Normal SGEMM without using Tensor Cores",
        pipe=Pipe.FP32,
        input_bytes=4.0,
        output_bytes=4.0,
        efficiency=0.92,
        occupancy=0.62,
    ),
    "dgemm": GemmVariantSpec(
        name="dgemm",
        description="Normal DGEMM without using Tensor Cores",
        pipe=Pipe.FP64,
        input_bytes=8.0,
        output_bytes=8.0,
        efficiency=0.92,
        occupancy=0.60,
    ),
    "tdgemm": GemmVariantSpec(
        name="tdgemm",
        description="DGEMM with Tensor Cores",
        pipe=Pipe.TENSOR_DOUBLE,
        input_bytes=8.0,
        output_bytes=8.0,
        efficiency=0.86,
        occupancy=0.52,
    ),
    "tf32gemm": GemmVariantSpec(
        name="tf32gemm",
        description="GEMM using TF32 for inputs and FP32 for accumulation",
        pipe=Pipe.TENSOR_MIXED,
        input_bytes=4.0,
        output_bytes=4.0,
        efficiency=0.42,  # TF32 runs at half the FP16 Tensor rate
        occupancy=0.55,
    ),
    "hgemm": GemmVariantSpec(
        name="hgemm",
        description="HGEMM using FP16 for both inputs and accumulation",
        pipe=Pipe.TENSOR_MIXED,
        input_bytes=2.0,
        output_bytes=2.0,
        efficiency=0.85,
        occupancy=0.50,
    ),
    "fp16gemm": GemmVariantSpec(
        name="fp16gemm",
        description="GEMM using FP16 for inputs and FP32 for accumulation",
        pipe=Pipe.TENSOR_MIXED,
        input_bytes=2.0,
        output_bytes=4.0,
        efficiency=0.82,
        occupancy=0.50,
    ),
    "bf16gemm": GemmVariantSpec(
        name="bf16gemm",
        description="GEMM using BF16 for inputs and FP32 for accumulation",
        pipe=Pipe.TENSOR_MIXED,
        input_bytes=2.0,
        output_bytes=4.0,
        efficiency=0.80,
        occupancy=0.50,
    ),
    "igemm4": GemmVariantSpec(
        name="igemm4",
        description="IGEMM using u4 for both inputs and accumulation",
        pipe=Pipe.TENSOR_INT,
        input_bytes=0.5,
        output_bytes=4.0,
        efficiency=0.72,
        peak_multiplier=2.0,
        occupancy=0.48,
    ),
    "igemm8": GemmVariantSpec(
        name="igemm8",
        description="IGEMM using u8 for both inputs and accumulation",
        pipe=Pipe.TENSOR_INT,
        input_bytes=1.0,
        output_bytes=4.0,
        efficiency=0.75,
        occupancy=0.48,
    ),
}


#: Target solo runtime (full chip, boost clock) used to pick iteration counts.
_TARGET_RUNTIME_S = 0.88

#: Fraction of the compute work that spills onto the FP32 CUDA pipe even for
#: Tensor-Core kernels (epilogue, address arithmetic, data movement).
_EPILOGUE_FRACTION = 0.08

#: Fixed launch/setup overhead per benchmark plus a tiny per-iteration cost.
_BASE_SERIAL_S = 0.015
_PER_ITERATION_SERIAL_S = 4.0e-5


def gemm_iterations(variant: GemmVariantSpec, spec: GPUSpec = A100_SPEC) -> int:
    """Number of back-to-back GEMM invocations used for the benchmark."""
    peak_flops = spec.pipe_tflops[variant.pipe] * variant.peak_multiplier * 1e12
    achievable = peak_flops * variant.efficiency
    seconds_per_iteration = variant.shape.flops / achievable
    return max(1, round(_TARGET_RUNTIME_S / seconds_per_iteration))


def gemm_kernel(name: str, spec: GPUSpec = A100_SPEC) -> KernelCharacteristics:
    """Build the :class:`KernelCharacteristics` of a Table 6 GEMM variant."""
    try:
        variant = GEMM_VARIANTS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown GEMM variant {name!r}; known: {sorted(GEMM_VARIANTS)}"
        ) from None
    iterations = gemm_iterations(variant, spec)
    peak_flops = spec.pipe_tflops[variant.pipe] * variant.peak_multiplier * 1e12
    achievable = peak_flops * variant.efficiency
    compute_time = iterations * variant.shape.flops / achievable
    traffic_bytes = iterations * variant.shape.bytes_moved(
        variant.input_bytes, variant.output_bytes
    )
    memory_time = traffic_bytes / (spec.dram_bandwidth_gbs * 1e9)
    serial_time = _BASE_SERIAL_S + _PER_ITERATION_SERIAL_S * iterations

    if variant.pipe in (Pipe.FP32, Pipe.FP64):
        pipe_fractions = {variant.pipe: 1.0}
    else:
        pipe_fractions = {
            variant.pipe: 1.0 - _EPILOGUE_FRACTION,
            Pipe.FP32: _EPILOGUE_FRACTION,
        }

    return KernelCharacteristics(
        name=variant.name,
        compute_time_full_s=compute_time,
        memory_time_full_s=memory_time,
        serial_time_s=serial_time,
        pipe_fractions=pipe_fractions,
        l2_hit_rate=variant.l2_hit_rate,
        occupancy=variant.occupancy,
        working_set_mb=variant.working_set_mb,
        l2_sensitivity=variant.l2_sensitivity,
        description=variant.description,
        tags=("cutlass", "gemm"),
    )


def all_gemm_kernels(spec: GPUSpec = A100_SPEC) -> dict[str, KernelCharacteristics]:
    """All Table 6 GEMM variants as kernel models."""
    return {name: gemm_kernel(name, spec) for name in GEMM_VARIANTS}
