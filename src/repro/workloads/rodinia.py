"""Rodinia-like benchmark kernels.

The paper draws its non-GEMM workloads from the Rodinia suite (plus two
micro-benchmarks defined in :mod:`repro.workloads.micro`).  Each entry below
is an analytic model whose parameters are chosen to reproduce the behaviour
the paper reports for the benchmark's class (Table 7):

* **CI** kernels (hotspot, lavaMD, srad, heartwell) are dominated by CUDA-
  core arithmetic, have moderate DRAM traffic, and a meaningful amount of L2
  reuse — so they scale with GPCs, are moderately power-sensitive, and are
  the ones hurt by LLC pollution from a co-runner under the shared option.
* **MI** kernels (gaussian, leukocyte, lud) are DRAM-bandwidth bound — they
  scale with the number of memory slices (private option) or with the
  bandwidth left over by the co-runner (shared option), and they barely
  notice power caps.
* **US** kernels (backprop, bfs, dwt2d, kmeans, needle, pathfinder) spend
  almost all of their time in launch overhead, host interaction, and tiny
  kernels — they neither scale with GPCs nor care about power caps, which is
  exactly why the paper's classifier puts them in their own category.

The time constants are expressed for the full chip at the boost clock; only
ratios matter for the paper's metrics (everything is reported as relative
performance).
"""

from __future__ import annotations

from repro.gpu.spec import Pipe
from repro.workloads.kernel import KernelCharacteristics


def _ci(
    name: str,
    compute: float,
    memory: float,
    serial: float,
    l2_hit: float,
    occupancy: float,
    working_set_mb: float,
    l2_sensitivity: float,
    description: str,
    fp64_fraction: float = 0.0,
) -> KernelCharacteristics:
    """Helper for compute-intensive Rodinia kernels."""
    pipe_fractions = (
        {Pipe.FP32: 1.0 - fp64_fraction, Pipe.FP64: fp64_fraction}
        if fp64_fraction > 0
        else {Pipe.FP32: 1.0}
    )
    return KernelCharacteristics(
        name=name,
        compute_time_full_s=compute,
        memory_time_full_s=memory,
        serial_time_s=serial,
        pipe_fractions=pipe_fractions,
        l2_hit_rate=l2_hit,
        occupancy=occupancy,
        working_set_mb=working_set_mb,
        l2_sensitivity=l2_sensitivity,
        description=description,
        tags=("rodinia", "compute-intensive"),
    )


def _mi(
    name: str,
    compute: float,
    memory: float,
    serial: float,
    l2_hit: float,
    occupancy: float,
    working_set_mb: float,
    l2_sensitivity: float,
    description: str,
) -> KernelCharacteristics:
    """Helper for memory-intensive Rodinia kernels."""
    return KernelCharacteristics(
        name=name,
        compute_time_full_s=compute,
        memory_time_full_s=memory,
        serial_time_s=serial,
        pipe_fractions={Pipe.FP32: 1.0},
        l2_hit_rate=l2_hit,
        occupancy=occupancy,
        working_set_mb=working_set_mb,
        l2_sensitivity=l2_sensitivity,
        description=description,
        tags=("rodinia", "memory-intensive"),
    )


def _us(
    name: str,
    compute: float,
    memory: float,
    serial: float,
    l2_hit: float,
    occupancy: float,
    working_set_mb: float,
    l2_sensitivity: float,
    description: str,
) -> KernelCharacteristics:
    """Helper for un-scalable Rodinia kernels (launch-/serial-dominated)."""
    return KernelCharacteristics(
        name=name,
        compute_time_full_s=compute,
        memory_time_full_s=memory,
        serial_time_s=serial,
        pipe_fractions={Pipe.FP32: 1.0},
        l2_hit_rate=l2_hit,
        occupancy=occupancy,
        working_set_mb=working_set_mb,
        l2_sensitivity=l2_sensitivity,
        description=description,
        tags=("rodinia", "unscalable"),
    )


def rodinia_kernels() -> dict[str, KernelCharacteristics]:
    """All Rodinia-like kernel models used by the paper's evaluation."""
    kernels = [
        # ------------------------------------------------------------------
        # Non-Tensor compute-intensive kernels (class CI)
        # ------------------------------------------------------------------
        _ci(
            "hotspot",
            compute=0.88,
            memory=0.30,
            serial=0.020,
            l2_hit=0.65,
            occupancy=0.70,
            working_set_mb=60.0,
            l2_sensitivity=0.55,
            description="Thermal simulation stencil (structured grid)",
        ),
        _ci(
            "lavaMD",
            compute=0.92,
            memory=0.18,
            serial=0.030,
            l2_hit=0.80,
            occupancy=0.55,
            working_set_mb=25.0,
            l2_sensitivity=0.45,
            description="N-body molecular dynamics within a cutoff radius",
            fp64_fraction=0.35,
        ),
        _ci(
            "srad",
            compute=0.86,
            memory=0.42,
            serial=0.030,
            l2_hit=0.72,
            occupancy=0.65,
            working_set_mb=80.0,
            l2_sensitivity=0.70,
            description="Speckle-reducing anisotropic diffusion (imaging)",
        ),
        _ci(
            "heartwell",
            compute=0.84,
            memory=0.38,
            serial=0.040,
            l2_hit=0.68,
            occupancy=0.60,
            working_set_mb=70.0,
            l2_sensitivity=0.60,
            description="Heart-wall tracking (medical imaging)",
        ),
        # ------------------------------------------------------------------
        # Memory-intensive kernels (class MI)
        # ------------------------------------------------------------------
        _mi(
            "gaussian",
            compute=0.40,
            memory=0.88,
            serial=0.040,
            l2_hit=0.35,
            occupancy=0.50,
            working_set_mb=500.0,
            l2_sensitivity=0.35,
            description="Gaussian elimination (dense linear algebra)",
        ),
        _mi(
            "leukocyte",
            compute=0.52,
            memory=0.90,
            serial=0.030,
            l2_hit=0.45,
            occupancy=0.55,
            working_set_mb=300.0,
            l2_sensitivity=0.40,
            description="Leukocyte tracking in video frames",
        ),
        _mi(
            "lud",
            compute=0.55,
            memory=0.85,
            serial=0.030,
            l2_hit=0.50,
            occupancy=0.50,
            working_set_mb=200.0,
            l2_sensitivity=0.45,
            description="LU decomposition (dense linear algebra)",
        ),
        # ------------------------------------------------------------------
        # Un-scalable kernels (class US)
        # ------------------------------------------------------------------
        _us(
            "backprop",
            compute=0.006,
            memory=0.005,
            serial=0.78,
            l2_hit=0.50,
            occupancy=0.30,
            working_set_mb=40.0,
            l2_sensitivity=0.30,
            description="Back-propagation training of a small MLP",
        ),
        _us(
            "bfs",
            compute=0.003,
            memory=0.004,
            serial=0.82,
            l2_hit=0.30,
            occupancy=0.25,
            working_set_mb=60.0,
            l2_sensitivity=0.25,
            description="Breadth-first search on an irregular graph",
        ),
        _us(
            "dwt2d",
            compute=0.007,
            memory=0.005,
            serial=0.75,
            l2_hit=0.55,
            occupancy=0.35,
            working_set_mb=50.0,
            l2_sensitivity=0.35,
            description="2D discrete wavelet transform",
        ),
        _us(
            "kmeans",
            compute=0.005,
            memory=0.005,
            serial=0.80,
            l2_hit=0.60,
            occupancy=0.30,
            working_set_mb=35.0,
            l2_sensitivity=0.30,
            description="K-means clustering with host-side reassignment",
        ),
        _us(
            "needle",
            compute=0.006,
            memory=0.004,
            serial=0.77,
            l2_hit=0.50,
            occupancy=0.28,
            working_set_mb=45.0,
            l2_sensitivity=0.40,
            description="Needleman-Wunsch sequence alignment (wavefront)",
        ),
        _us(
            "pathfinder",
            compute=0.005,
            memory=0.004,
            serial=0.79,
            l2_hit=0.45,
            occupancy=0.32,
            working_set_mb=30.0,
            l2_sensitivity=0.30,
            description="Dynamic-programming path search",
        ),
    ]
    return {kernel.name: kernel for kernel in kernels}
