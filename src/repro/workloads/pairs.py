"""Co-run workload pairs (Table 8 of the paper).

The paper builds 18 two-application workloads by pairing the benchmark
classes (TI-TI, TI-MI, CI-US, ...) and drawing one benchmark per class.
This module encodes exactly those pairs, preserving the paper's naming
(``TI-MI2`` etc.) and application order (App1 is listed first and is the one
that receives 4 GPCs under S1/S3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import WorkloadError
from repro.workloads.kernel import KernelCharacteristics, WorkloadClass
from repro.workloads.suite import BenchmarkSuite, DEFAULT_SUITE


@dataclass(frozen=True)
class CoRunPair:
    """One co-scheduled workload: a named pair of applications.

    Attributes
    ----------
    name:
        The paper's workload name, e.g. ``"TI-MI2"``.
    app1, app2:
        Benchmark names of the first and second application.
    class1, class2:
        Benchmark classes the pair was drawn from.
    """

    name: str
    app1: str
    app2: str
    class1: WorkloadClass
    class2: WorkloadClass

    @property
    def app_names(self) -> tuple[str, str]:
        """Both application names in order."""
        return (self.app1, self.app2)

    def kernels(self, suite: BenchmarkSuite | None = None) -> tuple[KernelCharacteristics, KernelCharacteristics]:
        """Resolve both applications to kernel models."""
        resolved = suite or DEFAULT_SUITE
        return (resolved.get(self.app1), resolved.get(self.app2))

    def describe(self) -> str:
        """Human-readable description, e.g. ``"TI-MI2 = (igemm4, stream)"``."""
        return f"{self.name} = ({self.app1}, {self.app2})"


def _pair(name: str, app1: str, app2: str) -> CoRunPair:
    class1_label, class2_label = name.rstrip("0123456789").split("-")
    return CoRunPair(
        name=name,
        app1=app1,
        app2=app2,
        class1=WorkloadClass(class1_label),
        class2=WorkloadClass(class2_label),
    )


#: Table 8 — co-run workload definitions, in the paper's order.
CORUN_PAIRS: tuple[CoRunPair, ...] = (
    _pair("TI-TI1", "tdgemm", "tf32gemm"),
    _pair("TI-TI2", "fp16gemm", "bf16gemm"),
    _pair("CI-CI1", "sgemm", "lavaMD"),
    _pair("CI-CI2", "dgemm", "hotspot"),
    _pair("MI-MI1", "randomaccess", "gaussian"),
    _pair("MI-MI2", "stream", "leukocyte"),
    _pair("US-US1", "bfs", "dwt2d"),
    _pair("US-US2", "kmeans", "needle"),
    _pair("TI-MI1", "hgemm", "lud"),
    _pair("TI-MI2", "igemm4", "stream"),
    _pair("CI-MI1", "heartwell", "gaussian"),
    _pair("CI-MI2", "sgemm", "randomaccess"),
    _pair("TI-US1", "igemm8", "backprop"),
    _pair("TI-US2", "fp16gemm", "pathfinder"),
    _pair("CI-US1", "srad", "needle"),
    _pair("CI-US2", "dgemm", "dwt2d"),
    _pair("MI-US1", "leukocyte", "kmeans"),
    _pair("MI-US2", "lud", "needle"),
)


def corun_pair_names() -> tuple[str, ...]:
    """All Table 8 workload names, in the paper's order."""
    return tuple(pair.name for pair in CORUN_PAIRS)


def corun_pair(name: str) -> CoRunPair:
    """Look up a Table 8 workload by name."""
    for pair in CORUN_PAIRS:
        if pair.name == name:
            return pair
    raise WorkloadError(f"unknown co-run workload {name!r}; known: {corun_pair_names()}")


def pairs_with_class(workload_class: WorkloadClass) -> tuple[CoRunPair, ...]:
    """All pairs in which at least one application belongs to ``workload_class``."""
    return tuple(
        pair
        for pair in CORUN_PAIRS
        if workload_class in (pair.class1, pair.class2)
    )


def iter_pair_kernels(
    pairs: Sequence[CoRunPair] = CORUN_PAIRS,
    suite: BenchmarkSuite | None = None,
) -> Iterator[tuple[CoRunPair, tuple[KernelCharacteristics, KernelCharacteristics]]]:
    """Yield each pair together with its resolved kernel models."""
    for pair in pairs:
        yield pair, pair.kernels(suite)
