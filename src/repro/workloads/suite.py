"""Benchmark-suite registry.

The registry collects every kernel model used in the evaluation — the nine
CUTLASS GEMM variants of Table 6, the Rodinia kernels, and the two memory
micro-benchmarks — behind a single lookup interface used by the profiler,
the simulator sweeps, and the benchmark harnesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.errors import UnknownKernelError, WorkloadError
from repro.gpu.spec import A100_SPEC, GPUSpec
from repro.workloads.gemm import all_gemm_kernels
from repro.workloads.kernel import KernelCharacteristics, WorkloadClass
from repro.workloads.micro import micro_kernels
from repro.workloads.rodinia import rodinia_kernels


@dataclass
class BenchmarkSuite:
    """A named collection of kernel models.

    The suite behaves like a read-mostly mapping from benchmark name to
    :class:`~repro.workloads.kernel.KernelCharacteristics`, with a few
    convenience queries (filter by tag, group by expected class, ...).
    """

    name: str
    kernels: dict[str, KernelCharacteristics] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Mapping-ish interface
    # ------------------------------------------------------------------
    def __contains__(self, name: object) -> bool:
        return name in self.kernels

    def __len__(self) -> int:
        return len(self.kernels)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self.kernels))

    def get(self, name: str) -> KernelCharacteristics:
        """Return the kernel model registered under ``name``.

        Raises
        ------
        repro.errors.UnknownKernelError
            If no kernel with that name exists in the suite.
        """
        try:
            return self.kernels[name]
        except KeyError:
            raise UnknownKernelError(
                f"unknown benchmark {name!r}; known: {sorted(self.kernels)}"
            ) from None

    def names(self) -> tuple[str, ...]:
        """All benchmark names, sorted."""
        return tuple(sorted(self.kernels))

    def all(self) -> tuple[KernelCharacteristics, ...]:
        """All kernel models, sorted by name."""
        return tuple(self.kernels[name] for name in self.names())

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def register(self, kernel: KernelCharacteristics, overwrite: bool = False) -> None:
        """Add a kernel model to the suite."""
        if kernel.name in self.kernels and not overwrite:
            raise WorkloadError(
                f"benchmark {kernel.name!r} already registered in suite {self.name!r}"
            )
        self.kernels[kernel.name] = kernel

    def register_all(self, kernels: Iterable[KernelCharacteristics]) -> None:
        """Add several kernel models at once."""
        for kernel in kernels:
            self.register(kernel)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def with_tag(self, tag: str) -> tuple[KernelCharacteristics, ...]:
        """All kernels carrying a given tag."""
        return tuple(k for k in self.all() if tag in k.tags)

    def subset(self, names: Iterable[str]) -> "BenchmarkSuite":
        """A new suite restricted to ``names`` (order-insensitive)."""
        requested = list(names)
        return BenchmarkSuite(
            name=f"{self.name}-subset",
            kernels={name: self.get(name) for name in requested},
        )

    def grouped_by_expected_class(self) -> Mapping[WorkloadClass, tuple[str, ...]]:
        """Group benchmark names by the paper's Table 7 classification.

        Only benchmarks present in the suite are listed; benchmarks without a
        published classification are omitted.
        """
        from repro.workloads.classification import EXPECTED_CLASSIFICATION

        groups: dict[WorkloadClass, list[str]] = {cls: [] for cls in WorkloadClass}
        for name in self.names():
            expected = EXPECTED_CLASSIFICATION.get(name)
            if expected is not None:
                groups[expected].append(name)
        return {cls: tuple(names) for cls, names in groups.items()}


def build_default_suite(spec: GPUSpec = A100_SPEC) -> BenchmarkSuite:
    """Build the full evaluation suite (Tables 6 and 7) for a GPU spec."""
    suite = BenchmarkSuite(name="icpp22-evaluation")
    suite.register_all(all_gemm_kernels(spec).values())
    suite.register_all(rodinia_kernels().values())
    suite.register_all(micro_kernels().values())
    return suite


#: The default suite, built against the default A100-like specification.
DEFAULT_SUITE = build_default_suite()


def get_kernel(name: str, suite: BenchmarkSuite | None = None) -> KernelCharacteristics:
    """Look up a benchmark by name in ``suite`` (default: the full suite)."""
    return (suite or DEFAULT_SUITE).get(name)


def all_kernel_names(suite: BenchmarkSuite | None = None) -> tuple[str, ...]:
    """All benchmark names in ``suite`` (default: the full suite)."""
    return (suite or DEFAULT_SUITE).names()
