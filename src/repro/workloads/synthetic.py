"""Synthetic workload generation.

Two uses:

* **Model training breadth** — the paper trains its regression model on a
  "predetermined benchmark set"; generating extra synthetic kernels lets the
  offline workflow be exercised with training sets that are disjoint from
  the evaluation workloads (a stricter test than the paper's own setup).
* **Property-based testing** — hypothesis-style tests need a cheap way to
  produce valid, diverse kernels.

Kernels are drawn class-first: the generator picks a workload class and then
samples characteristics from ranges typical of that class, so synthetic
kernels classify consistently and behave plausibly in the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.gpu.spec import Pipe
from repro.workloads.kernel import KernelCharacteristics, WorkloadClass


@dataclass(frozen=True)
class _ClassRanges:
    """Sampling ranges for one workload class (all times in seconds)."""

    compute: tuple[float, float]
    memory: tuple[float, float]
    serial: tuple[float, float]
    l2_hit: tuple[float, float]
    occupancy: tuple[float, float]
    working_set_mb: tuple[float, float]
    l2_sensitivity: tuple[float, float]
    tensor_fraction: tuple[float, float]


_RANGES: dict[WorkloadClass, _ClassRanges] = {
    WorkloadClass.TI: _ClassRanges(
        compute=(0.7, 1.1),
        memory=(0.05, 0.45),
        serial=(0.01, 0.05),
        l2_hit=(0.75, 0.92),
        occupancy=(0.4, 0.65),
        working_set_mb=(15.0, 40.0),
        l2_sensitivity=(0.02, 0.15),
        tensor_fraction=(0.85, 0.95),
    ),
    WorkloadClass.CI: _ClassRanges(
        compute=(0.7, 1.1),
        memory=(0.15, 0.5),
        serial=(0.01, 0.06),
        l2_hit=(0.55, 0.85),
        occupancy=(0.5, 0.75),
        working_set_mb=(20.0, 100.0),
        l2_sensitivity=(0.35, 0.75),
        tensor_fraction=(0.0, 0.0),
    ),
    WorkloadClass.MI: _ClassRanges(
        compute=(0.1, 0.55),
        memory=(0.75, 1.1),
        serial=(0.01, 0.05),
        l2_hit=(0.02, 0.5),
        occupancy=(0.35, 0.8),
        working_set_mb=(150.0, 4000.0),
        l2_sensitivity=(0.05, 0.45),
        tensor_fraction=(0.0, 0.0),
    ),
    WorkloadClass.US: _ClassRanges(
        compute=(0.004, 0.010),
        memory=(0.004, 0.009),
        serial=(0.6, 0.9),
        l2_hit=(0.3, 0.65),
        occupancy=(0.2, 0.4),
        working_set_mb=(20.0, 70.0),
        l2_sensitivity=(0.2, 0.45),
        tensor_fraction=(0.0, 0.0),
    ),
}


class SyntheticWorkloadGenerator:
    """Deterministic random generator of plausible kernel models."""

    def __init__(self, seed: int = 2022) -> None:
        self._rng = np.random.default_rng(seed)
        self._counter = 0

    def _uniform(self, bounds: tuple[float, float]) -> float:
        lo, hi = bounds
        if hi < lo:
            raise WorkloadError(f"invalid sampling range {bounds}")
        if hi == lo:
            return lo
        return float(self._rng.uniform(lo, hi))

    def sample_class(self, workload_class: WorkloadClass, name: str | None = None) -> KernelCharacteristics:
        """Sample one kernel belonging to ``workload_class``."""
        ranges = _RANGES[workload_class]
        self._counter += 1
        kernel_name = name or f"synthetic-{workload_class.value.lower()}-{self._counter:03d}"
        tensor_fraction = self._uniform(ranges.tensor_fraction)
        if tensor_fraction > 0:
            tensor_pipe = Pipe(
                self._rng.choice(
                    [Pipe.TENSOR_MIXED.value, Pipe.TENSOR_DOUBLE.value, Pipe.TENSOR_INT.value]
                )
            )
            pipe_fractions = {tensor_pipe: tensor_fraction, Pipe.FP32: 1.0 - tensor_fraction}
        else:
            fp64_fraction = float(self._rng.uniform(0.0, 0.4))
            pipe_fractions = (
                {Pipe.FP64: fp64_fraction, Pipe.FP32: 1.0 - fp64_fraction}
                if fp64_fraction > 0
                else {Pipe.FP32: 1.0}
            )
        return KernelCharacteristics(
            name=kernel_name,
            compute_time_full_s=self._uniform(ranges.compute),
            memory_time_full_s=self._uniform(ranges.memory),
            serial_time_s=self._uniform(ranges.serial),
            pipe_fractions=pipe_fractions,
            l2_hit_rate=self._uniform(ranges.l2_hit),
            occupancy=self._uniform(ranges.occupancy),
            working_set_mb=self._uniform(ranges.working_set_mb),
            l2_sensitivity=self._uniform(ranges.l2_sensitivity),
            description=f"synthetic {workload_class.value} kernel",
            tags=("synthetic", workload_class.value),
        )

    def sample(self, count: int) -> tuple[KernelCharacteristics, ...]:
        """Sample ``count`` kernels, cycling through all four classes."""
        if count < 0:
            raise WorkloadError(f"count must be >= 0, got {count}")
        classes = list(WorkloadClass)
        return tuple(
            self.sample_class(classes[i % len(classes)]) for i in range(count)
        )

    def sample_pairs(self, count: int) -> tuple[tuple[KernelCharacteristics, KernelCharacteristics], ...]:
        """Sample ``count`` random co-run pairs with random class combinations."""
        pairs = []
        classes = list(WorkloadClass)
        for _ in range(count):
            first = classes[int(self._rng.integers(len(classes)))]
            second = classes[int(self._rng.integers(len(classes)))]
            pairs.append((self.sample_class(first), self.sample_class(second)))
        return tuple(pairs)
