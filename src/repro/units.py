"""Small unit-conversion helpers used throughout the library.

The simulator keeps every quantity in SI-ish base units:

* time in **seconds**
* power in **watts**
* energy in **joules**
* bandwidth in **GB/s** (gigabytes per second; this is the one deliberate
  deviation from strict SI because GPU data sheets quote GB/s)
* compute throughput in **TFLOP/s**
* clock frequency in **GHz**

These helpers exist so that call sites read naturally (``ms(3.2)``) and so
that the conversion factors live in exactly one place.
"""

from __future__ import annotations

#: Number of bytes in a gigabyte (decimal, as used by GPU data sheets).
BYTES_PER_GB = 1e9

#: Number of FLOPs in a TFLOP.
FLOPS_PER_TFLOP = 1e12

#: Number of bytes in a mebibyte (used for cache sizes).
BYTES_PER_MIB = 1024.0 * 1024.0


def ms(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value * 1e-3


def us(value: float) -> float:
    """Convert microseconds to seconds."""
    return value * 1e-6


def seconds_to_ms(value: float) -> float:
    """Convert seconds to milliseconds."""
    return value * 1e3


def gb(value: float) -> float:
    """Convert gigabytes to bytes."""
    return value * BYTES_PER_GB


def bytes_to_gb(value: float) -> float:
    """Convert bytes to gigabytes."""
    return value / BYTES_PER_GB


def mib(value: float) -> float:
    """Convert mebibytes to bytes."""
    return value * BYTES_PER_MIB


def tflops(value: float) -> float:
    """Convert TFLOP/s to FLOP/s."""
    return value * FLOPS_PER_TFLOP


def flops_to_tflops(value: float) -> float:
    """Convert FLOP/s to TFLOP/s."""
    return value / FLOPS_PER_TFLOP


def ghz(value: float) -> float:
    """Convert GHz to Hz."""
    return value * 1e9


def mhz_to_ghz(value: float) -> float:
    """Convert MHz to GHz."""
    return value * 1e-3


def watt_hours(joules: float) -> float:
    """Convert joules to watt-hours."""
    return joules / 3600.0


def percent(fraction: float) -> float:
    """Convert a 0..1 fraction to a 0..100 percentage."""
    return fraction * 100.0


def fraction(pct: float) -> float:
    """Convert a 0..100 percentage to a 0..1 fraction."""
    return pct / 100.0


def clamp(value: float, lo: float, hi: float) -> float:
    """Clamp ``value`` into the closed interval ``[lo, hi]``.

    Raises
    ------
    ValueError
        If ``lo > hi``.
    """
    if lo > hi:
        raise ValueError(f"invalid clamp interval: [{lo}, {hi}]")
    return max(lo, min(hi, value))
