"""Result records produced by the execution simulator."""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.mig import PartitionState


@dataclass(frozen=True)
class RunResult:
    """Outcome of executing one application on one allocation.

    Attributes
    ----------
    kernel_name:
        Name of the executed benchmark.
    state:
        The partition state the run was part of (a solo state for solo runs).
    app_index:
        Index of the application within the state (0 for solo runs).
    power_cap_w:
        Chip power cap active during the run.
    elapsed_s:
        Measured elapsed time including measurement noise.
    noiseless_elapsed_s:
        Elapsed time before measurement noise was applied (used by tests and
        by error analyses that want to separate model error from noise).
    reference_s:
        Elapsed time of the exclusive solo run on the full GPU at the default
        power limit — the normalization baseline used throughout the paper.
    relative_performance:
        ``reference_s / elapsed_s`` (the paper's ``RPerf``).
    relative_frequency:
        Clock selected by the power-cap governor, as a fraction of boost.
    compute_time_s, memory_time_s, serial_time_s:
        Effective time components after allocation scaling, clock throttling
        and interference.
    achieved_bandwidth_gbs:
        Average DRAM bandwidth achieved by the application.
    chip_power_w:
        Modelled chip power during the run (all co-located applications and
        idle components included).
    bound:
        Which component limits the run: ``"compute"``, ``"memory"`` or
        ``"serial"``.
    """

    kernel_name: str
    state: PartitionState
    app_index: int
    power_cap_w: float
    elapsed_s: float
    noiseless_elapsed_s: float
    reference_s: float
    relative_performance: float
    relative_frequency: float
    compute_time_s: float
    memory_time_s: float
    serial_time_s: float
    achieved_bandwidth_gbs: float
    chip_power_w: float
    bound: str

    @property
    def slowdown(self) -> float:
        """Slowdown relative to the exclusive full-GPU run (``1 / RPerf``)."""
        return self.elapsed_s / self.reference_s

    @property
    def degradation(self) -> float:
        """Performance degradation ``1 - RPerf`` (0 = no degradation)."""
        return 1.0 - self.relative_performance

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.kernel_name} on {self.state.describe()} @ {self.power_cap_w:.0f}W: "
            f"RPerf={self.relative_performance:.3f} "
            f"(f={self.relative_frequency:.2f}, bound={self.bound})"
        )


@dataclass(frozen=True)
class CoRunResult:
    """Outcome of co-executing several applications under one partition state."""

    state: PartitionState
    power_cap_w: float
    per_app: tuple[RunResult, ...]
    chip_power_w: float
    relative_frequency: float

    @property
    def n_apps(self) -> int:
        """Number of co-located applications."""
        return len(self.per_app)

    @property
    def relative_performances(self) -> tuple[float, ...]:
        """Per-application relative performance, in application order."""
        return tuple(result.relative_performance for result in self.per_app)

    @property
    def weighted_speedup(self) -> float:
        """The paper's throughput metric: the sum of relative performances."""
        return float(sum(self.relative_performances))

    @property
    def fairness(self) -> float:
        """The paper's fairness metric: the minimum relative performance."""
        return float(min(self.relative_performances))

    @property
    def energy_efficiency(self) -> float:
        """The paper's Problem 2 objective: weighted speedup per watt of cap."""
        return self.weighted_speedup / self.power_cap_w

    def app_result(self, index: int) -> RunResult:
        """Result of application ``index`` (0-based)."""
        return self.per_app[index]

    def summary(self) -> str:
        """One-line human-readable summary."""
        apps = ", ".join(
            f"{r.kernel_name}={r.relative_performance:.3f}" for r in self.per_app
        )
        return (
            f"{self.state.describe()} @ {self.power_cap_w:.0f}W: "
            f"WS={self.weighted_speedup:.3f} fairness={self.fairness:.3f} ({apps})"
        )
