"""Execution simulator for the MIG-partitioned, power-capped GPU.

This package provides the "measured" side of the reproduction: given a
kernel model, a partition state, and a chip power cap it produces elapsed
times, relative performance, achieved bandwidth, clock throttling, and
profiler counters — the quantities the paper measures on a real A100.

Modules
-------
:mod:`repro.sim.roofline`
    Composition of the per-kernel time components (compute / memory /
    serial) for a given allocation and clock.
:mod:`repro.sim.interference`
    LLC and HBM-bandwidth contention between Compute Instances sharing a
    GPU Instance (the *shared* option); the *private* option is interference
    free by construction, as on the real hardware.
:mod:`repro.sim.noise`
    Deterministic measurement noise so that "measured" values differ from
    model predictions the way real runs do.
:mod:`repro.sim.counters`
    The simulated Nsight-Compute profiler producing the Table 3 counters.
:mod:`repro.sim.engine`
    :class:`~repro.sim.engine.PerformanceSimulator` — solo runs, co-runs,
    reference runs, and profiling.
:mod:`repro.sim.sweep`
    Convenience sweeps (scalability curves, co-run grids) used by the
    observation figures and by model training.
"""

from repro.sim.counters import CounterVector, collect_counters
from repro.sim.engine import PerformanceSimulator
from repro.sim.interference import InterferenceModel, InterferenceParams
from repro.sim.noise import NoiseModel
from repro.sim.results import CoRunResult, RunResult
from repro.sim.roofline import TimeComponents, bound_of, elapsed_time
from repro.sim.sweep import (
    ScalabilityPoint,
    corun_sweep,
    scalability_power_sweep,
    scalability_sweep,
)

__all__ = [
    "PerformanceSimulator",
    "CounterVector",
    "collect_counters",
    "InterferenceModel",
    "InterferenceParams",
    "NoiseModel",
    "RunResult",
    "CoRunResult",
    "TimeComponents",
    "elapsed_time",
    "bound_of",
    "ScalabilityPoint",
    "scalability_sweep",
    "scalability_power_sweep",
    "corun_sweep",
]
