"""Simulated Nsight-Compute profiler.

The paper collects eight performance counters per benchmark during a solo
profile run without MIG or power capping (Table 3):

====  ==========================  ===================================
F1    Compute Throughput [%]      SM compute-pipe utilization (SOL)
F2    Memory Throughput [%]       memory-subsystem utilization (SOL)
F3    DRAM Throughput [%]         achieved / peak HBM bandwidth
F4    L2 Hit Rate [%]             LLC hit rate
F5    Occupancy [%]               achieved SM occupancy
F6    Tensor (MIXED) [%]          FP16/BF16/TF32 Tensor-pipe utilization
F7    Tensor (DOUBLE) [%]         FP64 Tensor-pipe utilization
F8    Tensor (INTEGER) [%]        INT8/INT4 Tensor-pipe utilization
====  ==========================  ===================================

Here the counters are produced analytically from the kernel model evaluated
at the profile operating point (full chip, boost clock) — which is how a
well-behaved kernel's Nsight metrics relate to its roofline behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.spec import A100_SPEC, GPUSpec, Pipe
from repro.workloads.kernel import KernelCharacteristics

#: How much the L2/interconnect utilization exceeds the DRAM utilization for
#: cache-friendly kernels (a kernel that hits in L2 keeps the memory
#: subsystem busy without generating DRAM traffic).
_L2_TRAFFIC_AMPLIFICATION = 0.40


@dataclass(frozen=True)
class CounterVector:
    """The Table 3 performance counters of one benchmark (all in percent)."""

    compute_throughput: float
    memory_throughput: float
    dram_throughput: float
    l2_hit_rate: float
    occupancy: float
    tensor_mixed: float
    tensor_double: float
    tensor_int: float

    #: Counter names, in the paper's F1..F8 order.
    FIELD_ORDER = (
        "compute_throughput",
        "memory_throughput",
        "dram_throughput",
        "l2_hit_rate",
        "occupancy",
        "tensor_mixed",
        "tensor_double",
        "tensor_int",
    )

    def __post_init__(self) -> None:
        for name in self.FIELD_ORDER:
            value = getattr(self, name)
            if not (0.0 <= value <= 100.0 + 1e-9):
                raise ValueError(f"counter {name} must be in [0, 100], got {value}")

    # ------------------------------------------------------------------
    def as_array(self) -> np.ndarray:
        """The counters as a NumPy vector in F1..F8 order."""
        return np.array([getattr(self, name) for name in self.FIELD_ORDER], dtype=float)

    def as_dict(self) -> dict[str, float]:
        """The counters as a plain dictionary (JSON friendly)."""
        return {name: float(getattr(self, name)) for name in self.FIELD_ORDER}

    @classmethod
    def from_dict(cls, data: dict[str, float]) -> "CounterVector":
        """Rebuild a counter vector from :meth:`as_dict` output."""
        return cls(**{name: float(data[name]) for name in cls.FIELD_ORDER})

    @classmethod
    def from_array(cls, values: np.ndarray) -> "CounterVector":
        """Rebuild a counter vector from :meth:`as_array` output."""
        values = np.asarray(values, dtype=float)
        if values.shape != (len(cls.FIELD_ORDER),):
            raise ValueError(
                f"expected {len(cls.FIELD_ORDER)} counters, got shape {values.shape}"
            )
        return cls(**{name: float(v) for name, v in zip(cls.FIELD_ORDER, values)})

    @property
    def tensor_total(self) -> float:
        """Summed Tensor-pipe utilization (percent)."""
        return self.tensor_mixed + self.tensor_double + self.tensor_int


def collect_counters(
    kernel: KernelCharacteristics,
    spec: GPUSpec = A100_SPEC,
) -> CounterVector:
    """Profile a kernel: produce its Table 3 counter vector.

    The profile run matches the paper's methodology: exclusive solo run on
    the full GPU, MIG disabled, no power cap (the default limit is active
    but the profile operating point is taken at the boost clock — profile
    counters are utilization ratios and are insensitive to mild throttling).
    """
    elapsed = kernel.reference_time_s
    compute_util = min(1.0, kernel.compute_time_full_s / elapsed)
    dram_util = min(1.0, kernel.memory_time_full_s / elapsed)
    memory_subsystem_util = min(
        1.0, dram_util * (1.0 + _L2_TRAFFIC_AMPLIFICATION * kernel.l2_hit_rate)
    )

    def tensor_pct(pipe: Pipe) -> float:
        return 100.0 * compute_util * kernel.pipe_fractions.get(pipe, 0.0)

    return CounterVector(
        compute_throughput=100.0 * compute_util,
        memory_throughput=100.0 * memory_subsystem_util,
        dram_throughput=100.0 * dram_util,
        l2_hit_rate=100.0 * kernel.l2_hit_rate,
        occupancy=100.0 * kernel.occupancy,
        tensor_mixed=tensor_pct(Pipe.TENSOR_MIXED),
        tensor_double=tensor_pct(Pipe.TENSOR_DOUBLE),
        tensor_int=tensor_pct(Pipe.TENSOR_INT),
    )
