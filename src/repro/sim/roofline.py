"""Roofline-style time composition.

Each kernel is described by three time components (see
:class:`~repro.workloads.kernel.KernelCharacteristics`).  For a concrete
allocation and clock the components scale differently:

* **compute** scales inversely with the number of allocated GPCs and with
  the clock frequency;
* **memory** scales inversely with the DRAM bandwidth available to the
  application (its own slices under the private option, its contention-
  adjusted share under the shared option) and does not depend on the core
  clock;
* **serial** does not scale at all.

The elapsed time is the roofline composition ``max(compute, memory) +
serial``: compute and memory can overlap (GPUs overlap them aggressively),
the serial part cannot.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.gpu.spec import GPUSpec
from repro.workloads.kernel import KernelCharacteristics


@dataclass(frozen=True)
class TimeComponents:
    """Scaled time components of one application on one allocation."""

    compute_s: float
    memory_s: float
    serial_s: float

    def __post_init__(self) -> None:
        for label, value in (
            ("compute_s", self.compute_s),
            ("memory_s", self.memory_s),
            ("serial_s", self.serial_s),
        ):
            if value < 0:
                raise SimulationError(f"{label} must be non-negative, got {value}")

    @property
    def total_overlapped(self) -> float:
        """Elapsed time assuming perfect compute/memory overlap."""
        return max(self.compute_s, self.memory_s) + self.serial_s


def elapsed_time(components: TimeComponents) -> float:
    """Elapsed time of an application given its scaled time components."""
    return components.total_overlapped


def bound_of(components: TimeComponents) -> str:
    """Which component dominates: ``"compute"``, ``"memory"`` or ``"serial"``."""
    scalable = max(components.compute_s, components.memory_s)
    if components.serial_s >= scalable:
        return "serial"
    if components.compute_s >= components.memory_s:
        return "compute"
    return "memory"


def scale_components(
    kernel: KernelCharacteristics,
    spec: GPUSpec,
    gpcs: int,
    bandwidth_fraction: float,
    relative_frequency: float,
    compute_penalty: float = 1.0,
    memory_penalty: float = 1.0,
) -> TimeComponents:
    """Scale a kernel's full-chip time components to a concrete allocation.

    Parameters
    ----------
    kernel:
        The kernel model (times expressed for the full chip at boost clock).
    spec:
        Hardware specification (supplies the total GPC count).
    gpcs:
        Number of GPCs allocated to the application.
    bandwidth_fraction:
        DRAM bandwidth available to the application as a fraction of the
        full-chip peak (slice share for the private option, contention-
        adjusted share for the shared option).
    relative_frequency:
        Core clock as a fraction of the boost clock.
    compute_penalty, memory_penalty:
        Multiplicative interference penalties (>= 1) applied to the compute
        and memory components (1.0 when running alone or with the private
        option).
    """
    if not (0 < gpcs <= spec.n_gpcs):
        raise SimulationError(f"gpcs must be in (0, {spec.n_gpcs}], got {gpcs}")
    if not (0.0 < bandwidth_fraction <= 1.0 + 1e-9):
        raise SimulationError(
            f"bandwidth_fraction must be in (0, 1], got {bandwidth_fraction}"
        )
    if not (0.0 < relative_frequency <= 1.0 + 1e-9):
        raise SimulationError(
            f"relative_frequency must be in (0, 1], got {relative_frequency}"
        )
    if compute_penalty < 1.0 or memory_penalty < 1.0:
        raise SimulationError("interference penalties must be >= 1")

    compute = (
        kernel.compute_time_full_s
        * (spec.n_gpcs / gpcs)
        / relative_frequency
        * compute_penalty
    )
    memory = kernel.memory_time_full_s / bandwidth_fraction * memory_penalty
    return TimeComponents(
        compute_s=compute,
        memory_s=memory,
        serial_s=kernel.serial_time_s,
    )
