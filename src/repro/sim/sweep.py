"""Parameter sweeps over the simulator.

These helpers produce the raw data behind the paper's observation figures
(Figures 4–6) and the training measurements for the regression model:

* :func:`scalability_sweep` — solo relative performance vs. GPC count for
  both memory options at a fixed power cap (Figure 4).
* :func:`scalability_power_sweep` — solo relative performance vs. GPC count
  for several power caps at a fixed memory option (Figure 5).
* :func:`corun_sweep` — co-run results over partition states and power caps
  (Figure 6 and the training/evaluation grids).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.config import DEFAULT_POWER_CAPS, SCALABILITY_GPC_COUNTS
from repro.gpu.mig import CORUN_STATES, MemoryOption, PartitionState, solo_state
from repro.sim.engine import PerformanceSimulator
from repro.sim.results import CoRunResult
from repro.workloads.kernel import KernelCharacteristics


@dataclass(frozen=True)
class ScalabilityPoint:
    """One point of a solo scalability curve."""

    kernel_name: str
    gpcs: int
    option: MemoryOption
    power_cap_w: float
    relative_performance: float
    relative_frequency: float
    bound: str


def scalability_sweep(
    simulator: PerformanceSimulator,
    kernel: KernelCharacteristics,
    gpc_counts: Sequence[int] = SCALABILITY_GPC_COUNTS,
    options: Sequence[MemoryOption] = (MemoryOption.PRIVATE, MemoryOption.SHARED),
    power_cap_w: float = 250.0,
) -> tuple[ScalabilityPoint, ...]:
    """Solo relative performance of ``kernel`` vs. GPC count, per memory option."""
    points: list[ScalabilityPoint] = []
    for option in options:
        for gpcs in gpc_counts:
            run = simulator.solo_run(kernel, solo_state(gpcs, option), power_cap_w)
            points.append(
                ScalabilityPoint(
                    kernel_name=kernel.name,
                    gpcs=gpcs,
                    option=MemoryOption(option),
                    power_cap_w=power_cap_w,
                    relative_performance=run.relative_performance,
                    relative_frequency=run.relative_frequency,
                    bound=run.bound,
                )
            )
    return tuple(points)


def scalability_power_sweep(
    simulator: PerformanceSimulator,
    kernel: KernelCharacteristics,
    gpc_counts: Sequence[int] = SCALABILITY_GPC_COUNTS,
    power_caps: Sequence[float] = DEFAULT_POWER_CAPS,
    option: MemoryOption = MemoryOption.SHARED,
) -> tuple[ScalabilityPoint, ...]:
    """Solo relative performance vs. GPC count for several power caps."""
    points: list[ScalabilityPoint] = []
    for power_cap_w in power_caps:
        for gpcs in gpc_counts:
            run = simulator.solo_run(kernel, solo_state(gpcs, option), power_cap_w)
            points.append(
                ScalabilityPoint(
                    kernel_name=kernel.name,
                    gpcs=gpcs,
                    option=MemoryOption(option),
                    power_cap_w=power_cap_w,
                    relative_performance=run.relative_performance,
                    relative_frequency=run.relative_frequency,
                    bound=run.bound,
                )
            )
    return tuple(points)


def corun_sweep(
    simulator: PerformanceSimulator,
    kernels: Sequence[KernelCharacteristics],
    states: Sequence[PartitionState] = CORUN_STATES,
    power_caps: Sequence[float] = DEFAULT_POWER_CAPS,
) -> dict[tuple[tuple, float], CoRunResult]:
    """Co-run ``kernels`` across all combinations of state and power cap.

    Returns a mapping keyed by ``(state.key(), power_cap_w)``.
    """
    results: dict[tuple[tuple, float], CoRunResult] = {}
    for state in states:
        for power_cap_w in power_caps:
            results[(state.key(), float(power_cap_w))] = simulator.co_run(
                kernels, state, power_cap_w
            )
    return results


def group_points_by_option(
    points: Sequence[ScalabilityPoint],
) -> Mapping[MemoryOption, tuple[ScalabilityPoint, ...]]:
    """Group scalability points by memory option (curve per option)."""
    grouped: dict[MemoryOption, list[ScalabilityPoint]] = {}
    for point in points:
        grouped.setdefault(point.option, []).append(point)
    return {
        option: tuple(sorted(pts, key=lambda p: (p.power_cap_w, p.gpcs)))
        for option, pts in grouped.items()
    }


def group_points_by_power(
    points: Sequence[ScalabilityPoint],
) -> Mapping[float, tuple[ScalabilityPoint, ...]]:
    """Group scalability points by power cap (curve per cap)."""
    grouped: dict[float, list[ScalabilityPoint]] = {}
    for point in points:
        grouped.setdefault(point.power_cap_w, []).append(point)
    return {
        cap: tuple(sorted(pts, key=lambda p: p.gpcs)) for cap, pts in grouped.items()
    }
