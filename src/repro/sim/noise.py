"""Deterministic measurement noise.

Real measurements on the A100 are noisy (clock jitter, contention from the
host, thermal state).  The paper's model error (9.7 % / 14.5 %) partly
reflects that noise.  The simulator therefore perturbs every "measured"
elapsed time by a small multiplicative factor.

The noise is *deterministic*: the factor is a pure function of a key
describing the run (benchmark, partition state, power cap, role) and of the
seed.  Repeating the same run yields the same "measurement", which keeps the
whole evaluation reproducible and lets tests reason about exact values while
still giving the regression model something realistic to fight against.
"""

from __future__ import annotations

import hashlib
import math
import struct

from repro.errors import ConfigurationError


class NoiseModel:
    """Multiplicative log-normal measurement noise with deterministic draws."""

    def __init__(self, sigma: float = 0.03, seed: int = 2022) -> None:
        if sigma < 0:
            raise ConfigurationError(f"sigma must be non-negative, got {sigma}")
        self._sigma = float(sigma)
        self._seed = int(seed)

    @property
    def sigma(self) -> float:
        """Standard deviation of the underlying normal (log-scale)."""
        return self._sigma

    @property
    def seed(self) -> int:
        """Seed mixed into every draw."""
        return self._seed

    # ------------------------------------------------------------------
    def _standard_normal(self, key: tuple) -> float:
        """A deterministic standard-normal draw derived from ``key``.

        The key is serialized, hashed with SHA-256 (stable across processes,
        unlike Python's randomized ``hash``), and two 32-bit words of the
        digest drive a Box-Muller transform.
        """
        material = repr((self._seed, key)).encode("utf-8")
        digest = hashlib.sha256(material).digest()
        u1_raw, u2_raw = struct.unpack_from("<II", digest)
        # Map to (0, 1]; avoid u1 == 0 which would blow up the log.
        u1 = (u1_raw + 1) / 4294967296.0
        u2 = u2_raw / 4294967296.0
        return math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)

    def multiplier(self, key: tuple) -> float:
        """The multiplicative noise factor for a run identified by ``key``."""
        if self._sigma == 0.0:
            return 1.0
        draw = self._standard_normal(key)
        # Clip extreme draws so a single unlucky key cannot distort the
        # evaluation the way a 5-sigma outlier would.
        draw = max(-3.0, min(3.0, draw))
        return math.exp(self._sigma * draw)

    def apply(self, value: float, key: tuple) -> float:
        """Apply the noise factor for ``key`` to ``value``."""
        return value * self.multiplier(key)


def no_noise() -> NoiseModel:
    """A noise model that leaves every measurement untouched."""
    return NoiseModel(sigma=0.0)
