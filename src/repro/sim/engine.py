"""The execution engine: solo runs, co-runs, reference runs, profiling.

:class:`PerformanceSimulator` combines the other pieces of the substrate:

* the **roofline** composition scales a kernel's time components to its
  allocation (GPCs, memory slices) and to the current clock;
* the **interference model** adds LLC pollution and HBM-bandwidth contention
  between Compute Instances that share a GPU Instance (shared option);
* the **power model** plays the role of the driver's power-cap governor and
  throttles the chip clock until the modelled power fits under the cap;
* the **noise model** perturbs the final elapsed time the way real
  measurements wobble.

The simulator self-consistently resolves the circular dependencies between
these pieces (bandwidth shares depend on elapsed times, elapsed times depend
on the clock, the clock depends on utilizations, utilizations depend on
elapsed times) with a small fixed-point iteration nested inside the
governor's bisection.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Sequence

from repro.errors import SimulationError
from repro.gpu.mig import MemoryOption, PartitionState, solo_state
from repro.gpu.power import InstanceLoad, PowerModel
from repro.gpu.spec import A100_SPEC, GPUSpec
from repro.sim.counters import CounterVector, collect_counters
from repro.sim.interference import InterferenceModel
from repro.sim.noise import NoiseModel
from repro.sim.results import CoRunResult, RunResult
from repro.sim.roofline import TimeComponents, bound_of, elapsed_time
from repro.workloads.kernel import KernelCharacteristics

#: Iterations of the bandwidth-contention fixed point (damped; converges in
#: a handful of steps for small co-location groups).
_BANDWIDTH_ITERATIONS = 40

#: Damping factor of the fixed point (new = d*new + (1-d)*old).
_DAMPING = 0.6

#: Entries kept in the run-result memo (distinct (kernels, state, cap)
#: combinations; a bounded application mix stays far below this).
_RUN_CACHE_SIZE = 4096


@dataclass
class _Placement:
    """Internal description of one application's placement on the chip."""

    kernel: KernelCharacteristics
    gpcs: int
    #: Peak DRAM bandwidth reachable by this application, as a fraction of
    #: the full-chip bandwidth (its private slices, or its pool's capacity).
    bandwidth_capacity: float
    #: Identifier of the shared bandwidth pool (the GPU Instance) this
    #: application draws from, or ``None`` for a private placement.  Mixed
    #: partition states produce several independent pools.
    pool: int | None
    #: Interference penalties (>= 1); 1.0 for private/solo placements.
    compute_penalty: float = 1.0
    memory_penalty: float = 1.0


@dataclass
class _SolvedPlacement:
    """Converged execution state of one placement at a fixed clock."""

    components: TimeComponents
    elapsed_s: float
    dram_bw_fraction: float


class PerformanceSimulator:
    """Analytic executor for kernels on the simulated MIG/power-capped GPU.

    Parameters
    ----------
    spec:
        Hardware specification of the simulated GPU.
    interference:
        Interference model for the shared memory option (defaults to the
        calibrated :class:`~repro.sim.interference.InterferenceModel`).
    noise:
        Measurement-noise model; pass ``NoiseModel(sigma=0.0)`` (or
        :func:`repro.sim.noise.no_noise`) for exact, repeatable numbers.
    power_model:
        Chip power model / power-cap governor.
    """

    def __init__(
        self,
        spec: GPUSpec = A100_SPEC,
        interference: InterferenceModel | None = None,
        noise: NoiseModel | None = None,
        power_model: PowerModel | None = None,
    ) -> None:
        self._spec = spec
        self._interference = (
            interference if interference is not None else InterferenceModel(spec=spec)
        )
        self._noise = noise if noise is not None else NoiseModel()
        self._power = power_model if power_model is not None else PowerModel(spec)
        self._reference_cache: dict[tuple, float] = {}
        self._run_cache: OrderedDict[tuple, CoRunResult] = OrderedDict()
        # Signature memo keyed by object identity with a weakref guard: a
        # dead kernel's recycled address can never alias a fresh one, and
        # dead entries evict themselves via the ref callback.
        self._kernel_sig_cache: dict[
            int, tuple[weakref.ref[KernelCharacteristics], tuple]
        ] = {}

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def spec(self) -> GPUSpec:
        """The hardware specification in use."""
        return self._spec

    @property
    def interference(self) -> InterferenceModel:
        """The interference model in use."""
        return self._interference

    @property
    def noise(self) -> NoiseModel:
        """The measurement-noise model in use."""
        return self._noise

    @property
    def power_model(self) -> PowerModel:
        """The power model / governor in use."""
        return self._power

    # ------------------------------------------------------------------
    # Profiling and reference runs
    # ------------------------------------------------------------------
    def profile(self, kernel: KernelCharacteristics) -> CounterVector:
        """Collect the Table 3 counters of a solo, full-GPU profile run."""
        return collect_counters(kernel, self._spec)

    def reference_time(self, kernel: KernelCharacteristics) -> float:
        """Elapsed time of the exclusive solo run used for normalization.

        The paper normalizes every relative performance to a solo run on the
        full GPU (MIG disabled) at the default power limit.  The value is
        noise free: it is the fixed denominator of every ``RPerf``.
        """
        key = (
            kernel.name,
            kernel.compute_time_full_s,
            kernel.memory_time_full_s,
            kernel.serial_time_s,
        )
        cached = self._reference_cache.get(key)
        if cached is not None:
            return cached
        placement = _Placement(
            kernel=kernel,
            gpcs=self._spec.n_gpcs,
            bandwidth_capacity=1.0,
            pool=None,
        )
        solved, _, _ = self._solve(
            [placement],
            power_cap_w=self._spec.default_power_limit_w,
            powered_gpcs=self._spec.n_gpcs,
        )
        reference = solved[0].elapsed_s
        self._reference_cache[key] = reference
        return reference

    # ------------------------------------------------------------------
    # Runs
    # ------------------------------------------------------------------
    def solo_run(
        self,
        kernel: KernelCharacteristics,
        state: PartitionState | None = None,
        power_cap_w: float | None = None,
    ) -> RunResult:
        """Execute ``kernel`` alone on a (possibly partitioned) GPU.

        ``state`` must describe a single application; it defaults to the full
        MIG partition (7 GPCs, private).  ``power_cap_w`` defaults to the
        device's factory limit.
        """
        if state is None:
            state = solo_state(self._spec.mig_gpcs, MemoryOption.PRIVATE)
        if state.n_apps != 1:
            raise SimulationError(
                f"solo_run needs a single-application state, got {state.describe()}"
            )
        result = self._run(state, (kernel,), power_cap_w)
        return result.per_app[0]

    def co_run(
        self,
        kernels: Sequence[KernelCharacteristics],
        state: PartitionState,
        power_cap_w: float | None = None,
    ) -> CoRunResult:
        """Co-execute a group of ``kernels`` under partition state ``state``.

        The group may have any size the state describes (N >= 1): solo runs
        and the paper's pairs are the N=1 and N=2 special cases, and mixed
        states with several shared GPU Instances are resolved with one
        bandwidth pool per instance.
        """
        if state.n_apps != len(kernels):
            raise SimulationError(
                f"state {state.describe()} describes {state.n_apps} applications "
                f"but {len(kernels)} kernels were supplied"
            )
        return self._run(state, tuple(kernels), power_cap_w)

    # ------------------------------------------------------------------
    # Internal machinery
    # ------------------------------------------------------------------
    def _run(
        self,
        state: PartitionState,
        kernels: tuple[KernelCharacteristics, ...],
        power_cap_w: float | None,
    ) -> CoRunResult:
        cap = (
            self._spec.default_power_limit_w
            if power_cap_w is None
            else self._spec.validate_power_cap(power_cap_w)
        )
        # Every input below is deterministic — the roofline/interference/power
        # pipeline is a pure function of (kernels, state, cap) and the noise
        # model derives its perturbation from a content hash, not an RNG
        # stream — so identical runs can be answered from a memo.  The key
        # captures kernels *behaviourally* (dataclass fields, not identity),
        # includes ``state.label`` (``state.key()`` ignores it but the result
        # embeds the state object), and pins the noise parameters in case the
        # model is swapped in place.
        cache_key = (
            tuple(self._kernel_signature(kernel) for kernel in kernels),
            state.key(),
            state.label,
            cap,
            self._noise.sigma,
            self._noise.seed,
        )
        cached = self._run_cache.get(cache_key)
        if cached is not None:
            self._run_cache.move_to_end(cache_key)
            return cached
        # Validation is a pure function of the state's content, which the
        # cache key captures — a hit implies the state already validated.
        state.validate_against(self._spec)
        placements = self._build_placements(state, kernels)
        powered_gpcs = self._spec.mig_gpcs
        solved, frequency, chip_power = self._solve(placements, cap, powered_gpcs)

        per_app: list[RunResult] = []
        for index, (kernel, placement, solution) in enumerate(
            zip(kernels, placements, solved)
        ):
            reference = self.reference_time(kernel)
            noise_key = (
                kernel.name,
                state.key(),
                index,
                round(cap, 3),
            )
            measured = self._noise.apply(solution.elapsed_s, noise_key)
            per_app.append(
                RunResult(
                    kernel_name=kernel.name,
                    state=state,
                    app_index=index,
                    power_cap_w=cap,
                    elapsed_s=measured,
                    noiseless_elapsed_s=solution.elapsed_s,
                    reference_s=reference,
                    relative_performance=reference / measured,
                    relative_frequency=frequency,
                    compute_time_s=solution.components.compute_s,
                    memory_time_s=solution.components.memory_s,
                    serial_time_s=solution.components.serial_s,
                    achieved_bandwidth_gbs=solution.dram_bw_fraction
                    * self._spec.dram_bandwidth_gbs,
                    chip_power_w=chip_power,
                    bound=bound_of(solution.components),
                )
            )
        result = CoRunResult(
            state=state,
            power_cap_w=cap,
            per_app=tuple(per_app),
            chip_power_w=chip_power,
            relative_frequency=frequency,
        )
        self._run_cache[cache_key] = result
        if len(self._run_cache) > _RUN_CACHE_SIZE:
            self._run_cache.popitem(last=False)
        return result

    def _kernel_signature(self, kernel: KernelCharacteristics) -> tuple:
        """Hashable snapshot of every kernel field the pipeline reads.

        ``KernelCharacteristics`` itself is unhashable (``pipe_fractions``
        is a dict), so the memo keys on ``id(kernel)`` — with a weakref
        identity guard: the stored ref must still point at *this* kernel,
        so a dead kernel's recycled address can never alias a fresh one,
        and the ref's callback evicts the entry instead of pinning the
        kernel alive forever.
        """
        cache = self._kernel_sig_cache
        key = id(kernel)
        entry = cache.get(key)
        if entry is not None and entry[0]() is kernel:
            return entry[1]
        signature = (
            kernel.name,
            kernel.compute_time_full_s,
            kernel.memory_time_full_s,
            kernel.serial_time_s,
            tuple(sorted(kernel.pipe_fractions.items())),
            kernel.l2_hit_rate,
            kernel.occupancy,
            kernel.working_set_mb,
            kernel.l2_sensitivity,
        )
        try:
            ref = weakref.ref(kernel, lambda _, c=cache, k=key: c.pop(k, None))
        except TypeError:
            # A slotted kernel subclass without __weakref__: skip the memo
            # rather than risk an unguarded id-keyed entry.
            return signature
        cache[key] = (ref, signature)
        return signature

    def _build_placements(
        self,
        state: PartitionState,
        kernels: tuple[KernelCharacteristics, ...],
    ) -> list[_Placement]:
        """One placement per application; pools follow the scheme's domains.

        Interference (cache pollution, bandwidth contention) only couples
        applications that draw from the same *contended* memory domain —
        the spec's partition scheme decides the domains: one per GPU
        Instance on MIG-style parts (all applications under the shared
        option, the members of each ``gi_groups`` group under the mixed
        option, nobody under the private option), one per NPS domain on
        independent-axes parts.
        """
        placements: list[_Placement] = []
        pool_of: dict[int, int] = {}
        for pool_id, pool in enumerate(
            self._spec.scheme.memory_pools(self._spec, state)
        ):
            if pool.contended:
                for index in pool.members:
                    pool_of[index] = pool_id
        for index, kernel in enumerate(kernels):
            allocation = state.allocation_for(index, self._spec)
            bandwidth_capacity = allocation.mem_slices / self._spec.n_mem_slices
            co_located = state.group_of(index)
            others = [kernels[j] for j in co_located if j != index]
            if others:
                # Contention happens inside the hosting memory domain, whose
                # LLC share is proportional to its memory slices — a
                # sub-chip shared GI (mixed layouts) is polluted harder
                # than the full-chip pool by the same co-runner.
                compute_penalty = self._interference.compute_penalty(
                    kernel, others, pool_mem_slices=allocation.mem_slices
                )
                memory_penalty = self._interference.memory_penalty(
                    kernel, others, pool_mem_slices=allocation.mem_slices
                )
            else:
                compute_penalty = 1.0
                memory_penalty = 1.0
            placements.append(
                _Placement(
                    kernel=kernel,
                    gpcs=allocation.gpcs,
                    bandwidth_capacity=bandwidth_capacity,
                    pool=pool_of.get(index),
                    compute_penalty=compute_penalty,
                    memory_penalty=memory_penalty,
                )
            )
        return placements

    # ------------------------------------------------------------------
    def _solve(
        self,
        placements: Sequence[_Placement],
        power_cap_w: float,
        powered_gpcs: int,
    ) -> tuple[list[_SolvedPlacement], float, float]:
        """Resolve clock, bandwidth shares, and elapsed times under the cap."""

        def loads_at(frequency: float) -> list[InstanceLoad]:
            solved = self._solve_at_frequency(placements, frequency)
            return self._loads_from_solution(placements, solved)

        frequency = self._power.max_frequency_under_cap(
            loads_at, power_cap_w, powered_gpcs=powered_gpcs
        )
        solved = self._solve_at_frequency(placements, frequency)
        loads = self._loads_from_solution(placements, solved)
        chip_power = self._power.total_power(loads, frequency, powered_gpcs)
        return solved, frequency, chip_power

    def _solve_at_frequency(
        self,
        placements: Sequence[_Placement],
        frequency: float,
    ) -> list[_SolvedPlacement]:
        """Fixed point of the bandwidth-contention problem at a given clock."""
        spec = self._spec
        n = len(placements)
        compute_times = [
            p.kernel.compute_time_full_s
            * (spec.n_gpcs / p.gpcs)
            / frequency
            * p.compute_penalty
            for p in placements
        ]
        # Memory time at full-chip bandwidth, including the pollution penalty.
        memory_full = [
            p.kernel.memory_time_full_s * p.memory_penalty for p in placements
        ]
        serial_times = [p.kernel.serial_time_s for p in placements]

        # Initial guess: everyone sees their full capacity.
        memory_times = [
            (memory_full[i] / placements[i].bandwidth_capacity if memory_full[i] > 0 else 0.0)
            for i in range(n)
        ]
        elapsed = [
            max(compute_times[i], memory_times[i]) + serial_times[i] for i in range(n)
        ]

        pools: dict[int, list[int]] = {}
        for i in range(n):
            if placements[i].pool is not None:
                pools.setdefault(placements[i].pool, []).append(i)
        for shared_indices in pools.values():
            if len(shared_indices) <= 1:
                continue
            pool_capacity = max(
                placements[i].bandwidth_capacity for i in shared_indices
            )
            for _ in range(_BANDWIDTH_ITERATIONS):
                demands = {
                    i: (memory_full[i] / elapsed[i] if elapsed[i] > 0 else 0.0)
                    for i in shared_indices
                }
                total_demand = sum(demands.values())
                new_elapsed = list(elapsed)
                for i in shared_indices:
                    if memory_full[i] <= 0:
                        continue
                    others_demand = total_demand - demands[i]
                    if total_demand > 0:
                        proportional = pool_capacity * demands[i] / total_demand
                    else:
                        proportional = pool_capacity
                    available = max(pool_capacity - others_demand, proportional)
                    available = min(available, placements[i].bandwidth_capacity)
                    available = max(available, 1e-6)
                    memory_times[i] = memory_full[i] / available
                    new_elapsed[i] = (
                        max(compute_times[i], memory_times[i]) + serial_times[i]
                    )
                converged = True
                for i in shared_indices:
                    blended = _DAMPING * new_elapsed[i] + (1.0 - _DAMPING) * elapsed[i]
                    if abs(blended - elapsed[i]) > 1e-9 * max(elapsed[i], 1e-9):
                        converged = False
                    elapsed[i] = blended
                if converged:
                    break
            # Recompute elapsed exactly from the final memory times.
            for i in shared_indices:
                elapsed[i] = max(compute_times[i], memory_times[i]) + serial_times[i]

        solved: list[_SolvedPlacement] = []
        for i in range(n):
            components = TimeComponents(
                compute_s=compute_times[i],
                memory_s=memory_times[i],
                serial_s=serial_times[i],
            )
            total = elapsed_time(components)
            dram_bw_fraction = memory_full[i] / total if total > 0 else 0.0
            solved.append(
                _SolvedPlacement(
                    components=components,
                    elapsed_s=total,
                    dram_bw_fraction=min(1.0, dram_bw_fraction),
                )
            )
        return solved

    def _loads_from_solution(
        self,
        placements: Sequence[_Placement],
        solved: Sequence[_SolvedPlacement],
    ) -> list[InstanceLoad]:
        loads: list[InstanceLoad] = []
        for placement, solution in zip(placements, solved):
            if solution.elapsed_s <= 0:
                busy_fraction = 0.0
            else:
                busy_fraction = min(
                    1.0, solution.components.compute_s / solution.elapsed_s
                )
            loads.append(
                InstanceLoad(
                    n_gpcs=placement.gpcs,
                    cuda_utilization=busy_fraction * placement.kernel.cuda_fraction,
                    tensor_utilization=busy_fraction * placement.kernel.tensor_fraction,
                    dram_bw_fraction=solution.dram_bw_fraction,
                )
            )
        return loads
