"""Interference between applications that share a memory domain.

Partitioning isolates memory resources *between* memory domains (GPU
Instances on MIG, NPS partitions on independent-axes parts) but not between
the applications *inside* one domain.  The paper's shared option therefore
trades isolation for bandwidth: a memory-hungry application can use the
whole pool's HBM bandwidth, but every co-located application now contends
for the pool's LLC share and for that bandwidth.

Two effects are modelled:

* **LLC pollution** — a co-runner with a large working set evicts the
  application's cache lines.  This both increases DRAM traffic (memory-time
  penalty) and adds latency stalls to the compute pipes (compute-time
  penalty).  How strongly an application suffers is its
  ``l2_sensitivity``; how much pressure a co-runner exerts grows with its
  working-set size relative to the LLC capacity and with its bandwidth
  appetite.
* **Bandwidth contention** — when the combined DRAM demand exceeds the
  available bandwidth, each application receives a share proportional to its
  demand (a reasonable approximation of HBM arbitration under saturation).

Under the private option both effects are zero by construction, mirroring
the hardware guarantee the paper relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError, SimulationError
from repro.gpu.spec import A100_SPEC, GPUSpec
from repro.workloads.kernel import KernelCharacteristics


@dataclass(frozen=True)
class InterferenceParams:
    """Tunable strengths of the two interference mechanisms.

    Attributes
    ----------
    compute_l2_alpha:
        Maximum fractional compute-time inflation caused by a fully
        polluting co-runner on a fully sensitive application.
    memory_l2_alpha:
        Maximum fractional memory-time inflation from the same cause.
    bandwidth_pressure_weight:
        How much a co-runner's *bandwidth* appetite (as opposed to its
        working-set size) contributes to the cache pressure it exerts.
    """

    compute_l2_alpha: float = 0.45
    memory_l2_alpha: float = 0.35
    bandwidth_pressure_weight: float = 0.35

    def __post_init__(self) -> None:
        for label, value in (
            ("compute_l2_alpha", self.compute_l2_alpha),
            ("memory_l2_alpha", self.memory_l2_alpha),
            ("bandwidth_pressure_weight", self.bandwidth_pressure_weight),
        ):
            if not (0.0 <= value <= 2.0):
                raise ConfigurationError(f"{label} must be in [0, 2], got {value}")


class InterferenceModel:
    """LLC/HBM contention model for applications sharing a memory domain."""

    def __init__(
        self,
        params: InterferenceParams | None = None,
        spec: GPUSpec = A100_SPEC,
    ) -> None:
        self._params = params if params is not None else InterferenceParams()
        self._spec = spec

    @property
    def params(self) -> InterferenceParams:
        """The interference strengths in use."""
        return self._params

    @property
    def spec(self) -> GPUSpec:
        """The hardware specification in use."""
        return self._spec

    # ------------------------------------------------------------------
    # Cache pressure / penalties
    # ------------------------------------------------------------------
    def _pool_llc_mb(self, pool_mem_slices: int | None) -> float:
        """LLC capacity of the contended pool (the hosting memory domain).

        ``None`` means the full chip.  Partition schemes distribute the LLC
        with the memory domains (MIG ties it to a GI's slices, NPS modes to
        the stacks of a partition), so a sub-chip pool only owns a
        proportional share — the same co-runner working set pollutes a far
        larger fraction of it.  The parameter keeps its historical
        ``pool_mem_slices`` name; it counts the pool's memory domains on
        any scheme.
        """
        if pool_mem_slices is None or pool_mem_slices == self._spec.n_mem_slices:
            return self._spec.l2_cache_mb
        if not (0 < pool_mem_slices <= self._spec.n_mem_slices):
            raise SimulationError(
                f"pool_mem_slices must be in (0, {self._spec.n_mem_slices}], "
                f"got {pool_mem_slices}"
            )
        return self._spec.l2_cache_mb * pool_mem_slices / self._spec.n_mem_slices

    def cache_pressure(
        self,
        co_runner: KernelCharacteristics,
        pool_mem_slices: int | None = None,
    ) -> float:
        """How much LLC pressure ``co_runner`` exerts, in ``[0, 1]``.

        Pressure grows with the co-runner's working set relative to the
        pool's LLC capacity (see :meth:`_pool_llc_mb`) and, to a lesser
        extent, with its DRAM-bandwidth appetite (streaming kernels keep
        refilling the cache even if a single pass fits).
        """
        footprint = min(
            1.0, co_runner.working_set_mb / self._pool_llc_mb(pool_mem_slices)
        )
        bandwidth_appetite = min(
            1.0,
            co_runner.memory_time_full_s / max(co_runner.reference_time_s, 1e-12),
        )
        weight = self._params.bandwidth_pressure_weight
        return min(1.0, footprint * (1.0 - weight) + bandwidth_appetite * weight)

    def compute_penalty(
        self,
        kernel: KernelCharacteristics,
        co_runners: Sequence[KernelCharacteristics],
        pool_mem_slices: int | None = None,
    ) -> float:
        """Multiplier (>= 1) on the compute time caused by LLC pollution."""
        if not co_runners:
            return 1.0
        pressure = max(
            self.cache_pressure(other, pool_mem_slices) for other in co_runners
        )
        return 1.0 + self._params.compute_l2_alpha * kernel.l2_sensitivity * pressure

    def memory_penalty(
        self,
        kernel: KernelCharacteristics,
        co_runners: Sequence[KernelCharacteristics],
        pool_mem_slices: int | None = None,
    ) -> float:
        """Multiplier (>= 1) on the memory time caused by LLC pollution."""
        if not co_runners:
            return 1.0
        pressure = max(
            self.cache_pressure(other, pool_mem_slices) for other in co_runners
        )
        return 1.0 + self._params.memory_l2_alpha * kernel.l2_sensitivity * pressure

    # ------------------------------------------------------------------
    # Bandwidth arbitration
    # ------------------------------------------------------------------
    def share_bandwidth(
        self,
        demands_gbs: Sequence[float],
        capacity_gbs: float,
    ) -> tuple[float, ...]:
        """Bandwidth granted to each application under contention.

        When the summed demand fits within ``capacity_gbs`` every application
        receives exactly what it asks for; otherwise the capacity is split in
        proportion to demand.
        """
        if capacity_gbs <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity_gbs}")
        demands = [max(0.0, float(d)) for d in demands_gbs]
        total = sum(demands)
        if total <= capacity_gbs or total <= 0.0:
            return tuple(demands)
        scale = capacity_gbs / total
        return tuple(d * scale for d in demands)


class NoInterference(InterferenceModel):
    """An interference model with every effect disabled.

    Used by the ablation benchmarks to quantify how much of the shared-option
    behaviour (and of the model's interference term) comes from contention.
    """

    def __init__(self, spec: GPUSpec = A100_SPEC) -> None:
        super().__init__(
            InterferenceParams(
                compute_l2_alpha=0.0,
                memory_l2_alpha=0.0,
                bandwidth_pressure_weight=0.0,
            ),
            spec,
        )

    def share_bandwidth(
        self,
        demands_gbs: Sequence[float],
        capacity_gbs: float,
    ) -> tuple[float, ...]:
        """Still arbitrate bandwidth (physics), but exert no cache pressure."""
        return super().share_bandwidth(demands_gbs, capacity_gbs)
