"""Jobs as seen by the cluster-level job manager."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import SchedulingError
from repro.workloads.kernel import KernelCharacteristics


class JobState(str, Enum):
    """Lifecycle of a job inside the job manager."""

    #: Submitted, waiting in the queue.
    PENDING = "pending"
    #: Running exclusively to collect its profile (first run).
    PROFILING = "profiling"
    #: Running (possibly co-located) on a compute node.
    RUNNING = "running"
    #: Finished.
    COMPLETED = "completed"


#: Lifecycle order used to enforce forward-only transitions.
_STATE_RANK = {state: rank for rank, state in enumerate(JobState)}


@dataclass
class Job:
    """One GPU job: a kernel plus scheduling metadata.

    Attributes
    ----------
    job_id:
        Unique identifier assigned by the queue.
    kernel:
        The workload the job executes (its name is the profile-database key).
    submit_time:
        Simulated submission time in seconds.
    state:
        Current lifecycle state.
    start_time, finish_time:
        Simulated execution interval (set by the scheduler).
    assigned_device:
        UUID of the MIG Compute Instance the job was launched on, if any.
    co_runner:
        ``job_id`` of the first job it was co-scheduled with, if any (kept
        for pair-era compatibility; see ``co_runners``).
    co_runners:
        ``job_id`` of every job sharing the GPU in the same co-location
        group (empty for exclusive runs).
    """

    job_id: int
    kernel: KernelCharacteristics
    submit_time: float = 0.0
    state: JobState = JobState.PENDING
    start_time: float | None = None
    finish_time: float | None = None
    assigned_device: str | None = None
    co_runner: int | None = None
    co_runners: tuple[int, ...] = ()
    history: list[str] = field(default_factory=list)

    @property
    def name(self) -> str:
        """The workload name of the job."""
        return self.kernel.name

    @property
    def turnaround_time(self) -> float:
        """Completion time minus submission time (requires a finished job)."""
        if self.finish_time is None:
            raise SchedulingError(f"job {self.job_id} has not finished yet")
        return self.finish_time - self.submit_time

    @property
    def runtime(self) -> float:
        """Execution time on the node (requires a finished job)."""
        if self.finish_time is None or self.start_time is None:
            raise SchedulingError(f"job {self.job_id} has not finished yet")
        return self.finish_time - self.start_time

    def mark(self, event: str) -> None:
        """Append a human-readable event to the job's history."""
        self.history.append(event)

    def transition(self, new_state: JobState) -> None:
        """Move the job to ``new_state`` (enforcing a forward-only lifecycle)."""
        if _STATE_RANK[new_state] < _STATE_RANK[self.state]:
            raise SchedulingError(
                f"job {self.job_id}: illegal transition {self.state.value} -> {new_state.value}"
            )
        self.state = new_state
