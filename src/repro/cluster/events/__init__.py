"""Discrete-event simulation of the cluster: heap, clock, events, simulator.

* :mod:`repro.cluster.events.events` — the event heap, simulation clock,
  and the four event types (arrival, completion, repartition, rebalance).
* :mod:`repro.cluster.events.simulator` — :class:`ClusterSimulator`, the
  event loop driving the co-scheduler, nodes, and power manager.
* :mod:`repro.cluster.events.report` — :class:`SimulationReport` online
  metrics (tail latencies, utilization, energy-to-solution).
"""

from repro.cluster.events.events import (
    ArrivalEvent,
    CompletionEvent,
    Event,
    EventHeap,
    PowerRebalanceEvent,
    RepartitionEvent,
    SimulationClock,
)
from repro.cluster.events.report import LatencyStats, SimulationReport
from repro.cluster.events.simulator import ClusterSimulator, SimulationConfig

__all__ = [
    "ArrivalEvent",
    "CompletionEvent",
    "Event",
    "EventHeap",
    "PowerRebalanceEvent",
    "RepartitionEvent",
    "SimulationClock",
    "LatencyStats",
    "SimulationReport",
    "ClusterSimulator",
    "SimulationConfig",
]
