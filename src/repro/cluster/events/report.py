"""Online metrics emitted by the event-driven cluster simulator."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.cluster.job import Job
from repro.errors import SimulationError


@dataclass(frozen=True)
class LatencyStats:
    """Mean and tail percentiles of one latency population (seconds)."""

    mean_s: float
    p50_s: float
    p95_s: float
    p99_s: float
    max_s: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencyStats":
        """Compute the statistics from raw samples (must be non-empty)."""
        if not samples:
            raise SimulationError("cannot compute latency statistics of zero samples")
        values = np.asarray(samples, dtype=float)
        p50, p95, p99 = np.percentile(values, (50.0, 95.0, 99.0))
        return cls(
            mean_s=float(values.mean()),
            p50_s=float(p50),
            p95_s=float(p95),
            p99_s=float(p99),
            max_s=float(values.max()),
        )

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"mean={self.mean_s:.2f}s p50={self.p50_s:.2f}s "
            f"p95={self.p95_s:.2f}s p99={self.p99_s:.2f}s max={self.max_s:.2f}s"
        )


@dataclass(frozen=True)
class SimulationReport:
    """Outcome of replaying one trace through the event-driven cluster.

    Attributes
    ----------
    label:
        Trace label the run replayed.
    jobs:
        Every completed job, in completion order.
    n_nodes:
        Number of compute nodes in the cluster.
    makespan_s:
        Time of the last completion (arrival of the first job is ``t=0``).
    sustained_throughput_jobs_per_s:
        Completed jobs divided by the makespan.
    wait, turnaround:
        Latency statistics of queue wait (dispatch minus submission) and
        turnaround (completion minus submission).
    utilization:
        Fraction of total node-time spent serving jobs (MIG reconfiguration
        windows count as busy but are also reported separately).
    energy_wh:
        Modelled energy-to-solution of every dispatch (chip power integrated
        over each run window), in watt-hours.
    co_scheduled_jobs, exclusive_jobs, profile_runs:
        How jobs were executed; profile runs are also exclusive runs.
    events_processed:
        Total events the loop consumed (heap pops).
    repartitions, repartition_time_s, mig_instance_changes:
        MIG layout changes performed, the total latency they added, and the
        number of GPU Instances created/destroyed across them (the latency
        scales with this count; re-binding jobs onto an unchanged GI
        multiset is free).
    power_rebalances:
        How often the cluster power budget was re-distributed.
    final_power_allocation_w:
        Per-node power caps after the last rebalance (empty when no budget
        was configured).
    peak_queue_length:
        Largest number of jobs that were pending at once.
    """

    label: str
    jobs: tuple[Job, ...]
    n_nodes: int
    makespan_s: float
    sustained_throughput_jobs_per_s: float
    wait: LatencyStats
    turnaround: LatencyStats
    utilization: float
    energy_wh: float
    co_scheduled_jobs: int
    exclusive_jobs: int
    profile_runs: int
    events_processed: int
    repartitions: int
    repartition_time_s: float
    mig_instance_changes: int
    power_rebalances: int
    final_power_allocation_w: Mapping[int, float]
    peak_queue_length: int

    @property
    def n_jobs(self) -> int:
        """Total number of completed jobs."""
        return len(self.jobs)

    @property
    def mean_turnaround_s(self) -> float:
        """Mean turnaround (parity field with the batch ScheduleReport)."""
        return self.turnaround.mean_s

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"[{self.label}] {self.n_jobs} jobs on {self.n_nodes} node(s): "
            f"makespan={self.makespan_s:.2f}s "
            f"throughput={self.sustained_throughput_jobs_per_s:.3f} jobs/s",
            f"  wait:       {self.wait.describe()}",
            f"  turnaround: {self.turnaround.describe()}",
            f"  utilization={self.utilization:.1%}  energy={self.energy_wh:.1f} Wh",
            f"  co-scheduled {self.co_scheduled_jobs}, exclusive {self.exclusive_jobs} "
            f"(of which {self.profile_runs} profile runs)",
            f"  events={self.events_processed}  repartitions={self.repartitions} "
            f"({self.mig_instance_changes} GI changes, "
            f"+{self.repartition_time_s:.1f}s)  rebalances={self.power_rebalances}  "
            f"peak queue={self.peak_queue_length}",
        ]
        if self.final_power_allocation_w:
            caps = ", ".join(
                f"node{node_id}={cap:.0f}W"
                for node_id, cap in sorted(self.final_power_allocation_w.items())
            )
            lines.append(f"  power allocation: {caps}")
        return "\n".join(lines)
