"""Event primitives of the discrete-event cluster simulator.

The simulator's future is a binary heap of typed events ordered by
``(time, priority, sequence)``.  The priority breaks ties at identical
timestamps deterministically — completions free nodes before new arrivals
are enqueued, and both precede the power rebalance that reacts to them —
and the monotonically increasing sequence number makes the order of equal
``(time, priority)`` events stable (insertion order), which is what keeps
the all-at-t=0 replay bit-identical to the batch job manager.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import ClassVar, Iterable

from repro.cluster.job import Job
from repro.errors import SimulationError
from repro.traces.trace import TraceEntry
from repro.workloads.kernel import KernelCharacteristics


@dataclass(frozen=True)
class Event:
    """Base class of everything that can be scheduled on the event heap."""

    #: Tie-break rank at identical timestamps (lower fires first).
    priority: ClassVar[int] = 50

    time: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.time) or self.time < 0:
            raise SimulationError(f"event time must be finite and >= 0, got {self.time}")

    def describe(self) -> str:
        """One-line human-readable summary."""
        return f"t={self.time:.2f}s {type(self).__name__}"


@dataclass(frozen=True)
class CompletionEvent(Event):
    """A node finished its dispatched job group and becomes free."""

    priority: ClassVar[int] = 10

    node_id: int
    jobs: tuple[Job, ...]

    def describe(self) -> str:
        names = ", ".join(job.name for job in self.jobs)
        return f"t={self.time:.2f}s complete node{self.node_id} [{names}]"


@dataclass(frozen=True)
class RepartitionEvent(Event):
    """A node finished reconfiguring its MIG layout and may serve jobs."""

    priority: ClassVar[int] = 20

    node_id: int
    previous_layout: str
    next_layout: str

    def describe(self) -> str:
        return (
            f"t={self.time:.2f}s repartition node{self.node_id} "
            f"{self.previous_layout} -> {self.next_layout}"
        )


@dataclass(frozen=True)
class ArrivalEvent(Event):
    """One trace entry arrives and is submitted to the job queue."""

    priority: ClassVar[int] = 30

    entry: TraceEntry
    kernel: KernelCharacteristics

    def describe(self) -> str:
        return f"t={self.time:.2f}s arrive {self.entry.app}"


@dataclass(frozen=True)
class PowerRebalanceEvent(Event):
    """The cluster power budget is re-distributed across the nodes."""

    priority: ClassVar[int] = 40

    reason: str = "load change"

    def describe(self) -> str:
        return f"t={self.time:.2f}s power rebalance ({self.reason})"


class SimulationClock:
    """Monotonic simulation time."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, time: float) -> float:
        """Move the clock forward to ``time`` (never backwards)."""
        if time < self._now:
            raise SimulationError(
                f"the simulation clock cannot move backwards "
                f"({self._now:.6f}s -> {time:.6f}s)"
            )
        self._now = float(time)
        return self._now


class EventHeap:
    """A stable min-heap of :class:`Event` objects.

    Entries are plain ``(time, priority, sequence, event)`` tuples so heap
    comparisons run at C speed; the unique sequence number guarantees the
    comparison never reaches the (incomparable) event object and keeps
    equal ``(time, priority)`` events in insertion order.
    """

    __slots__ = ("_heap", "_sequence")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._sequence = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def empty(self) -> bool:
        """Whether no future events remain."""
        return not self._heap

    def push(self, event: Event) -> None:
        """Schedule ``event``."""
        heapq.heappush(
            self._heap, (event.time, type(event).priority, self._sequence, event)
        )
        self._sequence += 1

    def push_many(self, events: Iterable[Event]) -> None:
        """Schedule a whole batch of events in O(n + len(heap)).

        Bulk-loading a trace event by event costs O(n log n) sift-ups;
        appending every entry and re-heapifying once is O(n) and yields the
        exact same pop order (the ``(time, priority, sequence)`` key is a
        total order, so any valid heap drains identically).
        """
        heap = self._heap
        sequence = self._sequence
        for event in events:
            heap.append((event.time, type(event).priority, sequence, event))
            sequence += 1
        self._sequence = sequence
        heapq.heapify(heap)

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise SimulationError("the event heap is empty")
        return heapq.heappop(self._heap)[3]

    def peek_time(self) -> float:
        """Timestamp of the earliest event (heap must be non-empty)."""
        if not self._heap:
            raise SimulationError("the event heap is empty")
        return self._heap[0][0]

    def pop_batch(self) -> tuple[Event, ...]:
        """Remove and return every event sharing the earliest timestamp.

        Processing simultaneous events as one batch before any dispatch
        decision is what lets a completion and an arrival at the same
        instant see each other — exactly like the batch scheduler's
        single-timestep view of the queue.
        """
        heap = self._heap
        if not heap:
            raise SimulationError("the event heap is empty")
        now = heap[0][0]
        batch = []
        while heap and heap[0][0] == now:
            batch.append(heapq.heappop(heap)[3])
        return tuple(batch)
