"""The event-driven cluster simulator: online arrivals over the co-scheduler.

Where :class:`repro.cluster.manager.JobManager` drains a batch queue that is
fully populated at ``t=0``, this module replays a :class:`repro.traces.Trace`
through a discrete-event loop: jobs enter the queue at their arrival times,
dispatch decisions reuse the same :class:`CoScheduler` (and through it the
batched :class:`OnlineAllocator`), MIG reconfigurations incur a configurable
latency before the new partition layout serves jobs, and a cluster-wide
power budget is re-split by the :class:`ClusterPowerManager` whenever the
load changes.  The all-at-t=0 trace is the degenerate case and reproduces
the batch job manager's schedule exactly (parity-tested).
"""

from __future__ import annotations

import heapq
from collections import Counter
from dataclasses import dataclass, field, replace

import numpy as np

from repro.cluster.events.events import (
    ArrivalEvent,
    CompletionEvent,
    Event,
    EventHeap,
    PowerRebalanceEvent,
    RepartitionEvent,
    SimulationClock,
)
from repro.cluster.events.report import LatencyStats, SimulationReport
from repro.cluster.job import Job
from repro.cluster.node import ComputeNode
from repro.cluster.powerbudget import ClusterPowerManager
from repro.cluster.queue import JobQueue
from repro.cluster.scheduler import CoScheduler, DispatchPlan, SchedulerConfig
from repro.core.workflow import OnlineAllocator, PaperWorkflow
from repro.errors import ConfigurationError, SimulationError
from repro.gpu.mig import PartitionState
from repro.sim.engine import PerformanceSimulator
from repro.traces.trace import Trace
from repro.workloads.suite import BenchmarkSuite

#: Layout signature for exclusive (full-GPU, MIG-less) dispatches: no GPU
#: Instances exist, MIG mode is off.
_EXCLUSIVE_LAYOUT: tuple[int, ...] = ()


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs of the event-driven simulation (on top of the scheduler's).

    Attributes
    ----------
    repartition_latency_s:
        Latency per GPU Instance created or destroyed when a node's MIG
        layout changes (plus one unit when MIG mode itself is toggled for
        an exclusive full-GPU dispatch).  A dispatch starts late by this
        value times the size of the GI diff between the layout the node
        last served and the new one; layouts sharing their whole GI
        multiset (e.g. S1 -> S2, which only re-binds jobs to existing
        instances) reconfigure for free, which is how jobs on untouched
        instances keep running through a reconfiguration.  0 restores the
        batch manager's free reconfiguration.
    power_budget_w:
        Cluster-wide GPU power budget split across nodes by the
        :class:`ClusterPowerManager`.  ``None`` (the default) leaves every
        node free to use the cap its allocation decision asked for.
    """

    repartition_latency_s: float = 0.0
    power_budget_w: float | None = None

    def __post_init__(self) -> None:
        if self.repartition_latency_s < 0:
            raise ConfigurationError(
                f"repartition_latency_s must be >= 0, got {self.repartition_latency_s}"
            )
        if self.power_budget_w is not None and self.power_budget_w <= 0:
            raise ConfigurationError(
                f"power_budget_w must be positive, got {self.power_budget_w}"
            )


@dataclass
class _RunState:
    """Mutable bookkeeping of one :meth:`ClusterSimulator.run` call."""

    queue: JobQueue
    heap: EventHeap = field(default_factory=EventHeap)
    clock: SimulationClock = field(default_factory=SimulationClock)
    completed: list[Job] = field(default_factory=list)
    layouts: dict[int, tuple[int, ...]] = field(default_factory=dict)
    shares: dict[int, float] = field(default_factory=dict)
    #: Min-heap of *positions* into the node list that are currently free.
    #: Maintained incrementally (popped at dispatch, pushed at completion)
    #: so dispatch cost scales with the number of free nodes, not fleet
    #: size; position order reproduces the original node-list scan order.
    free_nodes: list[int] = field(default_factory=list)
    #: Per-node power demand arrays (positions parallel to the node list);
    #: ``None`` unless a cluster power budget is configured.
    desired_w: np.ndarray | None = None
    minimum_w: np.ndarray | None = None
    minimum_total_w: float = 0.0
    #: Whether any node changed busy state (and hence demand) since the
    #: last budget split; clean rebalances reuse the previous shares.
    power_dirty: bool = True
    events_processed: int = 0
    service_time_s: float = 0.0
    energy_j: float = 0.0
    repartitions: int = 0
    repartition_time_s: float = 0.0
    instance_changes: int = 0
    rebalances: int = 0
    rebalance_pending: bool = False
    profile_runs: int = 0
    peak_queue_length: int = 0


class ClusterSimulator:
    """Drive the co-scheduler, nodes, and power manager from an event loop."""

    def __init__(
        self,
        allocator: OnlineAllocator,
        nodes: list[ComputeNode],
        scheduler_config: SchedulerConfig | None = None,
        config: SimulationConfig | None = None,
        power_manager: ClusterPowerManager | None = None,
    ) -> None:
        if not nodes:
            raise ConfigurationError("the cluster needs at least one node")
        self._allocator = allocator
        self._nodes = list(nodes)
        self._scheduler = CoScheduler(allocator, scheduler_config)
        self._config = config if config is not None else SimulationConfig()
        spec = self._nodes[0].spec
        self._spec = spec
        self._power_manager = (
            power_manager if power_manager is not None else ClusterPowerManager(spec)
        )
        if self._config.power_budget_w is not None:
            minimum = spec.min_power_cap_w * len(self._nodes)
            if self._config.power_budget_w < minimum:
                raise ConfigurationError(
                    f"power budget {self._config.power_budget_w} W cannot cover "
                    f"{len(self._nodes)} nodes at the minimum cap "
                    f"({spec.min_power_cap_w} W each)"
                )
        self._solo_power_cache: dict[str, float] = {}
        self._layout_cache: dict[PartitionState, tuple[int, ...]] = {}
        self._node_ids = [node.node_id for node in self._nodes]
        self._node_position = {
            node.node_id: position for position, node in enumerate(self._nodes)
        }
        if len(self._node_position) != len(self._nodes):
            raise ConfigurationError("node ids must be unique within a cluster")
        self._free_desired_w = max(spec.default_power_limit_w, spec.min_power_cap_w)

    # ------------------------------------------------------------------
    @classmethod
    def from_allocator(
        cls,
        allocator: OnlineAllocator,
        simulator: PerformanceSimulator,
        n_nodes: int = 1,
        scheduler_config: SchedulerConfig | None = None,
        config: SimulationConfig | None = None,
    ) -> "ClusterSimulator":
        """Build a cluster of ``n_nodes`` nodes sharing ``simulator``'s spec.

        This is the service-layer construction path: it needs only the two
        online objects (a trained allocator and the performance simulator
        backing the nodes), not a :class:`PaperWorkflow`.
        """
        nodes = [
            ComputeNode(node_id=i, spec=simulator.spec, simulator=simulator)
            for i in range(n_nodes)
        ]
        return cls(
            allocator=allocator,
            nodes=nodes,
            scheduler_config=scheduler_config,
            config=config,
        )

    @classmethod
    def from_workflow(
        cls,
        workflow: PaperWorkflow,
        n_nodes: int = 1,
        scheduler_config: SchedulerConfig | None = None,
        config: SimulationConfig | None = None,
    ) -> "ClusterSimulator":
        """Build a simulator whose nodes share the workflow's simulator/spec."""
        return cls.from_allocator(
            workflow.online,
            workflow.simulator,
            n_nodes=n_nodes,
            scheduler_config=scheduler_config,
            config=config,
        )

    @property
    def config(self) -> SimulationConfig:
        """The simulation configuration."""
        return self._config

    @property
    def scheduler(self) -> CoScheduler:
        """The co-scheduler making the dispatch decisions."""
        return self._scheduler

    @property
    def nodes(self) -> tuple[ComputeNode, ...]:
        """The compute nodes of the cluster."""
        return tuple(self._nodes)

    # ------------------------------------------------------------------
    def run(self, trace: Trace, suite: BenchmarkSuite | None = None) -> SimulationReport:
        """Replay ``trace`` through the event loop and report online metrics."""
        if trace.n_jobs == 0:
            raise SimulationError("cannot simulate an empty trace")
        kernels = trace.resolve_kernels(suite)
        for node in self._nodes:
            node.busy_until = 0.0
            node.release()
        state = _RunState(queue=JobQueue())
        # Ascending positions form a valid min-heap as-is.
        state.free_nodes = list(range(len(self._nodes)))
        state.heap.push_many(
            ArrivalEvent(time=entry.arrival_time_s, entry=entry, kernel=kernel)
            for entry, kernel in zip(trace.entries, kernels)
        )
        if self._config.power_budget_w is not None:
            # Initial even split so the first dispatches already respect the
            # budget; reactive rebalances then track the load.
            state.desired_w = np.full(
                len(self._nodes), self._free_desired_w, dtype=np.float64
            )
            state.minimum_w = np.full(
                len(self._nodes), self._spec.min_power_cap_w, dtype=np.float64
            )
            state.minimum_total_w = float(sum(state.minimum_w.tolist()))
            state.shares = self._distribute(state)
            state.power_dirty = False

        while not state.heap.empty:
            batch = state.heap.pop_batch()
            state.clock.advance(batch[0].time)
            state.events_processed += len(batch)
            for event in batch:
                self._handle(event, state)
            if state.rebalance_pending:
                self._rebalance(state)
            self._dispatch_free_nodes(state)

        if not state.queue.empty:  # pragma: no cover - defensive
            raise SimulationError(
                f"event heap drained with {len(state.queue)} jobs still queued"
            )
        return self._report(trace, state)

    # ------------------------------------------------------------------
    # Event handling
    # ------------------------------------------------------------------
    def _handle(self, event: Event, state: _RunState) -> None:
        if isinstance(event, ArrivalEvent):
            state.queue.advance_clock(event.time)
            state.queue.submit(event.kernel, submit_time=event.time)
            state.peak_queue_length = max(state.peak_queue_length, len(state.queue))
            state.rebalance_pending = self._config.power_budget_w is not None
        elif isinstance(event, CompletionEvent):
            # Keep the queue clock in lockstep with simulation time even
            # between arrivals, so wait accounting never lags behind a
            # completion-driven dispatch.
            state.queue.advance_clock(event.time)
            state.completed.extend(event.jobs)
            position = self._node_position[event.node_id]
            heapq.heappush(state.free_nodes, position)
            if self._config.power_budget_w is not None:
                state.rebalance_pending = True
                state.desired_w[position] = self._free_desired_w
                state.power_dirty = True
        elif isinstance(event, (RepartitionEvent, PowerRebalanceEvent)):
            # Bookkeeping markers: the state change was applied when the
            # event was scheduled; popping them only records the timeline.
            pass
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unhandled event {event.describe()}")

    # ------------------------------------------------------------------
    # Power budget
    # ------------------------------------------------------------------
    def _distribute(self, state: _RunState) -> dict[int, float]:
        """Split the configured budget across nodes by their current demand.

        The per-node demands live in preallocated arrays updated at dispatch
        (the node's configured cap) and completion (back to the default
        limit), so a rebalance does no per-node Python work at all.
        """
        assert self._config.power_budget_w is not None
        assert state.desired_w is not None and state.minimum_w is not None
        return self._power_manager.distribute_demands(
            self._node_ids,
            state.desired_w,
            state.minimum_w,
            self._config.power_budget_w,
            minimum_total_w=state.minimum_total_w,
        )

    def _rebalance(self, state: _RunState) -> None:
        # The rebalance is always recorded (counters and timeline events are
        # part of the report's contract); only the budget split itself is
        # skipped when no node changed busy state since the last split — the
        # demands are unchanged, so redistribution would reproduce the same
        # shares.
        if state.power_dirty:
            state.shares = self._distribute(state)
            state.power_dirty = False
        state.rebalances += 1
        state.rebalance_pending = False
        state.heap.push(
            PowerRebalanceEvent(time=state.clock.now, reason="arrival/completion burst")
        )

    def _effective_plan(self, plan: DispatchPlan, node: ComputeNode, state: _RunState) -> DispatchPlan:
        """Clamp the plan's power cap to the node's share of the budget."""
        if plan.decision is None or self._config.power_budget_w is None:
            return plan
        share = state.shares.get(node.node_id, self._spec.default_power_limit_w)
        cap = max(min(plan.decision.power_cap_w, share), self._spec.min_power_cap_w)
        if cap == plan.decision.power_cap_w:
            return plan
        return DispatchPlan(
            jobs=plan.jobs,
            decision=replace(plan.decision, power_cap_w=cap),
            reason=f"{plan.reason} (cap {plan.decision.power_cap_w:.0f}W -> "
            f"{cap:.0f}W, budget)",
        )

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch_free_nodes(self, state: _RunState) -> None:
        now = state.clock.now
        free_nodes = state.free_nodes
        while free_nodes and not state.queue.empty:
            # Popping positions in ascending order reproduces the node-list
            # scan order of the original O(nodes) loop exactly.
            position = heapq.heappop(free_nodes)
            node = self._nodes[position]
            plan = self._scheduler.plan_next(state.queue)
            plan = self._effective_plan(plan, node, state)
            start = now + self._repartition_delay(plan, node, state)
            if plan.reason == "profile run":
                state.profile_runs += 1
            finish = self._scheduler.dispatch(plan, state.queue, node, start)
            state.service_time_s += finish - start
            state.energy_j += self._dispatch_energy(plan, node, finish - start)
            state.heap.push(
                CompletionEvent(time=finish, node_id=node.node_id, jobs=plan.jobs)
            )
            if self._config.power_budget_w is not None:
                state.desired_w[position] = max(
                    node.power_limit_w, self._spec.min_power_cap_w
                )
                state.power_dirty = True

    def _layout_signature(self, plan: DispatchPlan) -> tuple[int, ...]:
        """The sorted GI-size multiset the plan's dispatch requires (memoized)."""
        if plan.decision is None:
            return _EXCLUSIVE_LAYOUT
        partition = plan.decision.state
        layout = self._layout_cache.get(partition)
        if layout is None:
            layout = tuple(sorted(partition.gi_sizes(self._spec)))
            self._layout_cache[partition] = layout
        return layout

    @staticmethod
    def _instance_changes(
        previous: tuple[int, ...] | None, layout: tuple[int, ...]
    ) -> int:
        """GPU Instances to create/destroy to move ``previous`` -> ``layout``.

        ``None`` (a node's first dispatch) charges the full bring-up:
        every GI of the new layout, or one MIG-mode toggle for an
        exclusive dispatch.  Between two MIG layouts the cost is the
        multiset difference of their GI sizes — instances present in both
        layouts are untouched (jobs bound to them merely re-map to new
        Compute Instances, which is free), and switching MIG mode on or
        off adds one unit.
        """
        if previous == layout:
            return 0
        if previous is None:
            return max(1, len(layout))
        old, new = Counter(previous), Counter(layout)
        created = sum((new - old).values())
        destroyed = sum((old - new).values())
        mode_toggle = int((previous == _EXCLUSIVE_LAYOUT) != (layout == _EXCLUSIVE_LAYOUT))
        return created + destroyed + mode_toggle

    @staticmethod
    def _layout_label(layout: tuple[int, ...] | None) -> str:
        """Human-readable GI multiset for the repartition event timeline."""
        if layout is None:
            return "(none)"
        if layout == _EXCLUSIVE_LAYOUT:
            return "exclusive-full"
        return "+".join(f"{gpcs}GPC" for gpcs in layout)

    def _repartition_delay(
        self, plan: DispatchPlan, node: ComputeNode, state: _RunState
    ) -> float:
        """Latency charged before the plan's MIG layout can serve jobs.

        Scales with the number of GPU Instances the reconfiguration
        creates/destroys (see :meth:`_instance_changes`) instead of a flat
        per-change constant, so re-binding jobs onto an unchanged GI
        multiset is free and deeper re-partitions cost proportionally more.
        """
        if self._config.repartition_latency_s == 0.0:
            # Reconfiguration is free: skip the layout bookkeeping entirely
            # (nothing downstream reads it when no delays are charged).
            return 0.0
        layout = self._layout_signature(plan)
        previous = state.layouts.get(node.node_id)
        state.layouts[node.node_id] = layout
        changes = self._instance_changes(previous, layout)
        if changes == 0:
            return 0.0
        delay = self._config.repartition_latency_s * changes
        state.repartitions += 1
        state.instance_changes += changes
        state.repartition_time_s += delay
        state.heap.push(
            RepartitionEvent(
                time=state.clock.now + delay,
                node_id=node.node_id,
                previous_layout=self._layout_label(previous),
                next_layout=self._layout_label(layout),
            )
        )
        return delay

    def _dispatch_energy(
        self, plan: DispatchPlan, node: ComputeNode, duration_s: float
    ) -> float:
        """Modelled chip energy of one dispatch window in joules."""
        if plan.decision is not None:
            result = self._scheduler.last_dispatch_result
            if result is not None:
                return result.chip_power_w * duration_s
        # Exclusive/profile runs execute through reference_time, which does
        # not expose power; approximate with the solo full-partition run's
        # chip power, memoized per kernel name (it is deterministic, and a
        # long trace revisits the same applications thousands of times).
        kernel = plan.jobs[0].kernel
        power = self._solo_power_cache.get(kernel.name)
        if power is None:
            assert node.simulator is not None
            power = node.simulator.solo_run(kernel).chip_power_w
            self._solo_power_cache[kernel.name] = power
        return power * duration_s

    # ------------------------------------------------------------------
    def _report(self, trace: Trace, state: _RunState) -> SimulationReport:
        jobs = tuple(state.completed)
        unfinished = [job.job_id for job in jobs if job.finish_time is None]
        if unfinished:  # pragma: no cover - defensive
            raise SimulationError(f"jobs did not finish: {unfinished}")
        makespan = max(job.finish_time for job in jobs)  # type: ignore[arg-type]
        if makespan <= 0:  # pragma: no cover - defensive
            raise SimulationError("the simulation produced a non-positive makespan")
        waits = [job.start_time - job.submit_time for job in jobs]  # type: ignore[operator]
        turnarounds = [job.turnaround_time for job in jobs]
        co_scheduled = sum(1 for job in jobs if job.co_runner is not None)
        return SimulationReport(
            label=trace.label,
            jobs=jobs,
            n_nodes=len(self._nodes),
            makespan_s=float(makespan),
            sustained_throughput_jobs_per_s=len(jobs) / float(makespan),
            wait=LatencyStats.from_samples(waits),
            turnaround=LatencyStats.from_samples(turnarounds),
            utilization=state.service_time_s / (len(self._nodes) * float(makespan)),
            energy_wh=state.energy_j / 3600.0,
            co_scheduled_jobs=co_scheduled,
            exclusive_jobs=len(jobs) - co_scheduled,
            profile_runs=state.profile_runs,
            events_processed=state.events_processed,
            repartitions=state.repartitions,
            repartition_time_s=state.repartition_time_s,
            mig_instance_changes=state.instance_changes,
            power_rebalances=state.rebalances,
            final_power_allocation_w=dict(state.shares),
            peak_queue_length=state.peak_queue_length,
        )
