"""Compute nodes: one simulated GPU plus its administration interface."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchedulingError
from repro.gpu.mig import PartitionState
from repro.gpu.nvml import SimulatedSMI
from repro.gpu.spec import A100_SPEC, GPUSpec
from repro.sim.engine import PerformanceSimulator
from repro.sim.results import CoRunResult


@dataclass
class ComputeNode:
    """One CPU-GPU compute node of the cluster.

    The node owns a simulated GPU (through its :class:`SimulatedSMI`
    administration facade) and a :class:`PerformanceSimulator` to "execute"
    work.  The scheduler drives it exclusively through :meth:`configure` and
    :meth:`execute_pair` / :meth:`execute_exclusive`, which is how a SLURM
    prolog + job launch would drive a real node.
    """

    node_id: int
    spec: GPUSpec = field(default_factory=lambda: A100_SPEC)
    simulator: PerformanceSimulator | None = None
    busy_until: float = 0.0

    def __post_init__(self) -> None:
        if self.simulator is None:
            self.simulator = PerformanceSimulator(self.spec)
        self.smi = SimulatedSMI(self.spec)
        self._current_state: PartitionState | None = None

    # ------------------------------------------------------------------
    @property
    def current_partition(self) -> PartitionState | None:
        """The MIG partition state currently configured on the node."""
        return self._current_state

    @property
    def power_limit_w(self) -> float:
        """The chip power cap currently configured on the node."""
        return self.smi.power_limit_w

    def is_free(self, time: float) -> bool:
        """Whether the node is idle at simulated time ``time``."""
        return time >= self.busy_until

    # ------------------------------------------------------------------
    def configure(self, state: PartitionState, power_cap_w: float) -> tuple[str, ...]:
        """Apply a partition state and power cap; returns the CI UUIDs."""
        self.smi.set_power_limit(power_cap_w)
        uuids = self.smi.apply_partition_state(state)
        self._current_state = state
        return uuids

    def release(self) -> None:
        """Tear down the MIG partitions after the running jobs finished."""
        self.smi.reset_partitions()
        self._current_state = None

    # ------------------------------------------------------------------
    def execute_group(
        self,
        kernels,
        state: PartitionState,
        power_cap_w: float,
    ) -> CoRunResult:
        """Run a co-located group (N >= 1) to completion and return the result."""
        if self.simulator is None:  # pragma: no cover - defensive
            raise SchedulingError("node has no simulator attached")
        self.configure(state, power_cap_w)
        try:
            return self.simulator.co_run(list(kernels), state, power_cap_w)
        finally:
            self.release()

    def execute_pair(
        self,
        kernels,
        state: PartitionState,
        power_cap_w: float,
    ) -> CoRunResult:
        """Run a co-located pair (the N=2 special case of :meth:`execute_group`)."""
        return self.execute_group(kernels, state, power_cap_w)

    def execute_exclusive(self, kernel) -> float:
        """Run one job exclusively (full GPU, default cap); returns its runtime."""
        if self.simulator is None:  # pragma: no cover - defensive
            raise SchedulingError("node has no simulator attached")
        return self.simulator.reference_time(kernel)
