"""The co-scheduler: pair selection, profile runs, and dispatch.

The scheduler pulls the head job from the queue, searches a bounded
look-ahead window for the co-location partner that maximizes the predicted
objective, asks the Resource & Power Allocator for the partition state and
power cap, and dispatches the pair to a free node.  Jobs whose application
has never been profiled run exclusively first (the paper's profile-run
rule).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.job import Job, JobState
from repro.cluster.node import ComputeNode
from repro.cluster.queue import JobQueue
from repro.core.decision import AllocationDecision
from repro.core.policies import Policy, Problem1Policy, Problem2Policy
from repro.core.workflow import OnlineAllocator
from repro.errors import InfeasibleProblemError, SchedulingError


@dataclass(frozen=True)
class SchedulerConfig:
    """Knobs of the co-scheduler.

    Attributes
    ----------
    window_size:
        How many queued jobs may be inspected when looking for a partner.
    policy_name:
        ``"problem1"`` (throughput at a fixed cap) or ``"problem2"``
        (energy efficiency, cap chosen per pair).
    power_cap_w:
        The fixed cap used by Problem 1.
    alpha:
        Fairness threshold for either policy.
    allow_solo:
        Whether a job may run alone (full MIG partition) when no feasible
        partner is found.
    """

    window_size: int = 4
    policy_name: str = "problem2"
    power_cap_w: float = 230.0
    alpha: float = 0.2
    allow_solo: bool = True


@dataclass(frozen=True)
class DispatchPlan:
    """What the scheduler decided to run next."""

    jobs: tuple[Job, ...]
    decision: AllocationDecision | None
    reason: str


class CoScheduler:
    """Pair selection and dispatch driven by the allocator's predictions."""

    def __init__(
        self,
        allocator: OnlineAllocator,
        config: SchedulerConfig | None = None,
    ) -> None:
        self._allocator = allocator
        self._config = config if config is not None else SchedulerConfig()

    @property
    def config(self) -> SchedulerConfig:
        """The scheduler configuration."""
        return self._config

    # ------------------------------------------------------------------
    def _policy(self) -> Policy:
        if self._config.policy_name.lower() in ("problem1", "throughput"):
            return Problem1Policy(
                power_cap_w=self._config.power_cap_w, alpha=self._config.alpha
            )
        return Problem2Policy(alpha=self._config.alpha)

    def _is_profiled(self, job: Job) -> bool:
        return self._allocator.database.has(job.name)

    # ------------------------------------------------------------------
    def plan_next(self, queue: JobQueue) -> DispatchPlan:
        """Decide what to dispatch next from ``queue`` (without removing jobs).

        The returned plan contains either:

        * a single unprofiled job (profile run),
        * a pair plus the allocator's decision,
        * or a single job to run alone when pairing is impossible.
        """
        if queue.empty:
            raise SchedulingError("cannot plan: the job queue is empty")
        head = queue.peek()
        if not self._is_profiled(head):
            return DispatchPlan(jobs=(head,), decision=None, reason="profile run")

        policy = self._policy()
        best_plan: DispatchPlan | None = None
        best_objective = float("-inf")
        for candidate in queue.window(self._config.window_size):
            if candidate.job_id == head.job_id:
                continue
            if not self._is_profiled(candidate):
                continue
            try:
                decision = self._allocator.decide([head.name, candidate.name], policy)
            except InfeasibleProblemError:
                continue
            if decision.predicted_objective > best_objective:
                best_objective = decision.predicted_objective
                best_plan = DispatchPlan(
                    jobs=(head, candidate),
                    decision=decision,
                    reason=f"co-schedule via {policy.name}",
                )
        if best_plan is not None:
            return best_plan
        if not self._config.allow_solo:
            raise SchedulingError(
                f"no feasible co-location partner found for job {head.job_id} "
                "and solo execution is disabled"
            )
        return DispatchPlan(jobs=(head,), decision=None, reason="no feasible partner")

    # ------------------------------------------------------------------
    def dispatch(
        self,
        plan: DispatchPlan,
        queue: JobQueue,
        node: ComputeNode,
        time: float,
    ) -> float:
        """Execute a plan on ``node`` starting at ``time``; returns the finish time.

        The jobs are removed from the queue, their lifecycle updated, and the
        node's busy window extended.
        """
        if not node.is_free(time):
            raise SchedulingError(
                f"node {node.node_id} is busy until t={node.busy_until:.2f}"
            )
        for job in plan.jobs:
            queue.remove(job)
            job.start_time = time

        if plan.decision is None:
            job = plan.jobs[0]
            if not self._is_profiled(job):
                job.transition(JobState.PROFILING)
                self._allocator.ensure_profiled(job.kernel)
                job.mark("profile run (exclusive)")
            else:
                job.transition(JobState.RUNNING)
                job.mark("exclusive run (no partner)")
            runtime = node.execute_exclusive(job.kernel)
            finish = time + runtime
            job.finish_time = finish
            job.transition(JobState.COMPLETED)
        else:
            decision = plan.decision
            kernels = [job.kernel for job in plan.jobs]
            result = node.execute_pair(kernels, decision.state, decision.power_cap_w)
            finish = time
            for job, run in zip(plan.jobs, result.per_app):
                job.transition(JobState.RUNNING)
                job.co_runner = [j.job_id for j in plan.jobs if j is not job][0]
                job.assigned_device = f"node{node.node_id}-{decision.state.describe()}-app{run.app_index}"
                job.mark(
                    f"co-run on {decision.state.describe()} @ {decision.power_cap_w:.0f}W "
                    f"(RPerf={run.relative_performance:.3f})"
                )
                job.finish_time = time + run.elapsed_s
                job.transition(JobState.COMPLETED)
                finish = max(finish, job.finish_time)
        node.busy_until = finish
        return finish
