"""The co-scheduler: group selection, profile runs, and dispatch.

The scheduler pulls the head job from the queue, searches a bounded
look-ahead window for the co-location partner that maximizes the predicted
objective, asks the Resource & Power Allocator for the partition state and
power cap, and dispatches the group to a free node.  When ``group_size``
allows more than two jobs the pair is greedily extended with further window
jobs for as long as doing so improves the predicted objective.  Jobs whose
application has never been profiled run exclusively first (the paper's
profile-run rule).

Planning is memoized: the plan depends only on the *content* of the
look-ahead window (application names and their profiled status) and on the
trained model, so an LRU cache keyed on that signature answers repeated
window shapes — ubiquitous in a long trace over a bounded application set —
without re-evaluating the candidate grid (the same ``OrderedDict`` LRU
idiom as the allocator's :class:`~repro.core.optimizer.DecisionCache`).
Cached plans store window *positions* rather than job objects, so a hit is
rebuilt against the live queue; queue mutations invalidate naturally
because the window signature changes (and the queue's ``version`` counter
guards the degenerate repeated-call case explicitly).
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable

from repro.cluster.job import Job, JobState
from repro.cluster.node import ComputeNode
from repro.cluster.queue import JobQueue
from repro.core.decision import AllocationDecision
from repro.core.policies import POLICY_NAMES, Policy, make_policy
from repro.core.workflow import OnlineAllocator
from repro.errors import ConfigurationError, InfeasibleProblemError, SchedulingError
from repro.sim.results import CoRunResult


@dataclass(frozen=True)
class SchedulerConfig:
    """Knobs of the co-scheduler.

    Attributes
    ----------
    window_size:
        How many queued jobs may be inspected when looking for partners.
    group_size:
        Maximum number of jobs co-located on one GPU (2 reproduces the
        paper's pair scheduling exactly; larger values enable N-way groups
        when the allocator's model supports them).
    policy_name:
        ``"problem1"`` (throughput at a fixed cap) or ``"problem2"``
        (energy efficiency, cap chosen per group).
    power_cap_w:
        The fixed cap used by Problem 1.
    alpha:
        Fairness threshold for either policy.
    allow_solo:
        Whether a job may run alone (full MIG partition) when no feasible
        partner is found.
    """

    window_size: int = 4
    group_size: int = 2
    policy_name: str = "problem2"
    power_cap_w: float = 230.0
    alpha: float = 0.2
    allow_solo: bool = True

    def __post_init__(self) -> None:
        if self.window_size < 1:
            raise ConfigurationError(
                f"window_size must be >= 1, got {self.window_size}"
            )
        if self.group_size < 1:
            raise ConfigurationError(f"group_size must be >= 1, got {self.group_size}")
        if self.policy_name.lower() not in POLICY_NAMES:
            raise ConfigurationError(
                f"unknown policy {self.policy_name!r}; valid names: {POLICY_NAMES}"
            )
        if self.power_cap_w <= 0:
            raise ConfigurationError(
                f"power_cap_w must be positive, got {self.power_cap_w}"
            )
        if not (0.0 <= self.alpha < 1.0):
            raise ConfigurationError(f"alpha must be in [0, 1), got {self.alpha}")


@dataclass(frozen=True)
class DispatchPlan:
    """What the scheduler decided to run next."""

    jobs: tuple[Job, ...]
    decision: AllocationDecision | None
    reason: str


@dataclass(frozen=True)
class _CachedPlan:
    """A memoized planning outcome, stored by window position.

    ``positions`` indexes into the look-ahead window the plan was computed
    for; rebuilding against the live window re-binds the (frozen) decision
    and reason to the job objects currently occupying those positions.
    """

    positions: tuple[int, ...]
    decision: AllocationDecision | None
    reason: str

    def rebuild(self, window: tuple[Job, ...]) -> DispatchPlan:
        return DispatchPlan(
            jobs=tuple(window[i] for i in self.positions),
            decision=self.decision,
            reason=self.reason,
        )


class PlanCache:
    """A small LRU cache of memoized dispatch plans."""

    def __init__(self, maxsize: int = 8192) -> None:
        if maxsize < 0:
            raise ConfigurationError(f"cache maxsize must be >= 0, got {maxsize}")
        self._maxsize = maxsize
        self._entries: OrderedDict[Hashable, _CachedPlan] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def maxsize(self) -> int:
        """Capacity of the cache (0 disables plan memoization)."""
        return self._maxsize

    def get(self, key: Hashable) -> _CachedPlan | None:
        """Look up ``key``, refreshing its recency on a hit."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: Hashable, entry: _CachedPlan) -> None:
        """Insert ``key``, evicting the least recently used entry if full."""
        if self._maxsize == 0:
            return
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self._maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0


@dataclass
class SchedulerStats:
    """Planning/dispatch counters of one :class:`CoScheduler` instance.

    ``plans_requested`` counts every :meth:`CoScheduler.plan_next` call (the
    "decisions" of the benchmark trajectory); ``plans_computed`` the subset
    that evaluated the candidate grid; ``plan_cache_hits`` the subset
    answered from the memo; ``dispatches`` executed plans.
    """

    plans_requested: int = 0
    plans_computed: int = 0
    plan_cache_hits: int = 0
    dispatches: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict snapshot (handy for logs and benchmark artifacts)."""
        return {
            "plans_requested": self.plans_requested,
            "plans_computed": self.plans_computed,
            "plan_cache_hits": self.plan_cache_hits,
            "dispatches": self.dispatches,
        }


class CoScheduler:
    """Group selection and dispatch driven by the allocator's predictions."""

    def __init__(
        self,
        allocator: OnlineAllocator,
        config: SchedulerConfig | None = None,
        plan_cache_size: int = 8192,
    ) -> None:
        self._allocator = allocator
        self._config = config if config is not None else SchedulerConfig()
        self._last_result: CoRunResult | None = None
        self._plan_cache = PlanCache(plan_cache_size)
        # Pair decisions keyed (head, candidate, model version); the policy
        # is fixed per scheduler (see _policy), so it is not part of the
        # key.  None records an infeasible pairing.
        self._pair_cache: dict[
            tuple[str, str, int], AllocationDecision | None
        ] = {}
        self._policy_cache: Policy | None = None
        # The re-plan fast path must prove it is looking at the *same live*
        # queue object, not a new queue allocated at a recycled address —
        # hence a weakref, not id(): a dead queue can never alias a fresh one.
        self._last_queue: weakref.ref[JobQueue] | None = None
        self._last_queue_state: tuple[int, int] | None = None
        self._last_plan: DispatchPlan | None = None
        self.stats = SchedulerStats()

    def _validate_policy_against_model(self) -> None:
        """Fail loudly when the configured policy caps are off the model's grid.

        Otherwise every decide() call would raise InfeasibleProblemError,
        which plan_next treats as "this candidate is infeasible" — the
        cluster would silently never co-schedule anything.  Runs per
        plan_next (cheap: the state lookup is cached), not at construction,
        so a scheduler may be wired up before its model is trained.
        """
        if self._config.group_size < 2:
            return  # co-location disabled; the cap is never used
        policy = self._policy()
        caps = policy.candidate_power_caps()
        if self._allocator.candidate_states_for(2, caps):
            return
        model = self._allocator.allocator.model
        if not model.fitted_scalability_states():
            raise ConfigurationError(
                "the allocator's model has no fitted coefficients; train it "
                "before scheduling"
            )
        raise ConfigurationError(
            f"policy {policy.name}: no fitted model coefficients for power "
            f"cap(s) {tuple(float(p) for p in caps)} W; the allocator's "
            f"trained grid is {self._allocator.allocator.power_caps}"
        )

    @property
    def config(self) -> SchedulerConfig:
        """The scheduler configuration."""
        return self._config

    @property
    def last_dispatch_result(self) -> CoRunResult | None:
        """The :class:`CoRunResult` of the most recent co-located dispatch.

        ``None`` after exclusive/profile dispatches (those run through the
        reference-time path, which produces no power/interference record).
        The event-driven simulator reads this for energy accounting.
        """
        return self._last_result

    @property
    def plan_cache(self) -> PlanCache:
        """The memoized-plan cache (hit/miss counters for observability)."""
        return self._plan_cache

    def invalidate_plan_cache(self) -> None:
        """Drop every memoized plan.

        Queue mutations and model refits invalidate implicitly (the window
        signature and model version are part of the cache key); this is the
        explicit escape hatch for out-of-band changes such as editing the
        profile database directly.
        """
        self._plan_cache.clear()
        self._pair_cache.clear()
        self._last_plan = None
        self._last_queue = None
        self._last_queue_state = None

    # ------------------------------------------------------------------
    def _policy(self) -> Policy:
        # Problem 2 may only choose caps the allocator's model was trained
        # for, so follow the allocator's grid instead of the global default.
        # Policies are frozen and the allocator's grid never changes, so
        # one instance serves every plan.
        if self._policy_cache is None:
            self._policy_cache = make_policy(
                self._config.policy_name,
                self._config.alpha,
                power_cap_w=self._config.power_cap_w,
                power_caps=self._allocator.allocator.power_caps,
            )
        return self._policy_cache

    def _is_profiled(self, job: Job) -> bool:
        return self._allocator.database.has(job.name)

    def _model_version(self) -> int:
        return self._allocator.allocator.model.coefficients_version

    # ------------------------------------------------------------------
    def plan_next(self, queue: JobQueue) -> DispatchPlan:
        """Decide what to dispatch next from ``queue`` (without removing jobs).

        The returned plan contains either:

        * a single unprofiled job (profile run),
        * a co-location group (pair, greedily grown up to ``group_size``)
          plus the allocator's decision,
        * or a single job to run alone when grouping is impossible.

        Planning is memoized on the look-ahead window's content signature
        (names + profiled status) and the model version; repeated window
        shapes skip the candidate-grid evaluation entirely.
        """
        if queue.empty:
            raise SchedulingError("cannot plan: the job queue is empty")
        self.stats.plans_requested += 1
        queue_state = (queue.version, self._model_version())
        if (
            self._last_plan is not None
            and self._last_queue is not None
            and self._last_queue() is queue
            and self._last_queue_state == queue_state
        ):
            # Re-planning an unmutated queue: the previous plan still holds.
            self.stats.plan_cache_hits += 1
            return self._last_plan
        window = queue.window(self._config.window_size)
        has_profile = self._allocator.database.has
        signature = tuple((job.name, has_profile(job.name)) for job in window)
        key = (signature, queue_state[1])
        cached = self._plan_cache.get(key)
        if cached is None:
            cached = self._compute_plan(window)
            self._plan_cache.put(key, cached)
            self.stats.plans_computed += 1
        else:
            self.stats.plan_cache_hits += 1
        plan = cached.rebuild(window)
        self._last_queue = weakref.ref(queue)
        self._last_queue_state = queue_state
        self._last_plan = plan
        return plan

    def _compute_plan(self, window: tuple[Job, ...]) -> _CachedPlan:
        """Evaluate the candidate grid for one window shape (cache miss path)."""
        self._validate_policy_against_model()
        head = window[0]
        if not self._is_profiled(head):
            return _CachedPlan(positions=(0,), decision=None, reason="profile run")
        if self._config.group_size == 1:
            # One job per GPU: co-location is disabled by configuration.
            return _CachedPlan(
                positions=(0,), decision=None, reason="exclusive run (group_size=1)"
            )

        policy = self._policy()
        has_profile = self._allocator.database.has
        candidates = [
            (position, job)
            for position, job in enumerate(window)
            if position > 0 and has_profile(job.name)
        ]

        best_plan: _CachedPlan | None = None
        best_objective = float("-inf")
        head_name = head.name
        version = self._model_version()
        pair_cache = self._pair_cache
        for position, candidate in candidates:
            pair_key = (head_name, candidate.name, version)
            if pair_key in pair_cache:
                decision = pair_cache[pair_key]
            else:
                try:
                    decision = self._allocator.decide(
                        [head_name, candidate.name], policy
                    )
                except InfeasibleProblemError:
                    decision = None
                pair_cache[pair_key] = decision
            if decision is None:
                continue
            if decision.predicted_objective > best_objective:
                best_objective = decision.predicted_objective
                best_plan = _CachedPlan(
                    positions=(0, position),
                    decision=decision,
                    reason=f"co-schedule via {policy.name}",
                )
        if best_plan is not None and self._config.group_size > 2:
            best_plan, best_objective = self._grow_group(
                best_plan, best_objective, candidates, policy, window
            )
        if best_plan is not None:
            return best_plan
        if not self._config.allow_solo:
            raise SchedulingError(
                f"no feasible co-location partner found for job {head.job_id} "
                "and solo execution is disabled"
            )
        return _CachedPlan(positions=(0,), decision=None, reason="no feasible partner")

    def _grow_group(
        self,
        plan: _CachedPlan,
        objective: float,
        candidates: list[tuple[int, Job]],
        policy: Policy,
        window: tuple[Job, ...],
    ) -> tuple[_CachedPlan, float]:
        """Greedily extend a pair with window jobs while the objective improves.

        Each round tries every remaining profiled window job as the next
        member and keeps the best strictly-improving extension; the loop
        stops at ``group_size`` members or when no extension helps (the
        heuristic search over group composition the paper's Section 6 calls
        for — the state/cap inside each trial is still solved exactly by
        the allocator).  ``group_size`` is additionally clamped to the
        spec's partition-scheme co-location ceiling, so a configuration
        tuned for one vendor never asks another for more instances than
        its scheme can realize.
        """
        spec = self._allocator.allocator.model.spec
        max_members = min(
            self._config.group_size, spec.scheme.max_co_located(spec)
        )
        while len(plan.positions) < max_members:
            members = set(plan.positions)
            best_extension: _CachedPlan | None = None
            best_extension_objective = objective
            for position, candidate in candidates:
                if position in members:
                    continue
                names = [window[i].name for i in plan.positions] + [candidate.name]
                try:
                    decision = self._allocator.decide(names, policy)
                except InfeasibleProblemError:
                    continue
                if decision.predicted_objective > best_extension_objective:
                    best_extension_objective = decision.predicted_objective
                    best_extension = _CachedPlan(
                        positions=plan.positions + (position,),
                        decision=decision,
                        reason=f"co-schedule {len(plan.positions) + 1} jobs via {policy.name}",
                    )
            if best_extension is None:
                break
            plan = best_extension
            objective = best_extension_objective
        return plan, objective

    # ------------------------------------------------------------------
    def dispatch(
        self,
        plan: DispatchPlan,
        queue: JobQueue,
        node: ComputeNode,
        time: float,
    ) -> float:
        """Execute a plan on ``node`` starting at ``time``; returns the finish time.

        The jobs are removed from the queue, their lifecycle updated, and the
        node's busy window extended.
        """
        if not node.is_free(time):
            raise SchedulingError(
                f"node {node.node_id} is busy until t={node.busy_until:.2f}"
            )
        self.stats.dispatches += 1
        for job in plan.jobs:
            queue.remove(job)
            job.start_time = time

        self._last_result = None
        if plan.decision is None:
            job = plan.jobs[0]
            if not self._is_profiled(job):
                job.transition(JobState.PROFILING)
                self._allocator.ensure_profiled(job.kernel)
                job.mark("profile run (exclusive)")
            else:
                job.transition(JobState.RUNNING)
                job.mark("exclusive run (no partner)")
            runtime = node.execute_exclusive(job.kernel)
            finish = time + runtime
            job.finish_time = finish
            job.transition(JobState.COMPLETED)
        else:
            decision = plan.decision
            kernels = [job.kernel for job in plan.jobs]
            result = node.execute_group(kernels, decision.state, decision.power_cap_w)
            self._last_result = result
            finish = time
            described = decision.state.describe()
            for job, run in zip(plan.jobs, result.per_app):
                job.transition(JobState.RUNNING)
                others = tuple(j.job_id for j in plan.jobs if j is not job)
                job.co_runner = others[0]
                job.co_runners = others
                job.assigned_device = f"node{node.node_id}-{described}-app{run.app_index}"
                job.mark(
                    f"co-run on {described} @ {decision.power_cap_w:.0f}W "
                    f"(RPerf={run.relative_performance:.3f})"
                )
                job.finish_time = time + run.elapsed_s
                job.transition(JobState.COMPLETED)
                finish = max(finish, job.finish_time)
        node.busy_until = finish
        return finish
