"""The co-scheduler: group selection, profile runs, and dispatch.

The scheduler pulls the head job from the queue, searches a bounded
look-ahead window for the co-location partner that maximizes the predicted
objective, asks the Resource & Power Allocator for the partition state and
power cap, and dispatches the group to a free node.  When ``group_size``
allows more than two jobs the pair is greedily extended with further window
jobs for as long as doing so improves the predicted objective.  Jobs whose
application has never been profiled run exclusively first (the paper's
profile-run rule).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.job import Job, JobState
from repro.cluster.node import ComputeNode
from repro.cluster.queue import JobQueue
from repro.core.decision import AllocationDecision
from repro.core.policies import POLICY_NAMES, Policy, make_policy
from repro.core.workflow import OnlineAllocator
from repro.errors import ConfigurationError, InfeasibleProblemError, SchedulingError
from repro.sim.results import CoRunResult


@dataclass(frozen=True)
class SchedulerConfig:
    """Knobs of the co-scheduler.

    Attributes
    ----------
    window_size:
        How many queued jobs may be inspected when looking for partners.
    group_size:
        Maximum number of jobs co-located on one GPU (2 reproduces the
        paper's pair scheduling exactly; larger values enable N-way groups
        when the allocator's model supports them).
    policy_name:
        ``"problem1"`` (throughput at a fixed cap) or ``"problem2"``
        (energy efficiency, cap chosen per group).
    power_cap_w:
        The fixed cap used by Problem 1.
    alpha:
        Fairness threshold for either policy.
    allow_solo:
        Whether a job may run alone (full MIG partition) when no feasible
        partner is found.
    """

    window_size: int = 4
    group_size: int = 2
    policy_name: str = "problem2"
    power_cap_w: float = 230.0
    alpha: float = 0.2
    allow_solo: bool = True

    def __post_init__(self) -> None:
        if self.window_size < 1:
            raise ConfigurationError(
                f"window_size must be >= 1, got {self.window_size}"
            )
        if self.group_size < 1:
            raise ConfigurationError(f"group_size must be >= 1, got {self.group_size}")
        if self.policy_name.lower() not in POLICY_NAMES:
            raise ConfigurationError(
                f"unknown policy {self.policy_name!r}; valid names: {POLICY_NAMES}"
            )
        if self.power_cap_w <= 0:
            raise ConfigurationError(
                f"power_cap_w must be positive, got {self.power_cap_w}"
            )
        if not (0.0 <= self.alpha < 1.0):
            raise ConfigurationError(f"alpha must be in [0, 1), got {self.alpha}")


@dataclass(frozen=True)
class DispatchPlan:
    """What the scheduler decided to run next."""

    jobs: tuple[Job, ...]
    decision: AllocationDecision | None
    reason: str


class CoScheduler:
    """Group selection and dispatch driven by the allocator's predictions."""

    def __init__(
        self,
        allocator: OnlineAllocator,
        config: SchedulerConfig | None = None,
    ) -> None:
        self._allocator = allocator
        self._config = config if config is not None else SchedulerConfig()
        self._last_result: CoRunResult | None = None

    def _validate_policy_against_model(self) -> None:
        """Fail loudly when the configured policy caps are off the model's grid.

        Otherwise every decide() call would raise InfeasibleProblemError,
        which plan_next treats as "this candidate is infeasible" — the
        cluster would silently never co-schedule anything.  Runs per
        plan_next (cheap: the state lookup is cached), not at construction,
        so a scheduler may be wired up before its model is trained.
        """
        if self._config.group_size < 2:
            return  # co-location disabled; the cap is never used
        policy = self._policy()
        caps = policy.candidate_power_caps()
        if self._allocator.candidate_states_for(2, caps):
            return
        model = self._allocator.allocator.model
        if not model.fitted_scalability_states():
            raise ConfigurationError(
                "the allocator's model has no fitted coefficients; train it "
                "before scheduling"
            )
        raise ConfigurationError(
            f"policy {policy.name}: no fitted model coefficients for power "
            f"cap(s) {tuple(float(p) for p in caps)} W; the allocator's "
            f"trained grid is {self._allocator.allocator.power_caps}"
        )

    @property
    def config(self) -> SchedulerConfig:
        """The scheduler configuration."""
        return self._config

    @property
    def last_dispatch_result(self) -> CoRunResult | None:
        """The :class:`CoRunResult` of the most recent co-located dispatch.

        ``None`` after exclusive/profile dispatches (those run through the
        reference-time path, which produces no power/interference record).
        The event-driven simulator reads this for energy accounting.
        """
        return self._last_result

    # ------------------------------------------------------------------
    def _policy(self) -> Policy:
        # Problem 2 may only choose caps the allocator's model was trained
        # for, so follow the allocator's grid instead of the global default.
        return make_policy(
            self._config.policy_name,
            self._config.alpha,
            power_cap_w=self._config.power_cap_w,
            power_caps=self._allocator.allocator.power_caps,
        )

    def _is_profiled(self, job: Job) -> bool:
        return self._allocator.database.has(job.name)

    # ------------------------------------------------------------------
    def plan_next(self, queue: JobQueue) -> DispatchPlan:
        """Decide what to dispatch next from ``queue`` (without removing jobs).

        The returned plan contains either:

        * a single unprofiled job (profile run),
        * a co-location group (pair, greedily grown up to ``group_size``)
          plus the allocator's decision,
        * or a single job to run alone when grouping is impossible.
        """
        if queue.empty:
            raise SchedulingError("cannot plan: the job queue is empty")
        self._validate_policy_against_model()
        head = queue.peek()
        if not self._is_profiled(head):
            return DispatchPlan(jobs=(head,), decision=None, reason="profile run")
        if self._config.group_size == 1:
            # One job per GPU: co-location is disabled by configuration.
            return DispatchPlan(
                jobs=(head,), decision=None, reason="exclusive run (group_size=1)"
            )

        policy = self._policy()
        window = queue.window(self._config.window_size)
        candidates = [
            job
            for job in window
            if job.job_id != head.job_id and self._is_profiled(job)
        ]

        best_plan: DispatchPlan | None = None
        best_objective = float("-inf")
        for candidate in candidates:
            try:
                decision = self._allocator.decide([head.name, candidate.name], policy)
            except InfeasibleProblemError:
                continue
            if decision.predicted_objective > best_objective:
                best_objective = decision.predicted_objective
                best_plan = DispatchPlan(
                    jobs=(head, candidate),
                    decision=decision,
                    reason=f"co-schedule via {policy.name}",
                )
        if best_plan is not None and self._config.group_size > 2:
            best_plan, best_objective = self._grow_group(
                best_plan, best_objective, candidates, policy
            )
        if best_plan is not None:
            return best_plan
        if not self._config.allow_solo:
            raise SchedulingError(
                f"no feasible co-location partner found for job {head.job_id} "
                "and solo execution is disabled"
            )
        return DispatchPlan(jobs=(head,), decision=None, reason="no feasible partner")

    def _grow_group(
        self,
        plan: DispatchPlan,
        objective: float,
        candidates: list[Job],
        policy: Policy,
    ) -> tuple[DispatchPlan, float]:
        """Greedily extend a pair with window jobs while the objective improves.

        Each round tries every remaining profiled window job as the next
        member and keeps the best strictly-improving extension; the loop
        stops at ``group_size`` members or when no extension helps (the
        heuristic search over group composition the paper's Section 6 calls
        for — the state/cap inside each trial is still solved exactly by
        the allocator).
        """
        while len(plan.jobs) < self._config.group_size:
            members = {job.job_id for job in plan.jobs}
            best_extension: DispatchPlan | None = None
            best_extension_objective = objective
            for candidate in candidates:
                if candidate.job_id in members:
                    continue
                names = [job.name for job in plan.jobs] + [candidate.name]
                try:
                    decision = self._allocator.decide(names, policy)
                except InfeasibleProblemError:
                    continue
                if decision.predicted_objective > best_extension_objective:
                    best_extension_objective = decision.predicted_objective
                    best_extension = DispatchPlan(
                        jobs=plan.jobs + (candidate,),
                        decision=decision,
                        reason=f"co-schedule {len(plan.jobs) + 1} jobs via {policy.name}",
                    )
            if best_extension is None:
                break
            plan = best_extension
            objective = best_extension_objective
        return plan, objective

    # ------------------------------------------------------------------
    def dispatch(
        self,
        plan: DispatchPlan,
        queue: JobQueue,
        node: ComputeNode,
        time: float,
    ) -> float:
        """Execute a plan on ``node`` starting at ``time``; returns the finish time.

        The jobs are removed from the queue, their lifecycle updated, and the
        node's busy window extended.
        """
        if not node.is_free(time):
            raise SchedulingError(
                f"node {node.node_id} is busy until t={node.busy_until:.2f}"
            )
        for job in plan.jobs:
            queue.remove(job)
            job.start_time = time

        self._last_result = None
        if plan.decision is None:
            job = plan.jobs[0]
            if not self._is_profiled(job):
                job.transition(JobState.PROFILING)
                self._allocator.ensure_profiled(job.kernel)
                job.mark("profile run (exclusive)")
            else:
                job.transition(JobState.RUNNING)
                job.mark("exclusive run (no partner)")
            runtime = node.execute_exclusive(job.kernel)
            finish = time + runtime
            job.finish_time = finish
            job.transition(JobState.COMPLETED)
        else:
            decision = plan.decision
            kernels = [job.kernel for job in plan.jobs]
            result = node.execute_group(kernels, decision.state, decision.power_cap_w)
            self._last_result = result
            finish = time
            for job, run in zip(plan.jobs, result.per_app):
                job.transition(JobState.RUNNING)
                others = tuple(j.job_id for j in plan.jobs if j is not job)
                job.co_runner = others[0]
                job.co_runners = others
                job.assigned_device = f"node{node.node_id}-{decision.state.describe()}-app{run.app_index}"
                job.mark(
                    f"co-run on {decision.state.describe()} @ {decision.power_cap_w:.0f}W "
                    f"(RPerf={run.relative_performance:.3f})"
                )
                job.finish_time = time + run.elapsed_s
                job.transition(JobState.COMPLETED)
                finish = max(finish, job.finish_time)
        node.busy_until = finish
        return finish
