"""The job manager: queue + scheduler + nodes (Figure 1), with baselines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.cluster.job import Job
from repro.cluster.node import ComputeNode
from repro.cluster.queue import JobQueue
from repro.cluster.scheduler import CoScheduler, SchedulerConfig
from repro.core.workflow import OnlineAllocator, PaperWorkflow
from repro.errors import SchedulingError
from repro.workloads.kernel import KernelCharacteristics


@dataclass(frozen=True)
class ScheduleReport:
    """Outcome of draining one job queue."""

    jobs: tuple[Job, ...]
    makespan_s: float
    mean_turnaround_s: float
    co_scheduled_jobs: int
    exclusive_jobs: int
    label: str

    @property
    def n_jobs(self) -> int:
        """Total number of jobs executed."""
        return len(self.jobs)

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"[{self.label}] {self.n_jobs} jobs: makespan={self.makespan_s:.2f}s "
            f"mean turnaround={self.mean_turnaround_s:.2f}s "
            f"(co-scheduled {self.co_scheduled_jobs}, exclusive {self.exclusive_jobs})"
        )


@dataclass
class JobManager:
    """Drains a job queue with the co-scheduler, or exclusively as a baseline."""

    allocator: OnlineAllocator
    nodes: list[ComputeNode] = field(default_factory=list)
    scheduler_config: SchedulerConfig = field(default_factory=SchedulerConfig)

    def __post_init__(self) -> None:
        if not self.nodes:
            self.nodes = [ComputeNode(node_id=0)]
        self._scheduler = CoScheduler(self.allocator, self.scheduler_config)

    # ------------------------------------------------------------------
    @classmethod
    def from_workflow(
        cls,
        workflow: PaperWorkflow,
        n_nodes: int = 1,
        scheduler_config: SchedulerConfig | None = None,
    ) -> "JobManager":
        """Build a manager whose nodes share the workflow's simulator and spec."""
        nodes = [
            ComputeNode(
                node_id=i,
                spec=workflow.simulator.spec,
                simulator=workflow.simulator,
            )
            for i in range(n_nodes)
        ]
        return cls(
            allocator=workflow.online,
            nodes=nodes,
            scheduler_config=scheduler_config or SchedulerConfig(),
        )

    # ------------------------------------------------------------------
    def _free_node(self, time: float) -> ComputeNode | None:
        free = [node for node in self.nodes if node.is_free(time)]
        return free[0] if free else None

    def _next_free_time(self) -> float:
        return min(node.busy_until for node in self.nodes)

    # ------------------------------------------------------------------
    def drain(
        self,
        kernels: Iterable[KernelCharacteristics],
        exclusive: bool = False,
    ) -> ScheduleReport:
        """Drain a batch of jobs that are all present at ``t=0``.

        This is the paper's evaluation mode and the degenerate case of the
        event-driven :class:`~repro.cluster.events.ClusterSimulator`: an
        all-at-t=0 trace replayed through the event loop reproduces this
        schedule exactly (parity-tested).
        """
        if exclusive:
            return self.run_exclusive(kernels)
        return self.run_coscheduled(kernels)

    def run_coscheduled(self, kernels: Iterable[KernelCharacteristics]) -> ScheduleReport:
        """Drain a queue of jobs using co-scheduling decisions."""
        queue = JobQueue()
        jobs = queue.submit_all(kernels)
        if not jobs:
            raise SchedulingError("no jobs were submitted")
        time = 0.0
        while not queue.empty:
            node = self._free_node(time)
            if node is None:
                time = self._next_free_time()
                continue
            plan = self._scheduler.plan_next(queue)
            self._scheduler.dispatch(plan, queue, node, time)
        return self._report(jobs, label="co-scheduled")

    def run_exclusive(self, kernels: Iterable[KernelCharacteristics]) -> ScheduleReport:
        """Baseline: every job runs exclusively on the full GPU, FIFO."""
        queue = JobQueue()
        jobs = queue.submit_all(kernels)
        if not jobs:
            raise SchedulingError("no jobs were submitted")
        time = 0.0
        while not queue.empty:
            node = self._free_node(time)
            if node is None:
                time = self._next_free_time()
                continue
            job = queue.pop()
            job.start_time = time
            runtime = node.execute_exclusive(job.kernel)
            job.finish_time = time + runtime
            node.busy_until = job.finish_time
            from repro.cluster.job import JobState

            job.transition(JobState.RUNNING)
            job.mark("exclusive run (baseline)")
            job.transition(JobState.COMPLETED)
        return self._report(jobs, label="exclusive baseline")

    # ------------------------------------------------------------------
    def _report(self, jobs: Sequence[Job], label: str) -> ScheduleReport:
        unfinished = [job.job_id for job in jobs if job.finish_time is None]
        if unfinished:
            raise SchedulingError(f"jobs did not finish: {unfinished}")
        makespan = max(job.finish_time for job in jobs)  # type: ignore[arg-type]
        turnaround = sum(job.turnaround_time for job in jobs) / len(jobs)
        co_scheduled = sum(1 for job in jobs if job.co_runner is not None)
        return ScheduleReport(
            jobs=tuple(jobs),
            makespan_s=float(makespan),
            mean_turnaround_s=float(turnaround),
            co_scheduled_jobs=co_scheduled,
            exclusive_jobs=len(jobs) - co_scheduled,
            label=label,
        )
