"""Cluster-level job management (the Figure 1 context and future work).

The paper's method is the *Resource & Power Allocator* of a larger job
manager: a co-scheduler pulls jobs from a queue, proposes co-location pairs,
asks the allocator for the best partition/power configuration, and launches
the pair on a compute node (Figure 1).  The paper leaves the scheduler side
to future work; this package provides a compact but functional version of
it so the allocator can be exercised end to end:

* :mod:`repro.cluster.job` / :mod:`repro.cluster.queue` — jobs and the FIFO
  job queue.
* :mod:`repro.cluster.node` — a compute node wrapping one simulated GPU.
* :mod:`repro.cluster.powerbudget` — distributing a cluster-wide GPU power
  budget across nodes.
* :mod:`repro.cluster.scheduler` — the co-scheduler: pair selection from a
  window of the queue, profile-run handling, dispatch.
* :mod:`repro.cluster.manager` — the job manager tying everything together,
  plus an exclusive-execution baseline for comparison.
* :mod:`repro.cluster.events` — the discrete-event simulator replaying job
  traces with online arrivals, MIG repartitioning latency, and power-budget
  reallocation (the batch manager is its all-at-t=0 special case).
"""

from repro.cluster.events import (
    ClusterSimulator,
    SimulationConfig,
    SimulationReport,
)
from repro.cluster.job import Job, JobState
from repro.cluster.manager import JobManager, ScheduleReport
from repro.cluster.node import ComputeNode
from repro.cluster.powerbudget import ClusterPowerManager
from repro.cluster.queue import JobQueue
from repro.cluster.scheduler import CoScheduler, SchedulerConfig

__all__ = [
    "Job",
    "JobState",
    "JobQueue",
    "ComputeNode",
    "ClusterPowerManager",
    "ClusterSimulator",
    "CoScheduler",
    "SchedulerConfig",
    "SimulationConfig",
    "SimulationReport",
    "JobManager",
    "ScheduleReport",
]
