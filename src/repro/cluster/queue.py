"""FIFO job queue with a co-scheduling look-ahead window."""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.cluster.job import Job, JobState
from repro.errors import SchedulingError
from repro.workloads.kernel import KernelCharacteristics


class JobQueue:
    """A FIFO queue of pending jobs.

    The co-scheduler pops the head job and may look ahead a bounded number
    of positions to find a good co-location partner — a common compromise
    between strict FIFO fairness and pairing quality.
    """

    def __init__(self) -> None:
        self._jobs: list[Job] = []
        self._next_id = 0
        self._clock = 0.0
        self._version = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(list(self._jobs))

    @property
    def empty(self) -> bool:
        """Whether no pending jobs remain."""
        return not self._jobs

    @property
    def clock(self) -> float:
        """The queue's current notion of time (latest accepted timestamp)."""
        return self._clock

    @property
    def version(self) -> int:
        """Counter bumped on every content mutation (submit/remove).

        Consumers that memoize work derived from the queue's content (the
        co-scheduler's dispatch-plan cache) invalidate on a version change;
        clock advances leave the content — and therefore the version —
        untouched.
        """
        return self._version

    # ------------------------------------------------------------------
    def submit(self, kernel: KernelCharacteristics, submit_time: float | None = None) -> Job:
        """Submit one job for ``kernel`` and return it.

        An explicit ``submit_time`` must not lie behind the queue clock:
        silently accepting out-of-order arrivals would let a replayed trace
        corrupt every wait-time statistic downstream.  Accepted submissions
        advance the clock to their timestamp.
        """
        when = self._clock if submit_time is None else float(submit_time)
        if when < self._clock:
            raise SchedulingError(
                f"job submitted at t={when:.2f} behind the queue clock "
                f"t={self._clock:.2f}; arrivals must be time-ordered"
            )
        job = Job(
            job_id=self._next_id,
            kernel=kernel,
            submit_time=when,
        )
        job.mark(f"submitted at t={job.submit_time:.2f}")
        self._jobs.append(job)
        self._next_id += 1
        self._clock = when
        self._version += 1
        return job

    def submit_all(self, kernels: Iterable[KernelCharacteristics]) -> list[Job]:
        """Submit one job per kernel, in order."""
        return [self.submit(kernel) for kernel in kernels]

    def advance_clock(self, time: float) -> None:
        """Advance the queue's notion of time (used for submit timestamps)."""
        if time < self._clock:
            raise SchedulingError("the queue clock cannot move backwards")
        self._clock = time

    # ------------------------------------------------------------------
    def peek(self) -> Job:
        """The job at the head of the queue (must be non-empty)."""
        if not self._jobs:
            raise SchedulingError("the job queue is empty")
        return self._jobs[0]

    def window(self, size: int) -> tuple[Job, ...]:
        """Up to ``size`` jobs from the head of the queue (for pair selection)."""
        if size < 1:
            raise SchedulingError(f"window size must be >= 1, got {size}")
        return tuple(self._jobs[:size])

    def remove(self, job: Job) -> None:
        """Remove a specific job from the queue (it is being dispatched)."""
        jobs = self._jobs
        for index, queued in enumerate(jobs):
            if queued is job:
                del jobs[index]
                self._version += 1
                return
        raise SchedulingError(f"job {job.job_id} is not in the queue")

    def pop(self) -> Job:
        """Remove and return the head job."""
        job = self.peek()
        self.remove(job)
        return job

    def pending(self) -> tuple[Job, ...]:
        """All jobs still in the queue (in FIFO order)."""
        return tuple(job for job in self._jobs if job.state is JobState.PENDING)
