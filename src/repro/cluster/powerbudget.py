"""Cluster-level GPU power budgeting.

Near-future HPC systems run under a facility-wide power constraint; the job
manager therefore has to split a total GPU power budget across nodes before
the per-node allocator can pick its chip-level cap.  The paper motivates
this (Section 2.1 and the Figure 12 discussion: "shifting the extra power
budget to where it can be used more efficiently"); this module supplies the
budget-splitting piece.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError, PowerCapError
from repro.gpu.spec import A100_SPEC, GPUSpec


@dataclass(frozen=True)
class PowerRequest:
    """One node's power request.

    Attributes
    ----------
    node_id:
        The requesting node.
    desired_w:
        The chip cap the node's allocator would like (e.g. the Problem 2
        selection for the pair it is about to run).
    minimum_w:
        The lowest cap the node can accept (the device's minimum).
    """

    node_id: int
    desired_w: float
    minimum_w: float

    def __post_init__(self) -> None:
        if self.minimum_w <= 0 or self.desired_w <= 0:
            raise ConfigurationError("power requests must be positive")
        if self.desired_w < self.minimum_w:
            raise ConfigurationError(
                f"node {self.node_id}: desired cap {self.desired_w} W below minimum {self.minimum_w} W"
            )


class ClusterPowerManager:
    """Distribute a total GPU power budget across nodes.

    The strategy is deliberately simple and predictable:

    1. every node is guaranteed its minimum cap;
    2. the remaining budget is handed out in proportion to the amount each
       node asked for beyond its minimum;
    3. no node receives more than it asked for — leftover power is reported
       as head-room instead of being force-fed to nodes that cannot use it
       (that head-room is exactly what a cluster operator would shift to
       other racks, as the paper suggests).
    """

    def __init__(self, spec: GPUSpec = A100_SPEC) -> None:
        self._spec = spec

    def distribute(
        self,
        requests: Sequence[PowerRequest],
        total_budget_w: float,
    ) -> Mapping[int, float]:
        """Split ``total_budget_w`` across the requesting nodes.

        Raises
        ------
        repro.errors.PowerCapError
            If the budget cannot even cover every node's minimum cap.
        """
        if not requests:
            return {}
        return self.distribute_demands(
            [r.node_id for r in requests],
            np.array([r.desired_w for r in requests], dtype=np.float64),
            np.array([r.minimum_w for r in requests], dtype=np.float64),
            total_budget_w,
        )

    def distribute_demands(
        self,
        node_ids: Sequence[int],
        desired_w: np.ndarray,
        minimum_w: np.ndarray,
        total_budget_w: float,
        minimum_total_w: float | None = None,
    ) -> dict[int, float]:
        """Array-backed :meth:`distribute` over preallocated per-node demands.

        ``desired_w``/``minimum_w`` are parallel float64 arrays in ``node_ids``
        order; callers in a hot loop (the event simulator) mutate them in place
        and pass ``minimum_total_w`` precomputed, so a rebalance allocates no
        per-node Python objects.  Sums are accumulated sequentially over Python
        floats (not ``np.sum``'s pairwise reduction), so the result is
        bit-identical to the scalar request path for the same inputs.
        """
        if len(node_ids) == 0:
            return {}
        if total_budget_w <= 0:
            raise ConfigurationError("the total power budget must be positive")
        if np.any(minimum_w <= 0) or np.any(desired_w < minimum_w):
            raise ConfigurationError(
                "power demands must be positive and desired >= minimum"
            )
        minimum_total = (
            float(sum(minimum_w.tolist()))
            if minimum_total_w is None
            else minimum_total_w
        )
        if minimum_total > total_budget_w:
            raise PowerCapError(
                f"budget {total_budget_w} W cannot cover the minimum caps "
                f"({minimum_total} W) of {len(node_ids)} nodes"
            )
        remaining = total_budget_w - minimum_total
        extra_demand = desired_w - minimum_w
        total_extra = float(sum(extra_demand.tolist()))
        if total_extra > 0:
            scale = min(1.0, remaining / total_extra)
            allocation = minimum_w + extra_demand * scale
        else:
            allocation = minimum_w.copy()
        # Clamp to the device's supported range.
        np.minimum(allocation, self._spec.max_power_cap_w, out=allocation)
        return dict(zip(node_ids, allocation.tolist()))

    def headroom(
        self,
        allocation: Mapping[int, float],
        total_budget_w: float,
    ) -> float:
        """Budget left over after an allocation (power available to shift)."""
        return max(0.0, total_budget_w - sum(allocation.values()))
