"""Cluster-level GPU power budgeting.

Near-future HPC systems run under a facility-wide power constraint; the job
manager therefore has to split a total GPU power budget across nodes before
the per-node allocator can pick its chip-level cap.  The paper motivates
this (Section 2.1 and the Figure 12 discussion: "shifting the extra power
budget to where it can be used more efficiently"); this module supplies the
budget-splitting piece.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import ConfigurationError, PowerCapError
from repro.gpu.spec import A100_SPEC, GPUSpec


@dataclass(frozen=True)
class PowerRequest:
    """One node's power request.

    Attributes
    ----------
    node_id:
        The requesting node.
    desired_w:
        The chip cap the node's allocator would like (e.g. the Problem 2
        selection for the pair it is about to run).
    minimum_w:
        The lowest cap the node can accept (the device's minimum).
    """

    node_id: int
    desired_w: float
    minimum_w: float

    def __post_init__(self) -> None:
        if self.minimum_w <= 0 or self.desired_w <= 0:
            raise ConfigurationError("power requests must be positive")
        if self.desired_w < self.minimum_w:
            raise ConfigurationError(
                f"node {self.node_id}: desired cap {self.desired_w} W below minimum {self.minimum_w} W"
            )


class ClusterPowerManager:
    """Distribute a total GPU power budget across nodes.

    The strategy is deliberately simple and predictable:

    1. every node is guaranteed its minimum cap;
    2. the remaining budget is handed out in proportion to the amount each
       node asked for beyond its minimum;
    3. no node receives more than it asked for — leftover power is reported
       as head-room instead of being force-fed to nodes that cannot use it
       (that head-room is exactly what a cluster operator would shift to
       other racks, as the paper suggests).
    """

    def __init__(self, spec: GPUSpec = A100_SPEC) -> None:
        self._spec = spec

    def distribute(
        self,
        requests: Sequence[PowerRequest],
        total_budget_w: float,
    ) -> Mapping[int, float]:
        """Split ``total_budget_w`` across the requesting nodes.

        Raises
        ------
        repro.errors.PowerCapError
            If the budget cannot even cover every node's minimum cap.
        """
        if not requests:
            return {}
        if total_budget_w <= 0:
            raise ConfigurationError("the total power budget must be positive")
        minimum_total = sum(r.minimum_w for r in requests)
        if minimum_total > total_budget_w:
            raise PowerCapError(
                f"budget {total_budget_w} W cannot cover the minimum caps "
                f"({minimum_total} W) of {len(requests)} nodes"
            )
        allocation = {r.node_id: r.minimum_w for r in requests}
        remaining = total_budget_w - minimum_total
        extra_demand = {r.node_id: r.desired_w - r.minimum_w for r in requests}
        total_extra = sum(extra_demand.values())
        if total_extra > 0:
            scale = min(1.0, remaining / total_extra)
            for r in requests:
                allocation[r.node_id] += extra_demand[r.node_id] * scale
        # Clamp to the device's supported range.
        for node_id in allocation:
            allocation[node_id] = min(allocation[node_id], self._spec.max_power_cap_w)
        return allocation

    def headroom(
        self,
        allocation: Mapping[int, float],
        total_budget_w: float,
    ) -> float:
        """Budget left over after an allocation (power available to shift)."""
        return max(0.0, total_budget_w - sum(allocation.values()))
