#!/usr/bin/env python3
"""Emit the per-GI-size model-error summary on a smoke grid (CI guard).

Trains the spec-derived workflow for ``--spec`` (A100 by default) on a
two-cap smoke grid, evaluates
:func:`repro.analysis.errors.model_error_by_gi_size` over the named
training-suite triples on every mixed and full-chip shared
three-application layout, and

* prints the summary as a Markdown table (also appended to
  ``$GITHUB_STEP_SUMMARY`` when set, so it shows on the workflow run page);
* writes ``mean_error_pct_<N>slice`` / ``max_error_pct_<N>slice`` values to
  ``$GITHUB_OUTPUT`` when set, so accuracy drift is visible as step outputs
  per PR.

Exits non-zero when a bucket the spec realizes exceeds its acceptance
bound, mirroring the tier-1 bound test.  Buckets a spec cannot realize are
skipped — independent-axes schemes (``mi300x``) have no sub-chip shared
three-application layouts, so only their full-chip bucket is gated.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

# Allow running without an installed distribution (PYTHONPATH-less CI
# steps and local `python scripts/...` invocations).
_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.analysis.errors import (  # noqa: E402
    FOUR_SLICE_MEAN_ERROR_BOUND_PCT,
    FULL_CHIP_MEAN_ERROR_BOUND_PCT,
    TWO_SLICE_MEAN_ERROR_BOUND_PCT,
    model_error_by_gi_size,
)
from repro.core.workflow import PaperWorkflow, TrainingPlan  # noqa: E402
from repro.gpu.spec import GPU_SPECS  # noqa: E402
from repro.sim.engine import PerformanceSimulator  # noqa: E402
from repro.sim.noise import no_noise  # noqa: E402

#: Smoke-grid power caps as fractions of each spec's envelope (the A100
#: values reproduce the historical 190/230 W grid; other specs scale).
_SMOKE_CAP_FRACTIONS = (0.76, 0.92)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--spec",
        default="a100",
        choices=sorted(GPU_SPECS),
        help="hardware spec to train and evaluate (default: a100)",
    )
    args = parser.parse_args()
    spec = GPU_SPECS[args.spec]
    smoke_caps = tuple(
        max(spec.min_power_cap_w, fraction * spec.default_power_limit_w)
        for fraction in _SMOKE_CAP_FRACTIONS
    )
    workflow = PaperWorkflow(
        simulator=PerformanceSimulator(spec=spec, noise=no_noise()),
        plan=TrainingPlan.for_spec(spec, power_caps=smoke_caps),
        power_caps=smoke_caps,
    )
    workflow.train()
    summaries = model_error_by_gi_size(
        workflow.model, workflow.simulator, smoke_caps
    )

    lines = [
        f"### Per-GI-size model error (smoke grid, {args.spec})",
        "",
        "| GI memory slices | samples | mean RPerf error | max RPerf error |",
        "| ---: | ---: | ---: | ---: |",
    ]
    for summary in summaries:
        lines.append(
            f"| {summary.mem_slices} | {summary.n_samples} "
            f"| {summary.mean_error_pct:.1f}% | {summary.max_error_pct:.1f}% |"
        )
    table = "\n".join(lines)
    print(table)

    step_summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if step_summary:
        with open(step_summary, "a") as handle:
            handle.write(table + "\n")
    github_output = os.environ.get("GITHUB_OUTPUT")
    if github_output:
        with open(github_output, "a") as handle:
            for summary in summaries:
                handle.write(
                    f"mean_error_pct_{summary.mem_slices}slice="
                    f"{summary.mean_error_pct:.2f}\n"
                    f"max_error_pct_{summary.mem_slices}slice="
                    f"{summary.max_error_pct:.2f}\n"
                )

    by_slices = {summary.mem_slices: summary for summary in summaries}
    failures = []
    two = by_slices.get(2)
    if two is not None and two.mean_error_pct > TWO_SLICE_MEAN_ERROR_BOUND_PCT:
        failures.append(
            f"2-slice mean error {two.mean_error_pct:.1f}% exceeds the "
            f"{TWO_SLICE_MEAN_ERROR_BOUND_PCT}% bound"
        )
    four = by_slices.get(4)
    if four is not None and four.mean_error_pct > FOUR_SLICE_MEAN_ERROR_BOUND_PCT:
        failures.append(
            f"4-slice mean error {four.mean_error_pct:.1f}% regressed past "
            f"the seed's {FOUR_SLICE_MEAN_ERROR_BOUND_PCT}%"
        )
    full_chip = by_slices.get(spec.n_mem_slices)
    if (
        full_chip is not None
        and full_chip.mean_error_pct > FULL_CHIP_MEAN_ERROR_BOUND_PCT
    ):
        failures.append(
            f"full-chip shared mean error {full_chip.mean_error_pct:.1f}% "
            f"regressed past the {FULL_CHIP_MEAN_ERROR_BOUND_PCT}% bound"
        )
    for failure in failures:
        print(f"ERROR: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
