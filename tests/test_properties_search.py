"""Property-based tests for the search strategies over N-way candidate grids.

The key invariant: hill climbing evaluates a subset of the grid, so it can
never report a better feasible objective than exhaustive search on the same
candidates — on any group size, spec, policy, or seed.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.optimizer import ResourcePowerAllocator
from repro.core.policies import Problem1Policy, Problem2Policy
from repro.core.search import ExhaustiveSearch, HillClimbingSearch
from repro.errors import InfeasibleProblemError
from repro.workloads.pairs import CORUN_PAIRS

pair_strategy = st.sampled_from(CORUN_PAIRS)
alpha_strategy = st.sampled_from([0.0, 0.1, 0.2, 0.3, 0.42])
seed_strategy = st.integers(min_value=0, max_value=2**16)
restarts_strategy = st.integers(min_value=1, max_value=5)


@given(pair_strategy, alpha_strategy, seed_strategy, restarts_strategy)
@settings(max_examples=40, deadline=None)
def test_hill_climbing_never_beats_exhaustive_problem2(
    context, pair, alpha, seed, restarts
):
    counters = list(context.pair_profiles(pair))
    policy = Problem2Policy(alpha=alpha)
    exhaustive_alloc = ResourcePowerAllocator(
        context.model, search=ExhaustiveSearch(), cache_size=0
    )
    climbing_alloc = ResourcePowerAllocator(
        context.model,
        search=HillClimbingSearch(restarts=restarts, seed=seed),
        cache_size=0,
    )
    try:
        exhaustive = exhaustive_alloc.solve(counters, policy)
    except InfeasibleProblemError:
        # If the full grid has no feasible point, the subset cannot either.
        with pytest.raises(InfeasibleProblemError):
            climbing_alloc.solve(counters, policy)
        return
    try:
        climbing = climbing_alloc.solve(counters, policy)
    except InfeasibleProblemError:
        # The heuristic may visit only infeasible cells; that is allowed —
        # it just must never *beat* the exhaustive optimum.
        return
    assert climbing.predicted_objective <= exhaustive.predicted_objective + 1e-12
    assert climbing.candidates_evaluated <= exhaustive.candidates_evaluated


@given(pair_strategy, alpha_strategy, seed_strategy)
@settings(max_examples=25, deadline=None)
def test_hill_climbing_never_beats_exhaustive_problem1(context, pair, alpha, seed):
    counters = list(context.pair_profiles(pair))
    policy = Problem1Policy(power_cap_w=230.0, alpha=alpha)
    exhaustive_alloc = ResourcePowerAllocator(
        context.model, search=ExhaustiveSearch(), cache_size=0
    )
    climbing_alloc = ResourcePowerAllocator(
        context.model, search=HillClimbingSearch(restarts=2, seed=seed), cache_size=0
    )
    try:
        exhaustive = exhaustive_alloc.solve(counters, policy)
    except InfeasibleProblemError:
        with pytest.raises(InfeasibleProblemError):
            climbing_alloc.solve(counters, policy)
        return
    try:
        climbing = climbing_alloc.solve(counters, policy)
    except InfeasibleProblemError:
        return
    assert climbing.predicted_objective <= exhaustive.predicted_objective + 1e-12
