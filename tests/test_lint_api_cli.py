"""Tests for the lint service boundary: typed request/result objects, the
service facade, and the CLI's exit-code and ``--json`` contracts."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.api import LintFindingRow, LintRequest, LintResult, PlannerService
from repro.cli import EXIT_CONFIG, EXIT_LINT_FINDINGS, main
from repro.errors import ConfigurationError

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"
CLEAN = str(FIXTURES / "rl006_ok.py")
DIRTY = str(FIXTURES / "rl006_bad.py")


def run_cli(argv):
    lines: list[str] = []
    code = main(argv, out=lines.append)
    return code, "\n".join(lines)


class TestLintRequest:
    def test_bare_string_path_is_rejected(self):
        with pytest.raises(ConfigurationError, match="bare string"):
            LintRequest(paths="src")

    def test_empty_paths_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one path"):
            LintRequest(paths=())

    def test_unknown_select_rejected_at_the_boundary(self):
        with pytest.raises(ConfigurationError, match="unknown rule id"):
            LintRequest(paths=("src",), select=("RL042",))

    def test_round_trip_through_json(self):
        request = LintRequest(paths=("src", "tests"), strict=True, select=("RL001",))
        rebuilt = LintRequest.from_dict(json.loads(json.dumps(request.to_dict())))
        assert rebuilt == request

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError):
            LintRequest.from_dict({"paths": ["src"], "mode": "fast"})


class TestServiceLint:
    def test_lint_returns_typed_result_and_counts_calls(self):
        service = PlannerService()
        before = service.stats.lints_served
        result = service.lint(LintRequest(paths=(DIRTY,), strict=True))
        assert isinstance(result, LintResult)
        assert service.stats.lints_served == before + 1
        assert not result.clean
        assert result.n_errors >= 3
        assert "lints_served" in service.stats.as_dict()

    def test_clean_fixture_yields_clean_result(self):
        result = PlannerService().lint(LintRequest(paths=(CLEAN,), strict=True))
        assert result.clean
        assert result.findings == ()
        assert result.files_scanned == 1

    def test_result_round_trips_through_json(self):
        result = PlannerService().lint(LintRequest(paths=(DIRTY,)))
        rebuilt = LintResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert rebuilt == result
        assert all(isinstance(row, LintFindingRow) for row in rebuilt.findings)

    def test_describe_ends_with_verdict_line(self):
        result = PlannerService().lint(LintRequest(paths=(CLEAN,), strict=True))
        assert result.describe().endswith(
            "clean (strict): 0 finding(s) (0 error(s), 0 warning(s)), "
            "0 suppressed, 1 file(s) scanned"
        )


class TestCliLint:
    def test_clean_path_exits_zero(self):
        code, text = run_cli(["lint", CLEAN, "--strict"])
        assert code == 0
        assert "clean (strict)" in text

    def test_findings_exit_one_with_locations(self):
        code, text = run_cli(["lint", DIRTY])
        assert code == EXIT_LINT_FINDINGS
        assert "RL006" in text
        assert "rl006_bad.py:11:" in text

    def test_missing_path_is_a_config_error(self):
        code, text = run_cli(["lint", str(FIXTURES / "nope.py")])
        assert code == EXIT_CONFIG
        assert "does not exist" in text

    def test_unknown_select_is_a_config_error(self):
        code, text = run_cli(["lint", CLEAN, "--select", "RL042"])
        assert code == EXIT_CONFIG
        assert "unknown rule id" in text

    def test_select_narrows_the_run(self):
        code, _ = run_cli(["lint", DIRTY, "--select", "RL001"])
        assert code == 0  # the RL006 fixture is clean under RL001 alone

    def test_json_output_round_trips(self):
        code, text = run_cli(["lint", DIRTY, "--json"])
        assert code == EXIT_LINT_FINDINGS
        result = LintResult.from_dict(json.loads(text))
        assert not result.clean
        assert result.findings

    def test_list_rules_documents_the_registry(self):
        code, text = run_cli(["lint", "--list-rules"])
        assert code == 0
        for rule_id in ("RL001", "RL002", "RL003", "RL004", "RL005", "RL006"):
            assert rule_id in text

    def test_strict_self_run_over_src_is_clean(self):
        src = str(Path(__file__).resolve().parents[1] / "src")
        code, text = run_cli(["lint", src, "--strict"])
        assert code == 0
        assert "clean (strict)" in text
