"""Tests for the Table 7 classification rule."""

from __future__ import annotations

import pytest

from repro.sim.counters import CounterVector
from repro.workloads.classification import (
    COMPUTE_MEMORY_RATIO_THRESHOLD,
    EXPECTED_CLASSIFICATION,
    US_RELATIVE_PERFORMANCE_THRESHOLD,
    classify_from_measurements,
    classify_kernel,
    classify_suite,
)
from repro.workloads.kernel import WorkloadClass
from repro.workloads.suite import DEFAULT_SUITE


def counters(compute=90.0, memory=40.0, dram=30.0, l2=60.0, occ=50.0, mixed=0.0, double=0.0, integer=0.0):
    return CounterVector(
        compute_throughput=compute,
        memory_throughput=memory,
        dram_throughput=dram,
        l2_hit_rate=l2,
        occupancy=occ,
        tensor_mixed=mixed,
        tensor_double=double,
        tensor_int=integer,
    )


class TestRuleOnSyntheticMeasurements:
    def test_unscalable_when_degradation_small(self):
        report = classify_from_measurements("x", 0.95, counters())
        assert report.workload_class is WorkloadClass.US

    def test_threshold_is_strict(self):
        report = classify_from_measurements("x", US_RELATIVE_PERFORMANCE_THRESHOLD, counters())
        assert report.workload_class is not WorkloadClass.US

    def test_compute_intensive_without_tensor(self):
        report = classify_from_measurements("x", 0.3, counters(compute=95, memory=40))
        assert report.workload_class is WorkloadClass.CI

    def test_tensor_intensive_with_tensor_counters(self):
        report = classify_from_measurements("x", 0.3, counters(compute=95, memory=40, mixed=80))
        assert report.workload_class is WorkloadClass.TI

    def test_memory_intensive_when_ratio_low(self):
        report = classify_from_measurements("x", 0.3, counters(compute=30, memory=95))
        assert report.workload_class is WorkloadClass.MI

    def test_ratio_threshold_boundary(self):
        ratio_just_below = COMPUTE_MEMORY_RATIO_THRESHOLD * 0.99
        report = classify_from_measurements(
            "x", 0.3, counters(compute=ratio_just_below * 50, memory=50)
        )
        assert report.workload_class is WorkloadClass.MI

    def test_report_records_evidence(self):
        report = classify_from_measurements("x", 0.42, counters(compute=90, memory=45, mixed=70))
        assert report.relative_perf_us_test == pytest.approx(0.42)
        assert report.compute_memory_ratio == pytest.approx(2.0)
        assert report.tensor_utilization_pct == pytest.approx(70.0)

    def test_unknown_benchmark_matches_paper_vacuously(self):
        report = classify_from_measurements("not-in-table7", 0.3, counters())
        assert report.matches_paper


class TestRuleOnSimulatedSuite:
    def test_expected_classification_covers_24_benchmarks(self):
        assert len(EXPECTED_CLASSIFICATION) == 24
        assert sum(1 for c in EXPECTED_CLASSIFICATION.values() if c is WorkloadClass.TI) == 7
        assert sum(1 for c in EXPECTED_CLASSIFICATION.values() if c is WorkloadClass.CI) == 6
        assert sum(1 for c in EXPECTED_CLASSIFICATION.values() if c is WorkloadClass.MI) == 5
        assert sum(1 for c in EXPECTED_CLASSIFICATION.values() if c is WorkloadClass.US) == 6

    @pytest.mark.parametrize("name", sorted(EXPECTED_CLASSIFICATION))
    def test_every_benchmark_classifies_as_in_table7(self, sim, name):
        report = classify_kernel(DEFAULT_SUITE.get(name), sim)
        assert report.workload_class is EXPECTED_CLASSIFICATION[name], (
            f"{name} classified as {report.workload_class} "
            f"(expected {EXPECTED_CLASSIFICATION[name]})"
        )

    def test_classify_suite_returns_report_per_kernel(self, sim):
        subset = {name: DEFAULT_SUITE.get(name) for name in ("stream", "dgemm")}
        reports = classify_suite(subset, sim)
        assert set(reports) == {"stream", "dgemm"}
        assert reports["stream"].workload_class is WorkloadClass.MI
