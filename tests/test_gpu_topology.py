"""Tests for the chip topology / ownership map."""

from __future__ import annotations

import pytest

from repro.errors import PartitioningError, SpecificationError
from repro.gpu.spec import A100_SPEC
from repro.gpu.topology import ChipTopology


@pytest.fixture()
def topology():
    return ChipTopology(A100_SPEC)


class TestInitialState:
    def test_all_gpcs_present_and_free(self, topology):
        assert len(topology.gpcs) == A100_SPEC.n_gpcs
        assert topology.free_gpcs == A100_SPEC.n_gpcs

    def test_all_slices_present_and_free(self, topology):
        assert len(topology.slices) == A100_SPEC.n_mem_slices
        assert topology.free_slices == A100_SPEC.n_mem_slices

    def test_slice_resources_partition_the_chip(self, topology):
        assert sum(s.bandwidth_gbs for s in topology.slices) == pytest.approx(
            A100_SPEC.dram_bandwidth_gbs
        )
        assert sum(s.llc_mb for s in topology.slices) == pytest.approx(A100_SPEC.l2_cache_mb)
        assert sum(s.hbm_gb for s in topology.slices) == pytest.approx(A100_SPEC.hbm_capacity_gb)

    def test_mig_initially_disabled(self, topology):
        assert not topology.mig_enabled
        assert topology.usable_gpcs == A100_SPEC.n_gpcs


class TestMigMode:
    def test_enabling_mig_disables_one_gpc(self, topology):
        topology.set_mig_mode(True)
        assert topology.usable_gpcs == A100_SPEC.mig_gpcs
        assert topology.free_gpcs == A100_SPEC.mig_gpcs

    def test_disabling_mig_restores_gpcs(self, topology):
        topology.set_mig_mode(True)
        topology.set_mig_mode(False)
        assert topology.usable_gpcs == A100_SPEC.n_gpcs

    def test_toggle_is_idempotent(self, topology):
        topology.set_mig_mode(True)
        topology.set_mig_mode(True)
        assert topology.usable_gpcs == A100_SPEC.mig_gpcs

    def test_cannot_toggle_with_owned_resources(self, topology):
        topology.set_mig_mode(True)
        topology.claim_gpcs(owner=1, count=2)
        with pytest.raises(PartitioningError):
            topology.set_mig_mode(False)


class TestAllocation:
    def test_claim_assigns_ownership(self, topology):
        claimed = topology.claim_gpcs(owner=7, count=3)
        assert len(claimed) == 3
        assert all(g.owner == 7 for g in claimed)
        assert topology.free_gpcs == A100_SPEC.n_gpcs - 3

    def test_claim_slices(self, topology):
        topology.claim_slices(owner=7, count=4)
        assert topology.free_slices == A100_SPEC.n_mem_slices - 4
        assert len(topology.owned_slices(7)) == 4

    def test_over_allocation_rejected(self, topology):
        with pytest.raises(PartitioningError):
            topology.claim_gpcs(owner=1, count=A100_SPEC.n_gpcs + 1)

    def test_zero_count_rejected(self, topology):
        with pytest.raises(SpecificationError):
            topology.claim_gpcs(owner=1, count=0)

    def test_release_owner_frees_everything(self, topology):
        topology.claim_gpcs(owner=3, count=4)
        topology.claim_slices(owner=3, count=4)
        topology.release_owner(3)
        assert topology.free_gpcs == A100_SPEC.n_gpcs
        assert topology.free_slices == A100_SPEC.n_mem_slices

    def test_release_only_affects_one_owner(self, topology):
        topology.claim_gpcs(owner=1, count=2)
        topology.claim_gpcs(owner=2, count=2)
        topology.release_owner(1)
        assert len(topology.owned_gpcs(2)) == 2
        assert topology.free_gpcs == A100_SPEC.n_gpcs - 2

    def test_reset_clears_all_ownership(self, topology):
        topology.claim_gpcs(owner=1, count=2)
        topology.claim_slices(owner=1, count=2)
        topology.reset()
        assert topology.free_gpcs == A100_SPEC.n_gpcs
        assert topology.free_slices == A100_SPEC.n_mem_slices
