"""Tests for the optimization policies (Problems 1 and 2)."""

from __future__ import annotations

import pytest

from repro.config import DEFAULT_POWER_CAPS
from repro.core.policies import Policy, Problem1Policy, Problem2Policy, make_policy
from repro.errors import ConfigurationError


class TestProblem1:
    def test_objective_is_throughput(self):
        policy = Problem1Policy(power_cap_w=230, alpha=0.2)
        assert policy.objective(1.4, 230) == pytest.approx(1.4)

    def test_candidate_caps_is_the_given_one(self):
        policy = Problem1Policy(power_cap_w=230)
        assert policy.candidate_power_caps() == (230.0,)

    def test_fairness_constraint_is_strict(self):
        policy = Problem1Policy(power_cap_w=230, alpha=0.2)
        assert policy.is_feasible(0.21)
        assert not policy.is_feasible(0.2)
        assert not policy.is_feasible(0.1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Problem1Policy(power_cap_w=-1)
        with pytest.raises(ConfigurationError):
            Problem1Policy(power_cap_w=230, alpha=1.2)

    def test_satisfies_policy_protocol(self):
        assert isinstance(Problem1Policy(power_cap_w=230), Policy)


class TestProblem2:
    def test_objective_is_efficiency(self):
        policy = Problem2Policy(alpha=0.2)
        assert policy.objective(1.5, 150) == pytest.approx(0.01)

    def test_lower_cap_preferred_for_equal_throughput(self):
        policy = Problem2Policy()
        assert policy.objective(1.2, 150) > policy.objective(1.2, 250)

    def test_candidate_caps_default_to_table5(self):
        assert Problem2Policy().candidate_power_caps() == DEFAULT_POWER_CAPS

    def test_custom_caps(self):
        policy = Problem2Policy(power_caps=(170, 210))
        assert policy.candidate_power_caps() == (170.0, 210.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Problem2Policy(alpha=-0.1)
        with pytest.raises(ConfigurationError):
            Problem2Policy(power_caps=())
        with pytest.raises(ConfigurationError):
            Problem2Policy(power_caps=(0.0,))

    def test_satisfies_policy_protocol(self):
        assert isinstance(Problem2Policy(), Policy)


class TestMakePolicy:
    def test_problem1_aliases(self):
        for name in ("problem1", "throughput", "Problem1"):
            policy = make_policy(name, alpha=0.3, power_cap_w=210)
            assert isinstance(policy, Problem1Policy)
            assert policy.alpha == 0.3

    def test_problem2_aliases(self):
        for name in ("problem2", "energy-efficiency", "efficiency"):
            assert isinstance(make_policy(name, alpha=0.2), Problem2Policy)

    def test_problem1_requires_cap(self):
        with pytest.raises(ConfigurationError):
            make_policy("problem1", alpha=0.2)

    def test_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            make_policy("problem3", alpha=0.2)
