"""GI-size-aware hardware-state keys: schema, coverage, parity, accuracy.

The model keys gained the hosting GPU Instance's memory-slice count
(key schema v2).  These tests lock the three contracts of that change:

* **Coverage** — the spec-derived training plan fits coefficients for
  every per-application key any realizable partition state (N = 1..4,
  private/shared/mixed) can produce on the A100, H100, and A30.
* **Parity** — full-GI predictions (solo, pairs, the whole Table 5 grid)
  are bit-identical to the pre-change model: the values pinned below were
  captured on main immediately before the key-schema change.
* **Accuracy** — a bandwidth-bound application inside a sub-chip shared
  GI is now predicted within a tested error bound of the simulated value,
  where the pair-era full-chip coefficients overestimated by ~2-3x.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import (
    KEY_SCHEMA_VERSION,
    HardwareStateKey,
    LinearPerfModel,
    required_state_keys,
)
from repro.core.workflow import PaperWorkflow, TrainingPlan
from repro.errors import ModelError
from repro.gpu.mig import (
    CORUN_STATES,
    MemoryOption,
    PartitionState,
    enumerate_partition_states,
    mixed_training_states,
    solo_state,
)
from repro.gpu.spec import A30_SPEC, A100_SPEC, H100_SPEC
from repro.sim.engine import PerformanceSimulator
from repro.sim.noise import no_noise
from repro.workloads.kernel import WorkloadClass
from repro.workloads.pairs import corun_pair
from repro.workloads.suite import DEFAULT_SUITE
from repro.workloads.synthetic import SyntheticWorkloadGenerator

#: Predictions captured on main immediately before the key-schema change.
#: Values are exact float reprs; the parity tests compare with repr() so a
#: single ULP of drift in the full-GI pipeline fails loudly.
PINNED = {
    "paper_predict_corun": {
        "TI-MI2|S1|150": [
            "0.23172492696311908",
            "0.8812292579349905"
        ],
        "TI-MI2|S1|230": [
            "0.28462346267818145",
            "0.9572797818934069"
        ],
        "TI-MI2|S2|150": [
            "0.1672539273634001",
            "0.914804258026455"
        ],
        "TI-MI2|S2|230": [
            "0.195822538782281",
            "0.9520400490253023"
        ],
        "TI-MI2|S3|150": [
            "0.4431427575200728",
            "0.4463471647616528"
        ],
        "TI-MI2|S3|230": [
            "0.5004007162735115",
            "0.4915816462068053"
        ],
        "TI-MI2|S4|150": [
            "0.3657743516047078",
            "0.448958033863399"
        ],
        "TI-MI2|S4|230": [
            "0.36925298743401563",
            "0.4989961384995889"
        ],
        "CI-US1|S1|150": [
            "0.4555817347616932",
            "0.870526231688503"
        ],
        "CI-US1|S1|230": [
            "0.5076315783173073",
            "0.8914322313552256"
        ],
        "CI-US1|S2|150": [
            "0.3445281379795308",
            "0.8561474991937394"
        ],
        "CI-US1|S2|230": [
            "0.3746114707207613",
            "0.9120848735679024"
        ],
        "CI-US1|S3|150": [
            "0.4412523425709409",
            "0.9494784942849124"
        ],
        "CI-US1|S3|230": [
            "0.4413224039383822",
            "1.0085477776750096"
        ],
        "CI-US1|S4|150": [
            "0.3444882024346621",
            "0.9622145638487098"
        ],
        "CI-US1|S4|230": [
            "0.341333685194325",
            "0.9785814983304605"
        ]
    },
    "nway_predict_corun": {
        "igemm4+stream|S1(4GPCs-3GPCs/Shared)|190": [
            "0.29851106018375884",
            "0.9391029666245365"
        ],
        "igemm4+stream|S1(4GPCs-3GPCs/Shared)|230": [
            "0.30730964465255484",
            "0.9467881418898568"
        ],
        "igemm4+stream|S3(4GPCs-3GPCs/Private)|190": [
            "0.49415304859449",
            "0.49265082809459043"
        ],
        "igemm4+stream|S3(4GPCs-3GPCs/Private)|230": [
            "0.49419136267632696",
            "0.4977238833524397"
        ],
        "dgemm+bfs|S1(4GPCs-3GPCs/Shared)|190": [
            "0.4259659354561989",
            "0.9928461711921137"
        ],
        "dgemm+bfs|S1(4GPCs-3GPCs/Shared)|230": [
            "0.427946653641348",
            "0.9976685632188167"
        ],
        "dgemm+bfs|S3(4GPCs-3GPCs/Private)|190": [
            "0.5084972363938622",
            "0.9453599996225917"
        ],
        "dgemm+bfs|S3(4GPCs-3GPCs/Private)|230": [
            "0.5066859140056392",
            "0.9492974475786523"
        ]
    },
    "nway_predict_solo": {
        "stream|1|private": "0.10591466772488434",
        "stream|1|shared": "0.6313711062926446",
        "stream|2|private": "0.2349159257518897",
        "stream|2|shared": "0.9612882463364352",
        "stream|3|private": "0.5002341529235775",
        "stream|3|shared": "0.9987674245504611",
        "stream|4|private": "0.4906707764920174",
        "stream|4|shared": "1.025814801943332",
        "stream|7|private": "1.0089358776051358",
        "stream|7|shared": "1.0089358776051358",
        "hgemm|1|private": "0.13570378674952221",
        "hgemm|1|shared": "0.12371095442398589",
        "hgemm|2|private": "0.2649791881465279",
        "hgemm|2|shared": "0.25461098925453324",
        "hgemm|3|private": "0.39344167405732833",
        "hgemm|3|shared": "0.38754356100605347",
        "hgemm|4|private": "0.5206986034355391",
        "hgemm|4|shared": "0.5186677394727226",
        "hgemm|7|private": "0.888096527193892",
        "hgemm|7|shared": "0.888096527193892"
    },
    "engine_full_gi": {
        "TI-MI2|S1": [
            "0.44892203752439586",
            "0.7829026028381846"
        ],
        "TI-MI2|S2": [
            "0.36287567409787586",
            "0.8219862212156024"
        ],
        "TI-MI2|S3": [
            "0.5338159498473564",
            "0.5026178010471204"
        ],
        "TI-MI2|S4": [
            "0.40280557652862325",
            "0.5026178010471204"
        ],
        "CI-US1|S1": [
            "0.42317526987839854",
            "0.9843372592803403"
        ],
        "CI-US1|S2": [
            "0.3185173118137517",
            "0.9900980447083227"
        ],
        "CI-US1|S3": [
            "0.5085714285714286",
            "0.9872773536895674"
        ],
        "CI-US1|S4": [
            "0.3830703012912483",
            "0.9923273657289002"
        ],
        "solo|stream|2|private": "0.25196850393700787",
        "solo|stream|2|shared": "1.0",
        "solo|stream|4|private": "0.5026178010471204",
        "solo|stream|4|shared": "1.0",
        "solo|hgemm|2|private": "0.25764594935932794",
        "solo|hgemm|2|shared": "0.25764594935932794",
        "solo|hgemm|4|private": "0.5118959054885144",
        "solo|hgemm|4|shared": "0.5118959054885144"
    }
}


NWAY_CAPS = (190.0, 230.0)


@pytest.fixture(scope="module")
def nway_workflow():
    workflow = PaperWorkflow(
        simulator=PerformanceSimulator(noise=no_noise()),
        plan=TrainingPlan.for_spec(A100_SPEC, power_caps=NWAY_CAPS),
        power_caps=NWAY_CAPS,
    )
    workflow.train()
    return workflow


@pytest.fixture(scope="module")
def paper_workflow():
    workflow = PaperWorkflow()
    workflow.train()
    return workflow


# ----------------------------------------------------------------------
# Key enumeration / coverage properties
# ----------------------------------------------------------------------
class TestKeyCoverage:
    @pytest.mark.parametrize("spec", (A100_SPEC, H100_SPEC, A30_SPEC), ids=lambda s: s.name)
    def test_plan_covers_every_spec_reachable_key(self, spec):
        """Every (gpcs, mem_slices, option, cap) state any realizable
        partition layout can produce is fitted by the spec-derived plan."""
        plan = TrainingPlan.for_spec(spec, power_caps=(spec.default_power_limit_w,))
        covered = set(required_state_keys(plan.states, plan.power_caps, spec))
        for option in plan.options:
            for gpcs in plan.gpc_counts:
                for cap in plan.power_caps:
                    covered.add(
                        HardwareStateKey.from_state(solo_state(gpcs, option), 0, cap, spec)
                    )
        for n_apps in (1, 2, 3, 4):
            for state in enumerate_partition_states(n_apps, spec):
                for cap in plan.power_caps:
                    for index in range(state.n_apps):
                        key = HardwareStateKey.from_state(state, index, cap, spec)
                        assert key in covered, (
                            f"{state.describe()} app{index} needs uncovered key "
                            f"{key.describe()} on {spec.name}"
                        )

    @pytest.mark.parametrize("spec", (A100_SPEC, H100_SPEC, A30_SPEC), ids=lambda s: s.name)
    def test_required_state_keys_unique_and_sorted(self, spec):
        states = tuple(enumerate_partition_states(3, spec))
        keys = required_state_keys(states, (spec.default_power_limit_w,), spec)
        assert len(keys) == len(set(keys))
        assert list(keys) == sorted(keys, key=HardwareStateKey.sort_key)

    def test_mixed_training_states_cover_all_sub_chip_keys(self):
        """The covering subset reaches every sub-chip shared key that the
        full mixed enumeration (any N) can produce."""
        spec = A100_SPEC
        model = LinearPerfModel(spec=spec)

        def sub_chip_keys(states):
            keys = set()
            for state in states:
                for index in range(state.n_apps):
                    key = HardwareStateKey.from_state(state, index, 250.0, spec)
                    if model.is_sub_chip_shared(key):
                        keys.add(key)
            return keys

        covering = sub_chip_keys(mixed_training_states(spec))
        for n_apps in (3, 4):
            full = sub_chip_keys(
                enumerate_partition_states(n_apps, spec, (MemoryOption.MIXED,))
            )
            assert full <= covering

    def test_sub_chip_and_full_chip_shared_keys_are_distinct(self):
        mixed = PartitionState((2, 2, 3), MemoryOption.MIXED, gi_groups=(0, 0, 1))
        shared = PartitionState((2, 2, 3), MemoryOption.SHARED)
        sub_chip = HardwareStateKey.from_state(mixed, 0, 230.0, A100_SPEC)
        full_chip = HardwareStateKey.from_state(shared, 0, 230.0, A100_SPEC)
        assert sub_chip.option is full_chip.option is MemoryOption.SHARED
        assert sub_chip != full_chip
        assert sub_chip.mem_slices == 4 and full_chip.mem_slices == 8


# ----------------------------------------------------------------------
# Serialization round-trip
# ----------------------------------------------------------------------
class TestSerializationRoundTrip:
    def test_roundtrip_preserves_mixed_state_predictions(self, nway_workflow):
        model = nway_workflow.model
        rebuilt = LinearPerfModel.from_dict(model.to_dict())
        assert rebuilt.spec == model.spec
        db = nway_workflow.online.database
        counters = [db.get(n).counters for n in ("stream", "lud", "hgemm")]
        state = PartitionState((2, 2, 3), MemoryOption.MIXED, gi_groups=(0, 0, 1))
        for cap in NWAY_CAPS:
            assert rebuilt.predict_corun(counters, state, cap) == (
                model.predict_corun(counters, state, cap)
            )

    def test_roundtrip_preserves_every_fitted_key(self, nway_workflow):
        model = nway_workflow.model
        rebuilt = LinearPerfModel.from_dict(model.to_dict())
        assert rebuilt.fitted_scalability_states() == model.fitted_scalability_states()
        assert rebuilt.fitted_interference_states() == model.fitted_interference_states()

    def test_document_carries_schema_version_and_spec(self, nway_workflow):
        data = nway_workflow.model.to_dict()
        assert data["version"] == KEY_SCHEMA_VERSION == 3
        assert data["spec"] == A100_SPEC.name
        assert all("mem_slices" in entry for entry in data["scalability"])

    def test_pair_era_document_rejected_with_retrain_message(self, nway_workflow):
        data = nway_workflow.model.to_dict()
        data["version"] = 1
        for entry in data["scalability"] + data["interference"]:
            entry.pop("mem_slices")
        with pytest.raises(ModelError, match="retrain"):
            LinearPerfModel.from_dict(data)

    def test_spec_mismatch_rejected(self, nway_workflow):
        data = nway_workflow.model.to_dict()
        with pytest.raises(ModelError, match="spec"):
            LinearPerfModel.from_dict(data, spec=H100_SPEC)


# ----------------------------------------------------------------------
# Full-GI parity with the pre-change model (bit-identical)
# ----------------------------------------------------------------------
class TestFullGIParity:
    def test_paper_grid_predictions_bit_identical(self, paper_workflow):
        db = paper_workflow.online.database
        states = {state.label: state for state in CORUN_STATES}
        for entry, expected in PINNED["paper_predict_corun"].items():
            pair_name, label, cap = entry.split("|")
            pair = corun_pair(pair_name)
            counters = [db.get(pair.app1).counters, db.get(pair.app2).counters]
            predicted = paper_workflow.model.predict_corun(
                counters, states[label], float(cap)
            )
            assert [repr(v) for v in predicted] == expected, entry

    def test_nway_grid_pair_predictions_bit_identical(self, nway_workflow):
        db = nway_workflow.online.database
        for entry, expected in PINNED["nway_predict_corun"].items():
            apps, desc, cap = entry.split("|")
            counters = [db.get(n).counters for n in apps.split("+")]
            state = CORUN_STATES[0] if "Shared" in desc else CORUN_STATES[2]
            predicted = nway_workflow.model.predict_corun(counters, state, float(cap))
            assert [repr(v) for v in predicted] == expected, entry

    def test_nway_solo_predictions_bit_identical(self, nway_workflow):
        db = nway_workflow.online.database
        for entry, expected in PINNED["nway_predict_solo"].items():
            name, gpcs, option = entry.split("|")
            state = solo_state(int(gpcs), option)
            key = HardwareStateKey.from_state(state, 0, 230.0, A100_SPEC)
            predicted = nway_workflow.model.predict_solo(db.get(name).counters, key)
            assert repr(predicted) == expected, entry

    def test_engine_full_gi_runs_bit_identical(self):
        simulator = PerformanceSimulator(noise=no_noise())
        states = {state.label: state for state in CORUN_STATES}
        for entry, expected in PINNED["engine_full_gi"].items():
            parts = entry.split("|")
            if parts[0] == "solo":
                _, name, gpcs, option = parts
                run = simulator.solo_run(
                    DEFAULT_SUITE.get(name), solo_state(int(gpcs), option), 210.0
                )
                assert repr(run.relative_performance) == expected, entry
            else:
                pair_name, label = parts
                kernels = list(corun_pair(pair_name).kernels())
                result = simulator.co_run(kernels, states[label], 230.0)
                assert [repr(v) for v in result.relative_performances] == expected, entry


# ----------------------------------------------------------------------
# Sub-chip shared GI accuracy (the regression the schema change fixes)
# ----------------------------------------------------------------------
class TestSubChipAccuracy:
    #: Acceptance bound: predicted RPerf within 25% of simulated for a
    #: bandwidth-bound application inside a sub-chip shared GI.
    BOUND = 0.25

    def _relative_error(self, workflow, kernels, state, index, cap=230.0):
        counters = [workflow.simulator.profile(k) for k in kernels]
        predicted = workflow.model.predict_corun(counters, state, cap)[index]
        simulated = workflow.simulator.co_run(kernels, state, cap).relative_performances[index]
        return predicted, simulated, abs(predicted - simulated) / simulated

    def test_bandwidth_bound_suite_app_within_bound(self, nway_workflow):
        state = PartitionState((2, 2, 3), MemoryOption.MIXED, gi_groups=(0, 0, 1))
        for partner in ("randomaccess", "lud", "bfs"):
            kernels = [DEFAULT_SUITE.get("stream"), DEFAULT_SUITE.get(partner), DEFAULT_SUITE.get("hgemm")]
            predicted, simulated, error = self._relative_error(nway_workflow, kernels, state, 0)
            assert error < self.BOUND, (
                f"stream + {partner}: predicted {predicted:.3f} vs simulated "
                f"{simulated:.3f} ({error:.0%})"
            )

    def test_bandwidth_bound_synthetic_app_within_bound(self, nway_workflow):
        """A held-out synthetic memory-intensive app (seed disjoint from the
        training sweep) in a 4-slice shared GI."""
        generator = SyntheticWorkloadGenerator(seed=77)
        state = PartitionState((2, 2, 3), MemoryOption.MIXED, gi_groups=(0, 0, 1))
        for _ in range(3):
            victim = generator.sample_class(WorkloadClass.MI)
            partner = generator.sample_class(WorkloadClass.CI)
            kernels = [victim, partner, DEFAULT_SUITE.get("bfs")]
            predicted, simulated, error = self._relative_error(nway_workflow, kernels, state, 0)
            assert error < self.BOUND, (
                f"{victim.name}: predicted {predicted:.3f} vs simulated "
                f"{simulated:.3f} ({error:.0%})"
            )

    def test_pair_era_full_chip_key_overestimated(self, nway_workflow):
        """Reconstruct the pre-change behaviour (full-chip shared
        coefficients for a sub-chip CI) and confirm the new keys beat it —
        the old path overestimated bandwidth-bound RPerf by ~2x+."""
        db = nway_workflow.online.database
        state = PartitionState((2, 2, 3), MemoryOption.MIXED, gi_groups=(0, 0, 1))
        victim = db.get("stream").counters
        partner = [db.get("randomaccess").counters]
        old_key = HardwareStateKey(2, A100_SPEC.n_mem_slices, MemoryOption.SHARED, 230.0)
        old_style = nway_workflow.model.predict_rperf(victim, old_key, partner)
        kernels = [DEFAULT_SUITE.get(n) for n in ("stream", "randomaccess", "bfs")]
        simulated = nway_workflow.simulator.co_run(kernels, state, 230.0).relative_performances[0]
        new_key = HardwareStateKey.from_state(state, 0, 230.0, A100_SPEC)
        new_style = nway_workflow.model.predict_rperf(victim, new_key, partner)
        assert old_style / simulated > 2.0
        assert abs(new_style - simulated) / simulated < self.BOUND

    def test_every_enumerated_mixed_state_is_supported(self, nway_workflow):
        model = nway_workflow.model
        for n_apps in (3, 4):
            for state in enumerate_partition_states(3 if n_apps == 3 else 4, A100_SPEC, (MemoryOption.MIXED,)):
                assert model.supports_candidate(state, NWAY_CAPS), state.describe()


# ----------------------------------------------------------------------
# Sub-chip pool sizing in the interference model
# ----------------------------------------------------------------------
class TestSubChipPoolSizing:
    def test_smaller_pool_exerts_more_cache_pressure(self):
        from repro.sim.interference import InterferenceModel

        model = InterferenceModel()
        kernel = DEFAULT_SUITE.get("lud")
        full = model.cache_pressure(kernel)
        assert model.cache_pressure(kernel, pool_mem_slices=8) == full
        assert model.cache_pressure(kernel, pool_mem_slices=4) >= full
        assert model.cache_pressure(kernel, pool_mem_slices=2) >= (
            model.cache_pressure(kernel, pool_mem_slices=4)
        )

    def test_invalid_pool_size_rejected(self):
        from repro.errors import SimulationError
        from repro.sim.interference import InterferenceModel

        model = InterferenceModel()
        kernel = DEFAULT_SUITE.get("lud")
        with pytest.raises(SimulationError):
            model.cache_pressure(kernel, pool_mem_slices=0)
        with pytest.raises(SimulationError):
            model.cache_pressure(kernel, pool_mem_slices=9)

    def test_batched_candidate_grid_matches_scalar_on_mixed_states(self, nway_workflow):
        db = nway_workflow.online.database
        counters = [db.get(n).counters for n in ("stream", "randomaccess", "bfs")]
        candidates = [
            (state, cap)
            for state in enumerate_partition_states(3, A100_SPEC)
            for cap in NWAY_CAPS
        ]
        batched = nway_workflow.model.predict_candidates(counters, candidates)
        for row, (state, cap) in zip(batched, candidates):
            scalar = nway_workflow.model.predict_corun(counters, state, cap)
            np.testing.assert_allclose(row, scalar, rtol=1e-12)
