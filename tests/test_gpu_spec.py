"""Tests for the GPU hardware specification."""

from __future__ import annotations

import pytest

from repro.errors import PowerCapError, SpecificationError
from repro.gpu.spec import A100_SPEC, CUDA_PIPES, TENSOR_PIPES, GPUSpec, Pipe, PipeThroughput


class TestPipe:
    def test_tensor_pipes_are_flagged(self):
        for pipe in TENSOR_PIPES:
            assert pipe.is_tensor

    def test_cuda_pipes_are_not_tensor(self):
        for pipe in CUDA_PIPES:
            assert not pipe.is_tensor

    def test_all_pipes_are_covered(self):
        assert set(TENSOR_PIPES) | set(CUDA_PIPES) == set(Pipe)


class TestPipeThroughput:
    def test_positive_throughput_accepted(self):
        entry = PipeThroughput(Pipe.FP32, 19.5)
        assert entry.tflops == 19.5

    def test_zero_throughput_rejected(self):
        with pytest.raises(SpecificationError):
            PipeThroughput(Pipe.FP32, 0.0)


class TestA100Spec:
    def test_gpc_counts_match_a100(self):
        assert A100_SPEC.n_gpcs == 8
        assert A100_SPEC.mig_gpcs == 7

    def test_memory_slices_match_a100(self):
        assert A100_SPEC.n_mem_slices == 8

    def test_default_power_limit_is_250w(self):
        assert A100_SPEC.default_power_limit_w == 250.0

    def test_total_sms(self):
        assert A100_SPEC.total_sms == A100_SPEC.n_gpcs * A100_SPEC.sms_per_gpc

    def test_relative_frequency_bounds(self):
        assert 0 < A100_SPEC.min_relative_frequency < A100_SPEC.base_relative_frequency <= 1.0

    def test_every_pipe_has_a_throughput(self):
        for pipe in Pipe:
            assert A100_SPEC.pipe_tflops[pipe] > 0

    def test_tensor_mixed_is_fastest_float_pipe(self):
        assert (
            A100_SPEC.pipe_tflops[Pipe.TENSOR_MIXED]
            > A100_SPEC.pipe_tflops[Pipe.FP32]
            > A100_SPEC.pipe_tflops[Pipe.FP64]
        )


class TestDerivedQuantities:
    def test_pipe_throughput_scales_with_gpcs(self):
        full = A100_SPEC.pipe_throughput(Pipe.FP32)
        half = A100_SPEC.pipe_throughput(Pipe.FP32, n_gpcs=4)
        assert half == pytest.approx(full / 2)

    def test_pipe_throughput_rejects_zero_gpcs(self):
        with pytest.raises(SpecificationError):
            A100_SPEC.pipe_throughput(Pipe.FP32, n_gpcs=0)

    def test_pipe_throughput_rejects_too_many_gpcs(self):
        with pytest.raises(SpecificationError):
            A100_SPEC.pipe_throughput(Pipe.FP32, n_gpcs=9)

    def test_slice_bandwidth_scales_linearly(self):
        assert A100_SPEC.slice_bandwidth_gbs(4) == pytest.approx(
            A100_SPEC.dram_bandwidth_gbs / 2
        )

    def test_slice_bandwidth_rejects_invalid_counts(self):
        with pytest.raises(SpecificationError):
            A100_SPEC.slice_bandwidth_gbs(0)
        with pytest.raises(SpecificationError):
            A100_SPEC.slice_bandwidth_gbs(9)

    def test_validate_power_cap_accepts_range(self):
        assert A100_SPEC.validate_power_cap(150.0) == 150.0

    def test_validate_power_cap_rejects_out_of_range(self):
        with pytest.raises(PowerCapError):
            A100_SPEC.validate_power_cap(50.0)
        with pytest.raises(PowerCapError):
            A100_SPEC.validate_power_cap(400.0)

    def test_with_overrides_creates_modified_copy(self):
        modified = A100_SPEC.with_overrides(mig_gpcs=6)
        assert modified.mig_gpcs == 6
        assert A100_SPEC.mig_gpcs == 7


class TestSpecValidation:
    def test_rejects_negative_gpcs(self):
        with pytest.raises(SpecificationError):
            GPUSpec(n_gpcs=0)

    def test_rejects_mig_gpcs_above_total(self):
        with pytest.raises(SpecificationError):
            GPUSpec(mig_gpcs=9)

    def test_rejects_inverted_clocks(self):
        with pytest.raises(SpecificationError):
            GPUSpec(min_clock_ghz=2.0, base_clock_ghz=1.0, max_clock_ghz=1.4)

    def test_rejects_inverted_power_caps(self):
        with pytest.raises(SpecificationError):
            GPUSpec(min_power_cap_w=300.0, default_power_limit_w=250.0, max_power_cap_w=280.0)

    def test_rejects_negative_power_constant(self):
        with pytest.raises(SpecificationError):
            GPUSpec(static_power_w=-1.0)

    def test_rejects_missing_pipe(self):
        with pytest.raises(SpecificationError):
            GPUSpec(pipe_tflops={Pipe.FP32: 19.5})

    def test_rejects_low_dvfs_exponent(self):
        with pytest.raises(SpecificationError):
            GPUSpec(dvfs_exponent=0.5)


class TestSpecRegistry:
    def test_builtin_specs_are_registered(self):
        from repro.gpu.spec import A30_SPEC, GPU_SPECS, H100_SPEC, spec_by_name

        assert GPU_SPECS["a100"] is A100_SPEC
        assert spec_by_name("H100") is H100_SPEC
        assert spec_by_name(" a30 ") is A30_SPEC

    def test_unknown_spec_lists_valid_names(self):
        from repro.gpu.spec import spec_by_name

        with pytest.raises(SpecificationError) as excinfo:
            spec_by_name("v100")
        message = str(excinfo.value)
        assert "v100" in message
        assert "a100" in message and "h100" in message and "a30" in message


class TestMIGProfileTable:
    def test_a100_profile_matches_paper_mapping(self):
        from repro.gpu.mig import GPC_TO_MEM_SLICES

        assert dict(A100_SPEC.mig_mem_slices) == dict(GPC_TO_MEM_SLICES)
        assert A100_SPEC.mig_instance_sizes == (1, 2, 3, 4, 7)

    def test_a30_profile_is_coarser(self):
        from repro.gpu.spec import A30_SPEC

        assert A30_SPEC.mig_instance_sizes == (1, 2, 4)
        assert A30_SPEC.instance_mem_slices(4) == A30_SPEC.n_mem_slices

    def test_instance_mem_slices_rejects_unknown_size(self):
        with pytest.raises(SpecificationError):
            A100_SPEC.instance_mem_slices(5)

    def test_smallest_instance_holding(self):
        assert A100_SPEC.smallest_instance_holding(5) == 7
        assert A100_SPEC.smallest_instance_holding(2) == 2
        with pytest.raises(SpecificationError):
            A100_SPEC.smallest_instance_holding(8)

    def test_rejects_inconsistent_profile_table(self):
        with pytest.raises(SpecificationError):
            GPUSpec(mig_instance_sizes=(1, 2), mig_mem_slices={1: 1})
        with pytest.raises(SpecificationError):
            GPUSpec(mig_instance_sizes=(2, 1), mig_mem_slices={1: 1, 2: 2})
        with pytest.raises(SpecificationError):
            GPUSpec(mig_instance_sizes=(1,), mig_mem_slices={1: 99})
