"""Shared fixtures for the test suite.

Expensive objects (the trained evaluation context) are session-scoped so the
whole suite pays for offline training exactly once.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Make the package importable even without an installed distribution (the
# environment has no network for `pip install -e .`; a .pth file normally
# handles this, but keep the fallback local to the repository).
_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.analysis.context import EvaluationContext  # noqa: E402
from repro.gpu.spec import A100_SPEC  # noqa: E402
from repro.sim.engine import PerformanceSimulator  # noqa: E402
from repro.sim.noise import NoiseModel, no_noise  # noqa: E402
from repro.workloads.suite import DEFAULT_SUITE  # noqa: E402


@pytest.fixture(scope="session")
def spec():
    """The default A100-like hardware specification."""
    return A100_SPEC


@pytest.fixture(scope="session")
def suite():
    """The full benchmark suite (Tables 6 and 7)."""
    return DEFAULT_SUITE


@pytest.fixture()
def sim():
    """A noise-free simulator (exact, repeatable numbers)."""
    return PerformanceSimulator(noise=no_noise())


@pytest.fixture()
def noisy_sim():
    """A simulator with the default measurement noise."""
    return PerformanceSimulator(noise=NoiseModel(sigma=0.03))


@pytest.fixture(scope="session")
def context():
    """A fully trained evaluation context (shared across the whole session)."""
    return EvaluationContext.create()


@pytest.fixture(scope="session")
def trained_model(context):
    """The trained linear performance model."""
    return context.model
