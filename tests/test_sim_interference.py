"""Tests for the LLC/HBM interference model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim.interference import InterferenceModel, InterferenceParams, NoInterference
from repro.workloads.suite import DEFAULT_SUITE


@pytest.fixture()
def model():
    return InterferenceModel()


class TestParams:
    def test_defaults_are_positive(self):
        params = InterferenceParams()
        assert params.compute_l2_alpha > 0
        assert params.memory_l2_alpha > 0

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            InterferenceParams(compute_l2_alpha=5.0)
        with pytest.raises(ConfigurationError):
            InterferenceParams(memory_l2_alpha=-0.1)


class TestCachePressure:
    def test_streaming_kernel_exerts_high_pressure(self, model):
        assert model.cache_pressure(DEFAULT_SUITE.get("stream")) > 0.8

    def test_small_footprint_kernel_exerts_less_pressure(self, model):
        gemm = model.cache_pressure(DEFAULT_SUITE.get("hgemm"))
        stream = model.cache_pressure(DEFAULT_SUITE.get("stream"))
        assert gemm < stream

    def test_pressure_bounded(self, model):
        for name in DEFAULT_SUITE.names():
            assert 0.0 <= model.cache_pressure(DEFAULT_SUITE.get(name)) <= 1.0


class TestPenalties:
    def test_no_corunners_means_no_penalty(self, model):
        kernel = DEFAULT_SUITE.get("srad")
        assert model.compute_penalty(kernel, []) == 1.0
        assert model.memory_penalty(kernel, []) == 1.0

    def test_penalties_are_at_least_one(self, model):
        kernel = DEFAULT_SUITE.get("srad")
        others = [DEFAULT_SUITE.get("stream")]
        assert model.compute_penalty(kernel, others) >= 1.0
        assert model.memory_penalty(kernel, others) >= 1.0

    def test_sensitive_kernel_penalized_more(self, model):
        others = [DEFAULT_SUITE.get("needle")]
        sensitive = model.compute_penalty(DEFAULT_SUITE.get("srad"), others)
        insensitive = model.compute_penalty(DEFAULT_SUITE.get("stream"), others)
        assert sensitive > insensitive

    def test_penalty_uses_worst_corunner(self, model):
        kernel = DEFAULT_SUITE.get("srad")
        mild = [DEFAULT_SUITE.get("hgemm")]
        harsh = [DEFAULT_SUITE.get("hgemm"), DEFAULT_SUITE.get("stream")]
        assert model.compute_penalty(kernel, harsh) >= model.compute_penalty(kernel, mild)


class TestBandwidthSharing:
    def test_under_subscription_returns_demands(self, model):
        shares = model.share_bandwidth([300.0, 200.0], capacity_gbs=1000.0)
        assert shares == (300.0, 200.0)

    def test_over_subscription_scales_proportionally(self, model):
        shares = model.share_bandwidth([900.0, 300.0], capacity_gbs=600.0)
        assert sum(shares) == pytest.approx(600.0)
        assert shares[0] / shares[1] == pytest.approx(3.0)

    def test_zero_demand_handled(self, model):
        shares = model.share_bandwidth([0.0, 0.0], capacity_gbs=100.0)
        assert shares == (0.0, 0.0)

    def test_negative_demand_clamped(self, model):
        shares = model.share_bandwidth([-5.0, 50.0], capacity_gbs=100.0)
        assert shares[0] == 0.0

    def test_invalid_capacity_rejected(self, model):
        with pytest.raises(SimulationError):
            model.share_bandwidth([10.0], capacity_gbs=0.0)


class TestNoInterference:
    def test_penalties_disabled(self):
        model = NoInterference()
        kernel = DEFAULT_SUITE.get("srad")
        others = [DEFAULT_SUITE.get("stream")]
        assert model.compute_penalty(kernel, others) == 1.0
        assert model.memory_penalty(kernel, others) == 1.0

    def test_bandwidth_arbitration_still_applies(self):
        model = NoInterference()
        shares = model.share_bandwidth([900.0, 900.0], capacity_gbs=900.0)
        assert sum(shares) == pytest.approx(900.0)
