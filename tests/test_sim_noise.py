"""Tests for the deterministic measurement-noise model."""

from __future__ import annotations

import math
import statistics

import pytest

from repro.errors import ConfigurationError
from repro.sim.noise import NoiseModel, no_noise


def test_negative_sigma_rejected():
    with pytest.raises(ConfigurationError):
        NoiseModel(sigma=-0.1)


def test_zero_sigma_is_identity():
    model = NoiseModel(sigma=0.0)
    assert model.multiplier(("a", 1)) == 1.0
    assert model.apply(3.14, ("a", 1)) == 3.14


def test_no_noise_helper():
    assert no_noise().sigma == 0.0


def test_same_key_same_multiplier():
    model = NoiseModel(sigma=0.05, seed=1)
    key = ("stream", (4, 3), 250.0)
    assert model.multiplier(key) == model.multiplier(key)


def test_different_keys_differ():
    model = NoiseModel(sigma=0.05, seed=1)
    assert model.multiplier(("a",)) != model.multiplier(("b",))


def test_different_seeds_differ():
    key = ("stream", 250.0)
    assert NoiseModel(sigma=0.05, seed=1).multiplier(key) != NoiseModel(
        sigma=0.05, seed=2
    ).multiplier(key)


def test_multiplier_is_positive_and_bounded():
    model = NoiseModel(sigma=0.03)
    for i in range(200):
        multiplier = model.multiplier(("key", i))
        assert multiplier > 0
        # 3-sigma clipping bounds the multiplier.
        assert math.exp(-0.09 - 1e-9) <= multiplier <= math.exp(0.09 + 1e-9)


def test_distribution_is_roughly_centered():
    model = NoiseModel(sigma=0.05)
    draws = [math.log(model.multiplier(("sample", i))) for i in range(500)]
    assert abs(statistics.mean(draws)) < 0.01
    assert 0.03 < statistics.stdev(draws) < 0.07


def test_apply_scales_value():
    model = NoiseModel(sigma=0.05, seed=3)
    key = ("x",)
    assert model.apply(10.0, key) == pytest.approx(10.0 * model.multiplier(key))


def test_sigma_and_seed_exposed():
    model = NoiseModel(sigma=0.02, seed=99)
    assert model.sigma == 0.02
    assert model.seed == 99
