"""Tests for text rendering and the ablation studies."""

from __future__ import annotations

import pytest

from repro.analysis.ablation import (
    basis_function_ablation,
    interference_term_ablation,
    search_strategy_ablation,
)
from repro.analysis.figures import (
    figure4_scalability_partitioning,
    figure6_corun_throughput,
    figure8_model_accuracy,
    figure9_problem1,
    figure10_problem1_power_sweep,
    figure13_efficiency_vs_alpha,
)
from repro.analysis.report import (
    ascii_table,
    render_alpha_sweep,
    render_comparison,
    render_figure6,
    render_figure8,
    render_power_sweep,
    render_scalability,
    render_table6,
    render_table7,
    render_table8,
)
from repro.analysis.tables import table6_gemm_variants, table7_classification, table8_corun_pairs


class TestReportRendering:
    def test_ascii_table_alignment(self):
        text = ascii_table(["a", "name"], [["1", "x"], ["22", "yy"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line.rstrip()) for line in lines[2:])) <= 2

    def test_render_table6_lists_all_variants(self):
        text = render_table6(table6_gemm_variants())
        assert "hgemm" in text and "igemm4" in text

    def test_render_table7_flags_matches(self, context):
        text = render_table7(table7_classification(context))
        assert "MISMATCH" not in text
        assert "kmeans" in text

    def test_render_table8(self):
        text = render_table8(table8_corun_pairs())
        assert "TI-MI2" in text and "igemm4" in text

    def test_render_scalability(self, context):
        text = render_scalability(figure4_scalability_partitioning(context), "Figure 4")
        assert "Figure 4" in text and "stream" in text and "7GPC" in text

    def test_render_figure6(self, context):
        text = render_figure6(figure6_corun_throughput(context))
        assert "S1" in text and "spread" in text

    def test_render_figure8_includes_error_summary(self, context):
        text = render_figure8(figure8_model_accuracy(context))
        assert "average error" in text

    def test_render_comparison_and_sweeps(self, context):
        fig9 = figure9_problem1(context)
        assert "geomean" in render_comparison(fig9.comparison, "throughput")
        assert "P[W]" in render_power_sweep(figure10_problem1_power_sweep(context))
        assert "alpha" in render_alpha_sweep(
            figure13_efficiency_vs_alpha(context, alphas=(0.2,))
        )


class TestAblations:
    def test_interference_term_improves_accuracy(self, context):
        result = interference_term_ablation(context, power_caps=(250.0,))
        assert result.no_interference_throughput_mape_pct >= result.full_throughput_mape_pct
        assert result.throughput_degradation_pct >= 0
        assert result.fairness_degradation_pct >= -1.0  # never dramatically better

    def test_search_strategies_agree_on_paper_space(self, context):
        result = search_strategy_ablation(context)
        assert result.n_workloads > 0
        assert result.agreement >= 0.8
        assert result.mean_objective_ratio >= 0.98
        assert result.exhaustive_candidates_evaluated >= result.hill_climbing_candidates_evaluated

    @pytest.mark.slow
    def test_basis_function_ablation_reports_both_bases(self, context):
        result = basis_function_ablation(context, power_caps=(250.0,))
        assert set(result.throughput_mape_pct) == {"table4", "raw-counters"}
        for value in result.throughput_mape_pct.values():
            assert 0 < value < 40
