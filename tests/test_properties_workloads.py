"""Property-based tests for the kernel model and its invariants."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.spec import Pipe
from repro.workloads.kernel import KernelCharacteristics


def kernels(min_time: float = 1e-3, max_time: float = 5.0) -> st.SearchStrategy[KernelCharacteristics]:
    """Strategy producing arbitrary-but-valid kernel models."""
    tensor_fraction = st.floats(min_value=0.0, max_value=1.0)

    @st.composite
    def build(draw):
        tensor = draw(tensor_fraction)
        pipe_fractions = (
            {Pipe.TENSOR_MIXED: tensor, Pipe.FP32: 1.0 - tensor}
            if 0.0 < tensor < 1.0
            else ({Pipe.TENSOR_MIXED: 1.0} if tensor == 1.0 else {Pipe.FP32: 1.0})
        )
        return KernelCharacteristics(
            name=draw(st.text(alphabet="abcdefgh", min_size=1, max_size=8)),
            compute_time_full_s=draw(st.floats(min_value=min_time, max_value=max_time)),
            memory_time_full_s=draw(st.floats(min_value=min_time, max_value=max_time)),
            serial_time_s=draw(st.floats(min_value=0.0, max_value=max_time)),
            pipe_fractions=pipe_fractions,
            l2_hit_rate=draw(st.floats(min_value=0.0, max_value=1.0)),
            occupancy=draw(st.floats(min_value=0.0, max_value=1.0)),
            working_set_mb=draw(st.floats(min_value=1.0, max_value=5000.0)),
            l2_sensitivity=draw(st.floats(min_value=0.0, max_value=1.0)),
        )

    return build()


@given(kernels())
@settings(max_examples=60)
def test_reference_time_bounds_components(kernel):
    """The roofline elapsed time is bounded by the sum and the max of components."""
    reference = kernel.reference_time_s
    assert reference >= max(kernel.compute_time_full_s, kernel.memory_time_full_s)
    assert reference <= (
        kernel.compute_time_full_s + kernel.memory_time_full_s + kernel.serial_time_s + 1e-12
    )


@given(kernels())
@settings(max_examples=60)
def test_pipe_fractions_partition_unity(kernel):
    assert math.isclose(kernel.cuda_fraction + kernel.tensor_fraction, 1.0, rel_tol=1e-6)


@given(kernels(), st.floats(min_value=0.1, max_value=10.0))
@settings(max_examples=60)
def test_scaling_is_homogeneous(kernel, factor):
    """Scaling all time components scales the reference time by the same factor."""
    scaled = kernel.scaled(factor)
    assert math.isclose(scaled.reference_time_s, kernel.reference_time_s * factor, rel_tol=1e-9)
    assert math.isclose(
        scaled.serial_fraction, kernel.serial_fraction, rel_tol=1e-6, abs_tol=1e-9
    )


@given(kernels())
@settings(max_examples=60)
def test_serial_fraction_is_a_fraction(kernel):
    assert 0.0 <= kernel.serial_fraction <= 1.0


@given(kernels())
@settings(max_examples=60)
def test_counters_always_within_percent_range(kernel):
    from repro.sim.counters import collect_counters

    counters = collect_counters(kernel)
    for value in counters.as_array():
        assert 0.0 <= value <= 100.0


@given(kernels())
@settings(max_examples=60)
def test_basis_functions_are_finite(kernel):
    import numpy as np

    from repro.core.features import basis_h, basis_j
    from repro.sim.counters import collect_counters

    counters = collect_counters(kernel)
    assert np.all(np.isfinite(basis_h(counters)))
    assert np.all(np.isfinite(basis_j(counters)))
