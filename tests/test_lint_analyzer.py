"""Tests for the analyzer machinery: discovery, suppression, reporting —
and the gate that matters most: the repo's own tree is clean under
``--strict``."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.errors import LintError
from repro.lint import LintReport, analyze_paths, analyze_source
from repro.lint.analyzer import discover_files, select_rules, suppressed_lines
from repro.lint.findings import Finding
from repro.lint.report import render_report, render_rules

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"


class TestDiscovery:
    def test_fixture_corpus_is_excluded_from_directory_walks(self):
        files = discover_files([REPO_ROOT / "tests"])
        assert files
        assert not any("lint_fixtures" in str(path) for path in files)

    def test_explicitly_named_fixture_is_always_included(self):
        files = discover_files([FIXTURES / "rl006_bad.py"])
        assert len(files) == 1

    def test_paths_are_deduplicated_and_sorted(self):
        target = FIXTURES / "rl006_bad.py"
        files = discover_files([target, target, FIXTURES / "rl001_bad.py"])
        assert files == tuple(sorted(set(files)))
        assert len(files) == 2

    def test_missing_path_is_an_error_not_a_clean_run(self):
        with pytest.raises(LintError, match="does not exist"):
            discover_files([REPO_ROOT / "no" / "such" / "dir"])


class TestRuleSelection:
    def test_unknown_rule_id_raises(self):
        with pytest.raises(LintError, match="unknown rule id"):
            select_rules(["RL999"])

    def test_default_selection_is_the_full_registry_in_order(self):
        rules = select_rules()
        assert [rule.rule_id for rule in rules] == sorted(
            rule.rule_id for rule in rules
        )
        assert len(rules) == 6


class TestSuppression:
    def test_inline_and_comment_above_pragmas_suppress(self):
        report = analyze_paths([FIXTURES / "suppressed.py"], select=["RL006"])
        assert report.suppressed == 2
        # Only the wrong-rule pragma line stays flagged.
        assert len(report.findings) == 1

    def test_pragma_for_a_different_rule_does_not_suppress(self):
        report = analyze_paths([FIXTURES / "suppressed.py"])
        assert report.suppressed == 2
        assert [f.rule_id for f in report.findings] == ["RL006"]
        # The wrong-rule pragma line is the one that stays flagged.
        assert "allow[RL001]" in (FIXTURES / "suppressed.py").read_text().splitlines()[
            report.findings[0].line - 1
        ]

    def test_comment_pragma_maps_past_consecutive_comment_lines(self):
        source = (
            "# repro: allow[RL006] reason line one\n"
            "# reason line two\n"
            "import random\n"
            "x = random.random()\n"
        )
        assert suppressed_lines(source) == {3: {"RL006"}}

    def test_multi_rule_pragma(self):
        source = "x = 1  # repro: allow[RL001, RL005]\n"
        assert suppressed_lines(source) == {1: {"RL001", "RL005"}}


class TestAnalyzeSource:
    def test_syntax_error_raises_lint_error(self):
        with pytest.raises(LintError, match="cannot parse"):
            analyze_source("def broken(:\n", "broken.py")

    def test_findings_are_sorted(self):
        source = (FIXTURES / "rl006_bad.py").read_text()
        findings, _ = analyze_source(source, "rl006_bad.py")
        assert list(findings) == sorted(findings)


class TestLintReport:
    def _report(self, severity: str) -> LintReport:
        finding = Finding(
            path="x.py", line=1, col=0, rule_id="RL005", severity=severity, message="m"
        )
        return LintReport(findings=(finding,), files_scanned=1, suppressed=0)

    def test_warning_only_report_is_clean_unless_strict(self):
        report = self._report("warning")
        assert report.clean()
        assert not report.clean(strict=True)
        assert report.n_warnings == 1 and report.n_errors == 0

    def test_error_report_is_never_clean(self):
        report = self._report("error")
        assert not report.clean()
        assert not report.clean(strict=True)

    def test_render_report_has_verdict_line(self):
        text = render_report(self._report("error"), strict=True)
        assert "x.py:1:0: RL005 [error] m" in text
        assert "FAILED (strict): 1 finding(s)" in text

    def test_render_rules_lists_the_registry(self):
        text = render_rules()
        for rule_id in ("RL001", "RL002", "RL003", "RL004", "RL005", "RL006"):
            assert rule_id in text


class TestSelfRun:
    """The repo's own tree must satisfy the invariants it mechanizes."""

    def test_src_is_clean_in_strict_mode(self):
        report = analyze_paths([REPO_ROOT / "src"])
        assert report.clean(strict=True), [f.format() for f in report.findings]
        assert report.files_scanned > 50

    def test_tests_are_clean_in_strict_mode(self):
        report = analyze_paths([REPO_ROOT / "tests"])
        assert report.clean(strict=True), [f.format() for f in report.findings]

    def test_no_rl001_suppressions_in_src(self):
        """The id-keyed caches were fixed, not waived: zero RL001 pragmas."""
        for path in sorted((REPO_ROOT / "src").rglob("*.py")):
            for line_rules in suppressed_lines(path.read_text()).values():
                assert "RL001" not in line_rules, path
