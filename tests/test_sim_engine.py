"""Tests for the execution engine (solo runs, co-runs, power capping)."""

from __future__ import annotations

import pytest

from repro.errors import PowerCapError, SimulationError
from repro.gpu.mig import CORUN_STATES, MemoryOption, S1, S3, PartitionState, solo_state
from repro.sim.engine import PerformanceSimulator
from repro.sim.noise import NoiseModel, no_noise
from repro.workloads.pairs import corun_pair
from repro.workloads.suite import DEFAULT_SUITE


@pytest.fixture(scope="module")
def engine():
    return PerformanceSimulator(noise=no_noise())


class TestReferenceRun:
    def test_reference_time_positive(self, engine):
        assert engine.reference_time(DEFAULT_SUITE.get("dgemm")) > 0

    def test_reference_time_cached(self, engine):
        kernel = DEFAULT_SUITE.get("dgemm")
        assert engine.reference_time(kernel) == engine.reference_time(kernel)

    def test_reference_includes_power_throttling_for_tensor_kernels(self, engine):
        """hgemm cannot run at full boost at 250 W, so its reference time is
        longer than the unthrottled roofline time."""
        kernel = DEFAULT_SUITE.get("hgemm")
        assert engine.reference_time(kernel) > kernel.reference_time_s * 1.01

    def test_memory_bound_kernel_not_throttled(self, engine):
        kernel = DEFAULT_SUITE.get("stream")
        assert engine.reference_time(kernel) == pytest.approx(kernel.reference_time_s, rel=0.02)


class TestSoloRun:
    def test_full_mig_partition_close_to_reference(self, engine):
        """7 of 8 GPCs with all memory slices loses only a little performance."""
        run = engine.solo_run(DEFAULT_SUITE.get("dgemm"), solo_state(7, MemoryOption.PRIVATE), 250)
        assert 0.8 < run.relative_performance < 1.0

    def test_default_state_and_cap(self, engine):
        run = engine.solo_run(DEFAULT_SUITE.get("dgemm"))
        assert run.power_cap_w == engine.spec.default_power_limit_w
        assert run.state.is_solo

    def test_solo_run_rejects_corun_state(self, engine):
        with pytest.raises(SimulationError):
            engine.solo_run(DEFAULT_SUITE.get("dgemm"), S1, 250)

    def test_invalid_power_cap_rejected(self, engine):
        with pytest.raises(PowerCapError):
            engine.solo_run(DEFAULT_SUITE.get("dgemm"), solo_state(4), 50)

    def test_compute_kernel_scales_with_gpcs(self, engine):
        kernel = DEFAULT_SUITE.get("dgemm")
        perf = [
            engine.solo_run(kernel, solo_state(g, MemoryOption.PRIVATE), 250).relative_performance
            for g in (1, 2, 3, 4, 7)
        ]
        assert perf == sorted(perf)
        assert perf[0] < 0.2
        assert perf[-1] > 0.8

    def test_memory_kernel_depends_on_option(self, engine):
        kernel = DEFAULT_SUITE.get("stream")
        private = engine.solo_run(kernel, solo_state(3, MemoryOption.PRIVATE), 250)
        shared = engine.solo_run(kernel, solo_state(3, MemoryOption.SHARED), 250)
        assert shared.relative_performance > 1.5 * private.relative_performance

    def test_compute_kernel_insensitive_to_option(self, engine):
        kernel = DEFAULT_SUITE.get("dgemm")
        private = engine.solo_run(kernel, solo_state(3, MemoryOption.PRIVATE), 250)
        shared = engine.solo_run(kernel, solo_state(3, MemoryOption.SHARED), 250)
        assert shared.relative_performance == pytest.approx(
            private.relative_performance, rel=0.05
        )

    def test_unscalable_kernel_flat(self, engine):
        kernel = DEFAULT_SUITE.get("kmeans")
        small = engine.solo_run(kernel, solo_state(1, MemoryOption.PRIVATE), 150)
        assert small.relative_performance > 0.9

    def test_power_cap_hurts_tensor_kernel(self, engine):
        kernel = DEFAULT_SUITE.get("hgemm")
        low = engine.solo_run(kernel, solo_state(7, MemoryOption.SHARED), 150)
        high = engine.solo_run(kernel, solo_state(7, MemoryOption.SHARED), 250)
        assert low.relative_performance < 0.85 * high.relative_performance
        assert low.relative_frequency < high.relative_frequency

    def test_power_cap_ignored_by_memory_kernel(self, engine):
        kernel = DEFAULT_SUITE.get("stream")
        low = engine.solo_run(kernel, solo_state(7, MemoryOption.SHARED), 150)
        high = engine.solo_run(kernel, solo_state(7, MemoryOption.SHARED), 250)
        assert low.relative_performance == pytest.approx(high.relative_performance, rel=0.03)

    def test_run_result_fields_are_consistent(self, engine):
        run = engine.solo_run(DEFAULT_SUITE.get("srad"), solo_state(4, MemoryOption.PRIVATE), 210)
        assert run.kernel_name == "srad"
        assert run.relative_performance == pytest.approx(run.reference_s / run.elapsed_s)
        assert run.elapsed_s == run.noiseless_elapsed_s  # no-noise engine
        assert run.bound in ("compute", "memory", "serial")
        assert 0 < run.relative_frequency <= 1.0
        assert run.chip_power_w <= 210 + 1e-6
        assert run.achieved_bandwidth_gbs <= engine.spec.dram_bandwidth_gbs + 1e-6

    def test_degradation_and_slowdown(self, engine):
        run = engine.solo_run(DEFAULT_SUITE.get("dgemm"), solo_state(4, MemoryOption.PRIVATE), 250)
        assert run.slowdown == pytest.approx(1 / run.relative_performance)
        assert run.degradation == pytest.approx(1 - run.relative_performance)


class TestCoRun:
    def test_corun_returns_one_result_per_app(self, engine):
        pair = corun_pair("TI-MI2")
        result = engine.co_run(list(pair.kernels()), S1, 250)
        assert result.n_apps == 2
        assert result.per_app[0].kernel_name == "igemm4"
        assert result.per_app[1].kernel_name == "stream"

    def test_mismatched_kernel_count_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.co_run([DEFAULT_SUITE.get("dgemm")], S1, 250)

    def test_metrics_derive_from_per_app_results(self, engine):
        result = engine.co_run(list(corun_pair("CI-US1").kernels()), S3, 230)
        assert result.weighted_speedup == pytest.approx(sum(result.relative_performances))
        assert result.fairness == pytest.approx(min(result.relative_performances))
        assert result.energy_efficiency == pytest.approx(result.weighted_speedup / 230)

    def test_chip_power_respects_cap(self, engine):
        for cap in (150, 190, 250):
            result = engine.co_run(list(corun_pair("TI-TI1").kernels()), S1, cap)
            assert result.chip_power_w <= cap + 1e-6

    def test_ti_mi_pair_prefers_shared_with_more_gpcs_for_tensor(self, engine):
        """The paper's Figure 6 headline: S1 wins TI-MI2 by a wide margin."""
        kernels = list(corun_pair("TI-MI2").kernels())
        results = {s.label: engine.co_run(kernels, s, 250).weighted_speedup for s in CORUN_STATES}
        assert max(results, key=results.get) == "S1"
        assert results["S1"] / min(results.values()) > 1.2

    def test_ci_us_pair_prefers_private(self, engine):
        """The paper's Figure 6 second observation: private wins CI-US1."""
        kernels = list(corun_pair("CI-US1").kernels())
        results = {s.label: engine.co_run(kernels, s, 250).weighted_speedup for s in CORUN_STATES}
        assert max(results, key=results.get) in ("S3", "S4")

    def test_unscalable_partner_keeps_high_relative_performance(self, engine):
        result = engine.co_run(list(corun_pair("CI-US1").kernels()), S3, 250)
        assert result.per_app[1].relative_performance > 0.85

    def test_shared_interference_hurts_sensitive_kernel(self, engine):
        kernels = list(corun_pair("CI-US1").kernels())
        shared = engine.co_run(kernels, S1, 250).per_app[0].relative_performance
        private = engine.co_run(kernels, S3, 250).per_app[0].relative_performance
        assert private > shared

    def test_bandwidth_contention_between_memory_kernels(self, engine):
        """Two memory-bound kernels sharing the chip cannot both keep full
        bandwidth: the sum of their achieved bandwidth stays below the peak."""
        result = engine.co_run(list(corun_pair("MI-MI2").kernels()), S1, 250)
        total = sum(r.achieved_bandwidth_gbs for r in result.per_app)
        assert total <= engine.spec.dram_bandwidth_gbs * 1.01
        assert all(r.relative_performance < 0.8 for r in result.per_app)

    def test_us_us_pair_is_trivially_fair(self, engine):
        result = engine.co_run(list(corun_pair("US-US2").kernels()), S3, 150)
        assert result.fairness > 0.85
        assert result.weighted_speedup > 1.7


class TestNoiseIntegration:
    def test_noise_changes_measurement_but_not_ground_truth(self):
        noisy = PerformanceSimulator(noise=NoiseModel(sigma=0.05, seed=3))
        clean = PerformanceSimulator(noise=no_noise())
        kernel = DEFAULT_SUITE.get("dgemm")
        noisy_run = noisy.solo_run(kernel, solo_state(4, MemoryOption.PRIVATE), 250)
        clean_run = clean.solo_run(kernel, solo_state(4, MemoryOption.PRIVATE), 250)
        assert noisy_run.noiseless_elapsed_s == pytest.approx(clean_run.elapsed_s)
        assert noisy_run.elapsed_s != clean_run.elapsed_s

    def test_noisy_measurements_are_reproducible(self):
        sim_a = PerformanceSimulator(noise=NoiseModel(sigma=0.05, seed=3))
        sim_b = PerformanceSimulator(noise=NoiseModel(sigma=0.05, seed=3))
        kernel = DEFAULT_SUITE.get("dgemm")
        run_a = sim_a.solo_run(kernel, solo_state(4, MemoryOption.PRIVATE), 250)
        run_b = sim_b.solo_run(kernel, solo_state(4, MemoryOption.PRIVATE), 250)
        assert run_a.elapsed_s == run_b.elapsed_s


class TestCustomStates:
    def test_small_plus_small_private_state(self, engine):
        state = PartitionState((2, 2), MemoryOption.PRIVATE)
        result = engine.co_run(
            [DEFAULT_SUITE.get("dgemm"), DEFAULT_SUITE.get("hotspot")], state, 250
        )
        assert result.n_apps == 2
        for run in result.per_app:
            assert 0.1 < run.relative_performance < 0.5

    def test_profile_returns_counters(self, engine):
        counters = engine.profile(DEFAULT_SUITE.get("hgemm"))
        assert counters.tensor_mixed > 0
