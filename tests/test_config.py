"""Tests for the evaluation configuration defaults."""

from __future__ import annotations

import pytest

from repro.config import (
    ALPHA_SWEEP,
    DEFAULT_CONFIG,
    DEFAULT_POWER_CAPS,
    PROBLEM1_POWER_CAP_W,
    PROBLEM2_ALPHAS,
    SCALABILITY_GPC_COUNTS,
    EvaluationConfig,
)
from repro.errors import ConfigurationError
from repro.gpu.mig import CORUN_STATES


def test_default_power_caps_match_table5():
    assert DEFAULT_POWER_CAPS == (150.0, 170.0, 190.0, 210.0, 230.0, 250.0)


def test_problem1_power_cap_matches_paper():
    assert PROBLEM1_POWER_CAP_W == 230.0


def test_problem2_alphas_match_paper():
    assert PROBLEM2_ALPHAS == (0.20, 0.42)


def test_alpha_sweep_spans_paper_range():
    assert min(ALPHA_SWEEP) == 0.0
    assert max(ALPHA_SWEEP) == pytest.approx(0.42)


def test_scalability_gpc_counts_are_valid_mig_sizes():
    assert SCALABILITY_GPC_COUNTS == (1, 2, 3, 4, 7)


def test_default_config_uses_corun_states():
    assert DEFAULT_CONFIG.candidate_states == CORUN_STATES


def test_config_rejects_empty_power_caps():
    with pytest.raises(ConfigurationError):
        EvaluationConfig(power_caps=())


def test_config_rejects_negative_power_caps():
    with pytest.raises(ConfigurationError):
        EvaluationConfig(power_caps=(150.0, -10.0))


def test_config_rejects_bad_alpha():
    with pytest.raises(ConfigurationError):
        EvaluationConfig(alpha=1.5)


def test_config_rejects_negative_noise():
    with pytest.raises(ConfigurationError):
        EvaluationConfig(noise_sigma=-0.1)


def test_with_power_caps_returns_new_config():
    new = DEFAULT_CONFIG.with_power_caps([200, 240])
    assert new.power_caps == (200.0, 240.0)
    assert DEFAULT_CONFIG.power_caps == DEFAULT_POWER_CAPS
    assert new.alpha == DEFAULT_CONFIG.alpha
