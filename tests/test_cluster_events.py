"""Tests for the discrete-event primitives: heap, clock, and event types."""

from __future__ import annotations

import pytest

from repro.cluster.events.events import (
    ArrivalEvent,
    CompletionEvent,
    EventHeap,
    PowerRebalanceEvent,
    RepartitionEvent,
    SimulationClock,
)
from repro.errors import SimulationError
from repro.traces.trace import TraceEntry
from repro.workloads.suite import DEFAULT_SUITE


def _arrival(time: float, app: str = "stream") -> ArrivalEvent:
    return ArrivalEvent(
        time=time,
        entry=TraceEntry(arrival_time_s=time, app=app),
        kernel=DEFAULT_SUITE.get(app),
    )


class TestSimulationClock:
    def test_starts_at_zero_and_advances(self):
        clock = SimulationClock()
        assert clock.now == 0.0
        clock.advance(3.5)
        assert clock.now == pytest.approx(3.5)

    def test_advancing_to_the_same_time_is_allowed(self):
        clock = SimulationClock()
        clock.advance(2.0)
        clock.advance(2.0)
        assert clock.now == pytest.approx(2.0)

    def test_moving_backwards_rejected(self):
        clock = SimulationClock()
        clock.advance(5.0)
        with pytest.raises(SimulationError):
            clock.advance(4.0)


class TestEventValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            PowerRebalanceEvent(time=-1.0)

    def test_non_finite_time_rejected(self):
        with pytest.raises(SimulationError):
            PowerRebalanceEvent(time=float("nan"))

    def test_describe_mentions_time_and_kind(self):
        event = RepartitionEvent(
            time=4.0, node_id=1, previous_layout="(none)", next_layout="S1"
        )
        assert "t=4.00s" in event.describe()
        assert "node1" in event.describe()


class TestEventHeap:
    def test_pops_in_time_order(self):
        heap = EventHeap()
        heap.push(_arrival(5.0))
        heap.push(_arrival(1.0))
        heap.push(_arrival(3.0))
        times = [heap.pop().time for _ in range(3)]
        assert times == [1.0, 3.0, 5.0]

    def test_priority_breaks_time_ties(self):
        heap = EventHeap()
        heap.push(_arrival(2.0))
        heap.push(PowerRebalanceEvent(time=2.0))
        heap.push(CompletionEvent(time=2.0, node_id=0, jobs=()))
        heap.push(
            RepartitionEvent(
                time=2.0, node_id=0, previous_layout="(none)", next_layout="S1"
            )
        )
        order = [type(heap.pop()).__name__ for _ in range(4)]
        assert order == [
            "CompletionEvent",
            "RepartitionEvent",
            "ArrivalEvent",
            "PowerRebalanceEvent",
        ]

    def test_equal_time_and_priority_is_fifo(self):
        heap = EventHeap()
        apps = ["stream", "dgemm", "hgemm"]
        for app in apps:
            heap.push(_arrival(0.0, app))
        assert [heap.pop().entry.app for _ in range(3)] == apps

    def test_pop_batch_returns_all_simultaneous_events(self):
        heap = EventHeap()
        heap.push(_arrival(1.0))
        heap.push(_arrival(1.0, "dgemm"))
        heap.push(_arrival(2.0, "hgemm"))
        batch = heap.pop_batch()
        assert [event.entry.app for event in batch] == ["stream", "dgemm"]
        assert len(heap) == 1
        assert heap.peek_time() == pytest.approx(2.0)

    def test_pop_batch_drains_interleaved_ties_in_push_order(self):
        # Regression for the tuple-keyed heap: a batch must contain every
        # event at the head timestamp — including ties pushed before and
        # after events at other times — ordered by (priority, push order).
        heap = EventHeap()
        heap.push(_arrival(1.0, "stream"))
        heap.push(_arrival(2.0, "tf32gemm"))
        heap.push(_arrival(1.0, "dgemm"))
        heap.push(CompletionEvent(time=1.0, node_id=3, jobs=()))
        heap.push(_arrival(1.0, "hgemm"))
        batch = heap.pop_batch()
        assert len(batch) == 4
        assert all(event.time == 1.0 for event in batch)
        # Completion outranks arrivals at the same time; arrivals keep
        # their submission order among themselves.
        assert type(batch[0]).__name__ == "CompletionEvent"
        assert [event.entry.app for event in batch[1:]] == [
            "stream",
            "dgemm",
            "hgemm",
        ]
        # The later timestamp is untouched and becomes the next batch.
        assert [event.entry.app for event in heap.pop_batch()] == ["tf32gemm"]
        assert heap.empty

    def test_push_many_matches_sequential_pushes(self):
        events = [
            _arrival(float(i % 5), app)
            for i, app in enumerate(
                ["stream", "dgemm", "hgemm", "stream", "dgemm", "hgemm", "stream"]
            )
        ]
        one_by_one = EventHeap()
        for event in events:
            one_by_one.push(event)
        bulk = EventHeap()
        bulk.push_many(events)
        assert len(bulk) == len(one_by_one)
        while not one_by_one.empty:
            assert bulk.pop() is one_by_one.pop()
        assert bulk.empty

    def test_push_many_then_push_keeps_sequence_order(self):
        heap = EventHeap()
        heap.push_many([_arrival(1.0, "stream"), _arrival(1.0, "dgemm")])
        heap.push(_arrival(1.0, "hgemm"))
        assert [heap.pop().entry.app for _ in range(3)] == [
            "stream",
            "dgemm",
            "hgemm",
        ]

    def test_empty_heap_rejects_pop_and_peek(self):
        heap = EventHeap()
        assert heap.empty
        with pytest.raises(SimulationError):
            heap.pop()
        with pytest.raises(SimulationError):
            heap.peek_time()
        with pytest.raises(SimulationError):
            heap.pop_batch()
