"""The PlannerService facade: session caching, batch decide, persistence."""

from __future__ import annotations

import pytest

from repro.api import (
    GENERAL_GRID,
    TABLE5_GRID,
    DecisionRequest,
    PlannerService,
    SimulationRequest,
    StatesRequest,
)
from repro.core.workflow import OfflineTrainer
from repro.errors import ConfigurationError, InfeasibleProblemError


@pytest.fixture
def training_counter(monkeypatch):
    """Count offline training-sweep executions (the expensive stage)."""
    counts = {"runs": 0}
    original = OfflineTrainer.run

    def counting_run(self, *args, **kwargs):
        counts["runs"] += 1
        return original(self, *args, **kwargs)

    monkeypatch.setattr(OfflineTrainer, "run", counting_run)
    return counts


class TestSessionCache:
    def test_second_decide_performs_zero_training_sweeps(self, training_counter):
        service = PlannerService()
        request = DecisionRequest(apps=("igemm4", "stream"), power_cap_w=230.0)
        first = service.decide(request)
        assert training_counter["runs"] == 1
        second = service.decide(request)
        # The acceptance criterion: the hot path never retrains.
        assert training_counter["runs"] == 1
        assert second == first
        assert service.stats.trainings_run == 1
        assert service.stats.session_reuses == 1

    def test_different_pairs_share_the_session(self, training_counter):
        service = PlannerService()
        service.decide(DecisionRequest(apps=("igemm4", "stream")))
        service.decide(DecisionRequest(apps=("srad", "needle"), policy="problem2"))
        assert training_counter["runs"] == 1
        assert service.stats.sessions_built == 1

    def test_session_key_folds_group_size_into_grid_choice(self):
        pair = PlannerService.session_key("a100", 2)
        assert pair.grid == TABLE5_GRID
        assert PlannerService.session_key("a100", 3).grid == GENERAL_GRID
        assert PlannerService.session_key("a30", 2).grid == GENERAL_GRID
        # N-way keys of one spec coincide: one general session serves all sizes.
        assert PlannerService.session_key("a100", 3) == PlannerService.session_key(
            "a100", 4
        )

    def test_session_key_validates_spec(self):
        with pytest.raises(ConfigurationError):
            PlannerService.session_key("v100", 2)

    def test_drop_sessions_forces_retraining(self, training_counter):
        service = PlannerService()
        request = DecisionRequest(apps=("igemm4", "stream"))
        service.decide(request)
        service.drop_sessions()
        service.decide(request)
        assert training_counter["runs"] == 2


class TestDecide:
    def test_problem1_defaults_to_the_92_percent_cap(self):
        service = PlannerService()
        explicit = service.decide(
            DecisionRequest(apps=("igemm4", "stream"), power_cap_w=230.0)
        )
        default = service.decide(DecisionRequest(apps=("igemm4", "stream")))
        assert default == explicit

    def test_infeasible_alpha_raises(self):
        service = PlannerService()
        with pytest.raises(InfeasibleProblemError):
            service.decide(
                DecisionRequest(apps=("igemm4", "stream"), power_cap_w=230.0, alpha=0.99)
            )

    def test_result_carries_request_context(self):
        service = PlannerService()
        result = service.decide(DecisionRequest(apps=("srad", "needle"), policy="problem2"))
        assert result.apps == ("srad", "needle")
        assert result.spec == "a100"
        assert result.policy == "problem2-energy-efficiency"
        assert result.candidates_evaluated == len(result.evaluations) > 0


class TestDecideBatch:
    def test_batch_matches_individual_decisions(self, training_counter):
        service = PlannerService()
        requests = [
            DecisionRequest(apps=("igemm4", "stream"), power_cap_w=230.0),
            DecisionRequest(apps=("hgemm", "bfs"), power_cap_w=230.0),
            DecisionRequest(apps=("srad", "needle"), policy="problem2"),
        ]
        batch = service.decide_batch(requests)
        assert training_counter["runs"] == 1
        reference = PlannerService()
        individually = [reference.decide(r) for r in requests]
        assert list(batch) == individually
        assert service.stats.batches_served == 1
        assert service.stats.decisions_served == len(requests)

    def test_duplicates_are_answered_once_and_fanned_out(self):
        service = PlannerService()
        request = DecisionRequest(apps=("igemm4", "stream"), power_cap_w=230.0)
        batch = service.decide_batch([request, request, request])
        assert batch[0] == batch[1] == batch[2]
        assert service.stats.decisions_served == 3
        # Per-session and service-wide counters agree, memo hits included.
        (session,) = service.sessions.values()
        assert session.decisions_served == 3

    def test_batch_counts_session_reuses_accurately(self):
        service = PlannerService()
        service.decide_batch(
            [
                DecisionRequest(apps=("igemm4", "stream"), power_cap_w=230.0),
                DecisionRequest(apps=("hgemm", "bfs"), power_cap_w=230.0),
                DecisionRequest(apps=("srad", "needle"), power_cap_w=230.0),
            ]
        )
        # One build plus exactly one session lookup per later request.
        assert service.stats.sessions_built == 1
        assert service.stats.session_reuses == 2

    def test_empty_batch_is_empty(self):
        service = PlannerService()
        assert service.decide_batch([]) == ()


class TestModelDirPersistence:
    def test_second_service_loads_instead_of_training(self, tmp_path, training_counter):
        writer = PlannerService(model_dir=tmp_path)
        request = DecisionRequest(apps=("igemm4", "stream"), power_cap_w=230.0)
        first = writer.decide(request)
        assert training_counter["runs"] == 1
        assert list(tmp_path.glob("*.json")), "the trained model was not persisted"

        reader = PlannerService(model_dir=tmp_path)
        second = reader.decide(request)
        assert training_counter["runs"] == 1  # loaded, not retrained
        assert reader.stats.models_loaded == 1
        assert reader.stats.trainings_run == 0
        assert second == first

    def test_model_dir_expands_tilde(self, tmp_path, monkeypatch):
        monkeypatch.setenv("HOME", str(tmp_path))
        service = PlannerService(model_dir="~/models")
        assert service._model_dir == tmp_path / "models"

    def test_explicit_model_path_still_wins(self, tmp_path, training_counter):
        service = PlannerService(model_dir=tmp_path / "dir")
        explicit = tmp_path / "explicit.json"
        service.decide(
            DecisionRequest(apps=("igemm4", "stream"), model_path=str(explicit))
        )
        assert explicit.exists()
        assert not (tmp_path / "dir").exists()


class TestSimulateAndStates:
    def test_states_never_trains(self, training_counter):
        service = PlannerService()
        result = service.states(StatesRequest(n_apps=2))
        assert training_counter["runs"] == 0
        assert result.n_states == 30  # the spec-derived pair grid
        assert {row.option for row in result.states} == {"shared", "private"}
        assert result.spec_description == "Simulated-A100-40GB"

    def test_simulate_reuses_the_decide_session(self, training_counter):
        service = PlannerService()
        service.decide(DecisionRequest(apps=("igemm4", "stream")))
        result = service.simulate(
            SimulationRequest(arrival_rate_per_s=2.0, duration_s=10.0, n_nodes=1)
        )
        assert training_counter["runs"] == 1
        assert result.n_jobs > 0
        assert result.n_nodes == 1
        assert result.trace_summary and result.report_summary
        assert service.stats.simulations_served == 1

    def test_simulate_saves_the_synthetic_trace(self, tmp_path):
        service = PlannerService()
        path = tmp_path / "trace.csv"
        service.simulate(
            SimulationRequest(
                arrival_rate_per_s=2.0,
                duration_s=10.0,
                n_nodes=1,
                save_trace_path=str(path),
            )
        )
        assert path.exists()
