"""Tests for the least-squares calibration (training) of the model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import HardwareStateKey
from repro.core.training import (
    CoRunMeasurement,
    ModelTrainer,
    SoloMeasurement,
    collect_corun_measurements,
    collect_solo_measurements,
)
from repro.errors import ModelError
from repro.gpu.mig import CORUN_STATES, MemoryOption, S1
from repro.sim.counters import collect_counters
from repro.workloads.pairs import corun_pair
from repro.workloads.suite import DEFAULT_SUITE


def solo_measurement(name, rperf, gpcs=4, option=MemoryOption.SHARED, power=250.0, mem_slices=8):
    return SoloMeasurement(
        kernel_name=name,
        counters=collect_counters(DEFAULT_SUITE.get(name)),
        gpcs=gpcs,
        option=option,
        power_cap_w=power,
        relative_performance=rperf,
        mem_slices=mem_slices,
    )


class TestMeasurementRecords:
    def test_solo_measurement_key(self):
        measurement = solo_measurement("dgemm", 0.5)
        assert measurement.key == HardwareStateKey(4, 8, MemoryOption.SHARED, 250.0)

    def test_corun_measurement_validates_lengths(self):
        counters = collect_counters(DEFAULT_SUITE.get("dgemm"))
        with pytest.raises(ModelError):
            CoRunMeasurement(
                kernel_names=("dgemm",),
                counters=(counters, counters),
                state=S1,
                power_cap_w=250.0,
                relative_performances=(0.5, 0.5),
            )


class TestCollection:
    def test_collect_solo_measurements_grid_size(self, sim):
        kernels = [DEFAULT_SUITE.get("dgemm"), DEFAULT_SUITE.get("stream")]
        measurements = collect_solo_measurements(
            sim, kernels, gpc_counts=(3, 4), options=(MemoryOption.SHARED,), power_caps=(250.0,)
        )
        assert len(measurements) == 2 * 2 * 1 * 1
        assert all(0 < m.relative_performance <= 1.2 for m in measurements)

    def test_collect_corun_measurements_grid_size(self, sim):
        pairs = [corun_pair("CI-US1").kernels()]
        measurements = collect_corun_measurements(
            sim, pairs, states=CORUN_STATES[:2], power_caps=(250.0, 150.0)
        )
        assert len(measurements) == 2 * 2
        assert all(len(m.relative_performances) == 2 for m in measurements)


class TestTrainer:
    def test_requires_measurements(self):
        trainer = ModelTrainer()
        with pytest.raises(ModelError):
            trainer.fit_scalability([])
            trainer._least_squares(np.zeros((0, 6)), np.zeros(0))

    def test_rejects_negative_ridge(self):
        with pytest.raises(ModelError):
            ModelTrainer(ridge=-1.0)

    def test_fit_scalability_creates_coefficients_per_state(self, sim):
        kernels = [DEFAULT_SUITE.get(n) for n in ("dgemm", "stream", "hgemm", "kmeans", "srad", "lud")]
        measurements = collect_solo_measurements(
            sim, kernels, gpc_counts=(3, 4), options=(MemoryOption.SHARED,), power_caps=(250.0,)
        )
        model = ModelTrainer().fit_scalability(measurements)
        assert len(model.fitted_scalability_states()) == 2

    def test_scalability_fit_reproduces_training_points_reasonably(self, sim):
        kernels = [DEFAULT_SUITE.get(n) for n in DEFAULT_SUITE.names()]
        measurements = collect_solo_measurements(
            sim, kernels, gpc_counts=(4,), options=(MemoryOption.SHARED,), power_caps=(250.0,)
        )
        model = ModelTrainer().fit_scalability(measurements)
        key = HardwareStateKey(4, 8, MemoryOption.SHARED, 250.0)
        errors = [
            abs(model.predict_solo(m.counters, key) - m.relative_performance)
            for m in measurements
        ]
        assert float(np.mean(errors)) < 0.12

    def test_training_report_is_populated(self, sim):
        kernels = [DEFAULT_SUITE.get(n) for n in ("dgemm", "stream", "hgemm", "kmeans")]
        trainer = ModelTrainer()
        solo = collect_solo_measurements(
            sim, kernels, gpc_counts=(3, 4), options=(MemoryOption.SHARED,), power_caps=(250.0,)
        )
        corun = collect_corun_measurements(
            sim, [corun_pair("TI-MI2").kernels()], states=(S1,), power_caps=(250.0,)
        )
        trainer.train(solo, corun)
        report = trainer.last_report
        assert report is not None
        assert report.n_solo_measurements == len(solo)
        assert report.n_corun_measurements == len(corun)
        assert report.worst_scalability_residual >= 0
        assert report.worst_interference_residual >= 0

    def test_interference_fit_requires_scalability(self, sim):
        corun = collect_corun_measurements(
            sim, [corun_pair("TI-MI2").kernels()], states=(S1,), power_caps=(250.0,)
        )
        trainer = ModelTrainer()
        from repro.core.model import LinearPerfModel
        from repro.errors import NotFittedError

        with pytest.raises(NotFittedError):
            trainer.fit_interference(corun, LinearPerfModel())

    def test_full_training_improves_corun_prediction(self, sim):
        """Adding the interference term should not hurt the fit on the
        training co-runs themselves."""
        kernels = list(DEFAULT_SUITE.all())
        solo = collect_solo_measurements(
            sim, kernels, gpc_counts=(3, 4), options=(MemoryOption.SHARED, MemoryOption.PRIVATE),
            power_caps=(250.0,),
        )
        pairs = [corun_pair(n).kernels() for n in ("TI-MI2", "CI-US1", "MI-MI2", "TI-TI1")]
        corun = collect_corun_measurements(sim, pairs, states=CORUN_STATES, power_caps=(250.0,))
        trainer = ModelTrainer()
        scal_only = trainer.fit_scalability(solo)
        full = ModelTrainer().train(solo, corun)

        def corun_error(model, use_interference):
            from repro.gpu.spec import A100_SPEC

            errors = []
            for measurement in corun:
                for index in range(2):
                    key = HardwareStateKey.from_state(
                        measurement.state, index, measurement.power_cap_w, A100_SPEC
                    )
                    others = [measurement.counters[1 - index]] if use_interference else []
                    predicted = model.predict_rperf(measurement.counters[index], key, others)
                    errors.append(abs(predicted - measurement.relative_performances[index]))
            return float(np.mean(errors))

        assert corun_error(full, True) <= corun_error(scal_only, False) + 1e-9
