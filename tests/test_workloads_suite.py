"""Tests for the Rodinia/micro kernels and the benchmark-suite registry."""

from __future__ import annotations

import pytest

from repro.errors import UnknownKernelError, WorkloadError
from repro.workloads.classification import EXPECTED_CLASSIFICATION
from repro.workloads.kernel import KernelCharacteristics, WorkloadClass
from repro.workloads.micro import micro_kernels
from repro.workloads.rodinia import rodinia_kernels
from repro.workloads.suite import BenchmarkSuite, DEFAULT_SUITE, all_kernel_names, build_default_suite, get_kernel


class TestRodiniaKernels:
    def test_all_table7_rodinia_benchmarks_present(self):
        names = set(rodinia_kernels())
        expected = {
            "hotspot", "lavaMD", "srad", "heartwell",
            "gaussian", "leukocyte", "lud",
            "backprop", "bfs", "dwt2d", "kmeans", "needle", "pathfinder",
        }
        assert expected == names

    def test_unscalable_kernels_are_serial_dominated(self):
        for name in ("backprop", "bfs", "dwt2d", "kmeans", "needle", "pathfinder"):
            kernel = rodinia_kernels()[name]
            assert kernel.serial_fraction > 0.9

    def test_memory_intensive_kernels_are_memory_dominated(self):
        for name in ("gaussian", "leukocyte", "lud"):
            kernel = rodinia_kernels()[name]
            assert kernel.memory_time_full_s > kernel.compute_time_full_s

    def test_compute_intensive_kernels_are_compute_dominated(self):
        for name in ("hotspot", "lavaMD", "srad", "heartwell"):
            kernel = rodinia_kernels()[name]
            assert kernel.compute_time_full_s > kernel.memory_time_full_s

    def test_no_rodinia_kernel_uses_tensor_cores(self):
        for kernel in rodinia_kernels().values():
            assert not kernel.uses_tensor_cores


class TestMicroKernels:
    def test_stream_and_randomaccess_present(self):
        assert set(micro_kernels()) == {"stream", "randomaccess"}

    def test_micro_kernels_are_memory_bound(self):
        for kernel in micro_kernels().values():
            assert kernel.memory_time_full_s > kernel.compute_time_full_s

    def test_stream_has_negligible_cache_reuse(self):
        assert micro_kernels()["stream"].l2_hit_rate < 0.1


class TestDefaultSuite:
    def test_contains_all_classified_benchmarks(self):
        for name in EXPECTED_CLASSIFICATION:
            assert name in DEFAULT_SUITE

    def test_has_24_benchmarks(self):
        assert len(DEFAULT_SUITE) == 24

    def test_get_returns_kernel(self):
        kernel = DEFAULT_SUITE.get("stream")
        assert isinstance(kernel, KernelCharacteristics)
        assert kernel.name == "stream"

    def test_get_unknown_raises(self):
        with pytest.raises(UnknownKernelError):
            DEFAULT_SUITE.get("does-not-exist")

    def test_names_sorted(self):
        assert list(DEFAULT_SUITE.names()) == sorted(DEFAULT_SUITE.names())

    def test_iteration_matches_names(self):
        assert tuple(iter(DEFAULT_SUITE)) == DEFAULT_SUITE.names()

    def test_module_level_helpers(self):
        assert get_kernel("dgemm").name == "dgemm"
        assert "hgemm" in all_kernel_names()

    def test_with_tag_filters(self):
        gemms = DEFAULT_SUITE.with_tag("gemm")
        assert len(gemms) == 9

    def test_subset(self):
        subset = DEFAULT_SUITE.subset(["stream", "dgemm"])
        assert len(subset) == 2
        assert "kmeans" not in subset

    def test_grouped_by_expected_class_covers_all_classes(self):
        groups = DEFAULT_SUITE.grouped_by_expected_class()
        assert set(groups) == set(WorkloadClass)
        assert sum(len(v) for v in groups.values()) == 24

    def test_build_default_suite_is_fresh(self):
        fresh = build_default_suite()
        assert fresh.names() == DEFAULT_SUITE.names()
        assert fresh is not DEFAULT_SUITE


class TestSuiteMutation:
    def test_register_rejects_duplicates(self):
        suite = BenchmarkSuite("test")
        kernel = DEFAULT_SUITE.get("stream")
        suite.register(kernel)
        with pytest.raises(WorkloadError):
            suite.register(kernel)

    def test_register_overwrite(self):
        suite = BenchmarkSuite("test")
        kernel = DEFAULT_SUITE.get("stream")
        suite.register(kernel)
        suite.register(kernel.scaled(2.0), overwrite=True)
        assert suite.get("stream").memory_time_full_s == pytest.approx(
            kernel.memory_time_full_s * 2
        )

    def test_register_all(self):
        suite = BenchmarkSuite("test")
        suite.register_all(micro_kernels().values())
        assert len(suite) == 2
