"""Tests for the simulated profiler (Table 3 counters)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.counters import CounterVector, collect_counters
from repro.workloads.suite import DEFAULT_SUITE


class TestCounterVector:
    def test_field_order_matches_table3(self):
        assert CounterVector.FIELD_ORDER == (
            "compute_throughput",
            "memory_throughput",
            "dram_throughput",
            "l2_hit_rate",
            "occupancy",
            "tensor_mixed",
            "tensor_double",
            "tensor_int",
        )

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            CounterVector(120.0, 10, 10, 10, 10, 0, 0, 0)
        with pytest.raises(ValueError):
            CounterVector(-1.0, 10, 10, 10, 10, 0, 0, 0)

    def test_array_roundtrip(self):
        vector = CounterVector(90, 40, 30, 60, 50, 70, 0, 0)
        rebuilt = CounterVector.from_array(vector.as_array())
        assert rebuilt == vector

    def test_dict_roundtrip(self):
        vector = CounterVector(90, 40, 30, 60, 50, 0, 10, 0)
        rebuilt = CounterVector.from_dict(vector.as_dict())
        assert rebuilt == vector

    def test_from_array_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            CounterVector.from_array(np.zeros(5))

    def test_tensor_total(self):
        vector = CounterVector(90, 40, 30, 60, 50, 10, 20, 5)
        assert vector.tensor_total == pytest.approx(35.0)


class TestCollectCounters:
    def test_counters_in_range_for_every_benchmark(self):
        for name in DEFAULT_SUITE.names():
            counters = collect_counters(DEFAULT_SUITE.get(name))
            for value in counters.as_array():
                assert 0.0 <= value <= 100.0

    def test_compute_intensive_kernel_has_high_compute_throughput(self):
        counters = collect_counters(DEFAULT_SUITE.get("dgemm"))
        assert counters.compute_throughput > 80
        assert counters.compute_throughput > counters.memory_throughput

    def test_memory_intensive_kernel_has_high_memory_throughput(self):
        counters = collect_counters(DEFAULT_SUITE.get("stream"))
        assert counters.dram_throughput > 80
        assert counters.memory_throughput > counters.compute_throughput

    def test_unscalable_kernel_has_low_everything(self):
        counters = collect_counters(DEFAULT_SUITE.get("kmeans"))
        assert counters.compute_throughput < 10
        assert counters.dram_throughput < 10

    def test_tensor_counters_only_for_tensor_kernels(self):
        hgemm = collect_counters(DEFAULT_SUITE.get("hgemm"))
        dgemm = collect_counters(DEFAULT_SUITE.get("dgemm"))
        assert hgemm.tensor_mixed > 50
        assert dgemm.tensor_total == 0.0

    def test_tensor_pipe_matches_variant(self):
        assert collect_counters(DEFAULT_SUITE.get("tdgemm")).tensor_double > 50
        assert collect_counters(DEFAULT_SUITE.get("igemm8")).tensor_int > 50

    def test_l2_and_occupancy_reflect_kernel_model(self):
        kernel = DEFAULT_SUITE.get("srad")
        counters = collect_counters(kernel)
        assert counters.l2_hit_rate == pytest.approx(100 * kernel.l2_hit_rate)
        assert counters.occupancy == pytest.approx(100 * kernel.occupancy)

    def test_profiling_is_deterministic(self):
        kernel = DEFAULT_SUITE.get("lud")
        assert collect_counters(kernel) == collect_counters(kernel)
