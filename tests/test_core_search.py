"""Tests for the search strategies over the (S, P) candidate space."""

from __future__ import annotations

import pytest

from repro.config import DEFAULT_POWER_CAPS
from repro.core.decision import CandidateEvaluation
from repro.core.search import ExhaustiveSearch, HillClimbingSearch, SearchCandidate
from repro.errors import OptimizationError
from repro.gpu.mig import CORUN_STATES


def make_candidates(power_caps=DEFAULT_POWER_CAPS):
    return [
        SearchCandidate(state=state, power_cap_w=float(cap))
        for state in CORUN_STATES
        for cap in power_caps
    ]


def make_evaluator(objective_fn, feasible_fn=lambda c: True):
    def evaluate(candidate: SearchCandidate) -> CandidateEvaluation:
        objective = objective_fn(candidate)
        return CandidateEvaluation(
            state=candidate.state,
            power_cap_w=candidate.power_cap_w,
            predicted_rperfs=(0.5, 0.5),
            predicted_throughput=1.0,
            predicted_fairness=0.5,
            objective=objective,
            feasible=feasible_fn(candidate),
        )

    return evaluate


def smooth_objective(candidate: SearchCandidate) -> float:
    """A unimodal objective: prefers S1 and 190 W."""
    state_score = {"S1": 4, "S2": 3, "S3": 2, "S4": 1}[candidate.state.label]
    return state_score - abs(candidate.power_cap_w - 190.0) / 100.0


class TestExhaustiveSearch:
    def test_finds_global_best(self):
        best, evaluations = ExhaustiveSearch().search(make_candidates(), make_evaluator(smooth_objective))
        assert best.state.label == "S1"
        assert best.power_cap_w == 190.0
        assert len(evaluations) == 24

    def test_ignores_infeasible_candidates(self):
        evaluator = make_evaluator(
            smooth_objective, feasible_fn=lambda c: c.state.label != "S1"
        )
        best, _ = ExhaustiveSearch().search(make_candidates(), evaluator)
        assert best.state.label == "S2"

    def test_all_infeasible_raises(self):
        evaluator = make_evaluator(smooth_objective, feasible_fn=lambda c: False)
        with pytest.raises(OptimizationError):
            ExhaustiveSearch().search(make_candidates(), evaluator)

    def test_empty_candidates_raise(self):
        with pytest.raises(OptimizationError):
            ExhaustiveSearch().search([], make_evaluator(smooth_objective))


class TestHillClimbingSearch:
    def test_finds_optimum_of_unimodal_objective(self):
        best, evaluations = HillClimbingSearch(restarts=3, seed=0).search(
            make_candidates(), make_evaluator(smooth_objective)
        )
        assert best.state.label == "S1"
        assert best.power_cap_w == 190.0
        # Hill climbing should not need to evaluate every candidate.
        assert len(evaluations) <= 24

    def test_respects_feasibility(self):
        evaluator = make_evaluator(smooth_objective, feasible_fn=lambda c: c.power_cap_w >= 190)
        best, _ = HillClimbingSearch(restarts=4, seed=1).search(make_candidates(), evaluator)
        assert best.power_cap_w >= 190

    def test_all_infeasible_raises(self):
        evaluator = make_evaluator(smooth_objective, feasible_fn=lambda c: False)
        with pytest.raises(OptimizationError):
            HillClimbingSearch(restarts=2).search(make_candidates(), evaluator)

    def test_deterministic_for_fixed_seed(self):
        evaluator = make_evaluator(smooth_objective)
        best_a, _ = HillClimbingSearch(restarts=2, seed=7).search(make_candidates(), evaluator)
        best_b, _ = HillClimbingSearch(restarts=2, seed=7).search(make_candidates(), evaluator)
        assert best_a.state.label == best_b.state.label
        assert best_a.power_cap_w == best_b.power_cap_w

    def test_invalid_restarts(self):
        with pytest.raises(OptimizationError):
            HillClimbingSearch(restarts=0)

    def test_agrees_with_exhaustive_on_paper_sized_space(self, context):
        """On the paper's 24-candidate space the heuristic should match the
        exhaustive answer for the actual trained model."""
        from repro.core.optimizer import ResourcePowerAllocator
        from repro.core.policies import Problem2Policy
        from repro.workloads.pairs import corun_pair

        counters = list(context.pair_profiles(corun_pair("TI-MI2")))
        policy = Problem2Policy(alpha=0.2)
        exhaustive = ResourcePowerAllocator(context.model, search=ExhaustiveSearch()).solve(
            counters, policy
        )
        climbing = ResourcePowerAllocator(
            context.model, search=HillClimbingSearch(restarts=3)
        ).solve(counters, policy)
        assert climbing.predicted_objective == pytest.approx(
            exhaustive.predicted_objective, rel=0.02
        )
