"""Tests for the trace layer: records, generators, and persistence."""

from __future__ import annotations

import pytest

from repro.errors import TraceError
from repro.traces import (
    Trace,
    TraceEntry,
    bursty_trace,
    load_trace,
    poisson_trace,
    save_trace,
)
from repro.workloads.mixes import TENSOR_HEAVY_MIX, mix_by_name
from repro.workloads.suite import DEFAULT_SUITE


class TestTrace:
    def test_entries_sorted_by_arrival_time(self):
        trace = Trace.from_arrivals([(3.0, "stream"), (1.0, "dgemm"), (2.0, "hgemm")])
        assert [entry.app for entry in trace] == ["dgemm", "hgemm", "stream"]
        assert trace.duration_s == pytest.approx(3.0)

    def test_simultaneous_arrivals_keep_submission_order(self):
        trace = Trace.from_arrivals([(0.0, "a"), (0.0, "b"), (0.0, "c")])
        assert [entry.app for entry in trace] == ["a", "b", "c"]

    def test_all_at_zero(self):
        trace = Trace.all_at_zero(["stream", "dgemm"])
        assert trace.n_jobs == 2
        assert trace.duration_s == 0.0
        assert all(entry.arrival_time_s == 0.0 for entry in trace)

    def test_negative_arrival_time_rejected(self):
        with pytest.raises(TraceError):
            TraceEntry(arrival_time_s=-1.0, app="stream")

    def test_empty_app_name_rejected(self):
        with pytest.raises(TraceError):
            TraceEntry(arrival_time_s=0.0, app="")

    def test_shifted(self):
        trace = Trace.from_arrivals([(1.0, "stream")]).shifted(2.0)
        assert trace.entries[0].arrival_time_s == pytest.approx(3.0)
        with pytest.raises(TraceError):
            Trace.from_arrivals([(1.0, "stream")]).shifted(-2.0)

    def test_resolve_kernels(self):
        trace = Trace.all_at_zero(["stream", "dgemm"])
        kernels = trace.resolve_kernels(DEFAULT_SUITE)
        assert [k.name for k in kernels] == ["stream", "dgemm"]

    def test_resolve_unknown_app_names_the_offender(self):
        trace = Trace.all_at_zero(["stream", "nonesuch"])
        with pytest.raises(TraceError, match="nonesuch"):
            trace.resolve_kernels()

    def test_summary_mentions_job_count(self):
        trace = Trace.all_at_zero(["stream"] * 5)
        assert "5 jobs" in trace.summary()


class TestPoissonGenerator:
    def test_deterministic_for_a_seed(self):
        first = poisson_trace(2.0, duration_s=50.0, seed=11)
        second = poisson_trace(2.0, duration_s=50.0, seed=11)
        assert first.entries == second.entries

    def test_different_seed_changes_trace(self):
        first = poisson_trace(2.0, duration_s=50.0, seed=11)
        second = poisson_trace(2.0, duration_s=50.0, seed=12)
        assert first.entries != second.entries

    def test_rate_is_respected_on_average(self):
        trace = poisson_trace(5.0, duration_s=200.0, seed=3)
        empirical = trace.n_jobs / 200.0
        assert empirical == pytest.approx(5.0, rel=0.15)

    def test_n_jobs_caps_the_trace(self):
        trace = poisson_trace(2.0, n_jobs=25, seed=1)
        assert trace.n_jobs == 25

    def test_apps_drawn_from_mix(self):
        trace = poisson_trace(5.0, duration_s=100.0, seed=7, mix=TENSOR_HEAVY_MIX)
        assert set(trace.app_names) <= set(TENSOR_HEAVY_MIX.app_names)

    def test_explicit_app_list(self):
        trace = poisson_trace(2.0, n_jobs=30, seed=5, apps=["stream", "dgemm"])
        assert set(trace.app_names) <= {"stream", "dgemm"}

    def test_invalid_parameters_rejected(self):
        with pytest.raises(TraceError):
            poisson_trace(0.0, duration_s=10.0)
        with pytest.raises(TraceError):
            poisson_trace(1.0)
        with pytest.raises(TraceError):
            poisson_trace(1.0, duration_s=-5.0)
        with pytest.raises(TraceError):
            poisson_trace(1.0, n_jobs=0)


class TestBurstyGenerator:
    def test_deterministic_for_a_seed(self):
        first = bursty_trace(0.5, 4.0, duration_s=100.0, seed=9)
        second = bursty_trace(0.5, 4.0, duration_s=100.0, seed=9)
        assert first.entries == second.entries

    def test_produces_simultaneous_bursts(self):
        trace = bursty_trace(0.5, 5.0, duration_s=100.0, seed=9)
        times = [entry.arrival_time_s for entry in trace]
        # With mean burst size 5 there must be repeated timestamps.
        assert len(set(times)) < len(times)

    def test_mean_burst_size_is_respected(self):
        trace = bursty_trace(1.0, 4.0, duration_s=500.0, seed=2)
        times = [entry.arrival_time_s for entry in trace]
        n_bursts = len(set(times))
        assert trace.n_jobs / n_bursts == pytest.approx(4.0, rel=0.25)

    def test_n_jobs_caps_the_trace(self):
        trace = bursty_trace(1.0, 4.0, duration_s=500.0, n_jobs=17, seed=2)
        assert trace.n_jobs == 17

    def test_invalid_parameters_rejected(self):
        with pytest.raises(TraceError):
            bursty_trace(0.0, 2.0, duration_s=10.0)
        with pytest.raises(TraceError):
            bursty_trace(1.0, 0.5, duration_s=10.0)
        with pytest.raises(TraceError):
            bursty_trace(1.0, 2.0, duration_s=0.0)
        with pytest.raises(TraceError):
            bursty_trace(1.0, 2.0, duration_s=10.0, n_jobs=0)


class TestLoader:
    @pytest.fixture()
    def trace(self):
        return poisson_trace(2.0, n_jobs=20, seed=4, label="roundtrip")

    @pytest.mark.parametrize("suffix", [".csv", ".json"])
    def test_roundtrip(self, trace, tmp_path, suffix):
        path = save_trace(trace, tmp_path / f"trace{suffix}")
        loaded = load_trace(path)
        assert [(e.arrival_time_s, e.app) for e in loaded] == [
            (e.arrival_time_s, e.app) for e in trace
        ]

    def test_json_keeps_label(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "trace.json")
        assert load_trace(path).label == "roundtrip"

    def test_unsupported_suffix_rejected(self, trace, tmp_path):
        with pytest.raises(TraceError):
            save_trace(trace, tmp_path / "trace.yaml")
        with pytest.raises(TraceError):
            load_trace(tmp_path / "trace.yaml")

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(TraceError):
            load_trace(tmp_path / "missing.csv")

    def test_bad_csv_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,name\n1.0,stream\n")
        with pytest.raises(TraceError, match="header"):
            load_trace(path)

    def test_bad_csv_number_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("arrival_time_s,app\nnot-a-number,stream\n")
        with pytest.raises(TraceError, match="not a number"):
            load_trace(path)

    def test_bad_json_document_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{\"format\": \"something-else\"}")
        with pytest.raises(TraceError):
            load_trace(path)

    def test_bad_json_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "repro-job-trace", "version": 99, "jobs": []}')
        with pytest.raises(TraceError, match="version"):
            load_trace(path)


class TestJobMixes:
    def test_mix_lookup_is_case_insensitive(self):
        assert mix_by_name("Tensor-Heavy") is TENSOR_HEAVY_MIX

    def test_unknown_mix_lists_valid_names(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError, match="steady"):
            mix_by_name("nonesuch")

    def test_normalized_weights_sum_to_one(self):
        total = sum(TENSOR_HEAVY_MIX.normalized().values())
        assert total == pytest.approx(1.0)

    def test_mix_apps_exist_in_default_suite(self):
        for app in TENSOR_HEAVY_MIX.app_names:
            assert app in DEFAULT_SUITE
