"""Tests for the event-driven cluster simulator.

The key property is parity: an all-at-t=0 trace replayed through the event
loop must reproduce the batch :class:`JobManager` schedule exactly.  On top
of that the online behaviours — arrivals over time, MIG repartitioning
latency, and power-budget reallocation — are exercised separately.
"""

from __future__ import annotations

import pytest

from repro.cluster.events import ClusterSimulator, SimulationConfig
from repro.cluster.manager import JobManager
from repro.cluster.scheduler import SchedulerConfig
from repro.core.workflow import PaperWorkflow, TrainingPlan
from repro.errors import ConfigurationError, SimulationError, TraceError
from repro.gpu.mig import MemoryOption
from repro.sim.engine import PerformanceSimulator
from repro.sim.noise import no_noise
from repro.traces import Trace, poisson_trace
from repro.workloads.suite import DEFAULT_SUITE


@pytest.fixture(scope="module")
def workflow():
    wf = PaperWorkflow(
        simulator=PerformanceSimulator(noise=no_noise()),
        plan=TrainingPlan(
            gpc_counts=(3, 4),
            options=(MemoryOption.SHARED, MemoryOption.PRIVATE),
            power_caps=(230.0, 250.0),
        ),
        power_caps=(230.0, 250.0),
    )
    wf.train()
    return wf


@pytest.fixture()
def scheduler_config():
    return SchedulerConfig(
        policy_name="problem1", power_cap_w=230.0, alpha=0.2, window_size=4
    )


JOB_NAMES = [
    "igemm4", "stream", "srad", "needle", "hgemm", "lud",
    "dgemm", "kmeans", "fp16gemm", "leukocyte",
]


class TestBatchParity:
    @pytest.mark.parametrize("n_nodes", [1, 2, 3])
    def test_all_at_zero_trace_matches_drain(self, workflow, scheduler_config, n_nodes):
        kernels = [DEFAULT_SUITE.get(name) for name in JOB_NAMES]
        manager = JobManager.from_workflow(
            workflow, n_nodes=n_nodes, scheduler_config=scheduler_config
        )
        batch = manager.drain(kernels)

        simulator = ClusterSimulator.from_workflow(
            workflow, n_nodes=n_nodes, scheduler_config=scheduler_config
        )
        report = simulator.run(Trace.all_at_zero(JOB_NAMES))

        assert report.n_jobs == batch.n_jobs
        assert report.makespan_s == pytest.approx(batch.makespan_s, rel=1e-12)
        assert report.mean_turnaround_s == pytest.approx(
            batch.mean_turnaround_s, rel=1e-12
        )
        assert report.co_scheduled_jobs == batch.co_scheduled_jobs
        assert report.exclusive_jobs == batch.exclusive_jobs

    def test_parity_schedules_identical_job_intervals(self, workflow, scheduler_config):
        kernels = [DEFAULT_SUITE.get(name) for name in JOB_NAMES]
        manager = JobManager.from_workflow(
            workflow, n_nodes=2, scheduler_config=scheduler_config
        )
        batch = manager.drain(kernels)

        simulator = ClusterSimulator.from_workflow(
            workflow, n_nodes=2, scheduler_config=scheduler_config
        )
        report = simulator.run(Trace.all_at_zero(JOB_NAMES))

        batch_by_name = {
            job.name: (job.start_time, job.finish_time) for job in batch.jobs
        }
        for job in report.jobs:
            start, finish = batch_by_name[job.name]
            assert job.start_time == pytest.approx(start, abs=1e-12)
            assert job.finish_time == pytest.approx(finish, rel=1e-12)


class TestOnlineArrivals:
    def test_jobs_wait_for_their_arrival_time(self, workflow, scheduler_config):
        trace = Trace.from_arrivals(
            [(0.0, "stream"), (10.0, "dgemm"), (20.0, "hgemm")]
        )
        simulator = ClusterSimulator.from_workflow(
            workflow, n_nodes=2, scheduler_config=scheduler_config
        )
        report = simulator.run(trace)
        by_name = {job.name: job for job in report.jobs}
        assert by_name["dgemm"].start_time >= 10.0
        assert by_name["hgemm"].start_time >= 20.0
        assert report.makespan_s >= 20.0
        # An idle cluster dispatches arrivals immediately: no waiting.
        assert report.wait.max_s == pytest.approx(0.0, abs=1e-12)

    def test_poisson_trace_completes_every_job(self, workflow, scheduler_config):
        trace = poisson_trace(1.0, duration_s=30.0, seed=5)
        simulator = ClusterSimulator.from_workflow(
            workflow, n_nodes=2, scheduler_config=scheduler_config
        )
        report = simulator.run(trace)
        assert report.n_jobs == trace.n_jobs
        assert report.sustained_throughput_jobs_per_s > 0
        assert 0.0 < report.utilization <= 1.0
        assert report.energy_wh > 0.0
        assert report.wait.p50_s <= report.wait.p95_s <= report.wait.p99_s

    def test_saturated_cluster_builds_queue(self, workflow, scheduler_config):
        # One node and a burst of simultaneous arrivals: later jobs must wait.
        trace = Trace.all_at_zero(JOB_NAMES)
        simulator = ClusterSimulator.from_workflow(
            workflow, n_nodes=1, scheduler_config=scheduler_config
        )
        report = simulator.run(trace)
        assert report.peak_queue_length == len(JOB_NAMES)
        assert report.wait.max_s > 0.0

    def test_profile_runs_counted(self, workflow, scheduler_config):
        suite = DEFAULT_SUITE.subset(["stream", "dgemm"])
        fresh = DEFAULT_SUITE.get("stream").with_name("freshapp")
        suite.register(fresh)
        trace = Trace.from_arrivals([(0.0, "freshapp"), (0.0, "stream")])
        simulator = ClusterSimulator.from_workflow(
            workflow, n_nodes=1, scheduler_config=scheduler_config
        )
        report = simulator.run(trace, suite=suite)
        assert report.profile_runs == 1

    def test_empty_trace_rejected(self, workflow):
        simulator = ClusterSimulator.from_workflow(workflow)
        with pytest.raises(SimulationError):
            simulator.run(Trace(entries=()))

    def test_unknown_app_rejected(self, workflow):
        simulator = ClusterSimulator.from_workflow(workflow)
        with pytest.raises(TraceError):
            simulator.run(Trace.all_at_zero(["nonesuch"]))

    def test_nodes_required(self, workflow):
        with pytest.raises(ConfigurationError):
            ClusterSimulator(allocator=workflow.online, nodes=[])


class TestRepartitionLatency:
    def test_layout_changes_incur_latency(self, workflow, scheduler_config):
        trace = Trace.all_at_zero(JOB_NAMES)
        free = ClusterSimulator.from_workflow(
            workflow, n_nodes=2, scheduler_config=scheduler_config
        ).run(trace)
        priced = ClusterSimulator.from_workflow(
            workflow,
            n_nodes=2,
            scheduler_config=scheduler_config,
            config=SimulationConfig(repartition_latency_s=5.0),
        ).run(trace)
        assert priced.repartitions > 0
        # The latency scales with the GPU Instances created/destroyed, not
        # with a flat per-change constant.
        assert priced.mig_instance_changes >= priced.repartitions
        assert priced.repartition_time_s == pytest.approx(
            priced.mig_instance_changes * 5.0
        )
        assert priced.makespan_s > free.makespan_s

    def test_stable_layout_pays_once_per_node(self, workflow):
        # group_size=1 makes every dispatch the exclusive layout, so only
        # the first dispatch of each node reconfigures.
        config = SchedulerConfig(group_size=1)
        trace = Trace.all_at_zero(["stream", "dgemm", "hgemm", "lud"])
        report = ClusterSimulator.from_workflow(
            workflow,
            n_nodes=2,
            scheduler_config=config,
            config=SimulationConfig(repartition_latency_s=1.0),
        ).run(trace)
        assert report.repartitions == 2

    def test_same_gi_multiset_reconfigures_for_free(self, workflow):
        """S1 -> S2 only re-binds jobs onto the existing full-chip GI, so
        no repartition latency is charged and jobs on untouched instances
        effectively keep running."""
        from repro.cluster.events.simulator import ClusterSimulator as CS

        assert CS._instance_changes((7,), (7,)) == 0
        # Multiset diff: {3,4} -> {4,3} is free, {3,4} -> {2,2,3} swaps one
        # 4-GPC GI for two 2-GPC GIs (3 changes).
        assert CS._instance_changes((3, 4), (4, 3)) == 0
        assert CS._instance_changes((3, 4), (2, 2, 3)) == 3
        # Toggling MIG mode on/off costs one unit on top of the GI diff.
        assert CS._instance_changes((), (3, 4)) == 3
        assert CS._instance_changes((3, 4), ()) == 3
        # A node's first dispatch charges the full bring-up.
        assert CS._instance_changes(None, (3, 4)) == 2
        assert CS._instance_changes(None, ()) == 1


class TestPowerBudget:
    def test_budget_rebalances_and_caps_allocation(self, workflow, scheduler_config):
        trace = Trace.all_at_zero(JOB_NAMES)
        budget = 460.0
        report = ClusterSimulator.from_workflow(
            workflow,
            n_nodes=2,
            scheduler_config=scheduler_config,
            config=SimulationConfig(power_budget_w=budget),
        ).run(trace)
        assert report.power_rebalances > 0
        assert report.final_power_allocation_w
        assert sum(report.final_power_allocation_w.values()) <= budget + 1e-9

    def test_tight_budget_slows_the_cluster_down(self, workflow, scheduler_config):
        trace = Trace.all_at_zero(JOB_NAMES)
        unlimited = ClusterSimulator.from_workflow(
            workflow, n_nodes=2, scheduler_config=scheduler_config
        ).run(trace)
        spec = workflow.simulator.spec
        tight = ClusterSimulator.from_workflow(
            workflow,
            n_nodes=2,
            scheduler_config=scheduler_config,
            config=SimulationConfig(power_budget_w=2 * spec.min_power_cap_w),
        ).run(trace)
        assert tight.makespan_s > unlimited.makespan_s

    def test_budget_below_cluster_minimum_rejected(self, workflow):
        spec = workflow.simulator.spec
        with pytest.raises(ConfigurationError):
            ClusterSimulator.from_workflow(
                workflow,
                n_nodes=4,
                config=SimulationConfig(
                    power_budget_w=3 * spec.min_power_cap_w
                ),
            )

    def test_invalid_config_values_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(repartition_latency_s=-1.0)
        with pytest.raises(ConfigurationError):
            SimulationConfig(power_budget_w=0.0)
