"""Tests for the Resource & Power Allocator."""

from __future__ import annotations

import pytest

from repro.config import DEFAULT_POWER_CAPS
from repro.core.optimizer import ResourcePowerAllocator
from repro.core.policies import Problem1Policy, Problem2Policy
from repro.errors import InfeasibleProblemError, OptimizationError
from repro.gpu.mig import CORUN_STATES
from repro.workloads.pairs import corun_pair


@pytest.fixture()
def allocator(context):
    return ResourcePowerAllocator(context.model)


@pytest.fixture()
def ti_mi_profiles(context):
    return list(context.pair_profiles(corun_pair("TI-MI2")))


class TestConstruction:
    def test_requires_states_and_caps(self, trained_model):
        with pytest.raises(OptimizationError):
            ResourcePowerAllocator(trained_model, candidate_states=())
        with pytest.raises(OptimizationError):
            ResourcePowerAllocator(trained_model, power_caps=())

    def test_defaults_match_paper_grid(self, allocator):
        assert allocator.candidate_states == CORUN_STATES
        assert allocator.power_caps == DEFAULT_POWER_CAPS


class TestCandidateEvaluation:
    def test_evaluation_fields_are_consistent(self, allocator, ti_mi_profiles):
        policy = Problem1Policy(power_cap_w=230, alpha=0.2)
        evaluation = allocator.evaluate_candidate(ti_mi_profiles, CORUN_STATES[0], 230, policy)
        assert evaluation.predicted_throughput == pytest.approx(sum(evaluation.predicted_rperfs))
        assert evaluation.predicted_fairness == pytest.approx(min(evaluation.predicted_rperfs))
        assert evaluation.objective == pytest.approx(evaluation.predicted_throughput)
        assert evaluation.feasible == (evaluation.predicted_fairness > 0.2)

    def test_problem2_objective_divides_by_power(self, allocator, ti_mi_profiles):
        policy = Problem2Policy(alpha=0.2)
        evaluation = allocator.evaluate_candidate(ti_mi_profiles, CORUN_STATES[0], 210, policy)
        assert evaluation.objective == pytest.approx(evaluation.predicted_throughput / 210)


class TestProblem1:
    def test_decision_structure(self, allocator, ti_mi_profiles):
        decision = allocator.solve_problem1(ti_mi_profiles, power_cap_w=230, alpha=0.2)
        assert decision.power_cap_w == 230.0
        assert decision.state in CORUN_STATES
        assert decision.candidates_evaluated == len(CORUN_STATES)
        assert decision.predicted_fairness > 0.2
        assert decision.policy_name.startswith("problem1")

    def test_selects_s1_for_ti_mi_pair(self, allocator, ti_mi_profiles):
        """The paper's flagship example: give the Tensor-intensive kernel the
        bigger partition and share the memory system with stream."""
        decision = allocator.solve_problem1(ti_mi_profiles, power_cap_w=250, alpha=0.2)
        assert decision.state.label == "S1"

    def test_selects_private_for_ci_us_pair(self, allocator, context):
        profiles = list(context.pair_profiles(corun_pair("CI-US1")))
        decision = allocator.solve_problem1(profiles, power_cap_w=250, alpha=0.2)
        assert decision.state.label in ("S3", "S4")

    def test_decision_is_best_among_evaluations(self, allocator, ti_mi_profiles):
        decision = allocator.solve_problem1(ti_mi_profiles, power_cap_w=230, alpha=0.2)
        feasible = [e for e in decision.evaluations if e.feasible]
        assert decision.predicted_objective == pytest.approx(
            max(e.objective for e in feasible)
        )

    def test_impossible_alpha_raises(self, allocator, ti_mi_profiles):
        with pytest.raises(InfeasibleProblemError):
            allocator.solve_problem1(ti_mi_profiles, power_cap_w=230, alpha=0.99)


class TestProblem2:
    def test_decision_includes_power_cap_choice(self, allocator, ti_mi_profiles):
        decision = allocator.solve_problem2(ti_mi_profiles, alpha=0.2)
        assert decision.power_cap_w in DEFAULT_POWER_CAPS
        assert decision.candidates_evaluated == len(CORUN_STATES) * len(DEFAULT_POWER_CAPS)
        assert decision.policy_name.startswith("problem2")

    def test_higher_alpha_never_lowers_selected_power_for_tensor_pair(self, allocator, context):
        """A stricter fairness constraint forces higher power for TI-TI pairs
        (both kernels suffer badly from throttling)."""
        profiles = list(context.pair_profiles(corun_pair("TI-TI1")))
        relaxed = allocator.solve_problem2(profiles, alpha=0.1)
        strict = allocator.solve_problem2(profiles, alpha=0.3)
        assert strict.power_cap_w >= relaxed.power_cap_w

    def test_us_pair_gets_lowest_power(self, allocator, context):
        """Two unscalable kernels keep ~full performance at any cap, so the
        most energy-efficient choice is the lowest cap."""
        profiles = list(context.pair_profiles(corun_pair("US-US2")))
        decision = allocator.solve_problem2(profiles, alpha=0.2)
        assert decision.power_cap_w == min(DEFAULT_POWER_CAPS)

    def test_objective_matches_throughput_per_watt(self, allocator, ti_mi_profiles):
        decision = allocator.solve_problem2(ti_mi_profiles, alpha=0.2)
        assert decision.predicted_objective == pytest.approx(
            decision.predicted_throughput / decision.power_cap_w
        )

    def test_describe_mentions_state_and_power(self, allocator, ti_mi_profiles):
        decision = allocator.solve_problem2(ti_mi_profiles, alpha=0.2)
        text = decision.describe()
        assert str(int(decision.power_cap_w)) in text
        assert decision.state.label in text
