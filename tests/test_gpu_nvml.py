"""Tests for the NVML / nvidia-smi facade."""

from __future__ import annotations

import pytest

from repro.errors import PartitioningError, PowerCapError
from repro.gpu.mig import S1
from repro.gpu.nvml import SimulatedNVML, SimulatedSMI
from repro.gpu.spec import A100_SPEC


class TestSimulatedNVML:
    @pytest.fixture()
    def nvml(self):
        api = SimulatedNVML(A100_SPEC)
        api.nvmlInit()
        return api

    def test_requires_init(self):
        api = SimulatedNVML(A100_SPEC)
        with pytest.raises(RuntimeError):
            api.nvmlDeviceGetCount()

    def test_device_count_is_one(self, nvml):
        assert nvml.nvmlDeviceGetCount() == 1

    def test_handle_lookup(self, nvml):
        handle = nvml.nvmlDeviceGetHandleByIndex(0)
        assert nvml.nvmlDeviceGetName(handle) == A100_SPEC.name

    def test_invalid_index_rejected(self, nvml):
        with pytest.raises(PartitioningError):
            nvml.nvmlDeviceGetHandleByIndex(1)

    def test_default_power_limit_in_milliwatts(self, nvml):
        handle = nvml.nvmlDeviceGetHandleByIndex(0)
        assert nvml.nvmlDeviceGetPowerManagementDefaultLimit(handle) == int(
            A100_SPEC.default_power_limit_w * 1000
        )

    def test_power_limit_constraints(self, nvml):
        handle = nvml.nvmlDeviceGetHandleByIndex(0)
        low, high = nvml.nvmlDeviceGetPowerManagementLimitConstraints(handle)
        assert low == int(A100_SPEC.min_power_cap_w * 1000)
        assert high == int(A100_SPEC.max_power_cap_w * 1000)

    def test_set_power_limit(self, nvml):
        handle = nvml.nvmlDeviceGetHandleByIndex(0)
        nvml.nvmlDeviceSetPowerManagementLimit(handle, 190_000)
        assert nvml.nvmlDeviceGetPowerManagementLimit(handle) == 190_000
        assert nvml.power_limit_w == pytest.approx(190.0)

    def test_set_power_limit_out_of_range(self, nvml):
        handle = nvml.nvmlDeviceGetHandleByIndex(0)
        with pytest.raises(PowerCapError):
            nvml.nvmlDeviceSetPowerManagementLimit(handle, 10_000)

    def test_mig_mode_toggle(self, nvml):
        handle = nvml.nvmlDeviceGetHandleByIndex(0)
        assert not nvml.nvmlDeviceGetMigMode(handle)
        nvml.nvmlDeviceSetMigMode(handle, True)
        assert nvml.nvmlDeviceGetMigMode(handle)

    def test_shutdown_requires_reinit(self, nvml):
        nvml.nvmlShutdown()
        with pytest.raises(RuntimeError):
            nvml.nvmlDeviceGetCount()


class TestSimulatedSMI:
    @pytest.fixture()
    def smi(self):
        return SimulatedSMI(A100_SPEC)

    def test_default_power_limit(self, smi):
        assert smi.power_limit_w == A100_SPEC.default_power_limit_w

    def test_set_power_limit_logs_command(self, smi):
        smi.set_power_limit(170)
        assert smi.power_limit_w == pytest.approx(170.0)
        assert any("-pl 170" in cmd for cmd in smi.command_log)

    def test_enable_mig_logs_command(self, smi):
        smi.enable_mig()
        assert "nvidia-smi -mig 1" in smi.command_log

    def test_apply_partition_state_returns_uuids(self, smi):
        uuids = smi.apply_partition_state(S1)
        assert len(uuids) == 2
        assert set(smi.visible_devices()) == set(uuids)

    def test_reset_partitions_clears_devices(self, smi):
        smi.apply_partition_state(S1)
        smi.reset_partitions()
        assert smi.visible_devices() == ()

    def test_invalid_power_limit_rejected(self, smi):
        with pytest.raises(PowerCapError):
            smi.set_power_limit(20)
