"""Unit tests for the unit-conversion helpers."""

from __future__ import annotations

import math

import pytest

from repro import units


def test_ms_converts_to_seconds():
    assert units.ms(1500.0) == pytest.approx(1.5)


def test_us_converts_to_seconds():
    assert units.us(2_000_000.0) == pytest.approx(2.0)


def test_seconds_to_ms_roundtrip():
    assert units.seconds_to_ms(units.ms(123.0)) == pytest.approx(123.0)


def test_gb_and_back():
    assert units.bytes_to_gb(units.gb(4.2)) == pytest.approx(4.2)


def test_mib_is_binary_megabyte():
    assert units.mib(1.0) == 1024.0 * 1024.0


def test_tflops_and_back():
    assert units.flops_to_tflops(units.tflops(312.0)) == pytest.approx(312.0)


def test_ghz_conversion():
    assert units.ghz(1.41) == pytest.approx(1.41e9)


def test_mhz_to_ghz():
    assert units.mhz_to_ghz(1410.0) == pytest.approx(1.41)


def test_watt_hours():
    assert units.watt_hours(3600.0) == pytest.approx(1.0)


def test_percent_and_fraction_are_inverses():
    assert units.fraction(units.percent(0.37)) == pytest.approx(0.37)


def test_clamp_within_range():
    assert units.clamp(0.5, 0.0, 1.0) == 0.5


def test_clamp_below_range():
    assert units.clamp(-3.0, 0.0, 1.0) == 0.0


def test_clamp_above_range():
    assert units.clamp(7.0, 0.0, 1.0) == 1.0


def test_clamp_rejects_inverted_interval():
    with pytest.raises(ValueError):
        units.clamp(0.5, 1.0, 0.0)


def test_constants_are_consistent():
    assert units.BYTES_PER_GB == 1e9
    assert units.FLOPS_PER_TFLOP == 1e12
    assert math.isclose(units.BYTES_PER_MIB, 2**20)
