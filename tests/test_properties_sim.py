"""Property-based tests for the execution simulator's physical invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.mig import CORUN_STATES, MemoryOption, solo_state
from repro.sim.engine import PerformanceSimulator
from repro.sim.noise import no_noise
from repro.workloads.suite import DEFAULT_SUITE
from repro.workloads.synthetic import SyntheticWorkloadGenerator

_SIM = PerformanceSimulator(noise=no_noise())
_GENERATOR = SyntheticWorkloadGenerator(seed=11)
_KERNEL_POOL = list(DEFAULT_SUITE.all()) + list(_GENERATOR.sample(12))

kernel_strategy = st.sampled_from(_KERNEL_POOL)
# Sample the simulated spec's own instance sizes, not the cross-spec
# union (VALID_INSTANCE_SIZES) — the 8-XCD mi300x size is invalid here.
gpcs_strategy = st.sampled_from(_SIM.spec.mig_instance_sizes)
option_strategy = st.sampled_from([MemoryOption.PRIVATE, MemoryOption.SHARED])
cap_strategy = st.sampled_from([150.0, 170.0, 190.0, 210.0, 230.0, 250.0])
state_strategy = st.sampled_from(CORUN_STATES)


@given(kernel_strategy, gpcs_strategy, option_strategy, cap_strategy)
@settings(max_examples=80, deadline=None)
def test_solo_relative_performance_bounded(kernel, gpcs, option, cap):
    """A partitioned, capped run can never beat the exclusive full-GPU run by
    more than a small margin (the margin exists because the reference run may
    itself be power-throttled while a small partition is not)."""
    run = _SIM.solo_run(kernel, solo_state(gpcs, option), cap)
    assert 0.0 < run.relative_performance <= 1.25
    assert run.chip_power_w <= cap + 1e-6
    assert 0.0 < run.relative_frequency <= 1.0


@given(kernel_strategy, option_strategy, cap_strategy)
@settings(max_examples=40, deadline=None)
def test_solo_performance_monotonic_in_gpcs(kernel, option, cap):
    """More GPCs never hurt (for the private option the slice count also
    grows monotonically with the GPC count)."""
    values = [
        _SIM.solo_run(kernel, solo_state(g, option), cap).relative_performance
        for g in (1, 2, 3, 4, 7)
    ]
    for smaller, larger in zip(values, values[1:]):
        assert larger >= smaller - 1e-6


@given(kernel_strategy, gpcs_strategy, option_strategy)
@settings(max_examples=40, deadline=None)
def test_solo_performance_monotonic_in_power(kernel, gpcs, option):
    """A higher power cap never hurts."""
    values = [
        _SIM.solo_run(kernel, solo_state(gpcs, option), cap).relative_performance
        for cap in (150.0, 190.0, 230.0, 250.0)
    ]
    for lower, higher in zip(values, values[1:]):
        assert higher >= lower - 1e-6


@given(st.sampled_from(_KERNEL_POOL), st.sampled_from(_KERNEL_POOL), state_strategy, cap_strategy)
@settings(max_examples=60, deadline=None)
def test_corun_invariants(kernel_a, kernel_b, state, cap):
    """Co-run invariants: metric definitions, fairness <= min share, power cap
    respected, total bandwidth bounded by the chip peak."""
    result = _SIM.co_run([kernel_a, kernel_b], state, cap)
    assert result.weighted_speedup == sum(result.relative_performances)
    assert result.fairness == min(result.relative_performances)
    assert result.fairness <= result.weighted_speedup / 2 + 1e-9
    assert result.chip_power_w <= cap + 1e-6
    total_bw = sum(r.achieved_bandwidth_gbs for r in result.per_app)
    assert total_bw <= _SIM.spec.dram_bandwidth_gbs * 1.01
    for run in result.per_app:
        assert 0.0 < run.relative_performance <= 1.25


@given(st.sampled_from(_KERNEL_POOL), st.sampled_from(_KERNEL_POOL), cap_strategy)
@settings(max_examples=40, deadline=None)
def test_corun_app_never_beats_its_solo_run_on_same_partition(kernel_a, kernel_b, cap):
    """Adding a co-runner can only hurt (or leave unchanged) each application
    compared to running alone on the same partition slice."""
    state = CORUN_STATES[0]  # S1: shared, 4+3
    corun = _SIM.co_run([kernel_a, kernel_b], state, cap)
    solo_a = _SIM.solo_run(kernel_a, solo_state(4, MemoryOption.SHARED), cap)
    solo_b = _SIM.solo_run(kernel_b, solo_state(3, MemoryOption.SHARED), cap)
    assert corun.per_app[0].relative_performance <= solo_a.relative_performance + 1e-6
    assert corun.per_app[1].relative_performance <= solo_b.relative_performance + 1e-6


@given(st.sampled_from(_KERNEL_POOL), state_strategy, cap_strategy)
@settings(max_examples=30, deadline=None)
def test_swapping_applications_swaps_results(kernel, state, cap):
    """Running (A, B) under S and (B, A) under the swapped state is symmetric."""
    other = DEFAULT_SUITE.get("stream")
    forward = _SIM.co_run([kernel, other], state, cap)
    backward = _SIM.co_run([other, kernel], state.swapped(), cap)
    assert forward.per_app[0].relative_performance == (
        backward.per_app[1].relative_performance
    )
    assert forward.per_app[1].relative_performance == (
        backward.per_app[0].relative_performance
    )
