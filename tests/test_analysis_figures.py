"""Tests for the figure-data generators (qualitative paper shapes).

These are the library-level checks behind the benchmark harnesses: each test
asserts the *shape* the paper reports (who wins, roughly by how much, how
curves move), not absolute numbers.
"""

from __future__ import annotations

import pytest

from repro.analysis.context import EvaluationContext
from repro.analysis.errors import model_error_summary
from repro.analysis.figures import (
    figure4_scalability_partitioning,
    figure5_scalability_power,
    figure6_corun_throughput,
    figure8_model_accuracy,
    figure9_problem1,
    figure10_problem1_power_sweep,
    figure11_problem2_efficiency,
    figure12_problem2_power_selection,
    figure13_efficiency_vs_alpha,
)
from repro.gpu.mig import MemoryOption


class TestContext:
    def test_create_builds_trained_model(self, context):
        assert context.model.fitted_scalability_states()
        assert context.model.fitted_interference_states()

    def test_measured_results_are_cached(self, context):
        state = context.config.candidate_states[0]
        first = context.measured("TI-MI2", state, 250)
        second = context.measured("TI-MI2", state, 250)
        assert first is second

    def test_measured_grid_covers_full_grid(self, context):
        grid = context.measured_grid("CI-US1")
        assert len(grid) == 4 * 6

    def test_profiles_are_cached(self, context):
        assert context.profile("stream") is context.profile("stream")

    def test_standalone_context_creation(self):
        fresh = EvaluationContext.create()
        assert fresh.model is not None


class TestFigure4:
    def test_stream_needs_shared_option_on_small_partitions(self, context):
        data = figure4_scalability_partitioning(context)
        private = data.curve("stream", MemoryOption.PRIVATE)
        shared = data.curve("stream", MemoryOption.SHARED)
        assert shared.value_at(3) > 1.5 * private.value_at(3)
        assert private.value_at(7) > 0.9

    def test_kmeans_is_flat(self, context):
        data = figure4_scalability_partitioning(context)
        for option in (MemoryOption.PRIVATE, MemoryOption.SHARED):
            curve = data.curve("kmeans", option)
            assert curve.value_at(1) > 0.9
            assert curve.value_at(7) > 0.9

    def test_gemms_scale_with_gpcs_regardless_of_option(self, context):
        data = figure4_scalability_partitioning(context)
        for kernel in ("dgemm", "hgemm"):
            for option in (MemoryOption.PRIVATE, MemoryOption.SHARED):
                curve = data.curve(kernel, option)
                values = [value for _, value in curve.points]
                assert values == sorted(values)
                assert curve.value_at(1) < 0.2
                assert curve.value_at(7) > 0.8
            private = data.curve(kernel, MemoryOption.PRIVATE)
            shared = data.curve(kernel, MemoryOption.SHARED)
            assert private.value_at(4) == pytest.approx(shared.value_at(4), rel=0.1)


class TestFigure5:
    def test_power_cap_hits_tensor_kernel_hardest(self, context):
        data = figure5_scalability_power(context)
        hgemm_drop = 1 - data.curve("hgemm", 150).value_at(7) / data.curve("hgemm", 250).value_at(7)
        dgemm_drop = 1 - data.curve("dgemm", 150).value_at(7) / data.curve("dgemm", 250).value_at(7)
        stream_drop = 1 - data.curve("stream", 150).value_at(7) / data.curve("stream", 250).value_at(7)
        kmeans_drop = 1 - data.curve("kmeans", 150).value_at(7) / data.curve("kmeans", 250).value_at(7)
        assert hgemm_drop > dgemm_drop > stream_drop - 0.02
        assert hgemm_drop > 0.15
        assert abs(stream_drop) < 0.05
        assert abs(kmeans_drop) < 0.05

    def test_small_partitions_unaffected_by_cap(self, context):
        data = figure5_scalability_power(context)
        assert data.curve("hgemm", 150).value_at(1) == pytest.approx(
            data.curve("hgemm", 250).value_at(1), rel=0.05
        )


class TestFigure6:
    def test_ti_mi_prefers_shared_with_more_gpcs_for_tensor_app(self, context):
        data = figure6_corun_throughput(context)
        assert data.best_state("TI-MI2") == "S1"
        assert data.spread("TI-MI2") > 1.2

    def test_ci_us_prefers_private(self, context):
        data = figure6_corun_throughput(context)
        assert data.best_state("CI-US1") in ("S3", "S4")

    def test_throughput_values_are_plausible(self, context):
        data = figure6_corun_throughput(context)
        for row in data.throughput.values():
            for value in row.values():
                assert 0.5 < value < 2.0


class TestFigure8:
    def test_average_errors_close_to_paper(self, context):
        data = figure8_model_accuracy(context)
        assert data.throughput_mape_pct < 15.0
        assert data.fairness_mape_pct < 20.0
        assert len(data.rows) == 18 * 4

    def test_model_error_summary_all_caps(self, context):
        summary = model_error_summary(context)
        assert summary.n_samples == 18 * 4 * 6
        assert summary.throughput_mape_pct < 15.0
        assert summary.fairness_mape_pct < 20.0
        assert summary.worst_power_cap() in context.config.power_caps

    def test_estimates_correlate_with_measurements(self, context):
        import numpy as np

        data = figure8_model_accuracy(context)
        measured = np.array([r.measured_throughput for r in data.rows])
        estimated = np.array([r.estimated_throughput for r in data.rows])
        assert np.corrcoef(measured, estimated)[0, 1] > 0.9


class TestProblem1Figures:
    def test_figure9_proposal_close_to_best(self, context):
        data = figure9_problem1(context)
        summary = data.comparison
        assert len(summary.rows) == 18
        assert summary.geomean_worst <= summary.geomean_proposal <= summary.geomean_best + 1e-9
        assert summary.geomean_proposal >= 0.95 * summary.geomean_best
        assert summary.fairness_violations == 0

    def test_figure9_per_workload_sanity(self, context):
        data = figure9_problem1(context)
        for row in data.comparison.rows:
            assert row.worst <= row.best + 1e-9
            assert row.worst - 1e-9 <= row.proposal <= row.best + 1e-9
            assert row.proposal_power_cap_w == data.power_cap_w

    def test_figure10_throughput_increases_with_power(self, context):
        data = figure10_problem1_power_sweep(context)
        geomeans = data.geomeans()
        assert len(geomeans) == 6
        proposals = [row[2] for row in geomeans]
        assert proposals[-1] >= proposals[0]
        bests = [row[3] for row in geomeans]
        for _, worst, proposal, best in geomeans:
            assert worst <= proposal + 1e-9 <= best + 1e-9
        assert all(proposal >= 0.93 * best for proposal, best in zip(proposals, bests))


class TestProblem2Figures:
    def test_figure11_proposal_close_to_best(self, context):
        data = figure11_problem2_efficiency(context)
        for alpha, summary in data.per_alpha.items():
            assert summary.geomean_proposal >= 0.9 * summary.geomean_best
            assert summary.geomean_proposal > summary.geomean_worst

    def test_figure12_power_selection_is_sensitive_to_alpha(self, context):
        data = figure12_problem2_power_selection(context)
        low_proposal = {r.pair: r.proposal_power_w for r in data.per_alpha[0.20]}
        high_proposal = {r.pair: r.proposal_power_w for r in data.per_alpha[0.42]}
        low_best = {r.pair: r.best_power_w for r in data.per_alpha[0.20]}
        high_best = {r.pair: r.best_power_w for r in data.per_alpha[0.42]}
        shared = [p for p in low_proposal if p in high_proposal]
        # A stricter fairness constraint never lets the allocator pick a
        # *lower* cap, and for the measured ground truth at least some
        # workloads (the throttling-sensitive ones) need strictly more power.
        assert all(high_proposal[p] >= low_proposal[p] for p in shared)
        assert any(high_best[p] > low_best[p] for p in shared)
        mean_low = sum(low_best[p] for p in shared) / len(shared)
        mean_high = sum(high_best[p] for p in shared) / len(shared)
        assert mean_high >= mean_low

    def test_figure12_best_power_within_grid(self, context):
        data = figure12_problem2_power_selection(context)
        for rows in data.per_alpha.values():
            for row in rows:
                assert row.best_power_w in context.config.power_caps
                assert row.proposal_power_w in context.config.power_caps

    def test_figure13_proposal_tracks_best_across_alphas(self, context):
        data = figure13_efficiency_vs_alpha(context, alphas=(0.0, 0.2, 0.42))
        for alpha, worst, proposal, best in data.geomeans():
            assert worst <= proposal + 1e-9
            assert proposal >= 0.88 * best
