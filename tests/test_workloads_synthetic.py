"""Tests for the synthetic workload generator."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.workloads.classification import classify_kernel
from repro.workloads.kernel import WorkloadClass
from repro.workloads.synthetic import SyntheticWorkloadGenerator


def test_sample_produces_requested_count():
    generator = SyntheticWorkloadGenerator(seed=1)
    kernels = generator.sample(8)
    assert len(kernels) == 8


def test_sample_rejects_negative_count():
    with pytest.raises(WorkloadError):
        SyntheticWorkloadGenerator().sample(-1)


def test_names_are_unique():
    generator = SyntheticWorkloadGenerator(seed=2)
    names = [k.name for k in generator.sample(12)]
    assert len(set(names)) == 12


def test_same_seed_reproduces_same_kernels():
    first = SyntheticWorkloadGenerator(seed=42).sample(6)
    second = SyntheticWorkloadGenerator(seed=42).sample(6)
    for a, b in zip(first, second):
        assert a.compute_time_full_s == b.compute_time_full_s
        assert a.memory_time_full_s == b.memory_time_full_s


def test_different_seeds_differ():
    first = SyntheticWorkloadGenerator(seed=1).sample(4)
    second = SyntheticWorkloadGenerator(seed=2).sample(4)
    assert any(
        a.compute_time_full_s != b.compute_time_full_s for a, b in zip(first, second)
    )


def test_explicit_name_is_used():
    kernel = SyntheticWorkloadGenerator().sample_class(WorkloadClass.CI, name="custom")
    assert kernel.name == "custom"


@pytest.mark.parametrize("workload_class", list(WorkloadClass))
def test_sampled_kernels_classify_as_requested(sim, workload_class):
    """Synthetic kernels should land in the class they were sampled from."""
    generator = SyntheticWorkloadGenerator(seed=7)
    matches = 0
    trials = 5
    for _ in range(trials):
        kernel = generator.sample_class(workload_class)
        report = classify_kernel(kernel, sim)
        if report.workload_class is workload_class:
            matches += 1
    # Sampling ranges target the class but boundaries are probabilistic;
    # require a clear majority rather than perfection.
    assert matches >= trials - 1


def test_tensor_kernels_only_in_ti_class():
    generator = SyntheticWorkloadGenerator(seed=3)
    ti = generator.sample_class(WorkloadClass.TI)
    ci = generator.sample_class(WorkloadClass.CI)
    assert ti.uses_tensor_cores
    assert not ci.uses_tensor_cores


def test_sample_pairs_returns_tuples():
    pairs = SyntheticWorkloadGenerator(seed=5).sample_pairs(3)
    assert len(pairs) == 3
    for first, second in pairs:
        assert first.name != second.name
