"""Tests for the Table 6/7/8 regeneration."""

from __future__ import annotations

import pytest

from repro.analysis.tables import table6_gemm_variants, table7_classification, table8_corun_pairs
from repro.workloads.classification import EXPECTED_CLASSIFICATION
from repro.workloads.kernel import WorkloadClass


class TestTable6:
    def test_nine_variants(self):
        rows = table6_gemm_variants()
        assert len(rows) == 9
        assert {r.name for r in rows} == {
            "sgemm", "dgemm", "tdgemm", "tf32gemm", "hgemm",
            "fp16gemm", "bf16gemm", "igemm4", "igemm8",
        }

    def test_rows_have_positive_derived_values(self):
        for row in table6_gemm_variants():
            assert row.iterations >= 1
            assert row.compute_time_full_s > 0
            assert row.memory_time_full_s > 0
            assert row.specification


class TestTable7:
    def test_classification_matches_paper(self, context):
        data = table7_classification(context)
        assert data.mismatches == ()
        assert data.accuracy == 1.0

    def test_class_sizes_match_paper(self, context):
        data = table7_classification(context)
        groups = data.by_class
        assert len(groups[WorkloadClass.TI]) == 7
        assert len(groups[WorkloadClass.CI]) == 6
        assert len(groups[WorkloadClass.MI]) == 5
        assert len(groups[WorkloadClass.US]) == 6

    def test_every_suite_benchmark_is_classified(self, context):
        data = table7_classification(context)
        assert set(data.reports) == set(EXPECTED_CLASSIFICATION)


class TestTable8:
    def test_pairs_and_names(self):
        data = table8_corun_pairs()
        assert len(data.pairs) == 18
        assert data.names[0] == "TI-TI1"

    def test_class_combinations_cover_nine_combos(self):
        combos = {tuple(sorted((a.value, b.value))) for a, b in table8_corun_pairs().class_combinations()}
        # The paper pairs every class with every other class except TI-CI:
        # 4 same-class + 5 mixed-class combinations.
        assert len(combos) == 9
        assert ("CI", "TI") not in combos
