"""Tests for the GEMM variants of Table 6."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.gpu.spec import A100_SPEC, Pipe
from repro.workloads.gemm import GEMM_VARIANTS, GemmShape, all_gemm_kernels, gemm_iterations, gemm_kernel

#: Table 6 names, exactly as listed in the paper.
TABLE6_NAMES = {
    "sgemm",
    "dgemm",
    "tdgemm",
    "tf32gemm",
    "hgemm",
    "fp16gemm",
    "bf16gemm",
    "igemm4",
    "igemm8",
}


class TestGemmShape:
    def test_flops_formula(self):
        shape = GemmShape(128, 256, 512)
        assert shape.flops == 2.0 * 128 * 256 * 512

    def test_bytes_moved_scale_with_dtype(self):
        shape = GemmShape(64, 64, 64)
        assert shape.bytes_moved(8.0, 8.0) == pytest.approx(2 * shape.bytes_moved(4.0, 4.0))

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(WorkloadError):
            GemmShape(0, 64, 64)


class TestVariantCatalogue:
    def test_all_table6_variants_present(self):
        assert set(GEMM_VARIANTS) == TABLE6_NAMES

    def test_tensor_variants_use_tensor_pipes(self):
        for name in ("tdgemm", "tf32gemm", "hgemm", "fp16gemm", "bf16gemm", "igemm4", "igemm8"):
            assert GEMM_VARIANTS[name].pipe.is_tensor

    def test_plain_variants_use_cuda_pipes(self):
        assert GEMM_VARIANTS["sgemm"].pipe is Pipe.FP32
        assert GEMM_VARIANTS["dgemm"].pipe is Pipe.FP64

    def test_igemm4_is_faster_than_igemm8(self):
        assert GEMM_VARIANTS["igemm4"].peak_multiplier > GEMM_VARIANTS["igemm8"].peak_multiplier


class TestKernelDerivation:
    def test_unknown_variant_rejected(self):
        with pytest.raises(WorkloadError):
            gemm_kernel("zgemm")

    @pytest.mark.parametrize("name", sorted(TABLE6_NAMES))
    def test_runtimes_are_comparable(self, name):
        """Every variant should land near the common target runtime."""
        kernel = gemm_kernel(name)
        assert 0.5 < kernel.compute_time_full_s < 1.3

    @pytest.mark.parametrize("name", sorted(TABLE6_NAMES))
    def test_gemms_are_compute_dominated(self, name):
        kernel = gemm_kernel(name)
        assert kernel.compute_time_full_s > kernel.memory_time_full_s

    def test_iterations_scale_with_pipe_speed(self):
        assert gemm_iterations(GEMM_VARIANTS["hgemm"]) > gemm_iterations(GEMM_VARIANTS["dgemm"])

    def test_tensor_kernels_have_tensor_fraction(self):
        assert gemm_kernel("hgemm").tensor_fraction > 0.8
        assert gemm_kernel("dgemm").tensor_fraction == 0.0

    def test_hgemm_uses_mixed_pipe(self):
        assert gemm_kernel("hgemm").dominant_pipe() is Pipe.TENSOR_MIXED

    def test_tdgemm_uses_double_tensor_pipe(self):
        assert gemm_kernel("tdgemm").dominant_pipe() is Pipe.TENSOR_DOUBLE

    def test_igemm_uses_int_tensor_pipe(self):
        assert gemm_kernel("igemm8").dominant_pipe() is Pipe.TENSOR_INT

    def test_all_gemm_kernels_builds_every_variant(self):
        kernels = all_gemm_kernels()
        assert set(kernels) == TABLE6_NAMES
        for name, kernel in kernels.items():
            assert kernel.name == name
            assert "cutlass" in kernel.tags

    def test_custom_spec_changes_compute_time(self):
        slower = A100_SPEC.with_overrides(
            pipe_tflops={**A100_SPEC.pipe_tflops, Pipe.FP64: A100_SPEC.pipe_tflops[Pipe.FP64] / 2}
        )
        default = gemm_kernel("dgemm")
        scaled = gemm_kernel("dgemm", slower)
        # The iteration count is also halved, so the runtime stays near the
        # target; the per-iteration cost doubles.
        assert gemm_iterations(GEMM_VARIANTS["dgemm"], slower) < gemm_iterations(
            GEMM_VARIANTS["dgemm"], A100_SPEC
        )
        assert scaled.compute_time_full_s == pytest.approx(default.compute_time_full_s, rel=0.3)
