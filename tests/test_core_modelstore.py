"""Tests for model persistence (the CLI's ``--model`` cache)."""

from __future__ import annotations

import json

import pytest

from repro.core.modelstore import (
    ModelFingerprint,
    STORE_FORMAT,
    STORE_VERSION,
    load_model,
    save_model,
)
from repro.errors import ModelCacheError, ModelError
from repro.gpu.spec import A100_SPEC


@pytest.fixture(scope="module")
def fingerprint():
    return ModelFingerprint.for_workflow(A100_SPEC, (230.0, 250.0))


@pytest.fixture(scope="module")
def model(context):
    return context.model


class TestRoundTrip:
    def test_save_and_load_preserves_coefficients(self, model, fingerprint, tmp_path):
        path = save_model(model, tmp_path / "model.json", fingerprint)
        loaded = load_model(path)
        assert loaded.fitted_scalability_states() == model.fitted_scalability_states()
        assert loaded.fitted_interference_states() == model.fitted_interference_states()
        key = model.fitted_scalability_states()[0]
        assert loaded.scalability_coefficients(key) == pytest.approx(
            model.scalability_coefficients(key)
        )

    def test_loaded_model_predicts_identically(self, context, model, fingerprint, tmp_path):
        path = save_model(model, tmp_path / "model.json", fingerprint)
        loaded = load_model(path)
        counters = context.workflow.online.database.get("stream").counters
        key = model.fitted_scalability_states()[0]
        assert loaded.predict_solo(counters, key) == pytest.approx(
            model.predict_solo(counters, key)
        )

    def test_save_creates_parent_directories(self, model, fingerprint, tmp_path):
        path = save_model(model, tmp_path / "deep" / "nest" / "model.json", fingerprint)
        assert path.exists()


class TestValidation:
    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ModelError, match="does not exist"):
            load_model(tmp_path / "missing.json")

    def test_non_json_rejected(self, tmp_path):
        path = tmp_path / "model.json"
        path.write_text("not json at all {")
        with pytest.raises(ModelError, match="not valid JSON"):
            load_model(path)

    def test_wrong_format_tag_rejected(self, tmp_path):
        path = tmp_path / "model.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ModelError):
            load_model(path)

    def test_wrong_version_rejected(self, model, fingerprint, tmp_path):
        path = save_model(model, tmp_path / "model.json", fingerprint)
        document = json.loads(path.read_text())
        document["version"] = 99
        path.write_text(json.dumps(document))
        with pytest.raises(ModelError, match="version"):
            load_model(path)

    def test_spec_mismatch_rejected(self, model, fingerprint, tmp_path):
        path = save_model(model, tmp_path / "model.json", fingerprint)
        other = ModelFingerprint(spec_name="Simulated-H100-80GB", power_caps=(230.0, 250.0))
        with pytest.raises(ModelError, match="trained for"):
            load_model(path, expected=other)

    def test_missing_caps_rejected(self, model, fingerprint, tmp_path):
        path = save_model(model, tmp_path / "model.json", fingerprint)
        wider = ModelFingerprint(
            spec_name=fingerprint.spec_name, power_caps=(150.0, 230.0, 250.0)
        )
        with pytest.raises(ModelError, match="lacks coefficients"):
            load_model(path, expected=wider)

    def test_matching_fingerprint_accepted(self, model, fingerprint, tmp_path):
        path = save_model(model, tmp_path / "model.json", fingerprint)
        load_model(path, expected=fingerprint)

    def test_document_carries_format_tag(self, model, fingerprint, tmp_path):
        path = save_model(model, tmp_path / "model.json", fingerprint)
        assert json.loads(path.read_text())["format"] == STORE_FORMAT


class TestKeySchemaVersioning:
    """Pair-era caches (key schema v1) must be rejected with a retrain hint."""

    def test_store_version_bumped_for_capacity_basis(self, model, fingerprint, tmp_path):
        path = save_model(model, tmp_path / "model.json", fingerprint)
        document = json.loads(path.read_text())
        assert document["version"] == STORE_VERSION == 3
        assert document["key_schema"] == 3

    def test_pair_era_cache_rejected_with_retrain_hint(self, model, fingerprint, tmp_path):
        path = save_model(model, tmp_path / "model.json", fingerprint)
        document = json.loads(path.read_text())
        document["version"] = 1
        document.pop("key_schema")
        path.write_text(json.dumps(document))
        with pytest.raises(ModelCacheError, match="retrain"):
            load_model(path)

    def test_v2_cache_rejected_with_retrain_hint(self, model, fingerprint, tmp_path):
        """A GI-size-keyed cache without the capacity-aware basis (store
        version 2) must be rejected with a retrain hint, not a generic
        unsupported-version error."""
        path = save_model(model, tmp_path / "model.json", fingerprint)
        document = json.loads(path.read_text())
        document["version"] = 2
        document["key_schema"] = 2
        path.write_text(json.dumps(document))
        with pytest.raises(ModelCacheError, match="retrain"):
            load_model(path)

    def test_key_schema_mismatch_rejected(self, model, fingerprint, tmp_path):
        path = save_model(model, tmp_path / "model.json", fingerprint)
        document = json.loads(path.read_text())
        document["key_schema"] = 1
        path.write_text(json.dumps(document))
        with pytest.raises(ModelCacheError, match="memory-slice"):
            load_model(path, expected=fingerprint)

    def test_model_cache_error_is_a_model_error(self):
        assert issubclass(ModelCacheError, ModelError)

    def test_fingerprint_mismatches_raise_model_cache_error(self, model, fingerprint, tmp_path):
        path = save_model(model, tmp_path / "model.json", fingerprint)
        other = ModelFingerprint(spec_name="Simulated-H100-80GB", power_caps=(230.0, 250.0))
        with pytest.raises(ModelCacheError):
            load_model(path, expected=other)


class TestWorkflowIntegration:
    def test_train_or_load_saves_then_loads(self, tmp_path):
        from repro.core.workflow import PaperWorkflow, TrainingPlan
        from repro.gpu.mig import MemoryOption
        from repro.sim.engine import PerformanceSimulator
        from repro.sim.noise import no_noise

        def make_workflow():
            return PaperWorkflow(
                simulator=PerformanceSimulator(noise=no_noise()),
                plan=TrainingPlan(
                    gpc_counts=(3, 4),
                    options=(MemoryOption.SHARED, MemoryOption.PRIVATE),
                    power_caps=(230.0, 250.0),
                ),
                power_caps=(230.0, 250.0),
            )

        path = tmp_path / "cache.json"
        trained = make_workflow()
        model = trained.train_or_load(str(path))
        assert path.exists()

        cached = make_workflow()
        loaded = cached.train_or_load(str(path))
        assert loaded.fitted_scalability_states() == model.fitted_scalability_states()
        # The cached workflow decides identically without offline training.
        decision_a = trained.decide_problem1(["igemm4", "stream"], power_cap_w=230.0)
        decision_b = cached.decide_problem1(["igemm4", "stream"], power_cap_w=230.0)
        assert decision_a.state == decision_b.state
        assert decision_a.power_cap_w == decision_b.power_cap_w

    def test_pair_grid_cache_rejected_by_nway_workflow(self, tmp_path):
        """A cache trained on the pair-only Table 5 grid must not serve a
        workflow that needs the spec-derived N-way grid (same spec, same
        caps — only the partition-state coverage differs)."""
        from repro.core.workflow import PaperWorkflow, TrainingPlan
        from repro.gpu.spec import A100_SPEC
        from repro.sim.engine import PerformanceSimulator
        from repro.sim.noise import no_noise

        caps = (230.0, 250.0)
        path = tmp_path / "cache.json"
        pair = PaperWorkflow(
            simulator=PerformanceSimulator(noise=no_noise()),
            plan=TrainingPlan(gpc_counts=(3, 4), power_caps=caps),
            power_caps=caps,
        )
        pair.train_or_load(str(path))

        nway = PaperWorkflow(
            simulator=PerformanceSimulator(noise=no_noise()),
            plan=TrainingPlan.for_spec(A100_SPEC, power_caps=caps),
            power_caps=caps,
        )
        with pytest.raises(ModelError, match="different partition-state grid"):
            nway.train_or_load(str(path))
