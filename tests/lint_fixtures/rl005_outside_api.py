"""RL005 scope negative: a non-frozen dataclass outside api/ is allowed
(engine state mutates freely); mutable defaults are flagged anywhere, so
this file keeps none."""

from dataclasses import dataclass


@dataclass
class EngineCounters:
    events: int = 0
    decisions: int = 0
