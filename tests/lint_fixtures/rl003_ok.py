"""RL003 clean negatives: every membership mutation bumps the counter.

``advance_clock`` shows the intended exemption: plain attribute
assignment (a clock, not content) does not require a bump.  ``Plain`` has
no version counter at all, so the rule does not apply to it.
"""


class CoherentQueue:
    def __init__(self):
        self._jobs = []
        self._clock = 0.0
        self._version = 0

    @property
    def version(self):
        return self._version

    def submit(self, job):
        self._jobs.append(job)
        self._version += 1

    def remove_first(self):
        jobs = self._jobs
        del jobs[0]
        self._version += 1

    def advance_clock(self, time):
        self._clock = time


class Plain:
    def __init__(self):
        self._items = []

    def add(self, item):
        self._items.append(item)
