"""RL005 clean negatives: frozen dataclass, None-defaulted builder."""

from dataclasses import dataclass


@dataclass(frozen=True)
class FrozenRequest:
    apps: tuple
    alpha: float = 0.2


def collect(name, into=None):
    bucket = [] if into is None else into
    bucket.append(name)
    return bucket
