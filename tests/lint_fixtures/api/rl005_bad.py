"""RL005 true positives: a non-frozen dataclass in an api/ module, plus a
mutable default argument."""

from dataclasses import dataclass


@dataclass
class LeakyRequest:
    apps: tuple
    alpha: float = 0.2


def collect(name, into=[]):
    into.append(name)
    return into
