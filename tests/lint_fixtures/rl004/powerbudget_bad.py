"""RL004 true positives: numpy reductions in a power-budget module.

The file name matches the rule's parity-pinned path scope.
"""

import numpy as np


def total_demand(extra_demand):
    return float(np.sum(extra_demand))


def total_minimum(minimum_w):
    return float(minimum_w.sum())


def total_budget(allocation):
    return float(sum(allocation))
