"""RL004 clean negatives: the pinned sequential-summation idiom."""


def total_demand(extra_demand):
    # The parity pin: plain Python floats, added left to right.
    return float(sum(extra_demand.tolist()))


def total_allocation(allocation):
    return sum(allocation.values())


def headroom(budget_w, loads):
    return budget_w - sum(load.power_w for load in loads)
