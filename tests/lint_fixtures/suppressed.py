"""Suppression fixtures: one inline pragma, one comment-line pragma with a
multi-line justification, and one pragma naming a different rule (which
therefore suppresses nothing)."""

import random


def jitter():
    return random.random()  # repro: allow[RL006] fixture exercises pragmas


def jitter_above():
    # repro: allow[RL006] the justification may span several comment
    # lines; the pragma covers the next code line after the comments
    return random.random()


def jitter_wrong_rule():
    return random.random()  # repro: allow[RL001] wrong rule: stays a finding
