"""RL001 clean negatives: both accepted identity-memo idioms.

``WeakGuardedMemo`` is the repaired engine/workflow idiom (id-keyed with a
weakref identity proof); ``LastSeen`` is the pure-weakref scheduler idiom.
"""

import weakref


class WeakGuardedMemo:
    def __init__(self):
        self._cache = {}

    def signature(self, obj):
        key = id(obj)
        entry = self._cache.get(key)
        if entry is not None and entry[0]() is obj:
            return entry[1]
        signature = (obj.name, obj.value)
        ref = weakref.ref(obj, lambda _, c=self._cache, k=key: c.pop(k, None))
        self._cache[key] = (ref, signature)
        return signature


class LastSeen:
    def __init__(self):
        self._last = None
        self._value = None

    def remember(self, obj, value):
        self._last = weakref.ref(obj)
        self._value = value

    def recall(self, obj):
        if self._last is not None and self._last() is obj:
            return self._value
        return None
