"""RL002 clean negatives: sorted wrappers and order-free set uses."""


def fit_rows(samples):
    rows = []
    for name in sorted(set(samples)):
        rows.append((name, len(name)))
    return rows


def serialize(tags):
    return sorted({tag.lower() for tag in tags})


def unique_lower(tags):
    # A set built from a set stays order-free; nothing escapes ordered.
    return {tag.lower() for tag in set(tags)}


def contains(names, name):
    return name in {"stream", "hgemm"} or name in set(names)
