"""RL006 clean negatives: locally seeded generators only."""

import random

import numpy as np


def jitter(seed):
    rng = random.Random(seed)
    return rng.random()


def samples(seed):
    rng = np.random.default_rng(seed)
    return rng.normal(size=4)
