"""RL001 true positive: id()-keyed memo without a weakref identity guard.

This is the PR-7 flake class: the memo answers for a dead object whose
address got recycled by a fresh one.
"""


class SignatureMemo:
    def __init__(self):
        self._cache = {}

    def signature(self, obj):
        entry = self._cache.get(id(obj))
        if entry is not None:
            return entry
        signature = (obj.name, obj.value)
        self._cache[id(obj)] = signature
        return signature
