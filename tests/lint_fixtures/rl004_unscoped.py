"""RL004 scope negative: numpy reductions outside the parity-pinned
power-budget paths are legitimate (training fits, figure summaries)."""

import numpy as np


def fit_row(j_matrix):
    return np.sum(j_matrix, axis=0)
