"""RL003 true positive: membership mutation without a version bump.

``sneak_in`` changes the queue content that version-keyed memos are built
from, but leaves the counter untouched — downstream plan caches keep
serving the pre-mutation plan.
"""


class LeakyQueue:
    def __init__(self):
        self._jobs = []
        self._version = 0

    @property
    def version(self):
        return self._version

    def submit(self, job):
        self._jobs.append(job)
        self._version += 1

    def sneak_in(self, job):
        self._jobs.append(job)

    def drop_first(self):
        jobs = self._jobs
        del jobs[0]
