"""RL002 true positives: unordered set iteration escaping into results."""


def fit_rows(samples):
    rows = []
    for name in set(samples):
        rows.append((name, len(name)))
    return rows


def serialize(tags):
    return list({tag.lower() for tag in tags})


def index_of(names):
    return {name: position for position, name in enumerate(frozenset(names))}
