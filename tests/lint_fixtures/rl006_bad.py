"""RL006 true positives: global-RNG calls (module functions, np.random
legacy API, and bare names imported from random)."""

import random
from random import choice

import numpy as np


def jitter():
    return random.random()


def reseed(seed):
    np.random.seed(seed)
    return np.random.rand(4)


def pick(items):
    return choice(items)
