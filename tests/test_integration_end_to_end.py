"""Integration tests: the full paper pipeline, end to end.

These tests exercise the complete loop — profiling, offline calibration,
online decisions, and verification against the simulator's ground truth —
the way the benchmark harnesses and a downstream user would.
"""

from __future__ import annotations

import pytest

from repro.analysis.figures import figure9_problem1, figure11_problem2_efficiency
from repro.core.metrics import geometric_mean
from repro.core.model import LinearPerfModel
from repro.core.optimizer import ResourcePowerAllocator
from repro.core.workflow import PaperWorkflow, TrainingPlan
from repro.gpu.mig import CORUN_STATES, MemoryOption
from repro.sim.engine import PerformanceSimulator
from repro.sim.noise import NoiseModel
from repro.workloads.pairs import CORUN_PAIRS
from repro.workloads.suite import DEFAULT_SUITE
from repro.workloads.synthetic import SyntheticWorkloadGenerator


class TestDecisionQualityAcrossAllWorkloads:
    def test_problem1_decisions_are_near_optimal(self, context):
        """For every Table 8 workload the allocator's Problem 1 choice must
        reach at least 90 % of the measured-best throughput at 230 W."""
        data = figure9_problem1(context)
        for row in data.comparison.rows:
            assert row.proposal >= 0.85 * row.best, row.pair

    def test_problem1_geomean_close_to_best(self, context):
        data = figure9_problem1(context)
        assert data.comparison.geomean_proposal >= 0.95 * data.comparison.geomean_best

    def test_problem2_decisions_are_near_optimal(self, context):
        data = figure11_problem2_efficiency(context, alphas=(0.2,))
        summary = data.per_alpha[0.2]
        for row in summary.rows:
            assert row.proposal >= 0.85 * row.best, row.pair
        assert summary.geomean_proposal >= 0.92 * summary.geomean_best

    def test_problem1_beats_random_worst_by_meaningful_margin(self, context):
        data = figure9_problem1(context)
        improvement = data.comparison.geomean_proposal / data.comparison.geomean_worst
        assert improvement > 1.05


class TestModelPortability:
    def test_model_survives_serialization_and_reuse(self, context, tmp_path):
        """Persist the trained model to disk, reload it, and keep making the
        same decisions — the workflow a production deployment would follow."""
        import json

        path = tmp_path / "model.json"
        path.write_text(json.dumps(context.model.to_dict()))
        reloaded = LinearPerfModel.from_dict(json.loads(path.read_text()))
        allocator_a = ResourcePowerAllocator(context.model)
        allocator_b = ResourcePowerAllocator(reloaded)
        for pair in CORUN_PAIRS[:6]:
            counters = list(context.pair_profiles(pair))
            decision_a = allocator_a.solve_problem1(counters, power_cap_w=230)
            decision_b = allocator_b.solve_problem1(counters, power_cap_w=230)
            assert decision_a.state.key() == decision_b.state.key()


class TestGeneralizationToUnseenWorkloads:
    def test_model_trained_without_a_pair_still_picks_a_good_state(self):
        """Train the coefficients on a training set that excludes the TI-MI2
        applications entirely, then ask the allocator about them — the
        profile-driven model must still transfer."""
        simulator = PerformanceSimulator(noise=NoiseModel(sigma=0.02, seed=5))
        held_out = {"igemm4", "stream"}
        training_kernels = [k for k in DEFAULT_SUITE.all() if k.name not in held_out]
        training_pairs = [
            pair for pair in CORUN_PAIRS if not (set(pair.app_names) & held_out)
        ]
        workflow = PaperWorkflow(simulator=simulator)
        workflow.train(training_kernels=training_kernels, training_pairs=training_pairs)

        decision = workflow.decide_problem1(["igemm4", "stream"], power_cap_w=250, alpha=0.2)
        kernels = [DEFAULT_SUITE.get("igemm4"), DEFAULT_SUITE.get("stream")]
        measured = {
            state.key(): simulator.co_run(kernels, state, 250).weighted_speedup
            for state in CORUN_STATES
        }
        best = max(measured.values())
        assert measured[decision.state.key()] >= 0.9 * best

    def test_synthetic_workloads_run_through_the_whole_pipeline(self):
        """The pipeline is not hard-wired to the paper's benchmarks: synthetic
        kernels can be profiled, co-scheduled, and optimized too."""
        simulator = PerformanceSimulator(noise=NoiseModel(sigma=0.02, seed=9))
        generator = SyntheticWorkloadGenerator(seed=21)
        from repro.workloads.kernel import WorkloadClass
        from repro.workloads.pairs import CoRunPair
        from repro.workloads.suite import BenchmarkSuite

        suite = BenchmarkSuite("synthetic")
        suite.register_all(generator.sample(12))
        app_a = generator.sample_class(WorkloadClass.TI, name="synthetic-ti-app")
        app_b = generator.sample_class(WorkloadClass.MI, name="synthetic-mi-app")
        suite.register(app_a)
        suite.register(app_b)
        names = suite.names()
        training_pairs = [
            CoRunPair(
                name=f"SYN-{i}",
                app1=names[2 * i],
                app2=names[2 * i + 1],
                class1=WorkloadClass.TI,
                class2=WorkloadClass.MI,
            )
            for i in range(4)
        ]

        workflow = PaperWorkflow(
            simulator=simulator,
            suite=suite,
            plan=TrainingPlan(
                gpc_counts=(3, 4),
                options=(MemoryOption.SHARED, MemoryOption.PRIVATE),
                power_caps=(150.0, 250.0),
            ),
            power_caps=(150.0, 250.0),
        )
        workflow.train(training_pairs=training_pairs)
        decision = workflow.decide_problem2([app_a.name, app_b.name], alpha=0.1)
        assert decision.state in CORUN_STATES
        measured = simulator.co_run([app_a, app_b], decision.state, decision.power_cap_w)
        assert measured.weighted_speedup > 0.8


class TestCrossLayerConsistency:
    def test_measured_metrics_match_metric_functions(self, context):
        result = context.measured("TI-MI2", CORUN_STATES[0], 250)
        assert result.weighted_speedup == pytest.approx(sum(result.relative_performances))
        assert result.fairness == pytest.approx(min(result.relative_performances))

    def test_geomean_summary_consistent_with_rows(self, context):
        data = figure9_problem1(context)
        manual = geometric_mean([row.proposal for row in data.comparison.rows])
        assert data.comparison.geomean_proposal == pytest.approx(manual)

    def test_profiles_in_online_database_match_simulator(self, context):
        database = context.workflow.online.database
        for name in ("stream", "hgemm"):
            record = database.get(name)
            assert record.counters == context.simulator.profile(DEFAULT_SUITE.get(name))
