"""Property-based tests for MIG accounting, metrics, and the model layer."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import energy_efficiency, fairness, geometric_mean, weighted_speedup
from repro.core.model import HardwareStateKey, LinearPerfModel
from repro.gpu.mig import (
    GPC_TO_MEM_SLICES,
    VALID_INSTANCE_SIZES,
    MemoryOption,
    MIGManager,
    PartitionState,
)
from repro.gpu.spec import A100_SPEC
from repro.sim.counters import CounterVector

# ----------------------------------------------------------------------
# MIG accounting invariants
# ----------------------------------------------------------------------
valid_two_app_states = st.builds(
    PartitionState,
    gpc_allocations=st.tuples(
        st.sampled_from(VALID_INSTANCE_SIZES), st.sampled_from(VALID_INSTANCE_SIZES)
    ),
    option=st.sampled_from([MemoryOption.PRIVATE, MemoryOption.SHARED]),
).filter(
    lambda state: state.total_gpcs <= A100_SPEC.mig_gpcs
    and (
        state.option is MemoryOption.SHARED
        or sum(GPC_TO_MEM_SLICES[g] for g in state.gpc_allocations) <= A100_SPEC.n_mem_slices
    )
)


@given(valid_two_app_states)
@settings(max_examples=60, deadline=None)
def test_mig_manager_never_overcommits_resources(state):
    """Whatever valid state is applied, GPC and slice ownership stays within
    the chip's physical resources and one CI exists per application."""
    manager = MIGManager(A100_SPEC)
    cis = manager.apply_partition_state(state)
    assert len(cis) == state.n_apps
    owned_gpcs = sum(gi.gpcs for gi in manager.list_gpu_instances())
    owned_slices = sum(gi.mem_slices for gi in manager.list_gpu_instances())
    assert owned_gpcs <= A100_SPEC.mig_gpcs
    assert owned_slices <= A100_SPEC.n_mem_slices
    assert manager.free_gpcs == A100_SPEC.mig_gpcs - owned_gpcs
    uuids = [ci.uuid for ci in cis]
    assert len(set(uuids)) == len(uuids)


@given(valid_two_app_states)
@settings(max_examples=60, deadline=None)
def test_partition_state_allocations_are_consistent(state):
    allocations = state.allocations(A100_SPEC)
    assert len(allocations) == state.n_apps
    for index, allocation in enumerate(allocations):
        assert allocation.gpcs == state.gpc_allocations[index]
        if state.option is MemoryOption.SHARED:
            assert allocation.mem_slices == A100_SPEC.n_mem_slices
        else:
            assert allocation.mem_slices == GPC_TO_MEM_SLICES[allocation.gpcs]
    assert state.swapped().swapped().key() == state.key()


# ----------------------------------------------------------------------
# Metric invariants
# ----------------------------------------------------------------------
rperf_lists = st.lists(st.floats(min_value=0.01, max_value=1.2), min_size=1, max_size=4)


@given(rperf_lists)
@settings(max_examples=80)
def test_metric_relationships(rperfs):
    ws = weighted_speedup(rperfs)
    fair = fairness(rperfs)
    # The mean can exceed the max by a rounding ulp when all values are
    # equal (summing then dividing re-rounds), hence the 1e-9 slack.
    mean = ws / len(rperfs)
    assert fair <= mean + 1e-9
    assert mean <= max(rperfs) + 1e-9
    assert ws <= len(rperfs) * max(rperfs) + 1e-9
    assert energy_efficiency(rperfs, 200.0) == ws / 200.0


@given(rperf_lists, st.floats(min_value=1.0, max_value=400.0))
@settings(max_examples=60)
def test_energy_efficiency_scales_inversely_with_power(rperfs, power):
    import math

    assert math.isclose(
        energy_efficiency(rperfs, power) * power, weighted_speedup(rperfs), rel_tol=1e-12
    )


@given(st.lists(st.floats(min_value=0.05, max_value=3.0), min_size=1, max_size=10))
@settings(max_examples=60)
def test_geometric_mean_bounded_by_extremes(values):
    mean = geometric_mean(values)
    assert min(values) - 1e-12 <= mean <= max(values) + 1e-12


# ----------------------------------------------------------------------
# Model-layer invariants
# ----------------------------------------------------------------------
counter_values = st.floats(min_value=0.0, max_value=100.0)
counter_vectors = st.builds(
    CounterVector,
    compute_throughput=st.floats(min_value=1.0, max_value=100.0),
    memory_throughput=counter_values,
    dram_throughput=counter_values,
    l2_hit_rate=counter_values,
    occupancy=counter_values,
    tensor_mixed=st.floats(min_value=0.0, max_value=50.0),
    tensor_double=st.floats(min_value=0.0, max_value=25.0),
    tensor_int=st.floats(min_value=0.0, max_value=25.0),
)


@given(
    counter_vectors,
    st.lists(st.floats(min_value=-0.5, max_value=0.8), min_size=6, max_size=6),
)
@settings(max_examples=60)
def test_model_predictions_are_non_negative_and_deterministic(counters, coefficients):
    model = LinearPerfModel()
    key = HardwareStateKey(4, 8, MemoryOption.SHARED, 250.0)
    model.set_scalability_coefficients(key, np.array(coefficients))
    first = model.predict_solo(counters, key)
    second = model.predict_solo(counters, key)
    assert first == second
    assert first >= 0.0


@given(counter_vectors)
@settings(max_examples=40)
def test_model_serialization_roundtrip_preserves_predictions(counters):
    model = LinearPerfModel()
    key = HardwareStateKey(3, 4, MemoryOption.PRIVATE, 190.0)
    rng = np.random.default_rng(0)
    model.set_scalability_coefficients(key, rng.normal(size=6))
    model.set_interference_coefficients(key, rng.normal(size=3))
    rebuilt = LinearPerfModel.from_dict(model.to_dict())
    assert rebuilt.predict_rperf(counters, key, [counters]) == (
        model.predict_rperf(counters, key, [counters])
    )
