"""Tests for the MIG partitioning model (partition states and the manager)."""

from __future__ import annotations

import pytest

from repro.errors import PartitioningError, SpecificationError
from repro.gpu.mig import (
    CORUN_STATES,
    GPC_TO_MEM_SLICES,
    VALID_INSTANCE_SIZES,
    InstanceAllocation,
    MemoryOption,
    MIGManager,
    PartitionState,
    S1,
    S2,
    S3,
    S4,
    enumerate_corun_states,
    solo_state,
    solo_states,
)
from repro.gpu.spec import A100_SPEC


class TestPartitionState:
    def test_paper_states_are_defined(self):
        assert S1.gpc_allocations == (4, 3) and S1.option is MemoryOption.SHARED
        assert S2.gpc_allocations == (3, 4) and S2.option is MemoryOption.SHARED
        assert S3.gpc_allocations == (4, 3) and S3.option is MemoryOption.PRIVATE
        assert S4.gpc_allocations == (3, 4) and S4.option is MemoryOption.PRIVATE
        assert CORUN_STATES == (S1, S2, S3, S4)

    def test_invalid_instance_size_rejected(self):
        with pytest.raises(SpecificationError):
            PartitionState((5, 2), MemoryOption.PRIVATE)

    def test_empty_allocation_rejected(self):
        with pytest.raises(SpecificationError):
            PartitionState((), MemoryOption.PRIVATE)

    def test_option_accepts_string(self):
        state = PartitionState((4, 3), "shared")
        assert state.option is MemoryOption.SHARED

    def test_private_allocation_uses_slice_mapping(self):
        for gpcs, slices in GPC_TO_MEM_SLICES.items():
            allocation = solo_state(gpcs, MemoryOption.PRIVATE).allocation_for(0, A100_SPEC)
            assert allocation.mem_slices == slices
            assert not allocation.shared_memory

    def test_shared_allocation_sees_all_slices(self):
        allocation = S1.allocation_for(1, A100_SPEC)
        assert allocation.mem_slices == A100_SPEC.n_mem_slices
        assert allocation.shared_memory

    def test_allocation_for_out_of_range(self):
        with pytest.raises(IndexError):
            S1.allocation_for(2, A100_SPEC)

    def test_swapped_reverses_order(self):
        assert S1.swapped().gpc_allocations == (3, 4)
        assert S1.swapped().option is MemoryOption.SHARED

    def test_total_gpcs_and_solo_flag(self):
        assert S1.total_gpcs == 7
        assert not S1.is_solo
        assert solo_state(4).is_solo

    def test_validate_against_accepts_paper_states(self):
        for state in CORUN_STATES:
            state.validate_against(A100_SPEC)

    def test_validate_rejects_too_many_gpcs(self):
        state = PartitionState((4, 4), MemoryOption.SHARED)
        with pytest.raises(PartitioningError):
            state.validate_against(A100_SPEC)

    def test_validate_rejects_private_slice_overflow(self):
        state = PartitionState((4, 4), MemoryOption.PRIVATE)
        with pytest.raises(PartitioningError):
            state.validate_against(A100_SPEC)

    def test_describe_mentions_gpcs_and_option(self):
        assert "4GPCs-3GPCs" in S1.describe()
        assert "Shared" in S1.describe()
        assert S1.describe().startswith("S1")

    def test_key_ignores_label(self):
        relabeled = PartitionState((4, 3), MemoryOption.SHARED, "other")
        assert relabeled.key() == S1.key()


class TestStateEnumeration:
    def test_solo_states_cover_sizes_and_options(self):
        states = solo_states()
        assert len(states) == len(VALID_INSTANCE_SIZES) * 2
        assert all(s.is_solo for s in states)

    def test_enumerate_corun_states_are_all_valid(self):
        states = enumerate_corun_states(A100_SPEC)
        assert len(states) > 0
        for state in states:
            state.validate_against(A100_SPEC)

    def test_enumeration_contains_paper_states(self):
        keys = {state.key() for state in enumerate_corun_states(A100_SPEC)}
        for state in CORUN_STATES:
            assert state.key() in keys


class TestInstanceAllocation:
    def test_rejects_invalid_size(self):
        with pytest.raises(SpecificationError):
            InstanceAllocation(gpcs=6, mem_slices=8, shared_memory=False)

    def test_rejects_zero_slices(self):
        with pytest.raises(SpecificationError):
            InstanceAllocation(gpcs=4, mem_slices=0, shared_memory=False)


class TestMIGManager:
    @pytest.fixture()
    def manager(self):
        return MIGManager(A100_SPEC)

    def test_instances_require_mig_mode(self, manager):
        with pytest.raises(PartitioningError):
            manager.create_gpu_instance(3)

    def test_create_gpu_instance_claims_resources(self, manager):
        manager.enable_mig()
        gi = manager.create_gpu_instance(4)
        assert gi.gpcs == 4
        assert gi.mem_slices == GPC_TO_MEM_SLICES[4]
        assert manager.free_gpcs == A100_SPEC.mig_gpcs - 4

    def test_invalid_gi_size_rejected(self, manager):
        manager.enable_mig()
        with pytest.raises(PartitioningError):
            manager.create_gpu_instance(5)

    def test_cannot_overcommit_gpcs(self, manager):
        manager.enable_mig()
        manager.create_gpu_instance(4)
        manager.create_gpu_instance(3)
        with pytest.raises(PartitioningError):
            manager.create_gpu_instance(1)

    def test_compute_instance_lives_inside_gi(self, manager):
        manager.enable_mig()
        gi = manager.create_gpu_instance(4)
        ci = manager.create_compute_instance(gi.gi_id, 4)
        assert ci.gi_id == gi.gi_id
        assert ci.uuid.startswith("MIG-GPU-")
        assert gi.free_gpcs == 0

    def test_compute_instance_cannot_exceed_gi(self, manager):
        manager.enable_mig()
        gi = manager.create_gpu_instance(3)
        with pytest.raises(PartitioningError):
            manager.create_compute_instance(gi.gi_id, 4)

    def test_compute_instance_unknown_gi(self, manager):
        manager.enable_mig()
        with pytest.raises(PartitioningError):
            manager.create_compute_instance(99, 1)

    def test_destroy_compute_instance(self, manager):
        manager.enable_mig()
        gi = manager.create_gpu_instance(3)
        ci = manager.create_compute_instance(gi.gi_id, 3)
        manager.destroy_compute_instance(ci.uuid)
        assert gi.free_gpcs == 3
        with pytest.raises(PartitioningError):
            manager.destroy_compute_instance(ci.uuid)

    def test_destroy_gi_requires_empty(self, manager):
        manager.enable_mig()
        gi = manager.create_gpu_instance(3)
        manager.create_compute_instance(gi.gi_id, 1)
        with pytest.raises(PartitioningError):
            manager.destroy_gpu_instance(gi.gi_id)

    def test_disable_mig_requires_no_instances(self, manager):
        manager.enable_mig()
        manager.create_gpu_instance(3)
        with pytest.raises(PartitioningError):
            manager.disable_mig()
        manager.reset()
        manager.disable_mig()
        assert not manager.mig_enabled

    def test_uuid_uniqueness(self, manager):
        manager.enable_mig()
        gi = manager.create_gpu_instance(7, A100_SPEC.n_mem_slices)
        uuids = {manager.create_compute_instance(gi.gi_id, 1).uuid for _ in range(7)}
        assert len(uuids) == 7

    @pytest.mark.parametrize("state", CORUN_STATES, ids=lambda s: s.label)
    def test_apply_partition_state_creates_one_ci_per_app(self, manager, state):
        cis = manager.apply_partition_state(state)
        assert len(cis) == state.n_apps
        assert [ci.gpcs for ci in cis] == list(state.gpc_allocations)

    def test_apply_private_state_creates_two_gis(self, manager):
        manager.apply_partition_state(S3)
        assert len(manager.list_gpu_instances()) == 2

    def test_apply_shared_state_creates_single_gi(self, manager):
        manager.apply_partition_state(S1)
        gis = manager.list_gpu_instances()
        assert len(gis) == 1
        assert gis[0].gpcs == A100_SPEC.mig_gpcs
        assert gis[0].mem_slices == A100_SPEC.n_mem_slices

    def test_apply_state_is_repeatable(self, manager):
        manager.apply_partition_state(S1)
        manager.apply_partition_state(S3)
        assert len(manager.list_compute_instances()) == 2

    def test_find_compute_instance_by_uuid(self, manager):
        cis = manager.apply_partition_state(S1)
        found = manager.find_compute_instance(cis[0].uuid)
        assert found.ci_id == cis[0].ci_id

    def test_visible_devices_lists_all_cis(self, manager):
        cis = manager.apply_partition_state(S4)
        assert set(manager.iter_visible_devices()) == {ci.uuid for ci in cis}


class TestNWayEnumeration:
    def test_pairs_are_the_n2_special_case(self):
        from repro.gpu.mig import enumerate_partition_states

        assert enumerate_corun_states(A100_SPEC) == tuple(
            enumerate_partition_states(
                2, A100_SPEC, (MemoryOption.SHARED, MemoryOption.PRIVATE)
            )
        )

    def test_all_enumerated_states_are_valid(self):
        from repro.gpu.mig import enumerate_partition_states

        for n_apps in (1, 2, 3, 4):
            states = tuple(enumerate_partition_states(n_apps, A100_SPEC))
            assert states
            keys = set()
            for state in states:
                assert state.n_apps == n_apps
                state.validate_against(A100_SPEC)
                keys.add(state.key())
            assert len(keys) == len(states)  # no duplicates

    def test_mixed_states_need_three_apps(self):
        from repro.gpu.mig import enumerate_partition_states

        for n_apps in (1, 2):
            states = tuple(enumerate_partition_states(n_apps, A100_SPEC))
            assert all(s.option is not MemoryOption.MIXED for s in states)
        triples = tuple(enumerate_partition_states(3, A100_SPEC))
        assert any(s.option is MemoryOption.MIXED for s in triples)

    def test_enumeration_respects_spec_profile(self):
        from repro.gpu.mig import enumerate_partition_states
        from repro.gpu.spec import A30_SPEC

        for state in enumerate_partition_states(2, A30_SPEC):
            assert all(g in A30_SPEC.mig_instance_sizes for g in state.gpc_allocations)
            assert state.total_gpcs <= A30_SPEC.mig_gpcs

    def test_invalid_n_apps_rejected(self):
        from repro.gpu.mig import enumerate_partition_states

        with pytest.raises(SpecificationError):
            next(enumerate_partition_states(0, A100_SPEC))


class TestMixedStates:
    def test_mixed_requires_gi_groups(self):
        with pytest.raises(SpecificationError):
            PartitionState((2, 2, 3), MemoryOption.MIXED)

    def test_gi_groups_only_for_mixed(self):
        with pytest.raises(SpecificationError):
            PartitionState((2, 2), MemoryOption.SHARED, gi_groups=(0, 0))

    def test_degenerate_groupings_rejected(self):
        # All in one group is just the shared option.
        with pytest.raises(SpecificationError):
            PartitionState((2, 2, 3), MemoryOption.MIXED, gi_groups=(0, 0, 0))
        # All singletons is just the private option.
        with pytest.raises(SpecificationError):
            PartitionState((2, 2, 3), MemoryOption.MIXED, gi_groups=(0, 1, 2))
        # Non-canonical ids are rejected.
        with pytest.raises(SpecificationError):
            PartitionState((2, 2, 3), MemoryOption.MIXED, gi_groups=(1, 1, 0))

    def test_mixed_allocation_and_validation(self):
        state = PartitionState((2, 2, 3), MemoryOption.MIXED, gi_groups=(0, 0, 1))
        state.validate_against(A100_SPEC)
        first = state.allocation_for(0, A100_SPEC)
        # Apps 0+1 share a 4-GPC GI (the smallest profile holding 2+2).
        assert first.mem_slices == GPC_TO_MEM_SLICES[4]
        assert first.shared_memory
        third = state.allocation_for(2, A100_SPEC)
        assert third.mem_slices == GPC_TO_MEM_SLICES[3]
        assert not third.shared_memory

    def test_mixed_describe_is_unambiguous(self):
        a = PartitionState((1, 1, 2), MemoryOption.MIXED, gi_groups=(0, 0, 1))
        b = PartitionState((1, 2, 1), MemoryOption.MIXED, gi_groups=(0, 1, 0))
        assert a.describe() != b.describe()

    def test_mixed_swapped_preserves_grouping(self):
        state = PartitionState((2, 2, 3), MemoryOption.MIXED, gi_groups=(0, 0, 1))
        swapped = state.swapped()
        assert swapped.gpc_allocations == (3, 2, 2)
        assert swapped.gi_groups == (0, 1, 1)
        assert swapped.groups() == ((0,), (1, 2))

    def test_manager_applies_mixed_state(self):
        manager = MIGManager(A100_SPEC)
        state = PartitionState((2, 2, 3), MemoryOption.MIXED, gi_groups=(0, 0, 1))
        cis = manager.apply_partition_state(state)
        assert len(cis) == 3
        gis = manager.list_gpu_instances()
        assert len(gis) == 2
        assert sorted(gi.gpcs for gi in gis) == [3, 4]
        # Apps 0 and 1 share the first GI, app 2 owns the second.
        assert cis[0].gi_id == cis[1].gi_id != cis[2].gi_id


class TestSpecAwareManager:
    def test_a30_manager_rejects_a100_only_sizes(self):
        from repro.gpu.spec import A30_SPEC

        manager = MIGManager(A30_SPEC)
        manager.enable_mig()
        with pytest.raises(PartitioningError):
            manager.create_gpu_instance(3)

    def test_a30_manager_applies_pair_state(self):
        from repro.gpu.spec import A30_SPEC

        manager = MIGManager(A30_SPEC)
        state = PartitionState((2, 2), MemoryOption.PRIVATE)
        cis = manager.apply_partition_state(state)
        assert len(cis) == 2
        assert manager.free_gpcs == 0
