"""Tests for jobs and the job queue."""

from __future__ import annotations

import pytest

from repro.cluster.job import Job, JobState
from repro.cluster.queue import JobQueue
from repro.errors import SchedulingError
from repro.workloads.suite import DEFAULT_SUITE


@pytest.fixture()
def queue():
    return JobQueue()


class TestJob:
    def test_lifecycle_forward_transitions(self):
        job = Job(job_id=0, kernel=DEFAULT_SUITE.get("stream"))
        job.transition(JobState.RUNNING)
        job.transition(JobState.COMPLETED)
        assert job.state is JobState.COMPLETED

    def test_backward_transition_rejected(self):
        job = Job(job_id=0, kernel=DEFAULT_SUITE.get("stream"))
        job.transition(JobState.COMPLETED)
        with pytest.raises(SchedulingError):
            job.transition(JobState.PENDING)

    def test_turnaround_requires_finish(self):
        job = Job(job_id=0, kernel=DEFAULT_SUITE.get("stream"), submit_time=1.0)
        with pytest.raises(SchedulingError):
            _ = job.turnaround_time
        job.start_time = 2.0
        job.finish_time = 5.0
        assert job.turnaround_time == pytest.approx(4.0)
        assert job.runtime == pytest.approx(3.0)

    def test_name_and_history(self):
        job = Job(job_id=3, kernel=DEFAULT_SUITE.get("dgemm"))
        job.mark("hello")
        assert job.name == "dgemm"
        assert job.history == ["hello"]


class TestJobQueue:
    def test_submit_assigns_increasing_ids(self, queue):
        first = queue.submit(DEFAULT_SUITE.get("stream"))
        second = queue.submit(DEFAULT_SUITE.get("dgemm"))
        assert (first.job_id, second.job_id) == (0, 1)
        assert len(queue) == 2

    def test_submit_all(self, queue):
        jobs = queue.submit_all([DEFAULT_SUITE.get("stream"), DEFAULT_SUITE.get("dgemm")])
        assert len(jobs) == 2

    def test_peek_and_pop_are_fifo(self, queue):
        queue.submit(DEFAULT_SUITE.get("stream"))
        queue.submit(DEFAULT_SUITE.get("dgemm"))
        assert queue.peek().name == "stream"
        assert queue.pop().name == "stream"
        assert queue.pop().name == "dgemm"
        assert queue.empty

    def test_peek_empty_raises(self, queue):
        with pytest.raises(SchedulingError):
            queue.peek()

    def test_window_limits_lookahead(self, queue):
        for name in ("stream", "dgemm", "hgemm", "lud"):
            queue.submit(DEFAULT_SUITE.get(name))
        window = queue.window(2)
        assert [job.name for job in window] == ["stream", "dgemm"]
        assert len(queue.window(10)) == 4
        with pytest.raises(SchedulingError):
            queue.window(0)

    def test_remove_specific_job(self, queue):
        queue.submit(DEFAULT_SUITE.get("stream"))
        job = queue.submit(DEFAULT_SUITE.get("dgemm"))
        queue.remove(job)
        assert [j.name for j in queue] == ["stream"]
        with pytest.raises(SchedulingError):
            queue.remove(job)

    def test_clock_cannot_go_backwards(self, queue):
        queue.advance_clock(10.0)
        job = queue.submit(DEFAULT_SUITE.get("stream"))
        assert job.submit_time == 10.0
        with pytest.raises(SchedulingError):
            queue.advance_clock(5.0)

    def test_submit_behind_the_clock_rejected(self, queue):
        queue.advance_clock(10.0)
        with pytest.raises(SchedulingError, match="behind the queue clock"):
            queue.submit(DEFAULT_SUITE.get("stream"), submit_time=5.0)

    def test_submit_advances_the_clock(self, queue):
        queue.submit(DEFAULT_SUITE.get("stream"), submit_time=3.0)
        assert queue.clock == pytest.approx(3.0)
        # A later submission without an explicit time inherits the clock ...
        job = queue.submit(DEFAULT_SUITE.get("dgemm"))
        assert job.submit_time == pytest.approx(3.0)
        # ... and out-of-order explicit times are rejected, not reordered.
        with pytest.raises(SchedulingError):
            queue.submit(DEFAULT_SUITE.get("hgemm"), submit_time=1.0)

    def test_simultaneous_submissions_allowed(self, queue):
        first = queue.submit(DEFAULT_SUITE.get("stream"), submit_time=2.0)
        second = queue.submit(DEFAULT_SUITE.get("dgemm"), submit_time=2.0)
        assert first.submit_time == second.submit_time == pytest.approx(2.0)

    def test_pending_lists_unscheduled_jobs(self, queue):
        queue.submit(DEFAULT_SUITE.get("stream"))
        assert len(queue.pending()) == 1

    def test_version_tracks_membership_changes(self, queue):
        # The version is the plan-cache invalidation signal: it must bump
        # on every membership change (submit/remove) ...
        version = queue.version
        job = queue.submit(DEFAULT_SUITE.get("stream"))
        assert queue.version > version
        version = queue.version
        queue.remove(job)
        assert queue.version > version

    def test_version_ignores_clock_advances(self, queue):
        # ... but stay put on pure clock advances, so an idle simulator
        # tick cannot evict a perfectly reusable dispatch plan.
        queue.submit(DEFAULT_SUITE.get("stream"))
        version = queue.version
        queue.advance_clock(5.0)
        queue.advance_clock(9.0)
        assert queue.version == version
