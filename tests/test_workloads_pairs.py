"""Tests for the Table 8 co-run pair definitions."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.workloads.classification import EXPECTED_CLASSIFICATION
from repro.workloads.kernel import WorkloadClass
from repro.workloads.pairs import (
    CORUN_PAIRS,
    corun_pair,
    corun_pair_names,
    iter_pair_kernels,
    pairs_with_class,
)

#: Table 8 exactly as printed in the paper.
TABLE8 = {
    "TI-TI1": ("tdgemm", "tf32gemm"),
    "TI-TI2": ("fp16gemm", "bf16gemm"),
    "CI-CI1": ("sgemm", "lavaMD"),
    "CI-CI2": ("dgemm", "hotspot"),
    "MI-MI1": ("randomaccess", "gaussian"),
    "MI-MI2": ("stream", "leukocyte"),
    "US-US1": ("bfs", "dwt2d"),
    "US-US2": ("kmeans", "needle"),
    "TI-MI1": ("hgemm", "lud"),
    "TI-MI2": ("igemm4", "stream"),
    "CI-MI1": ("heartwell", "gaussian"),
    "CI-MI2": ("sgemm", "randomaccess"),
    "TI-US1": ("igemm8", "backprop"),
    "TI-US2": ("fp16gemm", "pathfinder"),
    "CI-US1": ("srad", "needle"),
    "CI-US2": ("dgemm", "dwt2d"),
    "MI-US1": ("leukocyte", "kmeans"),
    "MI-US2": ("lud", "needle"),
}


def test_eighteen_pairs_defined():
    assert len(CORUN_PAIRS) == 18


def test_pair_definitions_match_table8():
    for pair in CORUN_PAIRS:
        assert TABLE8[pair.name] == (pair.app1, pair.app2)


def test_pair_names_are_unique_and_ordered():
    names = corun_pair_names()
    assert len(set(names)) == 18
    assert names[0] == "TI-TI1"
    assert names[-1] == "MI-US2"


def test_pair_classes_match_their_names():
    for pair in CORUN_PAIRS:
        prefix = pair.name.rstrip("0123456789")
        assert prefix == f"{pair.class1.value}-{pair.class2.value}"


def test_pair_applications_belong_to_the_named_classes():
    for pair in CORUN_PAIRS:
        assert EXPECTED_CLASSIFICATION[pair.app1] is pair.class1
        assert EXPECTED_CLASSIFICATION[pair.app2] is pair.class2


def test_corun_pair_lookup():
    pair = corun_pair("TI-MI2")
    assert pair.app_names == ("igemm4", "stream")


def test_corun_pair_unknown_name():
    with pytest.raises(WorkloadError):
        corun_pair("XX-YY9")


def test_kernels_resolve_against_suite():
    pair = corun_pair("CI-US1")
    kernel1, kernel2 = pair.kernels()
    assert kernel1.name == "srad"
    assert kernel2.name == "needle"


def test_pairs_with_class_filters():
    ti_pairs = pairs_with_class(WorkloadClass.TI)
    assert all(
        WorkloadClass.TI in (p.class1, p.class2) for p in ti_pairs
    )
    assert {"TI-TI1", "TI-TI2", "TI-MI1", "TI-MI2", "TI-US1", "TI-US2"} == {
        p.name for p in ti_pairs
    }


def test_iter_pair_kernels_yields_all_pairs():
    items = list(iter_pair_kernels())
    assert len(items) == 18
    for pair, (kernel1, kernel2) in items:
        assert kernel1.name == pair.app1
        assert kernel2.name == pair.app2


def test_describe_is_informative():
    assert corun_pair("TI-MI2").describe() == "TI-MI2 = (igemm4, stream)"
