"""Tests for the CSV/JSON export of evaluation data."""

from __future__ import annotations

import csv
import json

import pytest

from repro.analysis.export import (
    ExportedTable,
    accuracy_table,
    comparison_table,
    corun_throughput_table,
    export_evaluation_bundle,
    scalability_table,
)
from repro.analysis.figures import (
    figure4_scalability_partitioning,
    figure6_corun_throughput,
    figure8_model_accuracy,
    figure9_problem1,
)
from repro.errors import ConfigurationError


class TestExportedTable:
    def test_row_width_validation(self):
        with pytest.raises(ConfigurationError):
            ExportedTable(name="x", columns=("a", "b"), rows=((1,),))

    def test_to_records(self):
        table = ExportedTable(name="x", columns=("a", "b"), rows=((1, 2), (3, 4)))
        assert table.to_records() == [{"a": 1, "b": 2}, {"a": 3, "b": 4}]

    def test_to_csv_roundtrip(self, tmp_path):
        table = ExportedTable(name="x", columns=("a", "b"), rows=((1, 2),))
        path = table.to_csv(tmp_path / "x.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows == [["a", "b"], ["1", "2"]]


class TestFlattening:
    def test_scalability_table_shape(self, context):
        table = scalability_table(figure4_scalability_partitioning(context), "figure4")
        # 4 kernels x 2 options x 5 GPC counts.
        assert len(table.rows) == 4 * 2 * 5
        assert table.columns[0] == "kernel"

    def test_corun_throughput_table_shape(self, context):
        table = corun_throughput_table(figure6_corun_throughput(context))
        assert len(table.rows) == 3 * 4

    def test_accuracy_table_shape(self, context):
        table = accuracy_table(figure8_model_accuracy(context))
        assert len(table.rows) == 18 * 4
        assert "estimated_throughput" in table.columns

    def test_comparison_table_shape(self, context):
        table = comparison_table(figure9_problem1(context).comparison, "figure9")
        assert len(table.rows) == 18
        record = table.to_records()[0]
        assert set(record) == set(table.columns)
        assert record["worst"] <= record["best"]


class TestBundleExport:
    def test_bundle_writes_csvs_and_manifest(self, context, tmp_path):
        written = export_evaluation_bundle(context, tmp_path / "bundle", figures=(6, 9))
        assert set(written) == {"figure6", "figure9", "manifest"}
        for path in written.values():
            assert path.exists()
        manifest = json.loads(written["manifest"].read_text())
        assert manifest["device"] == context.simulator.spec.name
        assert manifest["model_error"]["n_samples"] == 18 * 4 * 6
        assert set(manifest["artifacts"]) == {"figure6", "figure9"}

    def test_bundle_csv_contents_parse(self, context, tmp_path):
        written = export_evaluation_bundle(context, tmp_path / "bundle", figures=(9,))
        with written["figure9"].open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 18
        assert all(float(row["proposal"]) >= float(row["worst"]) - 1e-9 for row in rows)
