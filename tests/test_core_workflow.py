"""Tests for the offline/online workflow (Figure 7)."""

from __future__ import annotations

import pytest

from repro.core.model import HardwareStateKey, required_state_keys
from repro.core.policies import Problem1Policy
from repro.core.workflow import OfflineTrainer, OnlineAllocator, PaperWorkflow, TrainingPlan
from repro.errors import MissingProfileError
from repro.gpu.mig import CORUN_STATES, MemoryOption
from repro.gpu.spec import A100_SPEC
from repro.profiling.database import ProfileDatabase
from repro.profiling.profiler import ProfileCollector
from repro.sim.engine import PerformanceSimulator
from repro.sim.noise import no_noise
from repro.workloads.pairs import CORUN_PAIRS, corun_pair
from repro.workloads.suite import DEFAULT_SUITE


@pytest.fixture(scope="module")
def small_workflow():
    """A quickly-trained workflow on a reduced grid (for mutation tests)."""
    workflow = PaperWorkflow(
        simulator=PerformanceSimulator(noise=no_noise()),
        plan=TrainingPlan(
            gpc_counts=(3, 4),
            options=(MemoryOption.SHARED, MemoryOption.PRIVATE),
            power_caps=(230.0, 250.0),
            states=CORUN_STATES,
        ),
        power_caps=(230.0, 250.0),
    )
    workflow.train(training_pairs=CORUN_PAIRS[:6])
    return workflow


class TestTrainingPlan:
    def test_default_plan_matches_paper_grid(self):
        plan = TrainingPlan()
        assert plan.solo_runs_per_kernel == 5 * 2 * 6
        assert plan.corun_runs_per_pair == 4 * 6

    def test_custom_plan_counts(self):
        plan = TrainingPlan(gpc_counts=(3, 4), options=(MemoryOption.SHARED,), power_caps=(250.0,))
        assert plan.solo_runs_per_kernel == 2


class TestOfflineTrainer:
    def test_run_produces_fitted_model(self, small_workflow):
        model = small_workflow.model
        needed = required_state_keys((CORUN_STATES[0],), (250.0,), A100_SPEC)
        for key in needed:
            assert model.has_scalability(key)
            assert model.has_interference(key)

    def test_report_counts_runs(self, small_workflow):
        report = small_workflow.offline.trainer.last_report
        assert report is not None
        assert report.n_solo_measurements == 24 * 2 * 2 * 2
        assert report.n_corun_measurements == 6 * 4 * 2

    def test_trainer_with_custom_kernels(self):
        trainer = OfflineTrainer(
            simulator=PerformanceSimulator(noise=no_noise()),
            plan=TrainingPlan(
                gpc_counts=(3, 4),
                options=(MemoryOption.SHARED, MemoryOption.PRIVATE),
                power_caps=(250.0,),
            ),
        )
        kernels = [DEFAULT_SUITE.get(n) for n in ("dgemm", "stream", "hgemm", "kmeans", "srad")]
        model = trainer.run(training_kernels=kernels, training_pairs=[corun_pair("TI-MI2")])
        key = HardwareStateKey(4, 8, MemoryOption.SHARED, 250.0)
        assert model.has_scalability(key)


class TestOnlineAllocator:
    def test_decide_requires_profiles(self, small_workflow):
        allocator = OnlineAllocator(small_workflow.model, database=ProfileDatabase())
        with pytest.raises(MissingProfileError):
            allocator.decide(["igemm4", "stream"], Problem1Policy(power_cap_w=250))

    def test_ensure_profiled_without_collector(self, small_workflow):
        allocator = OnlineAllocator(small_workflow.model, database=ProfileDatabase())
        with pytest.raises(MissingProfileError):
            allocator.ensure_profiled(DEFAULT_SUITE.get("stream"))

    def test_ensure_profiled_with_collector(self, small_workflow):
        simulator = small_workflow.simulator
        allocator = OnlineAllocator(
            small_workflow.model,
            database=ProfileDatabase(),
            collector=ProfileCollector(simulator),
            power_caps=(230.0, 250.0),
        )
        allocator.ensure_profiled(DEFAULT_SUITE.get("igemm4"))
        allocator.ensure_profiled(DEFAULT_SUITE.get("stream"))
        assert allocator.database.has("igemm4")
        decision = allocator.decide(["igemm4", "stream"], Problem1Policy(power_cap_w=250.0))
        assert decision.state in CORUN_STATES

    def test_ensure_profiled_is_idempotent(self, small_workflow):
        allocator = small_workflow.online
        before = len(allocator.database)
        allocator.ensure_profiled(DEFAULT_SUITE.get("stream"))
        assert len(allocator.database) == before


class TestPaperWorkflow:
    def test_lazy_training_on_model_access(self):
        workflow = PaperWorkflow(
            simulator=PerformanceSimulator(noise=no_noise()),
            plan=TrainingPlan(
                gpc_counts=(4, 3),
                options=(MemoryOption.SHARED, MemoryOption.PRIVATE),
                power_caps=(250.0,),
            ),
            power_caps=(250.0,),
        )
        # No explicit train() call: accessing the model must trigger it.
        assert workflow.model is not None
        assert workflow.online is not None

    def test_decisions_after_training(self, small_workflow):
        decision1 = small_workflow.decide_problem1(["igemm4", "stream"], power_cap_w=250.0)
        decision2 = small_workflow.decide_problem2(["igemm4", "stream"], alpha=0.2)
        assert decision1.power_cap_w == 250.0
        assert decision2.power_cap_w in (230.0, 250.0)

    def test_all_suite_apps_are_profiled_after_training(self, small_workflow):
        database = small_workflow.online.database
        for name in DEFAULT_SUITE.names():
            assert database.has(name)

    def test_suite_accessor(self, small_workflow):
        assert small_workflow.suite is DEFAULT_SUITE
