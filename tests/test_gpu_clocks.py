"""Tests for the DVFS model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.gpu.clocks import DVFSModel
from repro.gpu.spec import A100_SPEC


@pytest.fixture()
def dvfs():
    return DVFSModel(A100_SPEC)


class TestConversions:
    def test_full_relative_is_boost_clock(self, dvfs):
        assert dvfs.to_ghz(1.0) == pytest.approx(A100_SPEC.max_clock_ghz)

    def test_roundtrip(self, dvfs):
        assert dvfs.to_relative(dvfs.to_ghz(0.8)) == pytest.approx(0.8)

    def test_to_relative_clamps_to_bounds(self, dvfs):
        assert dvfs.to_relative(100.0) == 1.0
        assert dvfs.to_relative(0.001) == pytest.approx(dvfs.min_relative)

    def test_to_relative_rejects_non_positive(self, dvfs):
        with pytest.raises(ConfigurationError):
            dvfs.to_relative(0.0)

    def test_invalid_relative_rejected(self, dvfs):
        with pytest.raises(ConfigurationError):
            dvfs.to_ghz(0.0)
        with pytest.raises(ConfigurationError):
            dvfs.dynamic_power_scale(1.5)


class TestScaling:
    def test_dynamic_power_scale_at_boost_is_one(self, dvfs):
        assert dvfs.dynamic_power_scale(1.0) == pytest.approx(1.0)

    def test_dynamic_power_scale_is_superlinear(self, dvfs):
        assert dvfs.dynamic_power_scale(0.5) < 0.5

    def test_dynamic_power_scale_monotonic(self, dvfs):
        values = [dvfs.dynamic_power_scale(f) for f in (0.4, 0.6, 0.8, 1.0)]
        assert values == sorted(values)

    def test_performance_scale_is_linear(self, dvfs):
        assert dvfs.performance_scale(0.7) == pytest.approx(0.7)


class TestQuantization:
    def test_quantize_never_exceeds_input(self, dvfs):
        for value in (0.35, 0.51, 0.77, 0.99, 1.0):
            assert dvfs.quantize(value) <= value + 1e-9

    def test_quantize_respects_minimum(self, dvfs):
        assert dvfs.quantize(dvfs.min_relative) >= dvfs.min_relative - 1e-9

    def test_quantize_of_one_is_one(self, dvfs):
        assert dvfs.quantize(1.0) == pytest.approx(1.0)

    def test_available_steps_sorted_and_bounded(self, dvfs):
        steps = dvfs.available_steps()
        assert steps == tuple(sorted(steps))
        assert steps[0] >= dvfs.min_relative - 1e-9
        assert steps[-1] == 1.0
        assert len(steps) > 10

    def test_clock_state_marks_throttling(self, dvfs):
        assert dvfs.clock_state(0.6).throttled
        assert not dvfs.clock_state(1.0).throttled

    def test_clock_state_reports_ghz(self, dvfs):
        state = dvfs.clock_state(1.0)
        assert state.ghz == pytest.approx(A100_SPEC.max_clock_ghz)
